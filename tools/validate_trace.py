#!/usr/bin/env python3
"""Structural validator for exported Chrome Trace Event JSON files.

Checks the invariants Perfetto / chrome://tracing rely on (and a few
this repo's exporter guarantees): declared pids/tids, per-thread
timestamp monotonicity, non-negative slice durations, balanced B/E
stacks.  Usable straight from a checkout:

    PYTHONPATH=src python tools/validate_trace.py trace.json [...]

Exits 0 when every file passes, 1 with one line per violation
otherwise.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.obs import validate_chrome_trace  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_trace.py TRACE.json [TRACE.json ...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = validate_chrome_trace(data)
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            n = len(data.get("traceEvents", []))
            print(f"{path}: ok ({n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
