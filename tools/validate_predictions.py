#!/usr/bin/env python3
"""Standalone predict-vs-measure cross-validation runner.

Equivalent to ``gpuscout validate`` but runnable straight from a
checkout without installing the package:

    PYTHONPATH=src python tools/validate_predictions.py [--smoke] ...

Exits non-zero when any statically *proven* prediction disagrees with
the simulator's measured per-access counters.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    raise SystemExit(main(["validate", *sys.argv[1:]]))
