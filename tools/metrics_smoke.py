"""CI smoke for the telemetry stack: start a pooled ``gpuscout
serve``, run a 3-kernel batch twice, scrape ``GET /metrics`` between
passes, and assert

* the exposition parses (structural validator, same one
  ``tools/validate_metrics.py`` wraps),
* the scrape covers every required family: request latency
  histograms, all three cache tiers, pool health, engine stage
  durations,
* cache-hit counters MOVED between the first and second scrape (the
  warm pass hits L3), proving worker-side counts actually merge
  through the snapshot protocol into the served exposition.

Usage::

    PYTHONPATH=src python tools/metrics_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import shutil
import sys
import tempfile
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import validate_exposition  # noqa: E402
from repro.serve import ScoutServer  # noqa: E402

BATCH = {"requests": [
    {"kernel": "sgemm:naive", "size": 48},
    {"kernel": "histogram:shared", "size": 1024},
    {"kernel": "reduction:warp", "size": 256},
]}

#: every family the ISSUE's acceptance criteria require on /metrics
REQUIRED_FAMILIES = (
    "gpuscout_http_requests_total",
    "gpuscout_http_request_seconds",
    "gpuscout_cache_hits_total",
    "gpuscout_cache_misses_total",
    "gpuscout_pool_inflight",
    "gpuscout_pool_respawns_total",
    "gpuscout_engine_stage_seconds",
)


def _post(url: str, path: str, body: dict) -> dict:
    req = urllib.request.Request(url + path,
                                 data=json.dumps(body).encode())
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.loads(resp.read())


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url + "/metrics", timeout=30) as resp:
        return resp.read().decode()


def _counter_total(text: str, family: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(family + "{") or \
                line.startswith(family + " "):
            total += float(line.rsplit(" ", 1)[1])
    return total


def main() -> int:
    failures = []
    cache_dir = tempfile.mkdtemp(prefix="gpuscout-metrics-smoke-")
    try:
        with ScoutServer(workers=2, cache_dir=cache_dir).start() as srv:
            first = _post(srv.url, "/v1/batch", BATCH)
            if not first.get("ok"):
                failures.append(f"cold batch failed: {first}")
            scrape1 = _scrape(srv.url)
            problems = validate_exposition(scrape1)
            for p in problems:
                failures.append(f"scrape 1 invalid: {p}")
            for family in REQUIRED_FAMILIES:
                if f"# TYPE {family} " not in scrape1:
                    failures.append(
                        f"scrape 1 missing family {family}")
            tiers = [t for t in ("l1", "l2", "l3")
                     if f'gpuscout_cache_hits_total{{tier="{t}"}}'
                     in scrape1]
            if len(tiers) != 3:
                failures.append(
                    f"scrape 1 covers cache tiers {tiers}, want all 3")

            second = _post(srv.url, "/v1/batch", BATCH)
            if not second.get("ok"):
                failures.append(f"warm batch failed: {second}")
            scrape2 = _scrape(srv.url)
            for p in validate_exposition(scrape2):
                failures.append(f"scrape 2 invalid: {p}")
            hits1 = _counter_total(scrape1, "gpuscout_cache_hits_total")
            hits2 = _counter_total(scrape2, "gpuscout_cache_hits_total")
            if hits2 <= hits1:
                failures.append(
                    f"cache-hit counters did not move on the warm "
                    f"pass: {hits1} -> {hits2}")
            reqs = _counter_total(scrape2, "gpuscout_http_requests_total")
            if reqs < 2:
                failures.append(
                    f"http request counter too low: {reqs}")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print("metrics smoke OK: exposition valid, all families present, "
          "cache-hit counters moved between scrapes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
