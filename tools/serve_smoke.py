"""CI smoke for the serving stack: start ``gpuscout serve`` with a
pooled engine, submit the same 3-kernel batch twice over HTTP, and
assert the second pass is answered entirely from the content-addressed
L3 report cache (no member recomputed).

Exits non-zero on any protocol error, batch failure, cache miss on the
second pass, or served/recomputed report divergence.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import shutil
import sys
import tempfile
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ScoutServer  # noqa: E402

BATCH = {"requests": [
    {"kernel": "sgemm:naive", "size": 48},
    {"kernel": "histogram:shared", "size": 1024},
    {"kernel": "reduction:warp", "size": 256},
]}


def _post(url: str, path: str, body: dict) -> dict:
    req = urllib.request.Request(url + path,
                                 data=json.dumps(body).encode())
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.loads(resp.read())


def main() -> int:
    failures = []
    cache_dir = tempfile.mkdtemp(prefix="gpuscout-serve-smoke-")
    try:
        with ScoutServer(workers=2, cache_dir=cache_dir).start() as srv:
            with urllib.request.urlopen(srv.url + "/healthz",
                                        timeout=30) as resp:
                health = json.loads(resp.read())
                if health.get("ok") is not True:
                    failures.append(f"healthz did not report ok: {health}")
                pool_health = health.get("pool", {})
                if pool_health.get("workers") != 2:
                    failures.append(
                        f"healthz pool shape wrong: {health}")

            first = _post(srv.url, "/v1/batch", BATCH)
            if not first.get("ok"):
                failures.append(f"cold batch failed: {first}")
            for i, env in enumerate(first.get("responses", [])):
                if env.get("cache") != "cold":
                    failures.append(
                        f"cold member {i}: cache={env.get('cache')!r}")

            second = _post(srv.url, "/v1/batch", BATCH)
            if not second.get("ok"):
                failures.append(f"warm batch failed: {second}")
            for i, env in enumerate(second.get("responses", [])):
                if env.get("cache") != "l3":
                    failures.append(
                        f"warm member {i} missed the report cache: "
                        f"cache={env.get('cache')!r}")
            firsts = [e.get("report") for e in first.get("responses", [])]
            seconds = [e.get("report")
                       for e in second.get("responses", [])]
            if firsts != seconds:
                failures.append("warm batch reports differ from cold")

            stats = json.loads(urllib.request.urlopen(
                srv.url + "/v1/stats", timeout=30).read())
            hits = stats.get("l3_front_hits", 0) + \
                stats.get("runner", {}).get("reports", {}).get("hits", 0)
            if hits < len(BATCH["requests"]):
                failures.append(
                    f"expected >= {len(BATCH['requests'])} L3 hits, "
                    f"saw {hits} (stats: {stats})")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    n = len(BATCH["requests"])
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(f"serve smoke OK: {n}-kernel batch cold then warm, "
          f"second pass all L3 hits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
