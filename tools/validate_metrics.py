"""Validate a Prometheus text exposition file (or stdin).

Pipes a ``GET /metrics`` scrape through the structural validator in
:mod:`repro.obs.metrics`: parseable samples, TYPE-before-samples,
contiguous families, ``_total`` counters, ordered cumulative histogram
buckets with ``+Inf``/``_sum``/``_count``.  Exits non-zero and prints
one line per problem when the exposition is malformed.

Usage::

    PYTHONPATH=src python tools/validate_metrics.py scrape.txt
    curl -s http://127.0.0.1:8000/metrics | \
        PYTHONPATH=src python tools/validate_metrics.py -
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import validate_exposition  # noqa: E402


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: validate_metrics.py <file | ->", file=sys.stderr)
        return 64
    text = (sys.stdin.read() if argv[0] == "-"
            else pathlib.Path(argv[0]).read_text())
    problems = validate_exposition(text)
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#"))
    print(f"metrics exposition OK: {samples} samples")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
