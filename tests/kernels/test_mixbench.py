"""Mixbench case-study kernel tests (§5.1)."""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.gpu import LaunchConfig
from repro.kernels.mixbench import (
    MIXBENCH_DTYPES,
    build_mixbench,
    mixbench_args,
    mixbench_reference,
)


@pytest.mark.parametrize("dtype", MIXBENCH_DTYPES)
@pytest.mark.parametrize("vectorized", [False, True])
class TestFunctional:
    def test_matches_reference(self, sim, dtype, vectorized):
        ck = build_mixbench(dtype, granularity=8, vectorized=vectorized)
        args = mixbench_args(512, 8, dtype)
        args["compute_iterations"] = 4
        res = sim.launch(ck, LaunchConfig(grid=(4, 1), block=(128, 1)),
                         args=args)
        out = res.read_buffer("g_out")
        ref = mixbench_reference(args["g_data"], 8, 4, args["seed"])
        assert np.array_equal(out, ref)


class TestStructure:
    def test_naive_has_scalar_loads(self):
        ck = build_mixbench("sp", 8)
        loads = [i for i in ck.program if i.opcode.is_global_load]
        assert len(loads) == 8
        assert all(i.opcode.width_bits == 32 for i in loads)

    def test_vectorized_uses_128bit(self):
        ck = build_mixbench("sp", 8, vectorized=True)
        loads = [i for i in ck.program if i.opcode.is_global_load]
        assert len(loads) == 2
        assert all(i.opcode.width_bits == 128 for i in loads)

    def test_dp_vectorized_uses_128bit_pairs(self):
        ck = build_mixbench("dp", 8, vectorized=True)
        loads = [i for i in ck.program if i.opcode.is_global_load]
        assert len(loads) == 4  # double2 = 128 bits
        assert all(i.opcode.width_bits == 128 for i in loads)

    def test_int_uses_imad(self):
        ck = build_mixbench("int", 4)
        assert "IMAD" in ck.program.opcode_histogram()

    def test_dp_uses_dfma(self):
        ck = build_mixbench("dp", 4)
        assert "DFMA" in ck.program.opcode_histogram()

    def test_vectorization_reduces_instruction_count(self):
        naive = build_mixbench("sp", 8)
        vec = build_mixbench("sp", 8, vectorized=True)
        assert len(vec.program) < len(naive.program)

    def test_granularity_must_divide(self):
        with pytest.raises(ValueError):
            build_mixbench("sp", 6, vectorized=True)

    def test_unknown_dtype(self):
        with pytest.raises(ValueError):
            build_mixbench("fp16")

    def test_compute_loop_present(self):
        from repro.sass import build_cfg

        ck = build_mixbench("sp", 4)
        assert len(build_cfg(ck.program).loops) == 1


class TestAnalysisMatchesFigure5:
    """Figure 5: the naive mixbench report recommends shared memory and
    vectorized loads — and nothing else."""

    @pytest.fixture(scope="class")
    def report(self):
        return GPUscout().analyze(build_mixbench("sp", 8), dry_run=True)

    def test_vectorize_recommended(self, report):
        f = report.findings_for("use_vectorized_loads")
        assert any(x.severity.value >= 1 for x in f)
        warn = next(x for x in f if x.severity.value >= 1)
        assert warn.details["achievable_width_bits"] == 128

    def test_shared_memory_recommended(self, report):
        assert report.has_finding("use_shared_memory")

    def test_no_spill_or_atomic_findings(self, report):
        assert not report.has_finding("register_spilling")
        assert not report.has_finding("use_shared_atomics")

    def test_no_restrict_or_texture(self, report):
        # tmps are mutated in place -> not read-only data
        assert not report.has_finding("use_restrict")
        assert not report.has_finding("use_texture_memory")

    def test_vectorized_variant_reports_existing_vector_reads(self):
        report = GPUscout().analyze(
            build_mixbench("dp", 8, vectorized=True), dry_run=True
        )
        infos = report.findings_for("use_vectorized_loads")
        assert any("Vectorized load already in use" == f.title for f in infos)
