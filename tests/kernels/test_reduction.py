"""Reduction-ladder tests (atomic -> shared tree -> warp shuffle)."""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.kernels.reduction import (
    BLOCK,
    REDUCTION_VARIANTS,
    build_reduction,
    reduction_args,
    reduction_launch,
    reduction_reference,
)

N = 4 * BLOCK


@pytest.mark.parametrize("variant", REDUCTION_VARIANTS)
class TestFunctional:
    def test_sum_matches(self, sim, variant):
        ck = build_reduction(variant)
        args = reduction_args(N)
        res = sim.launch(ck, reduction_launch(N), args=args)
        got = float(res.read_buffer("total")[0])
        want = reduction_reference(args["src"])
        assert got == pytest.approx(want, abs=1e-3)

    def test_zero_input(self, sim, variant):
        ck = build_reduction(variant)
        args = {"src": np.zeros(N, np.float32),
                "total": np.zeros(1, np.float32)}
        res = sim.launch(ck, reduction_launch(N), args=args)
        assert res.read_buffer("total")[0] == 0.0


class TestStructure:
    def test_atomic_variant_one_atomic_per_thread(self):
        ck = build_reduction("atomic")
        hist = ck.program.opcode_histogram()
        assert hist.get("RED", 0) == 1  # per thread, every thread
        assert "LDS" not in hist

    def test_shared_variant_tree(self):
        ck = build_reduction("shared")
        hist = ck.program.opcode_histogram()
        assert hist.get("LDS", 0) >= 8  # log2(256) halving steps
        assert hist.get("BAR", 0) >= 8

    def test_warp_variant_uses_shfl(self):
        ck = build_reduction("warp")
        hist = ck.program.opcode_histogram()
        assert hist.get("SHFL", 0) == 5  # 16,8,4,2,1
        # fewer shared steps than the full tree
        full = build_reduction("shared").program.opcode_histogram()
        assert hist.get("BAR", 0) < full.get("BAR", 0)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_reduction("magic")

    def test_launch_validation(self):
        with pytest.raises(ValueError):
            reduction_launch(100)


class TestDynamics:
    @pytest.fixture(scope="class")
    def results(self, sim):
        out = {}
        for variant in REDUCTION_VARIANTS:
            ck = build_reduction(variant)
            args = reduction_args(8 * BLOCK)
            out[variant] = sim.launch(ck, reduction_launch(8 * BLOCK),
                                      args=args, functional_all=False)
        return out

    def test_ladder_monotone(self, results):
        assert results["shared"].cycles < results["atomic"].cycles
        assert results["warp"].cycles < results["shared"].cycles

    def test_atomic_pressure_drops(self, results):
        # predicated-off atomics still *issue* (same instruction
        # count), but the actual atomic memory work collapses
        a = results["atomic"].counters.atomic_sectors
        s = results["shared"].counters.atomic_sectors
        assert s < a

    def test_warp_variant_fewer_shared_ops(self, results):
        assert (results["warp"].counters.shared_load_instructions
                < results["shared"].counters.shared_load_instructions)


class TestAnalysisVerdicts:
    def test_atomic_variant_flagged(self):
        report = GPUscout().analyze(build_reduction("atomic"), dry_run=True)
        assert report.has_finding("use_shared_atomics")

    def test_shared_variant_mentions_bank_metrics(self):
        report = GPUscout().analyze(build_reduction("shared"), dry_run=True)
        # shared-memory use is present, detector focuses on conflicts
        atomics = report.findings_for("use_shared_atomics")
        assert all(f.severity.value <= 1 for f in atomics)

    def test_ptx_renders_shfl(self):
        ck = build_reduction("warp")
        assert "shfl.sync.down.b32" in ck.ptx_text
