"""Jacobi heat-transfer case-study tests (§5.2)."""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.gpu import LaunchConfig
from repro.kernels.heat import (
    HEAT_VARIANTS,
    build_heat,
    heat_args,
    heat_reference,
)

W = H = 48


def _launch(sim, variant, steps=1, w=W, h=H):
    ck = build_heat(variant)
    args, t0 = heat_args(w, h, variant=variant)
    cfg = LaunchConfig(grid=(-(-w // 16), -(-h // 16)), block=(16, 16))
    cur = t0
    res = None
    for _ in range(steps):
        if variant == "texture":
            res = sim.launch(ck, cfg, args=dict(args),
                             textures={"t_tex": cur.reshape(h, w)})
        else:
            a = dict(args)
            a["t_in"] = cur
            res = sim.launch(ck, cfg, args=a)
        cur = res.read_buffer("t_out")
    return res, cur, t0


@pytest.mark.parametrize("variant", HEAT_VARIANTS)
class TestFunctional:
    def test_one_step(self, sim, variant):
        # MUFU.RCP-based division is 1 ULP off true division for
        # non-power-of-two grid sizes, hence the tight tolerance
        res, out, t0 = _launch(sim, variant)
        ref = heat_reference(t0, W, H, 0.2, 0.05, steps=1)
        assert np.allclose(out, ref, rtol=1e-6, atol=1e-6)

    def test_one_step_exact_pow2(self, sim, variant):
        res, out, t0 = _launch(sim, variant, w=64, h=64)
        ref = heat_reference(t0, 64, 64, 0.2, 0.05, steps=1)
        assert np.array_equal(out, ref)

    def test_three_steps(self, sim, variant):
        _, out, t0 = _launch(sim, variant, steps=3)
        ref = heat_reference(t0, W, H, 0.2, 0.05, steps=3)
        assert np.allclose(out, ref, atol=1e-5)


class TestPhysics:
    def test_diffusion_smooths(self, sim):
        _, out, t0 = _launch(sim, "naive", steps=5)
        # interior variance decreases (diffusion) up to source input
        v0 = t0.reshape(H, W)[1:-1, 1:-1].var()
        v5 = out.reshape(H, W)[1:-1, 1:-1].var()
        assert v5 < v0

    def test_boundary_fixed(self, sim):
        _, out, t0 = _launch(sim, "naive", steps=2)
        t0 = t0.reshape(H, W)
        out = out.reshape(H, W)
        for sl in (np.s_[0, :], np.s_[-1, :], np.s_[:, 0], np.s_[:, -1]):
            assert np.array_equal(out[sl], t0[sl])

    def test_non_square_grid(self, sim):
        w2, h2 = 64, 32
        res, out, t0 = _launch(sim, "naive", w=w2, h=h2)
        ref = heat_reference(t0, w2, h2, 0.2, 0.05)
        assert np.array_equal(out, ref)


class TestStructure:
    def test_exactly_six_i2f(self):
        """The paper's case study flags exactly six I2F conversions."""
        for variant in HEAT_VARIANTS:
            ck = build_heat(variant)
            i2f = [i for i in ck.program if i.opcode.base == "I2F"]
            assert len(i2f) == 6, variant

    def test_restrict_variant_uses_readonly_cache(self):
        ck = build_heat("restrict")
        loads = [i for i in ck.program if i.opcode.is_global_load]
        ro = [i for i in loads if i.opcode.is_readonly_load]
        assert len(ro) == 5  # centre + 4 neighbours

    def test_texture_variant_uses_tex(self):
        ck = build_heat("texture")
        assert sum(1 for i in ck.program if i.opcode.base == "TEX") == 5
        assert not any(
            i.opcode.is_global_load and not i.opcode.is_readonly_load
            for i in ck.program
            if i.opcode.base == "LDG"
        )

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_heat("fancy")


class TestAnalysisMatchesPaper:
    """§5.2: the naive report recommends texture/shared memory,
    vectorized loads, __restrict__, and flags 6 I2F conversions."""

    @pytest.fixture(scope="class")
    def report(self):
        return GPUscout().analyze(build_heat("naive"), dry_run=True)

    def test_all_four_recommendations(self, report):
        assert report.has_finding("use_texture_memory")
        assert report.has_finding("use_shared_memory")
        assert report.has_finding("use_vectorized_loads")
        assert report.has_finding("use_restrict")

    def test_conversion_count_is_six(self, report):
        f = report.findings_for("datatype_conversions")[0]
        assert f.details["total"] == 6
        assert f.details["by_kind"] == {"I2F": 6}

    def test_restrict_variant_not_flagged_again(self):
        report = GPUscout().analyze(build_heat("restrict"), dry_run=True)
        assert not report.has_finding("use_restrict")

    def test_texture_variant_no_texture_advice(self):
        report = GPUscout().analyze(build_heat("texture"), dry_run=True)
        assert not report.has_finding("use_texture_memory")


class TestDynamicBehaviour:
    def test_texture_traffic_reported(self, sim):
        res, _, _ = _launch(sim, "texture")
        c = res.counters
        assert c.texture_instructions > 0
        assert c.texture_sectors > 0
        # some 2D locality: hits happen
        assert c.texture_hits > 0

    def test_naive_has_no_texture_traffic(self, sim):
        res, _, _ = _launch(sim, "naive")
        assert res.counters.texture_instructions == 0

    def test_tex_throttle_appears_with_texture(self, sim):
        from repro.gpu.stalls import StallReason

        res_naive, _, _ = _launch(sim, "naive")
        res_tex, _, _ = _launch(sim, "texture")
        naive_tt = res_naive.counters.stall_totals().get(
            StallReason.TEX_THROTTLE, 0)
        tex_tt = res_tex.counters.stall_totals().get(
            StallReason.TEX_THROTTLE, 0)
        assert naive_tt == 0
        assert tex_tt >= naive_tt
