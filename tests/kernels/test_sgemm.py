"""SGEMM case-study tests (§5.3)."""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.kernels.sgemm import (
    SGEMM_VARIANTS,
    TILE,
    build_sgemm,
    sgemm_args,
    sgemm_launch,
    sgemm_reference,
)

N = 32


def _run(sim, variant, n=N):
    ck = build_sgemm(variant)
    args = sgemm_args(n, n, n)
    res = sim.launch(ck, sgemm_launch(variant, n, n), args=args)
    return ck, res, args


@pytest.mark.parametrize("variant", SGEMM_VARIANTS)
class TestFunctional:
    def test_matches_reference(self, sim, variant):
        _, res, args = _run(sim, variant)
        out = res.read_buffer("c")
        ref = sgemm_reference(args)
        assert np.allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_alpha_beta(self, sim, variant):
        ck = build_sgemm(variant)
        args = sgemm_args(N, N, N, alpha=0.0, beta=1.0)
        c_before = args["c"].copy()
        res = sim.launch(ck, sgemm_launch(variant, N, N), args=args)
        # alpha=0, beta=1: C unchanged
        assert np.allclose(res.read_buffer("c"), c_before, atol=1e-6)


class TestStructure:
    def test_naive_loop_loads(self):
        ck = build_sgemm("naive")
        from repro.sass import build_cfg

        cfg = build_cfg(ck.program)
        assert len(cfg.loops) == 1
        loads = [i for i, ins in enumerate(ck.program)
                 if ins.opcode.is_global_load]
        in_loop = [i for i in loads if cfg.in_loop(i)]
        assert len(in_loop) == 2  # A and B element each iteration

    def test_shared_variant_uses_smem(self):
        ck = build_sgemm("shared")
        hist = ck.program.opcode_histogram()
        assert hist.get("LDS", 0) > 0
        assert hist.get("STS", 0) > 0
        assert hist.get("BAR", 0) == 2
        assert ck.program.shared_bytes == 2 * TILE * TILE * 4

    def test_shared_vec_uses_128bit(self):
        ck = build_sgemm("shared_vec")
        wide_global = [i for i in ck.program
                       if i.opcode.is_global_load
                       and i.opcode.width_bits == 128]
        assert wide_global
        wide_shared = [i for i in ck.program
                       if i.opcode.base in ("LDS", "STS")
                       and i.opcode.width_bits == 128]
        assert wide_shared

    def test_register_pressure_rises_with_vectorization(self):
        """Paper: 25 -> 72 registers; shape: monotone increase."""
        regs = {
            v: build_sgemm(v).allocation.registers_used
            for v in SGEMM_VARIANTS
        }
        assert regs["shared"] >= regs["naive"]
        assert regs["shared_vec"] > regs["shared"]

    def test_dims_must_be_tile_multiples(self):
        with pytest.raises(ValueError):
            sgemm_args(10, 32, 32)
        with pytest.raises(ValueError):
            sgemm_launch("naive", 10, 32)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_sgemm("turbo")


class TestAnalysisLadder:
    """§5.3's narrative: naive -> (restrict, shared memory);
    shared -> (vectorized loads); shared_vec -> pressure warning."""

    def test_naive_recommendations(self):
        report = GPUscout().analyze(build_sgemm("naive"), dry_run=True)
        assert report.has_finding("use_restrict")
        assert report.has_finding("use_shared_memory")
        shared = report.findings_for("use_shared_memory")
        assert any(f.in_loop for f in shared)

    def test_shared_newly_recommends_vectorize(self):
        report = GPUscout().analyze(build_sgemm("shared"), dry_run=True)
        warns = [f for f in report.findings_for("use_vectorized_loads")
                 if f.severity.value >= 1]
        assert warns

    def test_shared_warns_about_mio(self):
        report = GPUscout().analyze(build_sgemm("naive"), dry_run=True)
        from repro.gpu.stalls import StallReason

        f = report.findings_for("use_shared_memory")[0]
        assert StallReason.MIO_THROTTLE in f.stall_focus

    def test_shared_vec_reports_vector_reads_present(self):
        report = GPUscout().analyze(build_sgemm("shared_vec"), dry_run=True)
        infos = report.findings_for("use_vectorized_loads")
        assert any(f.title == "Vectorized load already in use" for f in infos)


class TestDynamicLadder:
    def test_shared_reduces_global_traffic(self, sim):
        _, res_naive, _ = _run(sim, "naive")
        _, res_shared, _ = _run(sim, "shared")
        assert (res_shared.counters.global_load_instructions
                < res_naive.counters.global_load_instructions)
        assert (res_shared.counters.global_load_sectors
                < res_naive.counters.global_load_sectors)

    def test_shared_introduces_mio_activity(self, sim):
        from repro.gpu.stalls import StallReason

        _, res_naive, _ = _run(sim, "naive")
        _, res_shared, _ = _run(sim, "shared")
        naive_tot = res_naive.counters.stall_totals()
        shared_tot = res_shared.counters.stall_totals()
        naive_mio = (naive_tot.get(StallReason.MIO_THROTTLE, 0)
                     + naive_tot.get(StallReason.SHORT_SCOREBOARD, 0))
        shared_mio = (shared_tot.get(StallReason.MIO_THROTTLE, 0)
                      + shared_tot.get(StallReason.SHORT_SCOREBOARD, 0))
        assert shared_mio > naive_mio

    def test_bank_conflict_metric_reasonable(self, sim):
        from repro.metrics import derive_metric

        _, res, _ = _run(sim, "shared")
        ways = derive_metric("derived__smem_ld_bank_conflict_ways", res)
        assert 1.0 <= ways <= 32.0
