"""Histogram workload tests (§4.4 shared-atomics case study)."""

import numpy as np
import pytest

from repro.core import GPUscout, Severity
from repro.gpu.stalls import StallReason
from repro.kernels.histogram import (
    HISTOGRAM_VARIANTS,
    NUM_BINS,
    build_histogram,
    histogram_args,
    histogram_launch,
    histogram_reference,
)

N_THREADS = 1024


@pytest.mark.parametrize("variant", HISTOGRAM_VARIANTS)
class TestFunctional:
    def test_exact_counts(self, sim, variant):
        ck = build_histogram(variant)
        args = histogram_args(N_THREADS)
        res = sim.launch(ck, histogram_launch(N_THREADS), args=args)
        got = res.read_buffer("bins")
        want = histogram_reference(args["data"])
        assert np.array_equal(got, want)

    def test_skewed_counts(self, sim, variant):
        ck = build_histogram(variant)
        args = histogram_args(N_THREADS, skew=0.9)
        res = sim.launch(ck, histogram_launch(N_THREADS), args=args)
        got = res.read_buffer("bins")
        assert np.array_equal(got, histogram_reference(args["data"]))
        assert got[0] > got[1:].max()  # the skew went to bin 0


class TestStructure:
    def test_global_variant_all_global_atomics(self):
        ck = build_histogram("global")
        hist = ck.program.opcode_histogram()
        assert hist.get("RED", 0) + hist.get("ATOM", 0) >= 1
        assert hist.get("ATOMS", 0) == 0

    def test_shared_variant_uses_shared_atomics(self):
        ck = build_histogram("shared")
        hist = ck.program.opcode_histogram()
        assert hist.get("ATOMS", 0) >= 1
        assert hist.get("BAR", 0) == 2
        assert ck.program.shared_bytes == NUM_BINS * 4

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_histogram("warp")

    def test_launch_shape_validation(self):
        with pytest.raises(ValueError):
            histogram_launch(100, block=256)


class TestAnalysis:
    def test_global_variant_flagged_critical(self):
        report = GPUscout().analyze(build_histogram("global"), dry_run=True)
        f = report.findings_for("use_shared_atomics")[0]
        assert f.severity is Severity.CRITICAL  # atomics inside a loop
        assert f.in_loop
        assert f.details["global_atomics_in_loop"] >= 1

    def test_shared_variant_only_info(self):
        report = GPUscout().analyze(build_histogram("shared"), dry_run=True)
        atomics = report.findings_for("use_shared_atomics")
        # the remaining global atomic (the merge) is outside the loop
        assert all(f.severity < Severity.CRITICAL for f in atomics)

    def test_ptx_crosscheck_agrees(self):
        report = GPUscout().analyze(build_histogram("shared"), dry_run=True)
        assert report.ptx_atomics is not None
        assert report.ptx_atomics.shared_atomics >= 1
        assert report.ptx_atomics.shared_in_loop >= 1


class TestDynamics:
    """The §4.4 narrative: shared atomics relieve the kernel-wide
    serialization; MIO pressure appears instead."""

    @pytest.fixture(scope="class")
    def results(self, sim):
        out = {}
        for variant in HISTOGRAM_VARIANTS:
            ck = build_histogram(variant)
            args = histogram_args(N_THREADS, skew=0.5)
            out[variant] = sim.launch(ck, histogram_launch(N_THREADS),
                                      args=args, functional_all=False)
        return out

    def test_shared_variant_faster(self, results):
        assert results["shared"].cycles < results["global"].cycles

    def test_global_atomic_count_drops(self, results):
        g = results["global"].counters.global_atomic_instructions
        s = results["shared"].counters.global_atomic_instructions
        assert s < g / 2

    def test_mio_activity_appears(self, results):
        def mio(res):
            tot = res.counters.stall_totals()
            return (tot.get(StallReason.MIO_THROTTLE, 0)
                    + tot.get(StallReason.SHORT_SCOREBOARD, 0))

        assert mio(results["shared"]) > mio(results["global"])

    def test_atomics_resolve_at_l2(self, results):
        c = results["global"].counters
        assert c.atomic_l2_hits + c.atomic_l2_misses > 0
        # §4.4: atomics usually 100 % L1 miss, resolved in L2
        assert c.l2_sectors_by_space.get("atomic", 0) > 0
