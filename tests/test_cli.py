"""CLI tests (argument handling and end-to-end invocations)."""

import pytest

from repro.cli import build_parser, main, resolve_kernel


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_kernel_and_sass_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "--kernel", "sgemm:naive", "--sass", "x.sass"]
            )


class TestResolveKernel:
    @pytest.mark.parametrize("spec", [
        "mixbench:sp:naive", "mixbench:dp:vec", "heat:naive",
        "heat:texture", "sgemm:naive", "sgemm:shared_vec",
    ])
    def test_known_specs(self, spec):
        ck, config, args, textures = resolve_kernel(spec, 64)
        assert ck.program is not None
        assert config.num_blocks >= 1
        assert args

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            resolve_kernel("quantum:naive", 64)


class TestMain:
    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "sgemm:naive" in out
        assert "heat:texture" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "--kernel", "mixbench:sp:naive"]) == 0
        out = capsys.readouterr().out
        assert "LDG.E.SYS" in out

    def test_disasm_with_source(self, capsys):
        assert main(["disasm", "--kernel", "sgemm:naive", "--source"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out

    def test_analyze_dry_run(self, capsys):
        assert main(["analyze", "--kernel", "mixbench:sp:naive",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert "vectorized" in out.lower()

    def test_analyze_dynamic_small(self, capsys):
        assert main(["analyze", "--kernel", "heat:naive", "--size", "64",
                     "--max-blocks", "2"]) == 0
        out = capsys.readouterr().out
        assert "Kernel-wide metric analysis" in out
        assert "[overhead]" in out

    def test_analyze_sass_file(self, tmp_path, capsys):
        sass = tmp_path / "k.sass"
        sass.write_text(
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R5, [R2+0x4] ;\n"
            "STG.E.SYS [R6], R4 ;\n"
            "EXIT ;\n"
        )
        assert main(["analyze", "--sass", str(sass), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out.lower()

    def test_sass_without_dry_run_warns(self, tmp_path, capsys):
        sass = tmp_path / "k.sass"
        sass.write_text("EXIT ;\n")
        assert main(["analyze", "--sass", str(sass)]) == 0
        err = capsys.readouterr().err
        assert "dry-run" in err


class TestValidate:
    def test_single_kernel_table(self, capsys):
        assert main(["validate", "--kernel", "mixbench:sp:naive",
                     "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "mixbench:sp:naive" in out
        assert "mismatches=0" in out
        assert "TOTAL" in out

    def test_json_to_stdout(self, capsys):
        import json

        assert main(["validate", "--kernel", "mixbench:sp:naive",
                     "--size", "64", "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["kernel"] == "mixbench:sp:naive"
        assert data[0]["ok"] is True
        assert data[0]["checks"]

    def test_verbose_lists_every_access(self, capsys):
        assert main(["validate", "--kernel", "mixbench:sp:naive",
                     "--size", "64", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "match" in out
        assert "LDG" in out

    def test_dry_run_report_shows_affine_footer(self, capsys):
        assert main(["analyze", "--kernel", "mixbench:sp:naive",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "[affine]" in out
        assert "proven coalesced" in out


class TestExitCodes:
    def test_mapping(self):
        from repro.cli import EXIT_INTERNAL, exit_code_for
        from repro.errors import (
            AnalysisError,
            CompileError,
            LaunchError,
            SassSyntaxError,
            SimulationError,
            SimulationTimeout,
        )

        assert exit_code_for(SassSyntaxError("bad line")) == 2
        assert exit_code_for(CompileError("no regs")) == 3
        assert exit_code_for(LaunchError("bad grid")) == 4
        assert exit_code_for(SimulationError("deadlock")) == 5
        assert exit_code_for(AnalysisError("no config")) == 6
        # a subclass maps like its closest listed ancestor
        assert exit_code_for(SimulationTimeout("over", limit="cycles")) == 5
        assert exit_code_for(RuntimeError("bug")) == EXIT_INTERNAL
        assert EXIT_INTERNAL == 70

    @pytest.mark.parametrize("exc,code", [
        ("SimulationError", 5),
        ("AnalysisError", 6),
        ("LaunchError", 4),
    ])
    def test_repro_error_exit_and_stderr(self, monkeypatch, capsys,
                                         exc, code):
        import repro.errors as errors_mod
        from repro.core import GPUscout

        def boom(self, *a, **k):
            raise getattr(errors_mod, exc)("synthetic failure")

        monkeypatch.setattr(GPUscout, "analyze", boom)
        rc = main(["analyze", "--kernel", "mixbench:sp:naive",
                   "--dry-run"])
        assert rc == code
        err = capsys.readouterr().err
        assert "gpuscout: error" in err
        assert "synthetic failure" in err

    def test_internal_error_exits_70(self, monkeypatch, capsys):
        from repro.core import GPUscout

        def boom(self, *a, **k):
            raise RuntimeError("unexpected bug")

        monkeypatch.setattr(GPUscout, "analyze", boom)
        rc = main(["analyze", "--kernel", "mixbench:sp:naive",
                   "--dry-run"])
        assert rc == 70
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "RuntimeError" in err

    def test_usage_errors_keep_argparse_exit(self):
        with pytest.raises(SystemExit):
            main([])


class TestHealthOutput:
    def test_degraded_run_prints_health_on_stderr(self, capsys):
        from repro.errors import SimulationError
        from repro.testing import fail_at

        with fail_at("simulator.launch", SimulationError, times=None):
            rc = main(["analyze", "--kernel", "mixbench:sp:naive",
                       "--size", "64", "--max-blocks", "2"])
        assert rc == 0  # degraded, not failed
        captured = capsys.readouterr()
        assert "[health]" in captured.err
        assert "mode: static" in captured.err
        assert "[health]" in captured.out  # report footer too

    def test_clean_run_prints_no_health(self, capsys):
        assert main(["analyze", "--kernel", "mixbench:sp:naive",
                     "--dry-run"]) == 0
        captured = capsys.readouterr()
        assert "[health]" not in captured.err
        assert "[health]" not in captured.out


class TestDeadline:
    def test_validate_deadline_exits_cleanly_with_partial_results(
            self, capsys):
        rc = main(["validate", "--kernel", "mixbench:sp:naive",
                   "--kernel", "reduction:shared", "--size", "64",
                   "--deadline", "0"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "SKIP" in captured.out
        assert "deadline hit" in captured.err
        assert "2 kernel(s)" in captured.err

    def test_validate_generous_deadline_validates_everything(self, capsys):
        rc = main(["validate", "--kernel", "mixbench:sp:naive",
                   "--size", "64", "--deadline", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SKIP" not in out
        assert "mismatches=0" in out

    def test_analyze_deadline_degrades_instead_of_failing(self, capsys):
        rc = main(["analyze", "--kernel", "mixbench:sp:naive",
                   "--size", "64", "--max-blocks", "2",
                   "--deadline", "0"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "mode: static" in captured.err
        assert "wall-clock" in captured.err + captured.out
