"""Unit tests for the metrics registry (``repro.obs.metrics``):
instruments, arm/disarm gating, snapshot/merge, quantiles, Prometheus
rendering (golden), and the exposition validator."""

import pathlib
import pickle

import pytest

from repro.obs import metrics as m

GOLDEN = pathlib.Path(__file__).parent / "golden" / \
    "metrics_exposition.txt"


@pytest.fixture
def armed():
    m.arm(True)
    yield
    m.arm(False)


def build_registry() -> m.MetricsRegistry:
    """A deterministic registry used by several tests (and the
    golden exposition)."""
    reg = m.MetricsRegistry()
    hits = reg.counter("demo_cache_hits_total", "Cache hits by tier",
                       tier="l1")
    hits.inc()
    hits.inc(4)
    reg.counter("demo_cache_hits_total", "Cache hits by tier",
                tier="l3").inc(2)
    reg.gauge("demo_inflight", "Requests in flight").set(3)
    h = reg.histogram("demo_latency_seconds", "Request latency",
                      buckets=(0.01, 0.1, 1.0), endpoint="/v1/analyze")
    h.observe(0.005, exemplar="req-a")
    h.observe(0.05)
    h.observe(0.5)
    h.observe(2.0, exemplar="req-b")
    return reg


class TestInstruments:
    def test_counter_monotonic(self, armed):
        reg = m.MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_requires_total_suffix(self):
        reg = m.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad_name")

    def test_get_or_create_returns_same_instrument(self):
        reg = m.MetricsRegistry()
        assert reg.counter("x_total", tier="l1") is \
            reg.counter("x_total", tier="l1")
        assert reg.counter("x_total", tier="l1") is not \
            reg.counter("x_total", tier="l2")

    def test_kind_conflict_rejected(self):
        reg = m.MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_histogram_buckets_and_sum(self, armed):
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.9):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.sum == pytest.approx(56.4)
        assert h.count == 4

    def test_histogram_boundary_lands_in_its_bucket(self, armed):
        # le is inclusive: an observation exactly on a bound counts
        # in that bound's bucket
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_exemplar_attaches_to_bucket(self, armed):
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5, exemplar="rid-1")
        h.observe(5.0, exemplar="rid-2")
        assert h.exemplars == {0: "rid-1", 1: "rid-2"}

    def test_thread_local_exemplar_context(self, armed):
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        m.set_exemplar("ctx-rid")
        try:
            h.observe(0.5)
        finally:
            m.set_exemplar(None)
        h.observe(0.6)
        assert h.exemplars == {0: "ctx-rid"}


class TestArming:
    def test_disarmed_records_nothing(self):
        m.arm(False)
        reg = m.MetricsRegistry()
        c = reg.counter("x_total")
        g = reg.gauge("g")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc()
        g.set(5)
        h.observe(0.5)
        assert c.value == 0 and g.value == 0 and h.count == 0

    def test_reset_zeroes_in_place(self, armed):
        reg = m.MetricsRegistry()
        c = reg.counter("x_total")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc(7)
        h.observe(0.5, exemplar="e")
        reg.reset()
        # the same instrument objects keep working after reset
        assert c.value == 0
        assert h.counts == [0, 0] and h.sum == 0 and not h.exemplars
        c.inc()
        assert c.value == 1


class TestSnapshotMerge:
    def test_snapshot_is_plain_and_picklable(self, armed):
        snap = build_registry().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_sums_counters_and_buckets(self, armed):
        a = build_registry().snapshot()
        b = build_registry().snapshot()
        merged = m.merge_snapshots([a, b])
        hits = merged["demo_cache_hits_total"]["series"]
        assert hits['tier="l1"'] == 10
        hist = merged["demo_latency_seconds"]["series"][
            'endpoint="/v1/analyze"']
        assert hist["counts"] == [2, 2, 2, 2]
        assert hist["sum"] == pytest.approx(2 * 2.555)
        # gauges add: per-process levels aggregate to the fleet level
        assert merged["demo_inflight"]["series"][""] == 6

    def test_merge_empty(self):
        assert m.merge_snapshots([]) == {}

    def test_merge_disjoint_series(self, armed):
        r1, r2 = m.MetricsRegistry(), m.MetricsRegistry()
        r1.counter("x_total", tier="a").inc()
        r2.counter("x_total", tier="b").inc(2)
        merged = m.merge_snapshots([r1.snapshot(), r2.snapshot()])
        assert merged["x_total"]["series"] == {
            'tier="a"': 1, 'tier="b"': 2}


class TestQuantiles:
    def test_quantile_interpolates(self, armed):
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)
        snap = reg.snapshot()["h"]["series"][""]
        # all mass in (10, 20]: median interpolates inside the bucket
        assert m.quantile(snap, 0.5) == pytest.approx(15.0)
        assert m.quantile(snap, 1.0) == pytest.approx(20.0)

    def test_quantile_empty_is_none(self, armed):
        reg = m.MetricsRegistry()
        reg.histogram("h", buckets=(1.0,))
        snap = reg.snapshot()["h"]["series"][""]
        assert m.quantile(snap, 0.5) is None

    def test_quantile_inf_bucket_clamps(self, armed):
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(100.0)
        snap = reg.snapshot()["h"]["series"][""]
        assert m.quantile(snap, 0.99) == pytest.approx(1.0)

    def test_summarize_shape(self, armed):
        digest = m.summarize(build_registry().snapshot())
        hist = digest["histograms"][
            'demo_latency_seconds{endpoint="/v1/analyze"}']
        assert hist["count"] == 4
        assert hist["p50"] is not None and hist["p99"] is not None
        assert hist["exemplars"]
        assert digest["counters"][
            'demo_cache_hits_total{tier="l1"}'] == 5


class TestExposition:
    def test_golden(self, armed):
        text = m.render_prometheus(build_registry().snapshot())
        assert text == GOLDEN.read_text()

    def test_render_validates(self, armed):
        text = m.render_prometheus(build_registry().snapshot())
        assert m.validate_exposition(text) == []

    def test_live_registry_render_validates(self, armed):
        # the real process registry (with whatever the suite recorded)
        assert m.validate_exposition(
            m.render_prometheus(m.REGISTRY.snapshot())) == []

    def test_label_escaping(self, armed):
        reg = m.MetricsRegistry()
        reg.counter("x_total", label='quo"te\nnl').inc()
        text = m.render_prometheus(reg.snapshot())
        assert '\\"' in text and "\\n" in text
        assert m.validate_exposition(text) == []


class TestValidator:
    def test_rejects_garbage_sample(self):
        assert m.validate_exposition("not a metric line at all{\n")

    def test_rejects_sample_before_type(self):
        text = "x_total 1\n# TYPE x_total counter\n"
        assert any("before its TYPE" in p
                   for p in m.validate_exposition(text))

    def test_rejects_counter_without_total(self):
        text = "# TYPE x counter\nx 1\n"
        assert any("_total" in p for p in m.validate_exposition(text))

    def test_rejects_negative_counter(self):
        text = "# TYPE x_total counter\nx_total -1\n"
        assert any("negative" in p for p in m.validate_exposition(text))

    def test_rejects_unordered_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="5"} 1\n'
                'h_bucket{le="1"} 2\n'
                'h_bucket{le="+Inf"} 2\n'
                "h_sum 3\nh_count 2\n")
        assert any("out of order" in p
                   for p in m.validate_exposition(text))

    def test_rejects_dropping_cumulative_counts(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 2\n'
                'h_bucket{le="5"} 1\n'
                'h_bucket{le="+Inf"} 2\n'
                "h_sum 3\nh_count 2\n")
        assert any("drops" in p for p in m.validate_exposition(text))

    def test_rejects_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                "h_sum 1\nh_count 1\n")
        assert any("+Inf" in p for p in m.validate_exposition(text))

    def test_rejects_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 2\n'
                "h_sum 1\nh_count 3\n")
        assert any("!= count" in p for p in m.validate_exposition(text))

    def test_rejects_interleaved_families(self):
        text = ("# TYPE a_total counter\n# TYPE b_total counter\n"
                "a_total 1\nb_total 1\na_total{x=\"y\"} 1\n")
        assert any("contiguous" in p
                   for p in m.validate_exposition(text))

    def test_footer_renders_active_series(self, armed):
        reg = build_registry()
        lines = m.render_footer(reg.snapshot())
        assert lines[1].startswith("[metrics]")
        assert any("demo_cache_hits_total" in line for line in lines)

    def test_footer_empty_when_disarmed(self):
        m.arm(False)
        assert m.render_footer() == []
