"""Property tests for the snapshot/merge protocol (Hypothesis).

The worker pool merges per-worker registry snapshots in whatever order
results arrive, possibly after pickling across the fork boundary — so
merge must be associative and commutative, and a merged histogram must
equal the one serial observation would have produced."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics as m

BUCKETS = (0.01, 0.1, 1.0, 10.0)

observations = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    max_size=30)

# a "workload" = per-worker lists of (tier counter incs, observations)
workloads = st.lists(
    st.tuples(st.lists(st.sampled_from(["l1", "l2", "l3"]), max_size=10),
              observations),
    min_size=1, max_size=4)


def snapshot_for(work):
    """Build one worker's registry snapshot from its workload."""
    tiers, obs = work
    reg = m.MetricsRegistry()
    for tier in tiers:
        reg.counter("cache_hits_total", tier=tier).inc()
    h = reg.histogram("latency_seconds", buckets=BUCKETS)
    for v in obs:
        h.observe(v)
    return reg.snapshot()


def canon(snap):
    """Merged snapshots compare by value; exemplar dicts may differ in
    insertion order across merge orders, so normalise via pickle-free
    deep sort."""
    return repr(sorted(
        (name, fam["type"],
         sorted((k, v if not isinstance(v, dict)
                 else (tuple(v["buckets"]), tuple(v["counts"]),
                       round(v["sum"], 9),
                       tuple(sorted(v["exemplars"].items()))))
                for k, v in fam["series"].items()))
        for name, fam in snap.items()))


@settings(max_examples=60, deadline=None)
@given(workloads)
def test_merge_commutative(works):
    m.arm(True)
    try:
        snaps = [snapshot_for(w) for w in works]
        forward = m.merge_snapshots(snaps)
        backward = m.merge_snapshots(list(reversed(snaps)))
        assert canon(forward) == canon(backward)
    finally:
        m.arm(False)


@settings(max_examples=60, deadline=None)
@given(workloads, st.integers(min_value=0, max_value=10))
def test_merge_associative(works, split_seed):
    m.arm(True)
    try:
        snaps = [snapshot_for(w) for w in works]
        split = split_seed % (len(snaps) + 1)
        flat = m.merge_snapshots(snaps)
        staged = m.merge_snapshots(
            [m.merge_snapshots(snaps[:split]),
             m.merge_snapshots(snaps[split:])])
        assert canon(flat) == canon(staged)
    finally:
        m.arm(False)


@settings(max_examples=60, deadline=None)
@given(workloads)
def test_merged_equals_serial_observation(works):
    """Per-worker snapshots merged == one registry observing the whole
    stream serially: bucket counts, total count, and sum all match."""
    m.arm(True)
    try:
        merged = m.merge_snapshots([snapshot_for(w) for w in works])

        serial = m.MetricsRegistry()
        h = serial.histogram("latency_seconds", buckets=BUCKETS)
        for tiers, obs in works:
            for tier in tiers:
                serial.counter("cache_hits_total", tier=tier).inc()
            for v in obs:
                h.observe(v)
        expect = serial.snapshot()

        got_h = merged["latency_seconds"]["series"][""]
        want_h = expect["latency_seconds"]["series"][""]
        assert got_h["counts"] == want_h["counts"]
        assert abs(got_h["sum"] - want_h["sum"]) < 1e-6
        absent = {"series": {}}
        assert merged.get("cache_hits_total", absent)["series"] == \
            expect.get("cache_hits_total", absent)["series"]
    finally:
        m.arm(False)


@settings(max_examples=40, deadline=None)
@given(workloads)
def test_merge_survives_pickle_round_trip(works):
    """Snapshots cross the fork result channel pickled; merging the
    round-tripped copies must equal merging the originals."""
    m.arm(True)
    try:
        snaps = [snapshot_for(w) for w in works]
        wired = [pickle.loads(pickle.dumps(s)) for s in snaps]
        assert canon(m.merge_snapshots(wired)) == \
            canon(m.merge_snapshots(snaps))
    finally:
        m.arm(False)


@settings(max_examples=40, deadline=None)
@given(workloads)
def test_merged_exposition_stays_valid(works):
    """Whatever the merge produces must still render to a structurally
    valid Prometheus exposition."""
    m.arm(True)
    try:
        merged = m.merge_snapshots([snapshot_for(w) for w in works])
        assert m.validate_exposition(m.render_prometheus(merged)) == []
    finally:
        m.arm(False)
