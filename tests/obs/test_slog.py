"""Structured logger (``repro.obs.slog``): mode gating, JSON/text
record shapes, level filtering, and resilience to dead streams."""

import io
import json

import pytest

from repro.obs import slog


@pytest.fixture(autouse=True)
def restore():
    yield
    slog.configure(mode="off", level="info", stream=io.StringIO())


def capture(mode="json", level="debug"):
    buf = io.StringIO()
    slog.configure(mode=mode, level=level, stream=buf)
    return buf


class TestModes:
    def test_off_emits_nothing(self):
        buf = capture(mode="off")
        slog.get_logger("t").error("boom", detail="x")
        assert buf.getvalue() == ""

    def test_json_one_object_per_line(self):
        buf = capture()
        log = slog.get_logger("serve.http")
        log.info("http.access", method="POST", status=200)
        log.warning("pool.respawn", worker=1)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["level"] == "info"
        assert first["logger"] == "serve.http"
        assert first["event"] == "http.access"
        assert first["method"] == "POST" and first["status"] == 200
        assert isinstance(first["ts"], float)
        assert json.loads(lines[1])["worker"] == 1

    def test_json_serializes_arbitrary_values(self):
        buf = capture()
        slog.get_logger("t").info("evt", obj=object())
        assert json.loads(buf.getvalue())  # default=str keeps it valid

    def test_text_mode_renders_kv(self):
        buf = capture(mode="text")
        slog.get_logger("t").warning("pool.respawn", worker=1,
                                     reason="exit code 1")
        line = buf.getvalue()
        assert line.startswith("WARNING")
        assert "pool.respawn" in line and "worker=1" in line


class TestLevels:
    def test_below_threshold_dropped(self):
        buf = capture(level="warning")
        log = slog.get_logger("t")
        log.debug("nope")
        log.info("nope")
        log.warning("yes")
        log.error("yes")
        assert len(buf.getvalue().splitlines()) == 2

    def test_bad_mode_and_level_rejected(self):
        with pytest.raises(ValueError):
            slog.configure(mode="verbose")
        with pytest.raises(ValueError):
            slog.configure(level="trace")

    def test_mode_accessor(self):
        capture(mode="text")
        assert slog.mode() == "text"


class TestRobustness:
    def test_closed_stream_is_swallowed(self):
        buf = capture()
        buf.close()
        slog.get_logger("t").info("evt")  # must not raise

    def test_get_logger_cached(self):
        assert slog.get_logger("a.b") is slog.get_logger("a.b")
