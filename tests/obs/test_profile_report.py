"""The self-profile through the renderers: [prof] footer, HTML
sections, schema JSON keys, CLI flags."""

import json

import pytest

from repro.cli import main, resolve_kernel
from repro.core import GPUscout
from repro.core.jsonout import SCHEMA_VERSION, report_to_dict
from repro.obs import TimelineCapture

ENGINE_STAGES = {"parse", "static", "launch", "sampling", "metrics",
                 "evaluate"}


@pytest.fixture(scope="module")
def full_report():
    ck, config, args, textures = resolve_kernel("sgemm:naive", 64, 4)
    return GPUscout().analyze(ck, config, args, textures=textures,
                              max_blocks=2)


class TestProfileCoverage:
    def test_profile_covers_every_engine_stage(self, full_report):
        assert set(full_report.profile.stage_totals()) == ENGINE_STAGES

    def test_nested_detail_spans_present(self, full_report):
        names = {s.name for s in full_report.profile.spans}
        assert "static:affine" in names
        assert "evaluate:heatmap" in names
        assert any(n.startswith("launch:") for n in names)

    def test_dry_run_profiles_static_stages_only(self):
        ck, _, _, _ = resolve_kernel("sgemm:naive", 64, 4)
        report = GPUscout().analyze(ck, dry_run=True)
        stages = set(report.profile.stage_totals())
        assert stages == {"parse", "static"}


class TestRenderers:
    def test_prof_footer_off_by_default(self, full_report):
        assert "[prof]" not in full_report.render()

    def test_prof_footer_lists_stages_and_hot_lines(self, full_report):
        text = full_report.render(profile=True)
        assert "[prof] pipeline wall time" in text
        assert "hottest source lines" in text
        assert "launch" in text

    def test_html_has_profile_table(self, full_report):
        html = full_report.render_html()
        assert "Pipeline self-profile" in html

    def test_json_schema_keys(self, full_report):
        assert SCHEMA_VERSION == 5  # v5 added per-finding stall blame
        data = json.loads(json.dumps(report_to_dict(full_report)))
        assert data["schema_version"] == 5
        assert set(data["profile"]["stages"]) == ENGINE_STAGES
        assert data["profile"]["total_s"] > 0
        assert data["heatmap"]["lines"]
        assert "trace_path" not in data  # only set when --trace ran


class TestCLI:
    def test_trace_and_profile_flags(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        out = tmp_path / "r.json"
        rc = main(["analyze", "--kernel", "sgemm:naive", "--size", "64",
                   "--max-blocks", "2", "--trace", str(trace),
                   "--profile", "--json", str(out)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "[prof]" in captured.out
        assert "perfetto" in captured.err.lower()
        from repro.obs import validate_chrome_trace

        data = json.loads(trace.read_text())
        assert validate_chrome_trace(data) == []
        # per-warp stall slices and >= 2 counter tracks (acceptance)
        cats = {ev.get("cat") for ev in data["traceEvents"]}
        assert "stall" in cats and "issue" in cats
        tracks = {ev["name"] for ev in data["traceEvents"]
                  if ev["ph"] == "C"}
        assert len(tracks) >= 2
        report = json.loads(out.read_text())
        assert report["trace_path"] == str(trace)

    def test_trace_with_dry_run_warns_and_writes_nothing(
            self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        rc = main(["analyze", "--kernel", "sgemm:naive", "--size", "64",
                   "--dry-run", "--trace", str(trace)])
        assert rc == 0
        assert not trace.exists()
        assert "--trace needs a simulated launch" in capsys.readouterr().err


class TestBitIdentityThroughEngine:
    def test_analyze_trace_on_off_same_results(self):
        """Acceptance: the full engine path (not just the simulator)
        yields identical cycles/counters with and without --trace."""
        reports = []
        for cap in (None, TimelineCapture()):
            ck, config, args, textures = resolve_kernel(
                "histogram:global", 256, 4)
            reports.append(
                GPUscout().analyze(ck, config, args, textures=textures,
                                   max_blocks=2, trace=cap)
            )
        bare, traced = reports
        assert bare.launch.cycles == traced.launch.cycles
        assert bare.launch.counters == traced.launch.counters
        assert bare.heatmap.to_dict() == traced.heatmap.to_dict()
