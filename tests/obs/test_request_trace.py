"""Request-trace stitching (``repro.obs.request_trace``): server spans
plus worker engine spans become one Chrome trace that passes
``validate_chrome_trace``."""

import json

import pytest

from repro.obs.chrometrace import validate_chrome_trace
from repro.obs.request_trace import (build_request_trace,
                                     write_request_trace)
from repro.obs.spans import Span

RID = "deadbeefcafe0123"


def server_spans():
    return [
        Span(name="validate", start_ns=1_000, end_ns=2_000, depth=0),
        Span(name="cache:probe", start_ns=2_000, end_ns=3_000, depth=0),
        Span(name="queue", start_ns=3_000, end_ns=5_000, depth=1),
        Span(name="dispatch", start_ns=3_000, end_ns=9_000, depth=0),
    ]


def worker_spans():
    # the wire form: plain dicts out of report["profile"]["spans"]
    return [
        {"name": "parse", "start_ns": 5_000, "elapsed_ns": 1_000,
         "depth": 0},
        {"name": "launch", "start_ns": 6_000, "elapsed_ns": 2_500,
         "depth": 0},
    ]


class TestBuild:
    def test_two_process_groups(self):
        data = build_request_trace(RID, server_spans(), worker_spans(),
                                   worker_id=1,
                                   endpoint="/v1/analyze",
                                   kernel="reduction:warp")
        names = {e["args"]["name"] for e in data["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"server", "worker 1"}
        assert data["metadata"]["request_id"] == RID
        assert data["metadata"]["endpoint"] == "/v1/analyze"
        assert data["metadata"]["kernel"] == "reduction:warp"

    def test_every_slice_carries_the_request_id(self):
        data = build_request_trace(RID, server_spans(), worker_spans(),
                                   worker_id=0)
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 6
        assert all(e["args"]["request_id"] == RID for e in slices)

    def test_shared_clock_relative_timestamps(self):
        data = build_request_trace(RID, server_spans(), worker_spans(),
                                   worker_id=0)
        slices = {(e["pid"], e["name"]): e
                  for e in data["traceEvents"] if e["ph"] == "X"}
        # t0 = earliest span (validate @ 1000 ns); worker parse @ 5000
        # ns renders 4 µs in, on the same timeline — no offset applied
        assert slices[(0, "validate")]["ts"] == 0.0
        assert slices[(1, "parse")]["ts"] == pytest.approx(4.0)
        assert slices[(1, "launch")]["dur"] == pytest.approx(2.5)

    def test_inline_engine_group(self):
        data = build_request_trace(RID, server_spans(), worker_spans(),
                                   worker_id=None)
        names = {e["args"]["name"] for e in data["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"server", "engine (inline)"}

    def test_server_only(self):
        data = build_request_trace(RID, server_spans())
        pids = {e["pid"] for e in data["traceEvents"]}
        assert pids == {0}

    def test_empty_request(self):
        data = build_request_trace(RID, [])
        assert validate_chrome_trace(data) == []


class TestValidation:
    def test_passes_chrome_trace_validator(self):
        data = build_request_trace(RID, server_spans(), worker_spans(),
                                   worker_id=1)
        assert validate_chrome_trace(data) == []

    def test_round_trips_through_json(self, tmp_path):
        data = build_request_trace(RID, server_spans(), worker_spans(),
                                   worker_id=0)
        path = write_request_trace(str(tmp_path / "traces"), RID, data)
        assert path.endswith(f"{RID}.json")
        loaded = json.loads(open(path).read())
        assert validate_chrome_trace(loaded) == []
        assert loaded == json.loads(json.dumps(data))
