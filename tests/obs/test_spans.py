"""Unit tests for the span tracer (``repro.obs.spans``)."""

import pytest

from repro.obs.spans import NULL_PROFILER, Profiler


class TestSpanNesting:
    def test_depths_follow_the_stack(self):
        prof = Profiler()
        with prof.span("outer"):
            with prof.span("outer:inner"):
                with prof.span("outer:deeper"):
                    pass
        depths = {s.name: s.depth for s in prof.spans}
        assert depths == {"outer": 0, "outer:inner": 1, "outer:deeper": 2}

    def test_spans_close_in_order(self):
        prof = Profiler()
        with prof.span("a"):
            assert prof.current().name == "a"
            with prof.span("a:b"):
                assert prof.current().name == "a:b"
            assert prof.current().name == "a"
        assert prof.current() is None
        assert all(s.end_ns is not None for s in prof.spans)

    def test_elapsed_is_positive_and_nested_fits_in_parent(self):
        prof = Profiler()
        with prof.span("outer"):
            with prof.span("outer:inner"):
                sum(range(1000))
        outer, inner = prof.spans
        assert inner.elapsed_ns > 0
        assert outer.elapsed_ns >= inner.elapsed_ns

    def test_span_closes_on_exception(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.span("doomed"):
                raise ValueError("boom")
        (span,) = prof.spans
        assert span.end_ns is not None
        assert prof.current() is None


class TestStageAggregation:
    def test_stage_totals_group_by_prefix(self):
        prof = Profiler()
        with prof.span("static"):
            with prof.span("static:vectorize"):
                pass
            with prof.span("static:affine"):
                pass
        with prof.span("launch"):
            pass
        totals = prof.stage_totals()
        # depth-0 only: the nested static:* spans are not double-counted
        assert set(totals) == {"static", "launch"}
        static_span = prof.spans[0]
        assert totals["static"] == pytest.approx(static_span.elapsed_s)

    def test_repeated_stage_sums(self):
        prof = Profiler()
        with prof.span("launch"):
            pass
        with prof.span("launch"):
            pass
        assert set(prof.stage_totals()) == {"launch"}
        assert prof.total_seconds() == pytest.approx(
            sum(s.elapsed_s for s in prof.spans)
        )

    def test_top_spans_ranked_by_elapsed(self):
        prof = Profiler()
        with prof.span("fast"):
            pass
        with prof.span("slow"):
            sum(range(50_000))
        names = [s.name for s in prof.top_spans(2)]
        assert names[0] == "slow"

    def test_stage_property(self):
        prof = Profiler()
        with prof.span("launch:timed-trace"):
            pass
        assert prof.spans[0].stage == "launch"


class TestCounters:
    def test_count_attaches_to_innermost_span(self):
        prof = Profiler()
        with prof.span("launch"):
            with prof.span("launch:timed-trace"):
                prof.count("rung", "timed-trace")
        assert prof.spans[1].counters == {"rung": "timed-trace"}
        assert prof.spans[0].counters == {}

    def test_count_without_open_span_is_dropped(self):
        prof = Profiler()
        prof.count("orphan", 1)
        assert prof.spans == []


class TestDisabled:
    def test_disabled_profiler_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.span("ignored"):
            prof.count("also", "ignored")
        assert prof.spans == []
        assert prof.current() is None
        assert prof.stage_totals() == {}

    def test_null_profiler_shares_one_context(self):
        ctx1 = NULL_PROFILER.span("a")
        ctx2 = NULL_PROFILER.span("b")
        assert ctx1 is ctx2


class TestSerialization:
    def test_to_dict_shape(self):
        prof = Profiler()
        with prof.span("static"):
            prof.count("findings", 3)
        d = prof.to_dict()
        assert set(d) == {"stages", "total_s", "spans"}
        (span,) = d["spans"]
        assert span["name"] == "static"
        assert span["depth"] == 0
        assert span["counters"] == {"findings": 3}
        assert span["elapsed_ns"] >= 0
        import json

        json.dumps(d)  # JSON-clean
