"""Unit tests for the source-line heatmap attribution rules."""

import pytest

from repro.gpu.stalls import StallReason
from repro.obs.heatmap import build_heatmap


class _Ins:
    def __init__(self, line):
        self.line = line


class _Program:
    def __init__(self, lines):
        self._ins = [_Ins(line) for line in lines]

    def __len__(self):
        return len(self._ins)

    def __getitem__(self, pc):
        return self._ins[pc]


class _Counters:
    def __init__(self, stall_cycles, inst_by_pc=None):
        self.stall_cycles = stall_cycles
        self.inst_by_pc = inst_by_pc or {}


def test_stalls_roll_up_the_line_table():
    program = _Program([3, 3, 5, None])
    counters = _Counters({
        (0, StallReason.LONG_SCOREBOARD): 100.0,
        (1, StallReason.WAIT): 50.0,
        (2, StallReason.LG_THROTTLE): 30.0,
        (3, StallReason.WAIT): 20.0,  # no line info
    })
    hm = build_heatmap(program, counters)
    assert set(hm.lines) == {3, 5}
    assert hm.lines[3].stall_cycles == pytest.approx(150.0)
    assert hm.lines[3].pcs == [0, 1]
    assert hm.lines[5].stall_cycles == pytest.approx(30.0)
    assert hm.unattributed_cycles == pytest.approx(20.0)
    assert hm.total_stall_cycles == pytest.approx(200.0)


def test_selected_pseudo_stalls_excluded():
    program = _Program([1])
    counters = _Counters({
        (0, StallReason.SELECTED): 999.0,
        (0, StallReason.WAIT): 10.0,
    })
    hm = build_heatmap(program, counters)
    assert hm.lines[1].stall_cycles == pytest.approx(10.0)
    assert StallReason.SELECTED not in hm.lines[1].by_reason


def test_share_is_fraction_of_attributed_cycles():
    program = _Program([1, 2, None])
    counters = _Counters({
        (0, StallReason.WAIT): 75.0,
        (1, StallReason.WAIT): 25.0,
        (2, StallReason.WAIT): 100.0,  # unattributed: not in shares
    })
    hm = build_heatmap(program, counters)
    assert hm.lines[1].share == pytest.approx(0.75)
    assert hm.lines[2].share == pytest.approx(0.25)
    assert sum(lh.share for lh in hm.lines.values()) == pytest.approx(1.0)
    assert hm.share_for(1) == pytest.approx(0.75)
    assert hm.share_for(999) == 0.0


def test_dominant_reason_and_top_ordering():
    program = _Program([1, 2])
    counters = _Counters({
        (0, StallReason.LONG_SCOREBOARD): 80.0,
        (0, StallReason.WAIT): 20.0,
        (1, StallReason.BARRIER): 300.0,
    })
    hm = build_heatmap(program, counters)
    assert hm.lines[1].dominant() is StallReason.LONG_SCOREBOARD
    assert [lh.line for lh in hm.top(2)] == [2, 1]


def test_issue_counts_attach_without_inventing_stalls():
    program = _Program([7])
    counters = _Counters({}, inst_by_pc={0: 42})
    hm = build_heatmap(program, counters)
    assert hm.lines[7].issues == 42
    assert hm.lines[7].stall_cycles == 0.0
    assert hm.total_stall_cycles == 0.0


def test_to_dict_is_json_clean():
    import json

    program = _Program([1])
    counters = _Counters({(0, StallReason.WAIT): 5.0}, inst_by_pc={0: 3})
    d = build_heatmap(program, counters).to_dict()
    json.dumps(d)
    assert d["lines"]["1"]["by_reason"] == {"stalled_wait": 5.0}
    assert d["lines"]["1"]["issues"] == 3


@pytest.mark.parametrize("spec", ["sgemm:naive", "histogram:global"])
def test_case_study_kernels_produce_heatmaps(spec):
    """Acceptance: the HTML report shows a heat-ramped source listing
    for at least sgemm:naive and histogram:global."""
    from repro.cli import resolve_kernel
    from repro.core import GPUscout

    ck, config, args, textures = resolve_kernel(spec, 64, 4)
    report = GPUscout().analyze(ck, config, args, textures=textures,
                                max_blocks=2)
    assert report.heatmap is not None and report.heatmap.lines
    hottest = report.heatmap.top(1)[0]
    assert hottest.share > 0
    html = report.render_html()
    assert "Source-line heatmap" in html
    assert "rgba(" in html  # at least one heat-ramped source line
