"""Chrome Trace exporter: golden-file stability and the structural
validator (every B has an E, ts monotone per thread, declared
pids/tids)."""

import json
import pathlib

import numpy as np
import pytest

from repro.gpu import GPUSpec, LaunchConfig, Simulator
from repro.obs import (
    TimelineCapture,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

from tests.conftest import build_saxpy

GOLDEN = pathlib.Path(__file__).parent / "golden" / "saxpy_trace_names.json"


@pytest.fixture(scope="module")
def saxpy_trace():
    ck = build_saxpy()
    n = 512
    capture = TimelineCapture(counter_stride=8)
    # pin the trace-driven path so the golden event names are stable
    # across the REPRO_FAST matrix legs
    sim = Simulator(GPUSpec.small(1), fast=True)
    res = sim.launch(
        ck, LaunchConfig(grid=(4, 1), block=(128, 1)),
        args={"x": np.arange(n, dtype=np.float32),
              "y": np.ones(n, dtype=np.float32), "a": 2.0, "n": n},
        max_blocks=2, trace=capture,
    )
    data = to_chrome_trace(capture, program=ck.program, spec=res.spec,
                           kernel="saxpy")
    return capture, data


class TestExportShape:
    def test_validator_passes(self, saxpy_trace):
        _, data = saxpy_trace
        assert validate_chrome_trace(data) == []

    def test_golden_names_categories_phases(self, saxpy_trace):
        """The distinct (ph, cat, name) triples are a stable public
        surface — Perfetto queries and dashboards key on them.  The
        golden file pins the saxpy export; regenerate it deliberately
        when the exporter's naming changes."""
        _, data = saxpy_trace
        triples = sorted({
            (ev["ph"], ev.get("cat", ""), ev["name"])
            for ev in data["traceEvents"]
        })
        golden = json.loads(GOLDEN.read_text())
        assert [list(t) for t in triples] == golden

    def test_per_warp_threads_declared(self, saxpy_trace):
        capture, data = saxpy_trace
        thread_names = [
            ev["args"]["name"] for ev in data["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        ]
        # one thread per (block, warp), plus the waves annotation thread
        assert len(thread_names) == len(capture.warps()) + 1
        assert "block 0 / warp 0" in thread_names
        assert "waves" in thread_names

    def test_stall_slices_precede_their_issue(self, saxpy_trace):
        _, data = saxpy_trace
        stalls = [ev for ev in data["traceEvents"]
                  if ev.get("cat") == "stall"]
        assert stalls, "no stall slices in the saxpy trace"
        for ev in stalls:
            assert ev["ph"] == "X"
            assert ev["dur"] > 0
            assert ev["name"].startswith("stalled_")

    def test_at_least_two_counter_tracks(self, saxpy_trace):
        _, data = saxpy_trace
        tracks = {ev["name"] for ev in data["traceEvents"]
                  if ev["ph"] == "C"}
        assert len(tracks) >= 2
        assert "lsu backlog" in tracks
        assert "resident warps" in tracks

    def test_metadata_records_the_ts_convention(self, saxpy_trace):
        _, data = saxpy_trace
        assert "cycle" in data["metadata"]["ts_unit"]
        assert data["metadata"]["kernel"] == "saxpy"
        assert data["metadata"]["truncated"] is False

    def test_source_line_attribution_in_args(self, saxpy_trace):
        _, data = saxpy_trace
        issue_args = [ev["args"] for ev in data["traceEvents"]
                      if ev.get("cat") == "issue"]
        assert all("pc" in a for a in issue_args)
        assert any("line" in a for a in issue_args)

    def test_write_round_trips(self, saxpy_trace, tmp_path):
        capture, data = saxpy_trace
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), capture, kernel="saxpy")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert validate_chrome_trace(loaded) == []


class TestValidator:
    def _base(self, *events):
        return {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "ts": 0, "args": {"name": "SM 0"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "ts": 0, "args": {"name": "warp"}},
            *events,
        ]}

    def test_clean_trace_passes(self):
        data = self._base(
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 1},
            {"name": "a", "ph": "E", "pid": 0, "tid": 0, "ts": 2},
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 3, "dur": 1},
        )
        assert validate_chrome_trace(data) == []

    def test_top_level_must_be_object_with_event_list(self):
        assert validate_chrome_trace([]) == [
            "top-level value is not an object"]
        assert validate_chrome_trace({}) == [
            "missing or non-list 'traceEvents'"]

    def test_unclosed_b_reported(self):
        data = self._base(
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 1},
        )
        assert any("unclosed 'B'" in p for p in validate_chrome_trace(data))

    def test_e_without_b_reported(self):
        data = self._base(
            {"name": "a", "ph": "E", "pid": 0, "tid": 0, "ts": 1},
        )
        assert any("no open 'B'" in p for p in validate_chrome_trace(data))

    def test_backwards_ts_reported(self):
        data = self._base(
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 1},
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 2, "dur": 1},
        )
        assert any("goes backwards" in p for p in validate_chrome_trace(data))

    def test_backwards_ts_on_other_thread_is_fine(self):
        data = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "ts": 0, "args": {"name": "SM 0"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "ts": 0, "args": {"name": "w0"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "ts": 0, "args": {"name": "w1"}},
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 1},
            {"name": "x", "ph": "X", "pid": 0, "tid": 1, "ts": 2, "dur": 1},
        ]}
        assert validate_chrome_trace(data) == []

    def test_undeclared_pid_and_tid_reported(self):
        data = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 7, "tid": 3, "ts": 1, "dur": 1},
        ]}
        problems = validate_chrome_trace(data)
        assert any("pid 7" in p for p in problems)
        assert any("not declared via thread_name" in p for p in problems)

    def test_missing_ts_and_negative_dur_reported(self):
        data = self._base(
            {"name": "x", "ph": "X", "pid": 0, "tid": 0},
            {"name": "y", "ph": "X", "pid": 0, "tid": 0, "ts": 1,
             "dur": -2},
        )
        problems = validate_chrome_trace(data)
        assert any("missing ts" in p for p in problems)
        assert any("negative duration" in p for p in problems)

    def test_unknown_phase_reported(self):
        data = self._base(
            {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 1},
        )
        assert any("unknown phase" in p for p in validate_chrome_trace(data))
