"""Trace-on vs trace-off bit-identity.

The timeline capture is strictly passive, so attaching it must change
nothing observable: cycles, the full ``Counters`` block, device memory
and the PC-sample stream are compared over the timed-equivalence kernel
subset, on both timed paths.
"""

import numpy as np
import pytest

from repro.cli import resolve_kernel
from repro.gpu.simulator import Simulator
from repro.obs import TimelineCapture
from repro.sampling.pcsampler import PCSampler

# one kernel per case-study family, covering the trace-driven path,
# the legacy path and the float-atomic (trace-ineligible) fallback
CASES = [
    ("sgemm:naive", 64),
    ("sgemm:shared", 64),
    ("heat:naive", 64),
    ("mixbench:sp:vec", 512),
    ("histogram:shared", 1024),
    ("reduction:atomic", 512),
]


def _run(spec, size, fast, capture=None):
    ck, config, args, textures = resolve_kernel(spec, size, 4)
    sim = Simulator(fast=fast)
    res = sim.launch(ck, config, args, textures=textures,
                     max_blocks=2, functional_all=True, trace=capture)
    return res


@pytest.mark.parametrize("fast", [False, True], ids=["legacy", "trace"])
@pytest.mark.parametrize("spec,size", CASES,
                         ids=[f"{s}-{n}" for s, n in CASES])
def test_capture_changes_nothing_observable(spec, size, fast):
    bare = _run(spec, size, fast)
    capture = TimelineCapture()
    traced = _run(spec, size, fast, capture=capture)

    assert bare.cycles == traced.cycles, (
        f"{spec}: cycle counts differ with capture attached"
    )
    assert bare.counters == traced.counters, (
        f"{spec}: counters differ with capture attached"
    )
    assert np.array_equal(bare.memory.buf, traced.memory.buf), (
        f"{spec}: device memory differs with capture attached"
    )
    sampler = PCSampler(period_cycles=128)
    assert sampler.sample(bare).samples == sampler.sample(traced).samples, (
        f"{spec}: PC-sample streams differ with capture attached"
    )

    # and the capture actually saw the run
    assert capture.events, f"{spec}: capture recorded no events"
    assert capture.events[-1].cycle <= traced.cycles + 1e-9
    assert len(capture.events) == traced.counters.inst_issued
    assert capture.wave_notes, f"{spec}: no wave-boundary notes"


def test_capture_sees_identical_stream_on_both_paths():
    """The two timed paths drive the same ``record`` hook: the captured
    (cycle, warp, block, pc, stall) stream must be identical, modulo
    issue order within a cycle (sort for comparison)."""
    streams = {}
    for fast in (False, True):
        capture = TimelineCapture()
        _run("sgemm:naive", 64, fast, capture=capture)
        streams[fast] = sorted(
            (e.cycle, e.block, e.warp, e.pc, e.stall_cycles)
            for e in capture.events
        )
    assert streams[False] == streams[True]


class TestCaptureMechanics:
    def test_mark_reset_drops_partial_run(self):
        capture = TimelineCapture()
        _run("sgemm:naive", 64, True, capture=capture)
        mark = capture.mark()
        _run("sgemm:naive", 64, False, capture=capture)
        assert len(capture.events) > mark[0]
        capture.reset_to(mark)
        assert capture.mark() == mark

    def test_max_events_truncates_without_breaking_the_run(self):
        capture = TimelineCapture(max_events=100)
        res = _run("sgemm:naive", 64, True, capture=capture)
        assert capture.truncated
        assert len(capture.events) == 100
        assert res.cycles > 0
        # counter sampling keeps going past the slice cap
        assert capture.counter_samples

    def test_counter_samples_are_monotone_in_cycle(self):
        capture = TimelineCapture(counter_stride=16)
        _run("heat:naive", 64, True, capture=capture)
        cycles = [s.cycle for s in capture.counter_samples]
        assert cycles == sorted(cycles)

    def test_counter_samples_see_live_counters_on_legacy_path(self):
        # the legacy path accounts per issue, so mid-wave samples watch
        # inst_issued grow (the trace path batches accounting per wave)
        capture = TimelineCapture(counter_stride=16)
        _run("heat:naive", 64, False, capture=capture)
        issued = [s.inst_issued for s in capture.counter_samples]
        assert issued == sorted(issued)
        assert issued[-1] > 0

    def test_warps_are_block_warp_pairs(self):
        from repro.gpu import GPUSpec

        ck, config, args, textures = resolve_kernel(
            "histogram:global", 2048, 4)
        capture = TimelineCapture()
        sim = Simulator(GPUSpec.small(1), fast=True)
        sim.launch(ck, config, args, textures=textures,
                   max_blocks=2, functional_all=True, trace=capture)
        warps = capture.warps()
        assert warps == sorted(set(warps))
        # a one-SM spec with max_blocks=2 times blocks 0 and 1, each
        # with multiple warps
        assert {b for b, _ in warps} == {0, 1}
        assert len(warps) > 2
