"""Observability composes with fault injection.

``--trace`` / ``--profile`` must not weaken the fault boundaries: with
a fault injected at every registered fail-point, the engine still
yields a well-formed partial report, the profiler still covers the
stages that ran, and the exported trace is structurally valid (the
abandoned rung's partial event stream rolled back, every warp thread
declared, ts monotone).
"""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.errors import AnalysisError, MetricError, SimulationError
from repro.gpu import GPUSpec, LaunchConfig
from repro.obs import TimelineCapture, to_chrome_trace, validate_chrome_trace
from repro.testing import fail_at, fail_points

from tests.conftest import LOOP_SASS, build_saxpy

N = 512
CONFIG = LaunchConfig(grid=(4, 1), block=(128, 1))


@pytest.fixture(scope="module")
def saxpy_ck():
    return build_saxpy()


def saxpy_args():
    return {
        "x": np.arange(N, dtype=np.float32),
        "y": np.ones(N, dtype=np.float32),
        "a": 2.0,
        "n": N,
    }


#: how to reach each site (mirrors tests/test_chaos.py's scenarios)
SCENARIOS = {
    "parser.program": dict(kind="sass"),
    "parser.instruction": dict(kind="sass"),
    "executor.step": dict(fast=False, exc=SimulationError),
    "caches.l2_lookup": dict(fast=True, exc=SimulationError),
    "scheduler.run_wave": dict(fast=False, exc=SimulationError),
    "scheduler.run_wave_trace": dict(fast=True, exc=SimulationError),
    "trace.build": dict(fast=True, exc=SimulationError),
    "batch.functional": dict(
        fast=True, exc=SimulationError,
        also_arm=["scheduler.run_wave_trace", "scheduler.run_wave"],
    ),
    "simulator.launch": dict(fast=True, exc=SimulationError),
    "sampler.sample": dict(fast=True, exc=SimulationError),
    "metrics.collect": dict(fast=True, exc=MetricError),
    "engine.analysis": dict(fast=True, exc=AnalysisError),
    "engine.predictions": dict(fast=True, exc=AnalysisError),
}


def test_scenarios_cover_every_fail_point():
    from repro.testing.faultinject import SERVE_SITES

    # the serving-layer sites fire outside the engine (cache reads,
    # worker processes); tests/serve/test_chaos_serve.py composes them
    assert set(SCENARIOS) | SERVE_SITES == set(fail_points())
    assert not set(SCENARIOS) & SERVE_SITES


@pytest.mark.parametrize("site", sorted(SCENARIOS))
def test_trace_and_profile_survive_every_fault(site, saxpy_ck):
    scenario = SCENARIOS[site]
    exc = scenario.get("exc", SimulationError)
    capture = TimelineCapture()
    if scenario.get("kind") == "sass":
        scout = GPUscout()
        with fail_at(site, exc) as fp:
            report = scout.analyze(LOOP_SASS, dry_run=True, trace=capture)
    else:
        from contextlib import ExitStack

        scout = GPUscout(spec=GPUSpec.small(1), fast=scenario["fast"])
        with ExitStack() as stack:
            for extra in scenario.get("also_arm", []):
                stack.enter_context(fail_at(extra, SimulationError))
            fp = stack.enter_context(fail_at(site, exc))
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args(),
                                   max_blocks=2, trace=capture)
    assert fp.triggered >= 1, f"fail-point {site} never reached"

    # partial report is well-formed, and the profiler covered the
    # stages that ran (parse and static always run)
    assert report.diagnostics, f"{site}: no diagnostic recorded"
    assert report.profile is not None
    stages = report.profile.stage_totals()
    assert "parse" in stages and "static" in stages
    assert all(s.end_ns is not None for s in report.profile.spans), (
        f"{site}: a span was left open"
    )
    # every diagnostic carries the timing of the stage it fired in
    assert all("elapsed_s" in d.detail for d in report.diagnostics), (
        f"{site}: diagnostic without stage timing"
    )

    # the [prof] footer renders on the degraded report
    text = report.render(profile=True)
    assert "[prof]" in text

    # whatever the capture holds exports to a structurally valid trace
    data = to_chrome_trace(capture, program=report.program,
                           kernel=report.kernel)
    problems = validate_chrome_trace(data)
    assert problems == [], f"{site}: invalid trace: {problems[:3]}"


class TestRetryAttribution:
    def test_abandoned_rung_becomes_launch_retry_span(self, saxpy_ck):
        """Satellite: wall time spent on a failed degradation-ladder
        rung is attributed to a ``launch:retry`` span naming the rung,
        and the winning rung's span keeps its own name."""
        scout = GPUscout(spec=GPUSpec.small(1), fast=True)
        with fail_at("scheduler.run_wave_trace", SimulationError):
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args(),
                                   max_blocks=2)
        assert report.mode == "full"
        names = [s.name for s in report.profile.spans]
        retries = [s for s in report.profile.spans
                   if s.name == "launch:retry"]
        assert len(retries) == 1
        assert retries[0].counters["rung"] == "timed-trace"
        assert "launch:timed-legacy" in names
        # retry time rolls up under the depth-0 launch stage, untainted
        assert retries[0].depth == 1

    def test_abandoned_rung_events_rolled_back(self, saxpy_ck):
        """A rung that fails mid-simulation leaves no partial events in
        the exported trace: only the winning rung's stream remains.

        The trace build succeeds (recording a ``trace`` wave note and a
        counter sample) before ``run_wave_trace`` dies, so without the
        engine's mark/reset_to rollback a stale note would survive into
        the winning legacy rung's capture."""
        capture = TimelineCapture()
        scout = GPUscout(spec=GPUSpec.small(1), fast=True)
        with fail_at("scheduler.run_wave_trace", SimulationError) as fp:
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args(),
                                   max_blocks=2, trace=capture)
        assert fp.triggered == 1
        assert report.mode == "full"
        assert not report.launch.timed_fast_path  # legacy rung won
        assert capture.events, "winning rung recorded no events"
        assert capture.wave_notes, "winning rung recorded no wave notes"
        # no leftovers from the abandoned trace-driven rung
        assert all(n.kind == "legacy" for n in capture.wave_notes)
