"""End-to-end compiler/executor property tests.

Hypothesis generates random arithmetic expression trees; each is built
into a kernel, compiled to SASS, executed on the simulated GPU, and
compared against a direct NumPy interpretation of the same tree.  This
covers the whole pipeline — builder, lowering, value numbering,
register allocation (including forced spilling) and the functional
executor — with one oracle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.cudalite import ast as A
from repro.cudalite.builder import E
from repro.gpu import GPUSpec, LaunchConfig, Simulator

WARP = 32
SIM = Simulator(GPUSpec.small(1))


# --------------------------------------------------------------------------
# expression trees over: thread value x (f32), two loaded values a, b
# --------------------------------------------------------------------------

class _Leaf:
    X, A, B, CONST = range(4)


@st.composite
def expr_tree(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        kind = draw(st.integers(0, 3))
        if kind == _Leaf.CONST:
            value = draw(st.floats(-4, 4, allow_nan=False, width=32))
            return ("const", np.float32(value))
        return [("x",), ("a",), ("b",)][kind]
    op = draw(st.sampled_from(["+", "-", "*", "min", "max", "mad"]))
    if op == "mad":
        return ("mad", draw(expr_tree(depth=depth + 1)),
                draw(expr_tree(depth=depth + 1)),
                draw(expr_tree(depth=depth + 1)))
    return (op, draw(expr_tree(depth=depth + 1)),
            draw(expr_tree(depth=depth + 1)))


def build_expr(node, env: dict[str, E]) -> E:
    from repro.cudalite.intrinsics import fmaxf, fminf, mad

    tag = node[0]
    if tag == "const":
        return E(A.Const(float(node[1]), f32))
    if tag in ("x", "a", "b"):
        return env[tag]
    if tag == "mad":
        return mad(build_expr(node[1], env), build_expr(node[2], env),
                   build_expr(node[3], env))
    lhs = build_expr(node[1], env)
    rhs = build_expr(node[2], env)
    if tag == "+":
        return lhs + rhs
    if tag == "-":
        return lhs - rhs
    if tag == "*":
        return lhs * rhs
    if tag == "min":
        return fminf(lhs, rhs)
    if tag == "max":
        return fmaxf(lhs, rhs)
    raise AssertionError(tag)


def eval_expr(node, x, a, b):
    """NumPy float32 oracle with the executor's mul-then-add FMA."""
    tag = node[0]
    if tag == "const":
        return np.full_like(x, node[1])
    if tag == "x":
        return x
    if tag == "a":
        return a
    if tag == "b":
        return b
    if tag == "mad":
        return (eval_expr(node[1], x, a, b) * eval_expr(node[2], x, a, b)
                + eval_expr(node[3], x, a, b)).astype(np.float32)
    lhs = eval_expr(node[1], x, a, b)
    rhs = eval_expr(node[2], x, a, b)
    if tag == "+":
        return (lhs + rhs).astype(np.float32)
    if tag == "-":
        return (lhs - rhs).astype(np.float32)
    if tag == "*":
        return (lhs * rhs).astype(np.float32)
    if tag == "min":
        return np.minimum(lhs, rhs)
    if tag == "max":
        return np.maximum(lhs, rhs)
    raise AssertionError(tag)


def run_tree(tree, max_registers=None) -> tuple[np.ndarray, np.ndarray]:
    kb = KernelBuilder("prop")
    src = kb.param("src", ptr(f32))
    dst = kb.param("dst", ptr(f32))
    t = kb.let("t", kb.thread_idx.x, dtype=i32)
    x = kb.let("x", t.cast(f32))
    a = kb.let("a", src[t])
    b = kb.let("b", src[t + WARP])
    result = kb.let("result", build_expr(tree, {"x": x, "a": a, "b": b}))
    kb.store(dst, t, result)
    ck = compile_kernel(kb.build(), max_registers=max_registers)

    rng = np.random.default_rng(abs(hash(str(tree))) % 2**32)
    data = (rng.random(2 * WARP, dtype=np.float32) * 4 - 2)
    out = np.zeros(WARP, dtype=np.float32)
    res = SIM.launch(ck, LaunchConfig(grid=(1, 1), block=(WARP, 1)),
                     args={"src": data, "dst": out})
    got = res.read_buffer("dst")
    xs = np.arange(WARP, dtype=np.float32)
    want = eval_expr(tree, xs, data[:WARP], data[WARP:])
    return got, np.asarray(want, dtype=np.float32)


@given(expr_tree())
@settings(max_examples=40, deadline=None)
def test_random_expression_bitexact(tree):
    """Compiled+simulated results match the NumPy oracle bit-for-bit
    (both use float32 mul-then-add semantics)."""
    got, want = run_tree(tree)
    np.testing.assert_array_equal(got, want)


@given(expr_tree())
@settings(max_examples=15, deadline=None)
def test_random_expression_with_forced_spills(tree):
    """Register starvation (budget 8) must not change results — the
    spill/reload path is semantics-preserving."""
    got, want = run_tree(tree, max_registers=8)
    np.testing.assert_array_equal(got, want)


@given(st.lists(st.integers(0, 3), min_size=1, max_size=12),
       st.integers(6, 24))
@settings(max_examples=25, deadline=None)
def test_accumulation_chain_under_any_budget(ops, budget):
    """A chain of dependent updates over loaded values survives any
    register budget."""
    kb = KernelBuilder("chain")
    src = kb.param("src", ptr(f32))
    dst = kb.param("dst", ptr(f32))
    t = kb.let("t", kb.thread_idx.x, dtype=i32)
    vals = [kb.let(f"v{i}", src[t + i * WARP]) for i in range(4)]
    acc = kb.let("acc", 1.0, dtype=f32)
    for op in ops:
        kb.assign(acc, acc + vals[op] * 0.5)
    kb.store(dst, t, acc)
    ck = compile_kernel(kb.build(), max_registers=budget)

    rng = np.random.default_rng(1234)
    data = (rng.random(4 * WARP, dtype=np.float32) - 0.5)
    out = np.zeros(WARP, dtype=np.float32)
    res = SIM.launch(ck, LaunchConfig(grid=(1, 1), block=(WARP, 1)),
                     args={"src": data, "dst": out})
    got = res.read_buffer("dst")

    want = np.ones(WARP, dtype=np.float32)
    table = data.reshape(4, WARP)
    for op in ops:
        want = (want + table[op] * np.float32(0.5)).astype(np.float32)
    np.testing.assert_array_equal(got, want)


@given(st.integers(1, 64), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_loop_trip_counts(trips, stride_pow):
    """Counted loops execute exactly `trips` iterations for any bound
    and step shape."""
    step = 1 << stride_pow
    stop = trips * step
    kb = KernelBuilder("loop")
    dst = kb.param("dst", ptr(f32))
    t = kb.let("t", kb.thread_idx.x, dtype=i32)
    acc = kb.let("acc", 0.0, dtype=f32)
    with kb.for_range("i", 0, stop, step=step):
        kb.assign(acc, acc + 1.0)
    kb.store(dst, t, acc)
    ck = compile_kernel(kb.build())
    out = np.zeros(WARP, dtype=np.float32)
    res = SIM.launch(ck, LaunchConfig(grid=(1, 1), block=(WARP, 1)),
                     args={"dst": out})
    np.testing.assert_array_equal(
        res.read_buffer("dst"), np.full(WARP, trips, dtype=np.float32)
    )


@given(st.integers(0, 31))
@settings(max_examples=20, deadline=None)
def test_guard_threshold(n_active):
    """Predicated early-exit masks exactly the lanes it should."""
    kb = KernelBuilder("guard")
    dst = kb.param("dst", ptr(f32))
    n = kb.param("n", i32)
    t = kb.let("t", kb.thread_idx.x, dtype=i32)
    kb.return_if(t >= n)
    kb.store(dst, t, 7.0)
    ck = compile_kernel(kb.build())
    out = np.zeros(WARP, dtype=np.float32)
    res = SIM.launch(ck, LaunchConfig(grid=(1, 1), block=(WARP, 1)),
                     args={"dst": out, "n": n_active})
    got = res.read_buffer("dst")
    want = np.where(np.arange(WARP) < n_active, 7.0, 0.0).astype(np.float32)
    np.testing.assert_array_equal(got, want)
