"""Code-generation tests: the SASS patterns each kernel feature must
produce (these patterns are exactly what GPUscout's analyses consume)."""

import pytest

from repro.cudalite import KernelBuilder, compile_kernel, f32, f64, float4, i32, ptr
from repro.cudalite.intrinsics import mad, rcpf, sqrtf
from repro.errors import CompileError


def _ops(ck):
    return [ins.opcode.name for ins in ck.program]


def _bases(ck):
    return [ins.opcode.base for ins in ck.program]


class TestMemoryCodegen:
    def test_scalar_load_store(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        kb.store(o, i, p[i])
        ck = compile_kernel(kb.build())
        assert "LDG.E.SYS" in _ops(ck)
        assert "STG.E.SYS" in _ops(ck)

    def test_readonly_cache_load(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32, readonly=True, restrict=True))
        o = kb.param("o", ptr(f32))
        kb.store(o, 0, p[0])
        ck = compile_kernel(kb.build())
        assert "LDG.E.CONSTANT.SYS" in _ops(ck)

    def test_vector_load_128(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        v = kb.let("v", p.as_vector(float4)[kb.thread_idx.x], dtype=float4)
        kb.store(o.as_vector(float4), kb.thread_idx.x, v)
        ck = compile_kernel(kb.build())
        assert "LDG.E.128.SYS" in _ops(ck)
        assert "STG.E.128.SYS" in _ops(ck)

    def test_vector_dest_quad_aligned(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        v = kb.let("v", p.as_vector(float4)[0], dtype=float4)
        kb.store(o.as_vector(float4), 0, v)
        ck = compile_kernel(kb.build())
        wide = next(i for i in ck.program if i.opcode.name == "LDG.E.128.SYS")
        assert wide.operands[0].reg.index % 4 == 0

    def test_adjacent_offsets_share_base(self):
        """Unrolled a[base+j] accesses must emit [Rn], [Rn+0x4], ..."""
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        base = kb.let("base", kb.thread_idx.x * 4, dtype=i32)
        acc = kb.let("acc", 0.0, dtype=f32)
        with kb.for_range("j", 0, 4, unroll=True) as j:
            kb.assign(acc, acc + p[base + j])
        kb.store(o, 0, acc)
        ck = compile_kernel(kb.build())
        loads = [i for i in ck.program if i.opcode.is_global_load]
        assert len(loads) == 4
        bases = {i.mem_operand().base for i in loads}
        assert len(bases) == 1
        assert sorted(i.mem_operand().offset for i in loads) == [0, 4, 8, 12]

    def test_store_through_const_pointer_rejected(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32, readonly=True))
        kb.store(p, 0, 1.0)  # builder cannot know; compiler checks
        with pytest.raises(CompileError):
            compile_kernel(kb.build())

    def test_shared_memory_codegen(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        sm = kb.shared_array("buf", f32, 32)
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        sm[t] = 1.0
        kb.sync_threads()
        kb.store(o, t, sm[t])
        ck = compile_kernel(kb.build())
        bases = _bases(ck)
        assert "STS" in bases and "LDS" in bases and "BAR" in bases
        assert ck.program.shared_bytes >= 32 * 4

    def test_shared_layout_offsets(self):
        kb = KernelBuilder("k")
        kb.param("o", ptr(f32))
        kb.shared_array("a", f32, 4)  # 16 bytes
        kb.shared_array("b", f32, 4)
        ck = compile_kernel(kb.build())
        offs = {s.name: s.offset for s in ck.shared}
        assert offs["a"] == 0
        assert offs["b"] == 16  # 16-byte aligned

    def test_local_memory_not_emitted_without_pressure(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        kb.store(o, 0, 1.0)
        ck = compile_kernel(kb.build())
        assert "STL" not in _bases(ck)
        assert ck.program.local_bytes_per_thread == 0


class TestAtomicsCodegen:
    def test_global_atomic_typed(self):
        kb = KernelBuilder("k")
        h = kb.param("h", ptr(f32))
        kb.atomic_add_global(h, kb.thread_idx.x, 1.0)
        ck = compile_kernel(kb.build())
        assert "RED.E.ADD.F32" in _ops(ck)

    def test_global_atomic_int(self):
        kb = KernelBuilder("k")
        h = kb.param("h", ptr(i32))
        kb.atomic_add_global(h, 0, 1)
        ck = compile_kernel(kb.build())
        assert "RED.E.ADD.U32" in _ops(ck)

    def test_shared_atomic(self):
        kb = KernelBuilder("k")
        kb.param("o", ptr(f32))
        sm = kb.shared_array("h", f32, 16)
        kb.atomic_add_shared(sm, kb.thread_idx.x % 16, 1.0)
        ck = compile_kernel(kb.build())
        assert "ATOMS.ADD.F32" in _ops(ck)


class TestControlFlowCodegen:
    def test_loop_emits_backedge(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        n = kb.param("n", i32)
        acc = kb.let("acc", 0.0, dtype=f32)
        with kb.for_range("i", 0, n):
            kb.assign(acc, acc + 1.0)
        kb.store(o, 0, acc)
        ck = compile_kernel(kb.build())
        bras = [i for i in ck.program if i.opcode.base == "BRA"]
        assert len(bras) == 2  # pre-check skip + bottom-test back edge
        from repro.sass import build_cfg

        assert len(build_cfg(ck.program).loops) == 1

    def test_unrolled_loop_has_no_branches(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        acc = kb.let("acc", 0.0, dtype=f32)
        with kb.for_range("i", 0, 4, unroll=True):
            kb.assign(acc, acc + 1.0)
        kb.store(o, 0, acc)
        ck = compile_kernel(kb.build())
        assert "BRA" not in _bases(ck)
        assert _bases(ck).count("FADD") == 4

    def test_unroll_requires_constant_bounds(self):
        kb = KernelBuilder("k")
        kb.param("o", ptr(f32))
        n = kb.param("n", i32)
        with pytest.raises(CompileError):
            with kb.for_range("i", 0, n, unroll=True):
                pass
            compile_kernel(kb.build())

    def test_if_predication(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with kb.if_then(t < 16):
            kb.store(o, t, 1.0)
        ck = compile_kernel(kb.build())
        assert "BRA" not in _bases(ck)  # predication, not branching
        store = next(i for i in ck.program if i.opcode.base == "STG")
        assert store.pred is not None

    def test_return_if_predicated_exit(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        n = kb.param("n", i32)
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        kb.return_if(t >= n)
        kb.store(o, t, 1.0)
        ck = compile_kernel(kb.build())
        exits = [i for i in ck.program if i.opcode.base == "EXIT"]
        assert any(i.pred is not None for i in exits)

    def test_nested_if_rejected(self):
        kb = KernelBuilder("k")
        kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with pytest.raises(CompileError):
            with kb.if_then(t < 8):
                with kb.if_then(t < 4):
                    pass
            compile_kernel(kb.build())


class TestArithmeticCodegen:
    def test_conversions(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        kb.store(o, t, t.cast(f32))
        ck = compile_kernel(kb.build())
        assert any(op.startswith("I2F") for op in _ops(ck))

    def test_f2f_widen_narrow(self):
        kb = KernelBuilder("k")
        s = kb.param("s", ptr(f32))
        d = kb.param("d", ptr(f64))
        x = kb.let("x", s[0])
        kb.store(d, 0, x.cast(f64))
        ck = compile_kernel(kb.build())
        assert "F2F.F64.F32" in _ops(ck)

    def test_mad_fuses(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        a = kb.param("a", f32)
        kb.store(o, 0, mad(a, a, a))
        ck = compile_kernel(kb.build())
        assert "FFMA" in _bases(ck)

    def test_dp_mad(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f64))
        a = kb.param("a", f64)
        kb.store(o, 0, mad(a, a, a))
        ck = compile_kernel(kb.build())
        assert "DFMA" in _bases(ck)

    def test_mufu_intrinsics(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        a = kb.param("a", f32)
        kb.store(o, 0, sqrtf(a) + rcpf(a))
        ck = compile_kernel(kb.build())
        ops = _ops(ck)
        assert "MUFU.SQRT" in ops and "MUFU.RCP" in ops

    def test_division_by_constant_folds_to_multiply(self):
        # nvcc folds x / const into x * (1/const); so do we
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        a = kb.param("a", f32)
        kb.store(o, 0, a / 3.0)
        ck = compile_kernel(kb.build())
        assert "MUFU.RCP" not in _ops(ck)
        assert "FMUL" in _bases(ck)

    def test_division_by_runtime_value_uses_rcp(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        a = kb.param("a", f32)
        b = kb.param("b", f32)
        kb.store(o, 0, a / b)
        ck = compile_kernel(kb.build())
        assert "MUFU.RCP" in _ops(ck)

    def test_int_div_pow2(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(i32))
        n = kb.param("n", i32)
        kb.store(o, 0, n / 16)
        ck = compile_kernel(kb.build())
        assert any(op.startswith("SHF.R") for op in _ops(ck))

    def test_int_div_non_pow2_rejected(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(i32))
        n = kb.param("n", i32)
        kb.store(o, 0, n / 3)
        with pytest.raises(CompileError):
            compile_kernel(kb.build())

    def test_same_width_int_cast_is_free(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(i32))
        t = kb.let("t", kb.thread_idx.x)  # u32
        kb.store(o, 0, t)  # coerced to i32 for the store
        ck = compile_kernel(kb.build())
        assert "I2I" not in _bases(ck)

    def test_constant_folding(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(i32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        kb.store(o, t * 1 + 0, 2 * 8)  # folds away
        ck = compile_kernel(kb.build())
        # no multiply-by-one or add-zero instructions survive
        imads = [i for i in ck.program
                 if i.opcode.base == "IMAD" and not i.opcode.modifiers]
        assert len(imads) == 0


class TestLineTable:
    def test_every_emitted_instruction_attributed(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        x = kb.let("x", p[kb.thread_idx.x])
        kb.store(o, kb.thread_idx.x, x * 2.0)
        ck = compile_kernel(kb.build())
        attributed = [i for i in ck.program if i.line is not None]
        # all but the trailing EXIT carry a source line
        assert len(attributed) == len(ck.program) - 1

    def test_lines_point_into_source(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        kb.store(p, 0, 1.0)
        ck = compile_kernel(kb.build())
        n_lines = len(ck.kernel.source.splitlines())
        for ins in ck.program:
            if ins.line is not None:
                assert 1 <= ins.line <= n_lines

    def test_texture_codegen(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.texture("tex")
        kb.store(o, 0, kb.tex2d(t, 3, 4))
        ck = compile_kernel(kb.build())
        assert any(i.opcode.base == "TEX" for i in ck.program)
        assert ck.tex_slot("tex") == 0
