"""KernelBuilder API tests: statement construction, scoping, source
rendering and error conditions."""

import pytest

from repro.cudalite import KernelBuilder, f32, float4, i32, ptr
from repro.cudalite import ast as A
from repro.errors import CompileError


class TestParams:
    def test_params_before_statements(self):
        kb = KernelBuilder("k")
        kb.param("p", ptr(f32))
        kb.let("x", 1)
        with pytest.raises(CompileError):
            kb.param("late", i32)

    def test_duplicate_names_rejected(self):
        kb = KernelBuilder("k")
        kb.param("p", ptr(f32))
        with pytest.raises(CompileError):
            kb.param("p", i32)

    def test_invalid_identifier(self):
        kb = KernelBuilder("k")
        with pytest.raises(CompileError):
            kb.param("2bad", i32)

    def test_indexing_scalar_param_rejected(self):
        kb = KernelBuilder("k")
        n = kb.param("n", i32)
        with pytest.raises(TypeError):
            n[0]

    def test_as_vector(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        v = p.as_vector(float4)
        assert v.elem is float4
        load = v[0]
        assert isinstance(load.node, A.Load)
        assert load.node.elem is float4


class TestStatements:
    def test_source_lines_assigned(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        x = kb.let("x", p[0])
        kb.store(p, 1, x)
        k = kb.build()
        lines = [s.line for s in k.body]
        assert lines == sorted(lines)
        assert all(l is not None for l in lines)

    def test_source_rendering(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32, readonly=True, restrict=True))
        o = kb.param("o", ptr(f32))
        kb.store(o, 0, p[0])
        k = kb.build()
        assert "__global__ void k" in k.source
        assert "__restrict__" in k.source

    def test_loop_scoping_allows_reuse(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        with kb.for_range("j", 0, 4) as j:
            kb.store(p, j, 1.0)
        with kb.for_range("j", 0, 4) as j:  # same name again
            kb.store(p, j, 2.0)
        k = kb.build()
        assert sum(isinstance(s, A.For) for s in k.body) == 2

    def test_nested_loops(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        with kb.for_range("i", 0, 2):
            with kb.for_range("j", 0, 2, unroll=True) as j:
                kb.store(p, j, 0.0)
        k = kb.build()
        outer = next(s for s in k.body if isinstance(s, A.For))
        inner = next(s for s in outer.body if isinstance(s, A.For))
        assert inner.unroll and not outer.unroll

    def test_shared_array(self):
        kb = KernelBuilder("k")
        kb.param("p", ptr(f32))
        sm = kb.shared_array("buf", f32, 64)
        sm[0] = 1.0
        _ = sm[1]
        k = kb.build()
        assert any(isinstance(s, A.SharedDecl) for s in k.body)
        assert "__shared__" in k.source

    def test_local_array_bounds(self):
        kb = KernelBuilder("k")
        with pytest.raises(CompileError):
            kb.local_array("t", f32, 0)

    def test_build_twice_rejected(self):
        kb = KernelBuilder("k")
        kb.build()
        with pytest.raises(CompileError):
            kb.build()

    def test_emit_after_build_rejected(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        kb.build()
        with pytest.raises(CompileError):
            kb.store(p, 0, 1.0)

    def test_store_through_scalar_rejected(self):
        kb = KernelBuilder("k")
        n = kb.param("n", i32)
        with pytest.raises(CompileError):
            kb.store(n, 0, 1.0)

    def test_texture_declaration(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.texture("tex")
        kb.store(o, 0, kb.tex2d(t, 1, 2))
        k = kb.build()
        assert k.textures[0].name == "tex"
        assert "cudaTextureObject_t" in k.source


class TestExpressions:
    def test_operator_overloads(self):
        kb = KernelBuilder("k")
        x = kb.thread_idx.x
        for expr in (x + 1, 1 + x, x - 1, 2 - x, x * 3, 3 * x, x / 2,
                     x % 4, x & 3, x | 1, x ^ 2, x << 2, x >> 1, -x):
            assert isinstance(expr.node, (A.BinOp, A.UnaryOp))

    def test_comparisons(self):
        kb = KernelBuilder("k")
        x = kb.thread_idx.x
        assert (x < 5).node.op == "<"
        assert (x >= 5).node.op == ">="
        assert x.eq(5).node.op == "=="
        assert x.ne(5).node.op == "!="
        assert (x < 5).logical_and(x > 1).node.op == "&&"
        assert (x < 5).logical_or(x > 1).node.op == "||"

    def test_bool_in_kernel_rejected(self):
        kb = KernelBuilder("k")
        x = kb.thread_idx.x
        with pytest.raises(TypeError):
            x + True

    def test_vector_lanes(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        v = kb.let("v", p.as_vector(float4)[0], dtype=float4)
        assert v.x.node.lane == 0
        assert v.w.node.lane == 3

    def test_cast(self):
        kb = KernelBuilder("k")
        x = kb.thread_idx.x
        c = x.cast(f32)
        assert isinstance(c.node, A.Cast)
        assert c.node.dtype is f32

    def test_builtin_axes(self):
        kb = KernelBuilder("k")
        assert kb.thread_idx.x.node == A.Builtin("tid", "x")
        assert kb.block_idx.y.node == A.Builtin("ctaid", "y")
        assert kb.block_dim.z.node == A.Builtin("ntid", "z")
        assert kb.grid_dim.x.node == A.Builtin("nctaid", "x")
