"""Builder extras: else_then, shuffle/select API, package re-exports."""

import numpy as np
import pytest

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.errors import CompileError
from repro.gpu import GPUSpec, LaunchConfig, Simulator


class TestElseThen:
    def test_else_without_if(self):
        kb = KernelBuilder("k")
        kb.param("o", ptr(f32))
        with pytest.raises(CompileError):
            with kb.else_then():
                pass

    def test_duplicate_else(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with kb.if_then(t < 8):
            kb.store(o, t, 1.0)
        with kb.else_then():
            kb.store(o, t, 2.0)
        with pytest.raises(CompileError):
            with kb.else_then():
                pass

    def test_else_condition_not_reevaluated(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with kb.if_then(t < 8):
            kb.store(o, t, 1.0)
        with kb.else_then():
            kb.store(o, t, 2.0)
        ck = compile_kernel(kb.build())
        # exactly one comparison for the whole if/else
        setps = [i for i in ck.program if i.opcode.base == "ISETP"]
        assert len(setps) == 1
        # the two stores carry complementary guards on the same pred
        stores = [i for i in ck.program if i.opcode.base == "STG"]
        assert stores[0].pred == stores[1].pred
        assert stores[0].pred_negated != stores[1].pred_negated

    def test_else_executes_complement(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with kb.if_then(t < 8):
            kb.store(o, t, 1.0)
        with kb.else_then():
            kb.store(o, t, 2.0)
        ck = compile_kernel(kb.build())
        sim = Simulator(GPUSpec.small(1))
        res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                         args={"o": np.zeros(32, np.float32)})
        got = res.read_buffer("o")
        assert np.array_equal(got, np.array([1.0] * 8 + [2.0] * 24,
                                            dtype=np.float32))

    def test_source_renders_else(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with kb.if_then(t < 8):
            kb.store(o, t, 1.0)
        with kb.else_then():
            kb.store(o, t, 2.0)
        assert "else {" in kb.build().source


class TestShuffleSelectApi:
    def test_shuffle_modes_compile(self):
        for mode, expect in (("shfl_down", "SHFL.DOWN"),
                             ("shfl_up", "SHFL.UP"),
                             ("shfl_xor", "SHFL.BFLY")):
            kb = KernelBuilder("k")
            o = kb.param("o", ptr(f32))
            v = kb.let("v", kb.thread_idx.x.cast(f32))
            kb.store(o, kb.thread_idx.x, getattr(kb, mode)(v, 4))
            ck = compile_kernel(kb.build())
            assert any(i.opcode.name.startswith(expect) for i in ck.program)

    def test_shuffle_semantics_all_modes(self):
        sim = Simulator(GPUSpec.small(1))
        lanes = np.arange(32, dtype=np.float32)
        cases = {
            "shfl_down": np.where(np.arange(32) + 4 < 32,
                                  np.arange(32) + 4, np.arange(32)),
            "shfl_up": np.where(np.arange(32) - 4 >= 0,
                                np.arange(32) - 4, np.arange(32)),
            "shfl_xor": np.arange(32) ^ 4,
        }
        for mode, idx in cases.items():
            kb = KernelBuilder("k")
            src = kb.param("src", ptr(f32))
            dst = kb.param("dst", ptr(f32))
            t = kb.let("t", kb.thread_idx.x, dtype=i32)
            v = kb.let("v", src[t])
            kb.store(dst, t, getattr(kb, mode)(v, 4))
            ck = compile_kernel(kb.build())
            res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                             args={"src": lanes,
                                   "dst": np.zeros(32, np.float32)})
            assert np.array_equal(res.read_buffer("dst"), lanes[idx]), mode

    def test_shuffle_rejects_wide(self):
        from repro.cudalite import f64

        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f64))
        v = kb.let("v", o[0])
        kb.store(o, 1, kb.shfl_down(v, 1).cast(f64))
        with pytest.raises(CompileError):
            compile_kernel(kb.build())

    def test_select_in_loop(self):
        sim = Simulator(GPUSpec.small(1))
        kb = KernelBuilder("k")
        src = kb.param("src", ptr(i32))
        dst = kb.param("dst", ptr(i32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        best = kb.let("best", 0, dtype=i32)
        with kb.for_range("j", 0, 4) as j:
            v = kb.let("v", src[t * 4 + j])
            kb.assign(best, kb.select(v > best, v, best))
        kb.store(dst, t, best)
        ck = compile_kernel(kb.build())
        rng = np.random.default_rng(2)
        data = rng.integers(0, 100, 128).astype(np.int32)
        res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                         args={"src": data, "dst": np.zeros(32, np.int32)})
        want = np.maximum(data.reshape(32, 4).max(axis=1), 0)
        assert np.array_equal(res.read_buffer("dst"), want)


class TestPackageExports:
    def test_kernels_reexports(self):
        import repro.kernels as k

        for name in k.__all__:
            assert callable(getattr(k, name))

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
