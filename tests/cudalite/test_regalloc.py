"""Register-allocation tests: budgets, spilling, alignment."""

import pytest

from repro.cudalite import KernelBuilder, compile_kernel, f32, f64, float4, i32, ptr
from repro.cudalite.intrinsics import mad
from repro.errors import RegisterAllocationError


def _many_live_values(n_values: int, max_registers=None):
    """A kernel holding n_values float accumulators live simultaneously."""
    kb = KernelBuilder("pressure", max_registers=max_registers)
    p = kb.param("p", ptr(f32))
    o = kb.param("o", ptr(f32))
    base = kb.let("base", kb.thread_idx.x * n_values, dtype=i32)
    vals = kb.local_array("vals", f32, n_values)
    with kb.for_range("j", 0, n_values, unroll=True) as j:
        vals[j] = p[base + j]
    acc = kb.let("acc", 0.0, dtype=f32)
    with kb.for_range("j", 0, n_values, unroll=True) as j:
        kb.assign(acc, acc + vals[j])
    kb.store(o, base, acc)
    return compile_kernel(kb.build(), max_registers=max_registers)


class TestBudgets:
    def test_no_spills_with_room(self):
        ck = _many_live_values(8)
        assert ck.allocation.spilled_vregs == 0
        assert ck.program.local_bytes_per_thread == 0

    def test_spills_under_tight_budget(self):
        ck = _many_live_values(16, max_registers=8)
        assert ck.allocation.spilled_vregs > 0
        assert ck.program.local_bytes_per_thread > 0
        assert ck.allocation.registers_used <= 8
        bases = [i.opcode.base for i in ck.program]
        assert "STL" in bases and "LDL" in bases

    def test_spill_count_grows_as_budget_shrinks(self):
        loose = _many_live_values(16, max_registers=14)
        tight = _many_live_values(16, max_registers=7)
        assert tight.allocation.spilled_vregs >= loose.allocation.spilled_vregs
        assert tight.allocation.local_frame_bytes >= \
            loose.allocation.local_frame_bytes

    def test_registers_used_within_budget(self):
        for budget in (6, 10, 24, 64):
            ck = _many_live_values(12, max_registers=budget)
            assert ck.allocation.registers_used <= budget

    def test_impossible_budget_raises(self):
        with pytest.raises(RegisterAllocationError):
            _many_live_values(8, max_registers=1)

    def test_budget_out_of_range(self):
        from repro.cudalite.regalloc import VProgram, allocate

        with pytest.raises(RegisterAllocationError):
            allocate(VProgram("x", []), budget=0)
        with pytest.raises(RegisterAllocationError):
            allocate(VProgram("x", []), budget=300)


class TestSpillCorrectness:
    def test_spilled_kernel_still_correct(self, sim):
        import numpy as np
        from repro.gpu import LaunchConfig

        for budget in (None, 8, 6):
            ck = _many_live_values(12, max_registers=budget)
            n = 128 * 12
            data = np.arange(n, dtype=np.float32)
            out = np.zeros(n, dtype=np.float32)
            res = sim.launch(
                ck, LaunchConfig(grid=(1, 1), block=(128, 1)),
                args={"p": data, "o": out},
            )
            got = res.read_buffer("o").reshape(-1, 12)[:, 0]
            ref = data.reshape(-1, 12).sum(axis=1)
            assert np.allclose(got, ref), f"budget={budget}"

    def test_spill_store_precedes_reload(self):
        ck = _many_live_values(16, max_registers=8)
        first_stl = next(
            i for i, ins in enumerate(ck.program) if ins.opcode.base == "STL"
        )
        first_ldl = next(
            i for i, ins in enumerate(ck.program) if ins.opcode.base == "LDL"
        )
        assert first_stl < first_ldl

    def test_spill_keeps_line_info(self):
        ck = _many_live_values(16, max_registers=8)
        for ins in ck.program:
            if ins.opcode.base in ("STL", "LDL"):
                assert ins.line is not None


class TestAlignment:
    def test_fp64_pairs_even_aligned(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f64))
        o = kb.param("o", ptr(f64))
        x = kb.let("x", p[0])
        y = kb.let("y", p[1])
        kb.store(o, 0, mad(x, y, x))
        ck = compile_kernel(kb.build())
        for ins in ck.program:
            if ins.opcode.base in ("DADD", "DMUL", "DFMA"):
                for op in ins.operands:
                    if op.kind == "reg" and not op.reg.predicate:
                        assert op.reg.index % 2 == 0

    def test_vector_quads_aligned(self):
        kb = KernelBuilder("k")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        v = kb.let("v", p.as_vector(float4)[0], dtype=float4)
        w = kb.let("w", mad(v, v, 1.0), dtype=float4)
        kb.store(o.as_vector(float4), 0, w)
        ck = compile_kernel(kb.build())
        for ins in ck.program:
            if ins.opcode.width_regs == 4 and ins.opcode.is_memory:
                data_op = ins.operands[0] if ins.opcode.is_load \
                    else ins.operands[1]
                assert data_op.reg.index % 4 == 0


class TestPredicates:
    def test_predicates_reused(self):
        kb = KernelBuilder("k")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        # many sequential conditions must reuse P0..P5
        for i in range(10):
            with kb.if_then(t < (i + 1) * 4):
                kb.store(o, t + i, 1.0)
        ck = compile_kernel(kb.build())
        pred_indices = {
            op.reg.index
            for ins in ck.program
            for op in ins.operands
            if op.kind == "reg" and op.reg is not None and op.reg.predicate
            and not op.reg.is_zero
        }
        assert pred_indices <= set(range(6))
