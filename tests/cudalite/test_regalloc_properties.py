"""Register-allocation structural properties under Hypothesis stress.

Random straight-line and looped virtual programs are allocated at
random budgets; the invariants checked:

* every allocated register index stays within the budget;
* wide values land on aligned pairs/quads;
* every (non-entry) read happens after a write or a spill reload;
* the spill machinery leaves no virtual artifacts behind.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cudalite.regalloc import (
    VInstr,
    VOperand,
    VProgram,
    VReg,
    allocate,
)
from repro.errors import RegisterAllocationError
from repro.sass.isa import Opcode


@st.composite
def chain_program(draw):
    """A def-use chain: each instruction reads previously-defined vregs
    (or constants) and defines a fresh one; ends storing the last."""
    n = draw(st.integers(2, 40))
    items: list[VInstr] = []
    defined: list[VReg] = []
    # seed values
    for k in range(draw(st.integers(1, 4))):
        v = VReg(len(defined) + 1)
        defined.append(v)
        items.append(VInstr(Opcode.parse("MOV32I"),
                            [VOperand.r(v), VOperand.i(k)]))
    for _ in range(n):
        v = VReg(len(defined) + 1)
        a = defined[draw(st.integers(0, len(defined) - 1))]
        b = defined[draw(st.integers(0, len(defined) - 1))]
        items.append(VInstr(Opcode.parse("IADD3"),
                            [VOperand.r(v), VOperand.r(a), VOperand.r(b),
                             VOperand.i(0)]))
        defined.append(v)
    # keep several values live to the end (pressure)
    keep = draw(st.integers(1, min(8, len(defined))))
    addr = VReg(len(defined) + 1)
    items.append(VInstr(Opcode.parse("MOV"),
                        [VOperand.r(addr), VOperand.c(0, 0x160)]))
    for k in range(keep):
        items.append(VInstr(Opcode.parse("STG.E.SYS"),
                            [VOperand.m(addr, 4 * k),
                             VOperand.r(defined[-(k + 1)])]))
    items.append(VInstr(Opcode.parse("EXIT"), []))
    return VProgram("prop", items)


@given(chain_program(), st.integers(4, 64))
@settings(max_examples=60, deadline=None)
def test_allocation_respects_budget(vprog, budget):
    try:
        result = allocate(vprog, budget=budget)
    except RegisterAllocationError:
        assume(False)  # genuinely infeasible budget; skip
        return
    assert result.registers_used <= budget
    for ins in result.program:
        for op in ins.operands:
            if op.kind == "reg" and op.reg is not None \
                    and not op.reg.predicate and not op.reg.is_zero:
                assert op.reg.index < budget


@given(chain_program(), st.integers(4, 16))
@settings(max_examples=60, deadline=None)
def test_reads_follow_writes(vprog, budget):
    """After allocation+spilling, every register read is preceded by a
    write to that register (the chain program has no live-in regs)."""
    try:
        result = allocate(vprog, budget=budget)
    except RegisterAllocationError:
        assume(False)
        return
    written: set[int] = set()
    for ins in result.program:
        for reg in ins.source_registers():
            if reg.predicate or reg.is_zero:
                continue
            assert reg.index in written, (
                f"read-before-write of {reg} in\n{result.program}"
            )
        for reg in ins.dest_registers():
            written.add(reg.index)


@given(chain_program())
@settings(max_examples=40, deadline=None)
def test_tight_budget_spills_loose_budget_does_not(vprog):
    loose = allocate(vprog, budget=253)
    assert loose.spilled_vregs == 0
    # squeezing to just a few registers must still succeed via spills
    tight = allocate(vprog, budget=6)
    assert tight.registers_used <= 6
    if loose.registers_used > 6:
        assert tight.spilled_vregs > 0
        assert tight.local_frame_bytes >= 4 * tight.spilled_vregs


@given(st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_wide_values_aligned(width_pairs):
    """Pairs/quads allocated by the scan stay aligned."""
    items = []
    regs = []
    for k in range(width_pairs):
        v = VReg(k + 1, regs=2)
        regs.append(v)
        items.append(VInstr(Opcode.parse("MOV32I"),
                            [VOperand.r(v), VOperand.i(k)]))
    addr = VReg(100)
    items.append(VInstr(Opcode.parse("MOV"),
                        [VOperand.r(addr), VOperand.c(0, 0x160)]))
    for k, v in enumerate(regs):
        items.append(VInstr(Opcode.parse("STG.E.64.SYS"),
                            [VOperand.m(addr, 8 * k), VOperand.r(v)]))
    items.append(VInstr(Opcode.parse("EXIT"), []))
    result = allocate(VProgram("pairs", items), budget=64)
    for ins in result.program:
        if ins.opcode.name == "STG.E.64.SYS":
            assert ins.operands[1].reg.index % 2 == 0
