"""Type-system tests."""

import numpy as np
import pytest

from repro.cudalite.types import (
    common_type,
    double2,
    f32,
    f64,
    float2,
    float4,
    i32,
    int4,
    ptr,
    u32,
    u64,
)


class TestScalars:
    @pytest.mark.parametrize(
        "dtype,bits,regs,np_dtype",
        [
            (i32, 32, 1, np.int32),
            (u32, 32, 1, np.uint32),
            (u64, 64, 2, np.uint64),
            (f32, 32, 1, np.float32),
            (f64, 64, 2, np.float64),
        ],
    )
    def test_widths(self, dtype, bits, regs, np_dtype):
        assert dtype.bits == bits
        assert dtype.regs == regs
        assert dtype.np_dtype == np.dtype(np_dtype)
        assert not dtype.is_vector
        assert dtype.scalar is dtype

    def test_bytes(self):
        assert f32.bytes == 4
        assert f64.bytes == 8


class TestVectors:
    @pytest.mark.parametrize(
        "vec,lanes,scalar,regs",
        [(float2, 2, f32, 2), (float4, 4, f32, 4),
         (int4, 4, i32, 4), (double2, 2, f64, 4)],
    )
    def test_lanes_and_scalar(self, vec, lanes, scalar, regs):
        assert vec.is_vector
        assert vec.lanes == lanes
        assert vec.scalar == scalar
        assert vec.regs == regs

    def test_vector_np_dtype_is_lane_dtype(self):
        assert float4.np_dtype == np.dtype(np.float32)
        assert double2.np_dtype == np.dtype(np.float64)


class TestPointers:
    def test_qualifiers(self):
        p = ptr(f32, readonly=True, restrict=True)
        assert p.uses_readonly_cache
        assert not ptr(f32, readonly=True).uses_readonly_cache
        assert not ptr(f32, restrict=True).uses_readonly_cache

    def test_reinterpret_preserves_qualifiers(self):
        p = ptr(f32, readonly=True, restrict=True)
        q = p.as_elem(float4)
        assert q.elem is float4
        assert q.uses_readonly_cache

    def test_str_rendering(self):
        assert "const" in str(ptr(f32, readonly=True))
        assert "__restrict__" in str(ptr(f32, restrict=True))
        assert "float*" in str(ptr(f32))


class TestCommonType:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (i32, i32, i32),
            (i32, f32, f32),
            (f32, f64, f64),
            (i32, f64, f64),
            (u32, i32, u32),
            (i32, u64, u64),
            (float4, float4, float4),
        ],
    )
    def test_promotions(self, a, b, expected):
        assert common_type(a, b) == expected
        assert common_type(b, a) == expected

    def test_mismatched_vectors_rejected(self):
        with pytest.raises(TypeError):
            common_type(float4, int4)
