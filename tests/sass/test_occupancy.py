"""Volta occupancy-calculator tests (cross-checked against the CUDA
occupancy calculator for CC 7.0)."""

import pytest

from repro.sass.occupancy import OccupancyLimits, compute_occupancy


class TestFullOccupancy:
    def test_light_kernel(self):
        occ = compute_occupancy(256, 32)
        assert occ.occupancy == 1.0
        assert occ.active_warps == 64
        assert occ.active_blocks == 8

    def test_min_registers_clamped(self):
        # tiny register counts allocate at least 8/thread, still 100 %
        assert compute_occupancy(256, 2).occupancy == 1.0


class TestRegisterLimits:
    def test_regs_64_halves_occupancy(self):
        # 64 regs/thread: 2048 regs/warp -> 32 warps resident
        occ = compute_occupancy(256, 64)
        assert occ.active_warps == 32
        assert occ.occupancy == 0.5
        assert occ.limiter == "registers"

    def test_regs_128(self):
        occ = compute_occupancy(256, 128)
        assert occ.active_warps == 16
        assert occ.limiter == "registers"

    def test_paper_sgemm_regs(self):
        # the case-study shift 25 -> 72 registers must lower occupancy
        low = compute_occupancy(256, 25)
        high = compute_occupancy(256, 72)
        assert high.occupancy < low.occupancy

    def test_monotone_in_registers(self):
        prev = 2.0
        for regs in (16, 32, 48, 64, 96, 128, 192, 255):
            occ = compute_occupancy(128, regs).occupancy
            assert occ <= prev
            prev = occ


class TestSharedLimits:
    def test_shared_unlimited_when_zero(self):
        assert compute_occupancy(128, 32, 0).occupancy == 1.0

    def test_shared_limits_blocks(self):
        # 48 KiB/block -> 2 blocks of 96 KiB/SM
        occ = compute_occupancy(256, 32, 48 * 1024)
        assert occ.active_blocks == 2
        assert occ.limiter == "shared"
        assert occ.active_warps == 16

    def test_shared_allocation_granularity(self):
        # 1 byte rounds up to one 256 B allocation unit
        occ = compute_occupancy(1024, 32, 1)
        assert occ.active_blocks >= 1


class TestBlockAndThreadLimits:
    def test_block_count_limit(self):
        # 32-thread blocks: 32-block limit binds before the warp limit
        occ = compute_occupancy(32, 16)
        assert occ.active_blocks == 32
        assert occ.active_warps == 32
        assert occ.occupancy == 0.5

    def test_thread_limit(self):
        occ = compute_occupancy(1024, 16)
        assert occ.active_blocks == 2
        assert occ.active_warps == 64

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            compute_occupancy(0, 32)
        with pytest.raises(ValueError):
            compute_occupancy(2048, 32)

    def test_zero_occupancy_when_impossible(self):
        # a block needing more shared memory than the SM has
        occ = compute_occupancy(128, 32, 200 * 1024)
        assert occ.occupancy == 0.0
        assert occ.active_blocks == 0


class TestCustomLimits:
    def test_custom_architecture(self):
        pascal_ish = OccupancyLimits(registers_per_sm=32768)
        occ = compute_occupancy(256, 64, limits=pascal_ish)
        assert occ.active_warps == 16
