"""CFG construction, dominators and natural-loop detection."""

import pytest

from repro.sass import build_cfg, parse_sass


def _cfg(text: str):
    return build_cfg(parse_sass(text))


class TestBasicBlocks:
    def test_straight_line_single_block(self):
        cfg = _cfg("MOV R1, R2 ;\nMOV R3, R4 ;\nEXIT ;\n")
        assert len(cfg) == 1
        assert cfg.blocks[0].successors == []

    def test_loop_blocks(self, loop_program):
        cfg = build_cfg(loop_program)
        # entry, loop body, exit tail
        assert len(cfg) == 3
        entry, body, tail = cfg.blocks
        assert entry.successors == [body.bid]
        assert set(body.successors) == {body.bid, tail.bid}
        assert tail.successors == []

    def test_predecessors_symmetric(self, loop_program):
        cfg = build_cfg(loop_program)
        for blk in cfg.blocks:
            for s in blk.successors:
                assert blk.bid in cfg.blocks[s].predecessors

    def test_unconditional_branch_no_fallthrough(self):
        text = (
            "BRA `(END) ;\n"
            "MOV R1, R2 ;\n"
            ".END:\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        # block 0 jumps straight to END
        assert cfg.blocks[0].successors == [2]

    def test_exit_terminates(self):
        text = "EXIT ;\nMOV R1, R2 ;\nEXIT ;\n"
        cfg = _cfg(text)
        assert cfg.blocks[0].successors == []

    def test_block_of_instruction(self, loop_program):
        cfg = build_cfg(loop_program)
        for blk in cfg.blocks:
            for i in range(blk.start, blk.end):
                assert cfg.block_of_instruction(i) is blk

    def test_empty_program_rejected(self):
        from repro.sass.isa import Program

        with pytest.raises(ValueError):
            build_cfg(Program("empty", []))


class TestDominators:
    def test_entry_dominates_all(self, loop_program):
        cfg = build_cfg(loop_program)
        for blk in cfg.blocks:
            assert cfg.dominates(0, blk.bid)

    def test_self_domination(self, loop_program):
        cfg = build_cfg(loop_program)
        for blk in cfg.blocks:
            assert cfg.dominates(blk.bid, blk.bid)

    def test_diamond(self):
        text = (
            "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"
            "@P0 BRA `(ELSE) ;\n"
            "MOV R1, 0x1 ;\n"
            "BRA `(JOIN) ;\n"
            ".ELSE:\n"
            "MOV R1, 0x2 ;\n"
            ".JOIN:\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        join = len(cfg.blocks) - 1
        then_block, else_block = 1, 2
        assert not cfg.dominates(then_block, join)
        assert not cfg.dominates(else_block, join)
        assert cfg.dominates(0, join)


class TestLoops:
    def test_single_loop(self, loop_program):
        cfg = build_cfg(loop_program)
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header == loop.back_edge_from  # self loop block
        assert loop.blocks == frozenset({loop.header})

    def test_loop_depth(self, loop_program):
        cfg = build_cfg(loop_program)
        body = cfg.loops[0].header
        blk = cfg.blocks[body]
        for i in range(blk.start, blk.end):
            assert cfg.in_loop(i)
        assert not cfg.in_loop(0)
        assert not cfg.in_loop(len(loop_program) - 1)

    def test_nested_loops(self):
        text = (
            "MOV R0, RZ ;\n"
            ".OUTER:\n"
            "MOV R1, RZ ;\n"
            ".INNER:\n"
            "IADD3 R1, R1, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R1, 0x4, PT ;\n"
            "@P0 BRA `(INNER) ;\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"
            "@P0 BRA `(OUTER) ;\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        assert len(cfg.loops) == 2
        prog = cfg.program
        inner_i = prog.index_of_offset(prog.label_offset("INNER"))
        assert cfg.loop_depth[inner_i] == 2  # nested twice
        outer_i = prog.index_of_offset(prog.label_offset("OUTER"))
        assert cfg.loop_depth[outer_i] == 1

    def test_no_loops_straightline(self):
        cfg = _cfg("MOV R1, R2 ;\nEXIT ;\n")
        assert cfg.loops == []
        assert cfg.loop_depth == [0, 0]

    def test_loops_sorted_outermost_first(self):
        text = (
            ".OUTER:\n"
            "MOV R1, RZ ;\n"
            ".INNER:\n"
            "IADD3 R1, R1, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R1, 0x4, PT ;\n"
            "@P0 BRA `(INNER) ;\n"
            "ISETP.LT.AND P1, PT, R0, 0x4, PT ;\n"
            "@P1 BRA `(OUTER) ;\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        assert len(cfg.loops[0].blocks) >= len(cfg.loops[1].blocks)


class TestLoopRecoveryEdgeCases:
    def test_two_back_edges_sharing_a_header(self):
        text = (
            "MOV R0, RZ ;\n"
            ".HEAD:\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"
            "@P0 BRA `(HEAD) ;\n"
            "ISETP.LT.AND P1, PT, R0, 0x8, PT ;\n"
            "@P1 BRA `(HEAD) ;\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        # one natural loop per back edge, same header for both
        headers = [l.header for l in cfg.loops]
        assert len(cfg.loops) == 2
        assert headers[0] == headers[1]
        tails = {l.back_edge_from for l in cfg.loops}
        assert len(tails) == 2
        # every instruction between HEAD and the second BRA is in a loop
        for i in range(1, 6):
            assert cfg.in_loop(i)

    def test_irreducible_region_no_natural_loop_claimed(self):
        # A and B jump into each other's middles; neither header
        # dominates the other, so the back-edge test must reject both
        # cycles instead of inventing a bogus natural loop
        text = (
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(B) ;\n"
            ".A:\n"
            "IADD3 R1, R1, 0x1, RZ ;\n"
            "@P1 BRA `(B) ;\n"
            "BRA `(END) ;\n"
            ".B:\n"
            "IADD3 R1, R1, 0x2, RZ ;\n"
            "@P2 BRA `(A) ;\n"
            ".END:\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        assert cfg.loops == []
        # dominators still well-defined: entry dominates everything
        for blk in cfg.blocks:
            assert cfg.dominates(0, blk.bid)

    def test_self_loop_block(self):
        text = (
            ".LOOP:\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"
            "@P0 BRA `(LOOP) ;\n"
            "EXIT ;\n"
        )
        cfg = _cfg(text)
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header == loop.back_edge_from
