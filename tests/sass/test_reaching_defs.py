"""CFG and reaching-definitions edge cases: predicated defs,
self-loops, unreachable blocks — the shapes the blame slicer leans on."""

from repro.sass import parse_sass
from repro.sass.affine import ReachingDefinitions
from repro.sass.cfg import build_cfg


def _passes(text: str):
    program = parse_sass(text)
    cfg = build_cfg(program)
    return program, cfg, ReachingDefinitions(program, cfg)


class TestPredicatedDefs:
    TEXT = (
        "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"  # 0: defines P0
        "MOV R0, 0x7 ;\n"                       # 1: defines R0
        "@P0 MOV R4, RZ ;\n"                    # 2: guarded def of R4
        "IADD3 R5, R4, R0, RZ ;\n"              # 3
        "EXIT ;\n"
    )

    def test_guarded_def_is_still_a_def(self):
        program, _, rd = _passes(self.TEXT)
        r4 = program[2].dest_registers()[0]
        assert rd.defs_before(r4, 3) == (2,)

    def test_predicate_and_gpr_zero_do_not_collide(self):
        # P0 and R0 share index 0 but live in separate key spaces
        program, _, rd = _passes(self.TEXT)
        p0 = program[2].pred
        assert p0 is not None and p0.predicate
        assert rd.defs_before(p0, 2) == (0,)
        r0 = [r for r in program[3].source_registers()
              if not r.predicate and r.index == 0]
        assert rd.defs_before(r0[0], 3) == (1,)

    def test_defs_at_includes_the_def_site_defs_before_does_not(self):
        program, _, rd = _passes(self.TEXT)
        r4 = program[2].dest_registers()[0]
        assert rd.defs_at(r4, 2) == (2,)
        assert rd.defs_before(r4, 2) == (-1,)  # live-in before it


class TestBranchMerge:
    TEXT = (
        "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
        "@P0 BRA `(ELSE) ;\n"
        "MOV R4, 0x1 ;\n"
        "BRA `(JOIN) ;\n"
        ".ELSE:\n"
        "MOV R4, 0x2 ;\n"
        ".JOIN:\n"
        "IADD3 R5, R4, R4, RZ ;\n"
        "EXIT ;\n"
    )

    def test_union_over_paths_at_join(self):
        program, _, rd = _passes(self.TEXT)
        r4 = program[2].dest_registers()[0]
        assert rd.defs_before(r4, 5) == (2, 4)

    def test_kill_within_one_arm(self):
        program, _, rd = _passes(self.TEXT)
        r4 = program[2].dest_registers()[0]
        # inside the fallthrough arm only its own def reaches
        assert rd.defs_at(r4, 2) == (2,)


class TestSelfLoop:
    TEXT = (
        "MOV R0, RZ ;\n"                          # 0
        ".SELF:\n"
        "IADD3 R0, R0, 0x1, RZ ;\n"               # 1
        "ISETP.LT.AND P0, PT, R0, 0x8, PT ;\n"    # 2
        "@P0 BRA `(SELF) ;\n"                     # 3
        "EXIT ;\n"                                # 4
    )

    def test_block_is_its_own_successor(self):
        _, cfg, _ = _passes(self.TEXT)
        blk = cfg.block_of_instruction(1)
        assert blk.bid in blk.successors
        assert blk.bid in blk.predecessors

    def test_self_loop_detected_as_natural_loop(self):
        _, cfg, _ = _passes(self.TEXT)
        header = cfg.block_of_instruction(1).bid
        matching = [lp for lp in cfg.loops if lp.header == header]
        assert len(matching) == 1
        assert matching[0].blocks == frozenset({header})
        assert matching[0].back_edge_from == header
        assert cfg.in_loop(1) and not cfg.in_loop(0)

    def test_loop_carried_def_reaches_loop_head(self):
        program, _, rd = _passes(self.TEXT)
        r0 = program[1].dest_registers()[0]
        # entering the IADD3: the preheader MOV and the previous
        # iteration's own update both reach
        assert rd.defs_before(r0, 1) == (0, 1)
        # after it, within the block, only the local def
        assert rd.defs_before(r0, 2) == (1,)


class TestUnreachable:
    TEXT = (
        "MOV R4, R5 ;\n"   # 0
        "EXIT ;\n"         # 1
        ".DEAD:\n"
        "MOV R4, R6 ;\n"   # 2: never executed
        "EXIT ;\n"         # 3
    )

    def test_dead_block_has_no_predecessors(self):
        _, cfg, _ = _passes(self.TEXT)
        blk = cfg.block_of_instruction(2)
        assert blk.predecessors == []
        # EXIT really terminates: the entry block has no successors
        assert cfg.block_of_instruction(0).successors == []

    def test_dead_block_not_dominated_and_not_a_loop(self):
        _, cfg, _ = _passes(self.TEXT)
        dead = cfg.block_of_instruction(2).bid
        assert cfg.idom[dead] is None
        assert not cfg.dominates(0, dead)
        assert cfg.loops == []

    def test_live_defs_do_not_leak_into_dead_code(self):
        program, _, rd = _passes(self.TEXT)
        r4 = program[0].dest_registers()[0]
        # the dead block sees only the live-in sentinel, not index 0
        assert rd.defs_before(r4, 2) == (-1,)
        assert rd.defs_at(r4, 2) == (2,)
