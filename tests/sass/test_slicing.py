"""Backward def-use blame slicing (``repro.sass.slicing``)."""


from repro.gpu.stalls import StallReason
from repro.sampling.pcsampler import PCSampler
from repro.sass import parse_sass
from repro.sass.isa import OpClass
from repro.sass.slicing import (
    REASON_PRODUCERS,
    BlameSlicer,
    producer_matches,
)

LONG = StallReason.LONG_SCOREBOARD
SHORT = StallReason.SHORT_SCOREBOARD
WAIT = StallReason.WAIT


def _slicer(text: str) -> BlameSlicer:
    return BlameSlicer(parse_sass(text))


class TestProducerMatches:
    def test_reason_classes_are_disjoint_enough(self):
        assert OpClass.GLOBAL_LOAD in REASON_PRODUCERS[LONG]
        assert OpClass.SHARED_LOAD in REASON_PRODUCERS[SHORT]
        assert OpClass.GLOBAL_LOAD not in REASON_PRODUCERS[SHORT]
        assert OpClass.INT_ALU in REASON_PRODUCERS[WAIT]

    def test_none_reason_matches_anything(self):
        p = parse_sass("LDG.E.SYS R4, [R2] ;\nEXIT ;\n")
        assert producer_matches(None, p[0])


class TestDirectProducer:
    def test_consumer_blames_the_load(self, loop_program):
        s = BlameSlicer(loop_program)
        b = s.slice_index(4, reason=LONG)  # FFMA R4, R4, R4, R4
        assert b.consistent
        assert b.producer.pc == 3  # the LDG
        assert b.producer.op.startswith("LDG")
        assert b.producer.reg == "R4"
        assert not b.loop_carried
        assert len(b.chain) == 1

    def test_describe_names_producer_and_register(self, loop_program):
        b = BlameSlicer(loop_program).slice_index(4, reason=LONG)
        assert b.describe() == "waits on LDG.E.SYS @0x0030 via R4"

    def test_to_dict_round_trip_fields(self, loop_program):
        b = BlameSlicer(loop_program).slice_index(4, reason=LONG)
        d = b.to_dict()
        assert d["reason"] == LONG.cupti_name
        assert d["consistent"] is True
        assert d["chain"][-1]["pc"] == 3
        assert d["chain"][-1]["offset"] == 0x30
        # false flags are omitted from the compact form
        assert "loop_carried" not in d["chain"][-1]


class TestTransparentWalk:
    TEXT = (
        "LDG.E.SYS R4, [R2] ;\n"
        "MOV R5, R4 ;\n"
        "FADD R6, R5, R5 ;\n"
        "EXIT ;\n"
    )

    def test_walks_through_register_copy(self):
        b = _slicer(self.TEXT).slice_index(2, reason=LONG)
        assert b.consistent
        assert [s.pc for s in b.chain] == [1, 0]  # MOV, then the LDG
        assert b.chain[0].reg == "R5"
        assert b.chain[1].reg == "R4"

    def test_inconsistent_reason_keeps_shortest_fallback(self):
        # no MIO op anywhere: the slice cannot satisfy short_scoreboard
        b = _slicer(self.TEXT).slice_index(2, reason=SHORT)
        assert not b.consistent
        assert b.chain  # still explains *something*: the nearest def
        assert b.chain[0].pc == 1

    def test_max_depth_bounds_the_walk(self):
        text = "LDG.E.SYS R4, [R2] ;\n"
        for i in range(5, 10):
            text += f"MOV R{i}, R{i - 1} ;\n"
        text += "FADD R12, R9, R9 ;\nEXIT ;\n"
        s = _slicer(text)
        deep = s.slice_index(6, reason=LONG, max_depth=8)
        assert deep.consistent and deep.producer.pc == 0
        shallow = s.slice_index(6, reason=LONG, max_depth=2)
        assert not shallow.consistent


class TestBranchJoin:
    TEXT = (
        "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
        "@P0 BRA `(ELSE) ;\n"
        "LDG.E.SYS R4, [R2] ;\n"
        "BRA `(JOIN) ;\n"
        ".ELSE:\n"
        "LDS R4, [R3] ;\n"
        ".JOIN:\n"
        "FADD R5, R4, R4 ;\n"
        "EXIT ;\n"
    )

    def test_long_scoreboard_finds_the_global_arm(self):
        b = _slicer(self.TEXT).slice_index(5, reason=LONG)
        assert b.consistent
        assert b.producer.op.startswith("LDG")

    def test_short_scoreboard_finds_the_shared_arm(self):
        b = _slicer(self.TEXT).slice_index(5, reason=SHORT)
        assert b.consistent
        assert b.producer.op.startswith("LDS")

    def test_closest_definition_visited_first(self):
        deps = _slicer(self.TEXT).direct_deps(5)
        assert [d.pc for d in deps] == [4, 2]  # LDS (closer), then LDG


class TestLoops:
    def test_loop_carried_self_dependence(self, loop_program):
        s = BlameSlicer(loop_program)
        b = s.slice_index(5, reason=WAIT)  # IADD3 R0, R0, 0x1, RZ
        assert b.consistent
        assert b.producer.pc == 5  # its own previous iteration
        assert b.producer.loop_carried
        assert b.loop_carried
        assert "[loop-carried]" in b.describe()

    def test_induction_variable_is_flagged(self, loop_program):
        b = BlameSlicer(loop_program).slice_index(5, reason=WAIT)
        assert b.producer.induction
        d = b.to_dict()
        assert d["chain"][-1]["induction"] is True

    def test_predicate_guard_traced_to_setp(self, loop_program):
        s = BlameSlicer(loop_program)
        b = s.slice_index(7, reason=WAIT)  # @P0 BRA `(LOOP)
        assert b.consistent
        assert b.producer.pc == 6  # the ISETP
        assert b.producer.reg == "P0"

    def test_address_register_not_induction_here(self, loop_program):
        # R2 is loop-invariant (set up before the loop): the LDG's
        # address dep must not be mislabelled as an induction update
        deps = BlameSlicer(loop_program).direct_deps(3)
        (dep,) = deps
        assert dep.pc == 2 and dep.reg == "R2"
        assert not dep.induction and not dep.loop_carried


class TestSlicePc:
    def test_out_of_range_returns_none(self, loop_program):
        s = BlameSlicer(loop_program)
        assert s.slice_pc(-1) is None
        assert s.slice_pc(len(loop_program)) is None

    def test_matches_slice_index_for_valid_pc(self, loop_program):
        s = BlameSlicer(loop_program)
        assert s.slice_pc(4, reason=LONG) == s.slice_index(4, reason=LONG)

    def test_no_sources_gives_empty_chain(self):
        b = _slicer("S2R R0, SR_TID.X ;\nEXIT ;\n").slice_index(0,
                                                                reason=LONG)
        assert b.chain == ()
        assert not b.consistent
        assert b.describe() == "no producer found"


class TestSliceSampling:
    def test_blames_sampled_dependency_stalls(self, saxpy, saxpy_launch):
        sampling = PCSampler(period_cycles=64).sample(saxpy_launch)
        slicer = BlameSlicer(saxpy.program)
        blames = slicer.slice_sampling(sampling)
        assert blames, "saxpy samples no dependency stall at all?"
        sampled = {s.pc for s in sampling.samples}
        for pc, b in blames.items():
            assert pc in sampled
            assert b.stall_pc == pc
            assert b.chain
            assert b.reason in (LONG, SHORT, WAIT)

    def test_long_scoreboard_blames_are_consistent(self, saxpy,
                                                   saxpy_launch):
        sampling = PCSampler(period_cycles=64).sample(saxpy_launch)
        blames = BlameSlicer(saxpy.program).slice_sampling(sampling)
        long_blames = [b for b in blames.values() if b.reason is LONG]
        assert long_blames
        for b in long_blames:
            assert b.consistent
            assert b.producer.op.startswith(("LDG", "LDC", "TEX", "LDL"))
