"""Parser robustness: arbitrary text must either parse or raise
SassSyntaxError/ValueError — never crash with anything else."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SassSyntaxError
from repro.sass import parse_sass
from repro.sass.parser import parse_instruction


printable_lines = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;[]()+-@!%/*_#\"'",
    max_size=80,
)


@given(st.lists(printable_lines, max_size=12).map("\n".join))
@settings(max_examples=200, deadline=None)
def test_parse_sass_never_crashes(text):
    try:
        parse_sass(text)
    except (SassSyntaxError, ValueError):
        pass  # rejecting bad input is correct


@given(printable_lines)
@settings(max_examples=200, deadline=None)
def test_parse_instruction_never_crashes(line):
    try:
        parse_instruction(line)
    except (SassSyntaxError, ValueError):
        pass


@given(st.sampled_from([
    "LDG", "STG", "IADD3", "FFMA", "BRA", "EXIT", "MOV",
]), st.lists(st.sampled_from([
    "R0", "R4", "RZ", "PT", "P0", "0x10", "-0x4", "[R2]", "[R2+0x8]",
    "c[0x0][0x160]", "1.5", "-R3", "`(L)", "SR_TID.X",
]), max_size=5))
@settings(max_examples=200, deadline=None)
def test_wellformed_operand_soup_roundtrips(base, ops):
    """Syntactically valid instruction lines parse, and re-render to
    something that parses to the same thing."""
    from repro.sass.writer import format_instruction

    line = base + (" " + ", ".join(ops) if ops else "") + " ;"
    ins = parse_instruction(line)
    again = parse_instruction(format_instruction(ins, with_offset=False))
    assert format_instruction(ins) == format_instruction(again)
