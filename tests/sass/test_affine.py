"""The affine address abstract interpreter (repro.sass.affine)."""


from repro.gpu.config import GPUSpec
from repro.gpu.simulator import LaunchConfig
from repro.sass import build_cfg, parse_sass
from repro.sass.affine import (
    TOP,
    Affine,
    AffineAnalysis,
    AffineEnv,
    CmpExpr,
    MemoryPredictor,
    ReachingDefinitions,
    pred_proof,
    static_access_report,
    summarize_proofs,
)
from repro.sass.isa import Register


def _analysis(text: str, env=None):
    program = parse_sass(text)
    cfg = build_cfg(program)
    return program, cfg, AffineAnalysis(program, cfg, env)


class TestAffineAlgebra:
    def test_make_drops_zero_coeffs(self):
        a = Affine.make(3, {"tid.x": 0, "ctaid.x": 2})
        assert a.dims() == ("ctaid.x",)
        assert a.coeff("tid.x") == 0

    def test_add_sub_neg_scale(self):
        a = Affine.make(1, {"tid.x": 4})
        b = Affine.make(2, {"tid.x": -4, "ctaid.x": 8})
        s = a.add(b)
        assert s.const == 3
        assert s.coeff("tid.x") == 0 and s.coeff("ctaid.x") == 8
        assert a.sub(a).is_constant and a.sub(a).const == 0
        assert a.neg().coeff("tid.x") == -4
        assert a.scale(3).coeff("tid.x") == 12 and a.scale(3).const == 3

    def test_scale_by_zero_is_constant_zero(self):
        a = Affine.make(5, {"tid.x": 4})
        z = a.scale(0)
        assert z.is_constant and z.const == 0

    def test_str_is_stable(self):
        a = Affine.make(16, {"tid.x": 4, "ctaid.x": 512})
        assert str(a) == "16 + 512*ctaid.x + 4*tid.x"


class TestTransfers:
    def test_s2r_and_imad_chain(self):
        # addr = 4*tid.x + base(param)
        text = (
            "S2R R0, SR_TID.X ;\n"
            "MOV R2, c[0x0][0x160] ;\n"
            "IMAD R4, R0, 0x4, R2 ;\n"
            "LDG.E.SYS R6, [R4] ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        addr = aff.address_value(3)
        assert addr is not TOP
        assert addr.coeff("tid.x") == 4
        assert addr.coeff("param:0x160") == 1

    def test_shf_left_scales(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "SHF.L.U32 R1, R0, 0x3, RZ ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        v = aff.value_before(Register(1), 2)
        assert v.coeff("tid.x") == 8

    def test_iadd3_with_negation(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "S2R R1, SR_CTAID.X ;\n"
            "IADD3 R2, R0, 0x10, -R1 ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        v = aff.value_before(Register(2), 3)
        assert v.coeff("tid.x") == 1
        assert v.coeff("ctaid.x") == -1
        assert v.const == 16

    def test_unknown_producer_is_top(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "I2F R1, R0 ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        assert aff.value_before(Register(1), 2) is TOP

    def test_env_folds_params_and_ntid(self):
        text = (
            "MOV R2, c[0x0][0x160] ;\n"
            "S2R R3, SR_NTID.X ;\n"
            "EXIT ;\n"
        )
        env = AffineEnv(params={0x160: 0x10000}, ntid=(64, 1, 1))
        _, _, aff = _analysis(text, env)
        v = aff.value_before(Register(2), 2)
        assert v.is_constant and v.const == 0x10000
        v = aff.value_before(Register(3), 2)
        assert v.is_constant and v.const == 64


class TestJoins:
    def test_agreeing_branches_survive_the_meet(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(SKIP) ;\n"
            "MOV R1, 0x4 ;\n"
            ".SKIP:\n"
            "MOV R2, R0 ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        # R0 is the same on both edges into SKIP
        v = aff.value_before(Register(0), 4)
        assert v.coeff("tid.x") == 1

    def test_disagreeing_branches_meet_to_top(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "MOV R1, 0x8 ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(SKIP) ;\n"
            "MOV R1, 0x4 ;\n"
            ".SKIP:\n"
            "MOV R2, R1 ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        assert aff.value_before(Register(1), 5) is TOP


class TestInductionVariables:
    LOOP = (
        "S2R R0, SR_TID.X ;\n"
        "MOV R2, c[0x0][0x160] ;\n"
        "IMAD R2, R0, 0x4, R2 ;\n"
        "MOV R3, RZ ;\n"
        ".LOOP:\n"
        "LDG.E.SYS R4, [R2] ;\n"
        "IADD3 R2, R2, 0x80, RZ ;\n"
        "IADD3 R3, R3, 0x1, RZ ;\n"
        "ISETP.LT.AND P0, PT, R3, 0x8, PT ;\n"
        "@P0 BRA `(LOOP) ;\n"
        "EXIT ;\n"
    )

    def test_pointer_and_counter_detected(self):
        program, cfg, aff = _analysis(self.LOOP)
        header = cfg.block_of_instruction(4).bid
        steps = aff.iv_steps(header)
        assert steps.get(2) == 0x80  # pointer advances 128 bytes/iter
        assert steps.get(3) == 1  # counter increments

    def test_loop_address_keeps_lane_stride(self):
        program, cfg, aff = _analysis(self.LOOP)
        addr = aff.address_value(4)
        assert addr is not TOP
        assert addr.coeff("tid.x") == 4
        header = cfg.block_of_instruction(4).bid
        assert addr.coeff(f"iv:{header}") == 0x80

    def test_non_affine_update_drops_to_top(self):
        # s >>= 1 is not an affine step: the value must not survive
        text = (
            "MOV R2, 0x80 ;\n"
            ".LOOP:\n"
            "SHF.R.S32.HI R2, R2, 0x1, RZ ;\n"
            "ISETP.NE.AND P0, PT, R2, RZ, PT ;\n"
            "@P0 BRA `(LOOP) ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        assert aff.value_before(Register(2), 2) is TOP

    def test_loop_invariant_value_survives(self):
        program, cfg, aff = _analysis(self.LOOP)
        # R0 = tid.x never changes inside the loop
        v = aff.value_before(Register(0), 5)
        assert v.coeff("tid.x") == 1


class TestLoopEdgeCases:
    def test_nested_loops_one_iv_each(self):
        text = (
            "MOV R0, RZ ;\n"
            ".OUTER:\n"
            "MOV R1, RZ ;\n"
            ".INNER:\n"
            "IADD3 R1, R1, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R1, 0x4, PT ;\n"
            "@P0 BRA `(INNER) ;\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"
            "@P0 BRA `(OUTER) ;\n"
            "EXIT ;\n"
        )
        program, cfg, aff = _analysis(text)
        inner = cfg.block_of_instruction(2).bid
        # the inner counter is reset each outer iteration: at the inner
        # header it is a pure function of the *inner* iv only
        assert aff.iv_steps(inner).get(1) == 1
        v = aff.value_before(Register(1), 3)
        assert v is not TOP and v.dims() == (f"iv:{inner}",)
        # the outer counter crosses the inner loop; the analysis is
        # allowed to degrade it to ⊤ but must never claim a wrong value
        v0 = aff.value_before(Register(0), 7)
        assert v0 is TOP or v0.coeff("iv:%d" % cfg.block_of_instruction(1).bid)

    def test_two_back_edges_sharing_a_header(self):
        text = (
            "MOV R0, RZ ;\n"
            ".HEAD:\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x4, PT ;\n"
            "@P0 BRA `(HEAD) ;\n"
            "ISETP.LT.AND P1, PT, R0, 0x8, PT ;\n"
            "@P1 BRA `(HEAD) ;\n"
            "EXIT ;\n"
        )
        program, cfg, aff = _analysis(text)
        header = cfg.block_of_instruction(1).bid
        # both edges step R0 by one: still a recognised induction var
        assert aff.iv_steps(header).get(0) == 1

    def test_irreducible_region_degrades_without_crash(self):
        # two blocks branching into each other's middles: no natural
        # loop structure; the analysis must terminate and answer TOP
        text = (
            "S2R R0, SR_TID.X ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(B) ;\n"
            ".A:\n"
            "IADD3 R1, R1, 0x1, RZ ;\n"
            "ISETP.LT.AND P1, PT, R1, 0x8, PT ;\n"
            "@P1 BRA `(B) ;\n"
            "BRA `(END) ;\n"
            ".B:\n"
            "IADD3 R1, R1, 0x2, RZ ;\n"
            "ISETP.LT.AND P2, PT, R1, 0x8, PT ;\n"
            "@P2 BRA `(A) ;\n"
            ".END:\n"
            "EXIT ;\n"
        )
        program, cfg, aff = _analysis(text)
        assert aff.value_before(Register(1), len(program) - 1) is TOP
        # tid.x does not flow through the region: still precise
        assert aff.value_before(Register(0), len(program) - 1).coeff(
            "tid.x") == 1


class TestPredicates:
    def test_guard_expr_recovers_comparison(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 LDG.E.SYS R2, [R4] ;\n"
            "EXIT ;\n"
        )
        _, _, aff = _analysis(text)
        g = aff.guard_expr(2)
        assert isinstance(g, CmpExpr)

    def test_pred_proof_uses_dim_ranges(self):
        env = AffineEnv(ntid=(32, 1, 1))
        lhs = Affine.dim("tid.x")
        # tid.x < 64 always holds for a 32-wide block
        assert pred_proof(CmpExpr("LT", lhs, Affine(64), False), env) is True
        # tid.x < 16 is sometimes false
        assert pred_proof(CmpExpr("LT", lhs, Affine(16), False), env) is None


class TestReachingDefinitions:
    def test_branch_definition_joins(self):
        # R1 defined before the branch AND inside one arm: both defs
        # reach the join (the stream-order approximation saw only one)
        text = (
            "MOV R1, 0x1 ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(SKIP) ;\n"
            "MOV R1, 0x2 ;\n"
            ".SKIP:\n"
            "MOV R2, R1 ;\n"
            "EXIT ;\n"
        )
        program = parse_sass(text)
        cfg = build_cfg(program)
        rd = ReachingDefinitions(program, cfg)
        assert rd.defs_at(Register(1), 4) == (0, 3)

    def test_same_block_definition_wins(self):
        text = (
            "MOV R1, 0x1 ;\n"
            "MOV R1, 0x2 ;\n"
            "MOV R2, R1 ;\n"
            "EXIT ;\n"
        )
        program = parse_sass(text)
        cfg = build_cfg(program)
        rd = ReachingDefinitions(program, cfg)
        assert rd.defs_at(Register(1), 2) == (1,)

    def test_live_in_reported(self):
        text = "MOV R2, R9 ;\nEXIT ;\n"
        program = parse_sass(text)
        cfg = build_cfg(program)
        rd = ReachingDefinitions(program, cfg)
        assert rd.defs_at(Register(9), 0) == (-1,)


class TestMemoryPredictor:
    def _predict(self, text, config, env, pc):
        program = parse_sass(text)
        cfg = build_cfg(program)
        aff = AffineAnalysis(program, cfg, env)
        pred = MemoryPredictor(program, cfg, aff, config, GPUSpec.small(1))
        return pred.predict(pc)

    def test_coalesced_load_is_four_sectors(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "MOV R2, c[0x0][0x160] ;\n"
            "IMAD R4, R0, 0x4, R2 ;\n"
            "LDG.E.SYS R6, [R4] ;\n"
            "EXIT ;\n"
        )
        config = LaunchConfig(grid=(1, 1), block=(32, 1))
        env = AffineEnv(params={0x160: 0x10000}, ntid=(32, 1, 1),
                        nctaid=(1, 1, 1))
        p = self._predict(text, config, env, 3)
        assert p.proven and p.space == "global"
        assert p.per_request == 4.0
        assert p.exact_requests and p.requests == 1

    def test_strided_load_is_thirtytwo_sectors(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "MOV R2, c[0x0][0x160] ;\n"
            "IMAD R4, R0, 0x20, R2 ;\n"
            "LDG.E.SYS R6, [R4] ;\n"
            "EXIT ;\n"
        )
        config = LaunchConfig(grid=(1, 1), block=(32, 1))
        env = AffineEnv(params={0x160: 0x10000}, ntid=(32, 1, 1),
                        nctaid=(1, 1, 1))
        p = self._predict(text, config, env, 3)
        assert p.proven and p.per_request == 32.0

    def test_bank_conflicted_shared_store(self):
        # 8-byte lane stride: lanes 0 and 16 share bank 0 -> 2-way
        text = (
            "S2R R0, SR_TID.X ;\n"
            "SHF.L.U32 R1, R0, 0x3, RZ ;\n"
            "STS [R1], R0 ;\n"
            "EXIT ;\n"
        )
        config = LaunchConfig(grid=(1, 1), block=(32, 1))
        env = AffineEnv(ntid=(32, 1, 1), nctaid=(1, 1, 1))
        p = self._predict(text, config, env, 2)
        assert p.proven and p.space == "shared"
        assert p.per_request == 2.0

    def test_unresolved_address_is_unproven(self):
        text = (
            "LDG.E.SYS R2, [R4] ;\n"  # R4 live-in: unknown
            "EXIT ;\n"
        )
        config = LaunchConfig(grid=(1, 1), block=(32, 1))
        p = self._predict(text, config, AffineEnv(), 0)
        assert not p.proven
        assert p.unproven_reason


class TestStaticReport:
    def test_report_without_any_launch(self):
        text = (
            "S2R R0, SR_TID.X ;\n"
            "MOV R2, c[0x0][0x160] ;\n"
            "IMAD R4, R0, 0x4, R2 ;\n"
            "LDG.E.SYS R6, [R4] ;\n"
            "SHF.L.U32 R1, R0, 0x3, RZ ;\n"
            "STS [R1], R0 ;\n"
            "LDG.E.SYS R8, [R10] ;\n"
            "EXIT ;\n"
        )
        program = parse_sass(text)
        cfg = build_cfg(program)
        aff = AffineAnalysis(program, cfg)
        proofs = static_access_report(
            program, cfg, aff, None, pointer_params=frozenset({0x160})
        )
        by_pc = {p.pc: p for p in proofs}
        assert by_pc[3].space == "global" and by_pc[3].status == "proven"
        assert by_pc[5].space == "shared" and by_pc[5].status == "flagged"
        assert by_pc[6].status == "unproven"
        summary = summarize_proofs(proofs)
        assert summary["global"]["proven_coalesced"] == 1
        assert summary["global"]["unproven"] == 1
        assert summary["shared"]["flagged"] == 1

    def test_unknown_param_slot_stays_unproven(self):
        # without knowing 0x160 is a pointer, the base could shift the
        # sector window: no verdict, never a guess
        text = (
            "S2R R0, SR_TID.X ;\n"
            "MOV R2, c[0x0][0x160] ;\n"
            "IMAD R4, R0, 0x4, R2 ;\n"
            "LDG.E.SYS R6, [R4] ;\n"
            "EXIT ;\n"
        )
        program = parse_sass(text)
        cfg = build_cfg(program)
        aff = AffineAnalysis(program, cfg)
        proofs = static_access_report(program, cfg, aff, None)
        assert proofs[0].status == "unproven"
