"""Parser and writer tests, including round-trip on paper Listing 1."""

import pytest

from repro.errors import SassSyntaxError
from repro.sass import format_program, parse_sass
from repro.sass.parser import parse_instruction
from repro.sass.writer import format_instruction


PAPER_LISTING_1 = """
LDG.E.SYS R0, [R2] ;
LDG.E.SYS R5, [R4] ;
LDG.E.SYS R7, [R4+-0x8] ;
LDG.E.SYS R9, [R2+-0x8] ;
STG.E.SYS [R4], R9 ;
"""


class TestParseInstruction:
    def test_offset_comment(self):
        ins = parse_instruction("/*01a0*/ MOV R1, R2 ;")
        assert ins.offset == 0x1A0

    def test_predicated(self):
        ins = parse_instruction("@!P2 EXIT ;")
        assert ins.pred is not None and ins.pred.index == 2
        assert ins.pred_negated

    def test_operand_kinds(self):
        ins = parse_instruction(
            "IMAD.WIDE R2, R0, 0x4, c[0x0][0x160] ;"
        )
        kinds = [op.kind for op in ins.operands]
        assert kinds == ["reg", "reg", "imm", "const"]

    def test_float_immediate(self):
        ins = parse_instruction("FMUL R1, R2, 0.5 ;")
        assert ins.operands[2].kind == "fimm"
        assert ins.operands[2].fimm == 0.5

    def test_negative_immediate(self):
        ins = parse_instruction("IADD3 R1, R2, -0x4, RZ ;")
        assert ins.operands[2].imm == -4

    def test_negated_register_operand(self):
        ins = parse_instruction("FADD R1, R2, -R3 ;")
        assert ins.operands[2].negated

    def test_negated_const_operand(self):
        ins = parse_instruction("IADD3 R1, R2, -c[0x0][0x168], RZ ;")
        assert ins.operands[2].kind == "const"
        assert ins.operands[2].negated

    def test_special_register(self):
        ins = parse_instruction("S2R R0, SR_CTAID.X ;")
        assert ins.operands[1].special == "SR_CTAID.X"

    def test_label_operand(self):
        ins = parse_instruction("BRA `(L_x_1) ;")
        assert ins.branch_target() == "L_x_1"

    def test_memref_negative(self):
        ins = parse_instruction("LDG.E.SYS R7, [R4+-0x8] ;")
        assert ins.mem_operand().offset == -8

    def test_errors(self):
        with pytest.raises(SassSyntaxError):
            parse_instruction(";")
        with pytest.raises(SassSyntaxError):
            parse_instruction("MOV R1, ??? ;")

    def test_error_carries_lineno(self):
        with pytest.raises(SassSyntaxError) as exc:
            parse_instruction("MOV R1, ??? ;", lineno=42)
        assert "42" in str(exc.value)


class TestParseProgram:
    def test_paper_listing_1(self):
        prog = parse_sass(PAPER_LISTING_1, "listing1")
        assert len(prog) == 5
        assert prog[0].opcode.is_global_load
        assert prog[2].mem_operand().offset == -8
        assert prog[4].opcode.name == "STG.E.SYS"

    def test_labels(self, loop_program):
        assert "LOOP" in loop_program.labels
        idx = loop_program.index_of_offset(loop_program.label_offset("LOOP"))
        assert loop_program[idx].opcode.base == "LDG"

    def test_at_offset(self, loop_program):
        assert loop_program.at_offset(0).opcode.base == "S2R"
        with pytest.raises(KeyError):
            loop_program.at_offset(0x9999)

    def test_line_info_sticky(self):
        text = (
            '//## File "k.cu", line 7\n'
            "MOV R1, R2 ;\n"
            "MOV R3, R4 ;\n"
            '//## File "k.cu", line 9\n'
            "EXIT ;\n"
        )
        prog = parse_sass(text)
        assert [i.line for i in prog] == [7, 7, 9]

    def test_section_metadata(self):
        text = (
            ".section .text.mykernel\n"
            '.sectioninfo @"SHI_REGISTERS=25"\n'
            '.sectioninfo @"SHI_LOCAL=8"\n'
            '.sectioninfo @"SHI_SHARED=2048"\n'
            "EXIT ;\n"
        )
        prog = parse_sass(text)
        assert prog.name == "mykernel"
        assert prog.registers_per_thread == 25
        assert prog.local_bytes_per_thread == 8
        assert prog.shared_bytes == 2048

    def test_duplicate_label_rejected(self):
        text = ".A:\nMOV R1, R2 ;\n.A:\nEXIT ;\n"
        with pytest.raises(ValueError):
            parse_sass(text)

    def test_opcode_histogram(self, loop_program):
        hist = loop_program.opcode_histogram()
        assert hist["IADD3"] == 2
        assert hist["LDG"] == 1

    def test_source_lines_grouping(self):
        text = '//## File "k.cu", line 3\nMOV R1, R2 ;\nMOV R3, R4 ;\nEXIT ;\n'
        prog = parse_sass(text)
        assert len(prog.source_lines()[3]) == 3


class TestRoundTrip:
    def test_loop_roundtrip(self, loop_program):
        text = format_program(loop_program)
        again = parse_sass(text)
        assert len(again) == len(loop_program)
        assert again.name == loop_program.name
        for a, b in zip(loop_program, again):
            assert format_instruction(a) == format_instruction(b)
        assert again.labels == loop_program.labels

    def test_single_instruction_roundtrip(self):
        src = "@!P1 LDG.E.128.CONSTANT.SYS R4, [R2+-0x10] ;"
        ins = parse_instruction(src)
        assert format_instruction(ins, with_offset=False) == src

    def test_negation_roundtrip(self):
        for src in (
            "FADD R1, R2, -R3 ;",
            "IADD3 R1, R2, -c[0x0][0x168], RZ ;",
            "FMNMX R1, R2, R3, !PT ;",
        ):
            ins = parse_instruction(src)
            assert format_instruction(ins, with_offset=False) == src
