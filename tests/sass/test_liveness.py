"""Liveness, register pressure, def-use and last-writer queries."""

from repro.sass import compute_liveness, def_use_chains, parse_sass
from repro.sass.isa import Register
from repro.sass.liveness import last_writer_before, last_writer_index_before


SIMPLE = """
MOV R1, 0x1 ;
MOV R2, 0x2 ;
IADD3 R3, R1, R2, RZ ;
STG.E.SYS [R4], R3 ;
EXIT ;
"""


class TestLiveness:
    def test_pressure_profile(self):
        prog = parse_sass(SIMPLE)
        li = compute_liveness(prog)
        # after first MOV: R1 and R4 live (R4 is live-in, used later)
        assert li.pressure_at(0) == 2
        # after IADD3: R3 and R4 live
        assert li.pressure_at(2) == 2
        # after the store nothing is live
        assert li.pressure_at(3) == 0

    def test_max_pressure(self):
        prog = parse_sass(SIMPLE)
        li = compute_liveness(prog)
        assert li.max_pressure == 3  # R1, R2, R4 between the MOVs

    def test_live_through_loop(self, loop_program):
        li = compute_liveness(loop_program)
        # R2 (the address) is live across the whole loop
        r2 = Register(2)
        loop_start = loop_program.index_of_offset(0x30)
        assert r2 in li.live_in[loop_start]
        assert r2 in li.live_out[loop_start]

    def test_dead_code_pressure_zero_at_exit(self, loop_program):
        li = compute_liveness(loop_program)
        assert li.pressure_at(len(loop_program) - 1) == 0

    def test_predicated_def_treated_live_through(self):
        # @P0 MOV R1 conditionally overwrites R1; the old value must
        # stay live before it
        text = (
            "MOV R1, 0x5 ;\n"
            "@P0 MOV R1, 0x6 ;\n"
            "STG.E.SYS [R2], R1 ;\n"
            "EXIT ;\n"
        )
        prog = parse_sass(text)
        li = compute_liveness(prog)
        assert Register(1) in li.live_in[1]
        assert Register(1) in li.live_out[0]


class TestDefUse:
    def test_chains(self):
        prog = parse_sass(SIMPLE)
        chains = def_use_chains(prog)
        r1 = chains[Register(1)]
        assert r1.defs == [0]
        assert r1.uses == [2]
        assert r1.is_read_only_after_first_def

    def test_multiple_defs(self, loop_program):
        chains = def_use_chains(loop_program)
        r4 = chains[Register(4)]
        assert len(r4.defs) == 2  # LDG and FFMA
        assert not r4.is_read_only_after_first_def

    def test_last_writer(self, loop_program):
        store_idx = len(loop_program) - 2  # STG
        writer = last_writer_before(loop_program, Register(4), store_idx)
        assert writer is not None
        assert writer.opcode.base == "FFMA"

    def test_last_writer_index(self, loop_program):
        store_idx = len(loop_program) - 2
        idx = last_writer_index_before(loop_program, Register(4), store_idx)
        assert loop_program[idx].opcode.base == "FFMA"

    def test_last_writer_none(self):
        prog = parse_sass(SIMPLE)
        assert last_writer_before(prog, Register(9), 3) is None
