"""Property-based tests (Hypothesis) for the SASS toolkit."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sass import (
    build_cfg,
    compute_liveness,
    format_program,
    parse_sass,
)
from repro.sass.isa import (
    Instruction,
    Label,
    Opcode,
    Operand,
    Program,
    Register,
)
from repro.sass.occupancy import compute_occupancy
from repro.sass.writer import format_instruction


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

regs = st.integers(0, 30).map(Register)
imms = st.integers(-(2**15), 2**15 - 1)


@st.composite
def alu_instruction(draw):
    op = draw(st.sampled_from(["IADD3", "IMAD", "LOP3.LUT"]))
    d, a, b = draw(regs), draw(regs), draw(regs)
    ops = [Operand.r(d), Operand.r(a), Operand.r(b), Operand.i(draw(imms))]
    if op == "LOP3.LUT":
        ops.append(Operand.i(draw(st.integers(0, 255))))
    return Instruction(Opcode.parse(op), ops)


@st.composite
def mem_instruction(draw):
    load = draw(st.booleans())
    width = draw(st.sampled_from(["", ".64", ".128"]))
    base = draw(regs)
    # quad-aligned dest keeps the instruction architecturally legal
    data = Register(draw(st.integers(0, 7)) * 4)
    off = draw(st.integers(-64, 64)) * 4
    if load:
        return Instruction(
            Opcode.parse(f"LDG.E{width}.SYS"),
            [Operand.r(data), Operand.m(base, off)],
        )
    return Instruction(
        Opcode.parse(f"STG.E{width}.SYS"),
        [Operand.m(base, off), Operand.r(data)],
    )


@st.composite
def straightline_program(draw):
    body = draw(
        st.lists(st.one_of(alu_instruction(), mem_instruction()),
                 min_size=1, max_size=30)
    )
    body.append(Instruction(Opcode.parse("EXIT"), []))
    return Program("prop", body)


@st.composite
def looped_program(draw):
    """A program with 0-2 well-formed counted loops."""
    items: list = []
    n_loops = draw(st.integers(0, 2))
    for k in range(n_loops):
        items.extend(draw(st.lists(alu_instruction(), max_size=4)))
        items.append(Label(f"L{k}"))
        items.extend(draw(st.lists(st.one_of(alu_instruction(),
                                             mem_instruction()),
                                   min_size=1, max_size=6)))
        ctr = draw(regs)
        items.append(Instruction(Opcode.parse("IADD3"),
                                 [Operand.r(ctr), Operand.r(ctr),
                                  Operand.i(1), Operand.i(0)]))
        items.append(Instruction(
            Opcode.parse("ISETP.LT.AND"),
            [Operand.r(Register(0, predicate=True)),
             Operand.r(Register(7, predicate=True)),
             Operand.r(ctr), Operand.i(16),
             Operand.r(Register(7, predicate=True))],
        ))
        items.append(Instruction(
            Opcode.parse("BRA"), [Operand.lbl(f"L{k}")],
            pred=Register(0, predicate=True),
        ))
    items.extend(draw(st.lists(alu_instruction(), max_size=4)))
    items.append(Instruction(Opcode.parse("EXIT"), []))
    return Program("loopy", items)


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_roundtrip_straightline(prog):
    """parse(format(p)) reproduces every instruction verbatim."""
    again = parse_sass(format_program(prog))
    assert len(again) == len(prog)
    for a, b in zip(prog, again):
        assert format_instruction(a) == format_instruction(b)


@given(looped_program())
@settings(max_examples=40, deadline=None)
def test_roundtrip_looped(prog):
    again = parse_sass(format_program(prog))
    assert len(again) == len(prog)
    assert again.labels == prog.labels
    for a, b in zip(prog, again):
        assert format_instruction(a, with_offset=False) == \
            format_instruction(b, with_offset=False)


@given(looped_program())
@settings(max_examples=40, deadline=None)
def test_cfg_partitions_program(prog):
    """Blocks tile the instruction stream exactly once, and edges are
    symmetric."""
    cfg = build_cfg(prog)
    covered = []
    for blk in cfg.blocks:
        covered.extend(range(blk.start, blk.end))
    assert covered == list(range(len(prog)))
    for blk in cfg.blocks:
        for s in blk.successors:
            assert blk.bid in cfg.blocks[s].predecessors
        for p in blk.predecessors:
            assert blk.bid in cfg.blocks[p].successors


@given(looped_program())
@settings(max_examples=40, deadline=None)
def test_loops_have_headers_dominating_backedges(prog):
    cfg = build_cfg(prog)
    for loop in cfg.loops:
        assert cfg.dominates(loop.header, loop.back_edge_from)
        assert loop.header in loop.blocks
        assert loop.back_edge_from in loop.blocks


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_liveness_subset_invariant(prog):
    """live_out(i) ⊆ live_in(i) ∪ defs(i); sources ⊆ live_in."""
    li = compute_liveness(prog)
    for i, ins in enumerate(prog):
        defs = {r for r in ins.dest_registers()
                if not r.predicate and not r.is_zero}
        srcs = {r for r in ins.source_registers()
                if not r.predicate and not r.is_zero}
        assert li.live_out[i] <= li.live_in[i] | defs
        assert srcs <= li.live_in[i]


@given(straightline_program())
@settings(max_examples=60, deadline=None)
def test_liveness_nothing_live_after_exit(prog):
    li = compute_liveness(prog)
    assert li.live_out[len(prog) - 1] == frozenset()


@given(
    st.integers(32, 1024),
    st.integers(8, 255),
    st.integers(0, 96 * 1024),
)
@settings(max_examples=100, deadline=None)
def test_occupancy_bounds(threads, regs_per_thread, shared):
    occ = compute_occupancy(threads, regs_per_thread, shared)
    assert 0.0 <= occ.occupancy <= 1.0
    assert occ.active_warps <= 64
    assert occ.active_blocks <= 32


@given(st.integers(32, 1024), st.integers(8, 128))
@settings(max_examples=60, deadline=None)
def test_occupancy_monotone_registers(threads, regs_per_thread):
    lo = compute_occupancy(threads, regs_per_thread)
    hi = compute_occupancy(threads, min(regs_per_thread * 2, 255))
    assert hi.occupancy <= lo.occupancy
