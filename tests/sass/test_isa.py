"""Unit tests for the SASS ISA model (registers, opcodes, operands,
instruction def/use)."""

import pytest

from repro.sass.isa import (
    MemRef,
    Opcode,
    OpClass,
    Operand,
    PT,
    RZ,
    Register,
    RegisterFile,
)
from repro.sass.parser import parse_instruction


class TestRegister:
    def test_basic_names(self):
        assert Register(0).name == "R0"
        assert Register(42).name == "R42"
        assert Register(3, predicate=True).name == "P3"

    def test_zero_registers(self):
        assert RZ.name == "RZ"
        assert RZ.is_zero
        assert PT.name == "PT"
        assert PT.is_zero

    def test_parse(self):
        assert Register.parse("R7") == Register(7)
        assert Register.parse("RZ") is RZ
        assert Register.parse("P2") == Register(2, predicate=True)
        assert Register.parse("PT") is PT

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Register.parse("X3")
        with pytest.raises(ValueError):
            Register.parse("")

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Register(256)
        with pytest.raises(ValueError):
            Register(8, predicate=True)
        with pytest.raises(ValueError):
            Register(-1)

    def test_ordering_and_hash(self):
        assert Register(1) < Register(2)
        assert len({Register(5), Register(5)}) == 1


class TestRegisterFile:
    def test_usage_tracking(self):
        rf = RegisterFile()
        rf.mark(Register(4))
        rf.mark(Register(9))
        rf.mark(RZ)  # never counted
        rf.mark(PT)
        assert rf.used_count == 2
        assert rf.high_water == 10

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            RegisterFile(0)
        with pytest.raises(ValueError):
            RegisterFile(255)


class TestOpcode:
    def test_parse_modifiers(self):
        op = Opcode.parse("LDG.E.128.SYS")
        assert op.base == "LDG"
        assert op.modifiers == ("E", "128", "SYS")
        assert op.name == "LDG.E.128.SYS"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Opcode.parse("")

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("LDG.E.SYS", OpClass.GLOBAL_LOAD),
            ("STG.E.SYS", OpClass.GLOBAL_STORE),
            ("LDL", OpClass.LOCAL_LOAD),
            ("STL.64", OpClass.LOCAL_STORE),
            ("LDS", OpClass.SHARED_LOAD),
            ("STS.128", OpClass.SHARED_STORE),
            ("TEX.SCR.LL", OpClass.TEXTURE),
            ("ATOM.E.ADD", OpClass.ATOMIC_GLOBAL),
            ("RED.E.ADD.F32", OpClass.ATOMIC_GLOBAL),
            ("ATOMS.ADD.F32", OpClass.ATOMIC_SHARED),
            ("IADD3", OpClass.INT_ALU),
            ("FFMA", OpClass.FP32),
            ("DFMA", OpClass.FP64),
            ("I2F.U32", OpClass.CONVERT),
            ("BRA", OpClass.BRANCH),
            ("BAR.SYNC", OpClass.BARRIER),
            ("S2R", OpClass.SPECIAL),
            ("WEIRDOP", OpClass.MISC),
        ],
    )
    def test_classification(self, name, expected):
        assert Opcode.parse(name).op_class is expected

    @pytest.mark.parametrize(
        "name,bits,regs",
        [
            ("LDG.E.SYS", 32, 1),
            ("LDG.E.64.SYS", 64, 2),
            ("LDG.E.128.SYS", 128, 4),
            ("STG.E.128.SYS", 128, 4),
            ("DADD", 64, 2),
            ("FFMA", 32, 1),
        ],
    )
    def test_width(self, name, bits, regs):
        op = Opcode.parse(name)
        assert op.width_bits == bits
        assert op.width_regs == regs

    def test_readonly_load(self):
        assert Opcode.parse("LDG.E.CONSTANT.SYS").is_readonly_load
        assert Opcode.parse("LDG.E.CI").is_readonly_load
        assert not Opcode.parse("LDG.E.SYS").is_readonly_load
        assert not Opcode.parse("LDS").is_readonly_load

    def test_category_predicates(self):
        assert Opcode.parse("LDG.E.SYS").is_load
        assert Opcode.parse("LDG.E.SYS").is_memory
        assert not Opcode.parse("STG.E.SYS").is_load
        assert Opcode.parse("STG.E.SYS").is_memory
        assert Opcode.parse("FFMA").is_arithmetic
        assert Opcode.parse("I2F").is_conversion
        assert Opcode.parse("RED.E.ADD.F32").is_atomic
        assert Opcode.parse("BAR.SYNC").is_control


class TestOperandFormatting:
    def test_negated_register(self):
        op = Operand.r(Register(5), negated=True)
        assert str(op) == "-R5"

    def test_negated_predicate(self):
        op = Operand.r(Register(1, predicate=True), negated=True)
        assert str(op) == "!P1"

    def test_memref_negative_offset(self):
        assert str(MemRef(Register(4), -8)) == "[R4+-0x8]"
        assert str(MemRef(Register(4), 16)) == "[R4+0x10]"
        assert str(MemRef(Register(4), 0)) == "[R4]"
        assert str(MemRef(None, 4)) == "[0x4]"

    def test_const_ref(self):
        assert str(Operand.c(0, 0x160)) == "c[0x0][0x160]"

    def test_special_register_validation(self):
        with pytest.raises(ValueError):
            Operand.sr("SR_BOGUS")


class TestInstructionDefUse:
    def test_simple_alu(self):
        ins = parse_instruction("IADD3 R1, R2, R3, RZ ;")
        assert ins.dest_registers() == [Register(1)]
        assert set(ins.source_registers()) == {Register(2), Register(3)}

    def test_load_wide_defines_quad(self):
        ins = parse_instruction("LDG.E.128.SYS R4, [R2] ;")
        assert ins.dest_registers() == [Register(4 + k) for k in range(4)]
        assert ins.source_registers() == [Register(2)]

    def test_store_has_no_dest(self):
        ins = parse_instruction("STG.E.SYS [R2], R5 ;")
        assert ins.dest_registers() == []
        assert set(ins.source_registers()) == {Register(2), Register(5)}

    def test_wide_store_reads_quad(self):
        ins = parse_instruction("STG.E.128.SYS [R2], R4 ;")
        srcs = set(ins.source_registers())
        assert {Register(2), Register(4), Register(5), Register(6),
                Register(7)} == srcs

    def test_fp64_register_pairs(self):
        ins = parse_instruction("DADD R4, R6, R8 ;")
        assert set(ins.dest_registers()) == {Register(4), Register(5)}
        assert {Register(6), Register(7), Register(8), Register(9)} <= set(
            ins.source_registers()
        )

    def test_setp_writes_predicate(self):
        ins = parse_instruction("ISETP.LT.AND P0, PT, R1, 0x10, PT ;")
        assert ins.dest_registers() == [Register(0, predicate=True)]
        assert Register(1) in ins.source_registers()

    def test_red_has_no_dest(self):
        ins = parse_instruction("RED.E.ADD.F32 [R2], R5 ;")
        assert ins.dest_registers() == []

    def test_predicate_guard_is_source(self):
        ins = parse_instruction("@P1 MOV R2, R3 ;")
        assert Register(1, predicate=True) in ins.source_registers()

    def test_rz_never_defined(self):
        ins = parse_instruction("IADD3 RZ, R1, R2, RZ ;")
        assert ins.dest_registers() == []

    def test_branch_target(self):
        ins = parse_instruction("@P0 BRA `(LOOP) ;")
        assert ins.branch_target() == "LOOP"
        assert parse_instruction("EXIT ;").branch_target() is None

    def test_mem_operand(self):
        ins = parse_instruction("LDG.E.SYS R0, [R2+0x10] ;")
        mem = ins.mem_operand()
        assert mem is not None and mem.base == Register(2) and mem.offset == 16
        assert parse_instruction("EXIT ;").mem_operand() is None
