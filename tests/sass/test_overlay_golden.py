"""Golden-file tests for the overlaid SASS listing.

``format_overlay`` feeds the ``gpuscout overlay`` CLI; its output must
be deterministic (no timestamps, stable label/arrow ordering) so that
diffs against these checked-in listings only appear when the control
codes, the latency table, or the slicer change on purpose.  Regenerate
with::

    PYTHONPATH=src python -c "
    from repro.cli import resolve_kernel
    from repro.sass.writer import format_overlay
    ck, *_ = resolve_kernel('sgemm:shared', 64, 4)
    print(format_overlay(ck.program), end='')" \
        > tests/sass/golden/sgemm_shared.overlay.sass
"""

import pathlib

import pytest

from repro.cli import resolve_kernel
from repro.sass.writer import format_overlay

GOLDEN = pathlib.Path(__file__).parent / "golden"

CASES = [
    ("sgemm:shared", "sgemm_shared.overlay.sass"),
    ("reduction:warp", "reduction_warp.overlay.sass"),
]


def _overlay(spec: str) -> str:
    ck, _config, _args, _textures = resolve_kernel(spec, 64, 4)
    return format_overlay(ck.program)


@pytest.mark.parametrize("spec,fname", CASES,
                         ids=[s for s, _ in CASES])
def test_overlay_matches_golden(spec, fname):
    got = _overlay(spec)
    want = (GOLDEN / fname).read_text()
    assert got == want, (
        f"{spec}: overlay drifted from tests/sass/golden/{fname}; "
        "if the change is intentional, regenerate the golden file"
    )


@pytest.mark.parametrize("spec,fname", CASES,
                         ids=[s for s, _ in CASES])
def test_overlay_is_deterministic(spec, fname):
    assert _overlay(spec) == _overlay(spec)


def test_overlay_structure():
    text = _overlay("sgemm:shared")
    lines = text.splitlines()
    assert lines[0].startswith("//-------------------- .text.")
    assert "(overlay)" in lines[0]
    assert lines[-1].lstrip().startswith("//-------------------- end .text.")
    # every instruction line carries a control-code word and a pipe tag
    body = [ln for ln in lines if ln.lstrip().startswith("/*")]
    assert body
    for ln in body:
        assert "[ " in ln and " ]" in ln
    # blame arrows reference variable-latency producers by offset
    assert any("// <- " in ln and " from " in ln for ln in body)
