"""Per-opcode latency table and control-code assignment."""

import pytest

from repro.gpu.config import GPUSpec
from repro.sass import parse_sass
from repro.sass.latency import (
    MAX_STALL,
    NUM_BARRIERS,
    OPCODE_LATENCY,
    LatencyModel,
    assign_control_codes,
    op_latency,
)


def _codes(text: str):
    program = parse_sass(text)
    return program, assign_control_codes(program)


class TestOpLatency:
    def test_known_bases_resolve(self):
        program = parse_sass("LDG.E.SYS R4, [R2] ;\nEXIT ;\n")
        info = op_latency(program[0].opcode)
        assert info.pipe == "lsu"
        assert info.variable

    def test_modifiers_do_not_matter(self):
        p = parse_sass("IADD3.X R1, R2, R3, RZ ;\nEXIT ;\n")
        assert op_latency(p[0].opcode) is OPCODE_LATENCY["IADD3"]

    def test_unknown_base_gets_alu_default(self):
        p = parse_sass("NOP ;\nEXIT ;\n")
        info = op_latency(p[0].opcode)
        assert info.pipe in ("alu",)  # NOP is in the table as alu

    def test_fixed_latencies_positive(self):
        for base, info in OPCODE_LATENCY.items():
            assert info.issue_cost >= 1.0, base
            if info.latency is not None:
                assert 1 <= info.latency <= 16, base


class TestControlCodes:
    def test_load_allocates_write_barrier(self):
        _, codes = _codes(
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, R4 ;\n"
            "EXIT ;\n"
        )
        assert codes[0].write_bar == 0
        # the consumer waits on that slot
        assert codes[1].wait_mask == 1 << 0

    def test_store_allocates_read_barrier(self):
        _, codes = _codes(
            "STG.E.SYS [R2], R4 ;\n"
            "EXIT ;\n"
        )
        assert codes[0].read_bar is not None
        assert codes[0].write_bar is None  # stores produce nothing

    def test_barrier_retires_on_wait(self):
        _, codes = _codes(
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, R4 ;\n"
            "LDG.E.SYS R6, [R2+0x10] ;\n"
            "EXIT ;\n"
        )
        # slot 0 freed by the FADD wait, so the second load reuses it
        assert codes[2].write_bar == 0

    def test_war_hazard_waits(self):
        _, codes = _codes(
            "LDG.E.SYS R4, [R2] ;\n"
            "MOV R4, RZ ;\n"  # overwrites the in-flight destination
            "EXIT ;\n"
        )
        assert codes[1].wait_mask == 1 << 0

    def test_bar_sync_drains_all_slots(self):
        _, codes = _codes(
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R6, [R2+0x10] ;\n"
            "BAR.SYNC 0x0 ;\n"
            "EXIT ;\n"
        )
        assert codes[2].wait_mask == (1 << 0) | (1 << 1)

    def test_fixed_latency_stall_covers_gap(self):
        # MOV (4-cycle) feeding the very next instruction: stall 4
        _, codes = _codes(
            "MOV R1, R2 ;\n"
            "IADD3 R3, R1, R1, RZ ;\n"
            "EXIT ;\n"
        )
        assert codes[0].stall == 4
        # with two independent fillers in between: 4 - 2 = 2
        _, codes = _codes(
            "MOV R1, R2 ;\n"
            "MOV R5, R6 ;\n"
            "MOV R7, R8 ;\n"
            "IADD3 R3, R1, R1, RZ ;\n"
            "EXIT ;\n"
        )
        assert codes[0].stall == 2

    def test_long_stall_sets_yield(self):
        _, codes = _codes(
            "DADD R2, R4, R6 ;\n"
            "DADD R8, R2, R2 ;\n"
            "EXIT ;\n"
        )
        assert codes[0].stall == 8
        assert codes[0].yields

    def test_branch_keeps_two_cycle_hold(self):
        _, codes = _codes(
            "BRA `(END) ;\n"
            ".END:\n"
            "EXIT ;\n"
        )
        assert codes[0].stall == 2

    def test_stall_clamped_to_field_width(self):
        for c in _codes("MOV R1, R2 ;\nMOV R3, R1 ;\nEXIT ;\n")[1]:
            assert 1 <= c.stall <= MAX_STALL

    def test_slot_exhaustion_reuses_oldest(self):
        # seven back-to-back loads with no consumer: only six slots
        text = "".join(
            f"LDG.E.SYS R{2 * i + 4}, [R2+{hex(16 * i)}] ;\n"
            for i in range(7)
        ) + "EXIT ;\n"
        _, codes = _codes(text)
        slots = [c.write_bar for c in codes[:7]]
        assert slots[:6] == list(range(NUM_BARRIERS))
        assert slots[6] in range(NUM_BARRIERS)

    def test_render_is_fixed_width(self):
        _, codes = _codes(
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, R4 ;\n"
            "EXIT ;\n"
        )
        widths = {len(c.render()) for c in codes}
        assert len(widths) == 1
        assert "WR0" in codes[0].render()
        assert "000001" in codes[1].render()


class TestLatencyModel:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_sass(
            "MOV R1, R2 ;\n"
            "DADD R2, R4, R6 ;\n"
            "MUFU.RCP R8, R9 ;\n"
            "LDG.E.SYS R10, [R2] ;\n"
            "EXIT ;\n"
        )

    def test_spec_mode_reproduces_uniform_defaults(self, program):
        spec = GPUSpec.v100()
        m = LatencyModel(program, spec, mode="spec")
        assert m.issue_costs == [
            float(spec.issue_default), float(spec.issue_fp64),
            float(spec.issue_mufu), float(spec.issue_default),
            float(spec.issue_default),
        ]
        assert m.dep_latencies == [
            float(spec.lat_alu), float(spec.lat_fp64),
            float(spec.lat_mufu), float(spec.lat_alu),
            float(spec.lat_alu),
        ]

    def test_table_mode_resolves_per_opcode(self, program):
        spec = GPUSpec.v100()
        m = LatencyModel(program, spec)
        assert m.mode == "table"
        assert m.issue_costs[1] == 2.0  # DADD: half-rate fp64
        assert m.issue_costs[2] == 4.0  # MUFU: quarter-rate
        assert m.dep_latencies[0] == 4.0  # MOV from the table
        # MUFU result is variable latency: falls back to the spec value
        assert m.dep_latencies[2] == float(spec.lat_mufu)

    def test_signatures_distinguish_modes(self, program):
        spec = GPUSpec.v100()
        assert (LatencyModel(program, spec, mode="spec").signature()
                != LatencyModel(program, spec, mode="table").signature())

    def test_unknown_mode_rejected(self, program):
        with pytest.raises(ValueError):
            LatencyModel(program, GPUSpec.v100(), mode="exotic")
