"""Recovering-parser fuzz tests: random line-level corruption of valid
listings must never raise under ``recover=True``, and every diagnostic
must point at a line the test actually corrupted."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SassSyntaxError
from repro.sass import parse_sass

from tests.conftest import LOOP_SASS

BRANCHY_SASS = """
        /*0000*/ S2R R0, SR_TID.X ;
        /*0010*/ S2R R1, SR_CTAID.X ;
        /*0020*/ IMAD R0, R1, 0x80, R0 ;
        /*0030*/ ISETP.GE.AND P0, PT, R0, c[0x0][0x168], PT ;
        /*0040*/ @P0 EXIT ;
        /*0050*/ MOV R2, c[0x0][0x160] ;
        /*0060*/ LDG.E.SYS R4, [R2] ;
        /*0070*/ LDS.U.32 R5, [R0] ;
        /*0080*/ FADD R4, R4, R5 ;
        /*0090*/ STG.E.SYS [R2], R4 ;
        /*00a0*/ EXIT ;
"""

LISTINGS = [LOOP_SASS, BRANCHY_SASS]

#: the opcode grammar is deliberately lenient (a bare token parses as a
#: no-operand instruction), so corruption must hit the *operand*
#: position: none of these characters can form a register, immediate,
#: or memory operand, and none ends in ':' (label) or starts a comment
#: — a corrupted line is guaranteed unparseable, never silently skipped
garbage = st.text(alphabet="?$~^&=}{", min_size=1, max_size=24).map(
    lambda s: f"JUNK {s}"
)


def _instruction_linenos(text: str) -> list[int]:
    """1-based line numbers that hold instructions (non-blank, not a
    label, not a comment) — the lines worth corrupting."""
    out = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("//") or line.startswith("."):
            continue
        if line.endswith(":"):
            continue
        out.append(lineno)
    return out


@st.composite
def corrupted_listing(draw):
    text = draw(st.sampled_from(LISTINGS))
    lines = text.splitlines()
    candidates = _instruction_linenos(text)
    victims = draw(st.lists(st.sampled_from(candidates), min_size=1,
                            unique=True))
    for lineno in victims:
        lines[lineno - 1] = draw(garbage)
    return text, "\n".join(lines), sorted(victims)


@given(corrupted_listing())
@settings(max_examples=150, deadline=None)
def test_recover_never_raises_and_linenos_point_at_corruption(case):
    original, mangled, victims = case
    diags = []
    prog = parse_sass(mangled, recover=True, diagnostics=diags)
    # every skipped line is one we corrupted, named by its 1-based line
    assert diags, "corrupted lines must produce diagnostics"
    assert {d.lineno for d in diags} == set(victims)
    for d in diags:
        assert d.stage == "parse"
        assert d.site == "parser.instruction"
        assert d.error
    # the untouched instructions all survive
    n_original = len(parse_sass(original))
    assert len(prog) == n_original - len(victims)


@given(corrupted_listing())
@settings(max_examples=50, deadline=None)
def test_without_recover_corruption_raises(case):
    _, mangled, _ = case
    with pytest.raises(SassSyntaxError):
        parse_sass(mangled)


class TestRecoverDeterministic:
    def test_single_corrupted_line_is_named(self):
        lines = LOOP_SASS.splitlines()
        victim = _instruction_linenos(LOOP_SASS)[2]
        lines[victim - 1] = "???? not sass at all"
        diags = []
        prog = parse_sass("\n".join(lines), recover=True,
                          diagnostics=diags)
        assert len(diags) == 1
        assert diags[0].lineno == victim
        assert len(prog) == len(parse_sass(LOOP_SASS)) - 1

    def test_duplicate_label_skipped_with_diagnostic(self):
        text = (".L0:\n"
                "  MOV R0, RZ ;\n"
                ".L0:\n"
                "  EXIT ;\n")
        diags = []
        prog = parse_sass(text, recover=True, diagnostics=diags)
        assert len(prog) == 2
        assert any("duplicate label" in d.message for d in diags)
        assert diags[0].lineno == 3

    def test_recover_without_diagnostics_list(self):
        # diagnostics=None is allowed: lines are still skipped silently
        prog = parse_sass("JUNK ????\nEXIT ;\n", recover=True)
        assert len(prog) == 1

    def test_clean_listing_produces_no_diagnostics(self):
        diags = []
        parse_sass(LOOP_SASS, recover=True, diagnostics=diags)
        assert diags == []
