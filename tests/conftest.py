"""Shared fixtures.

Simulation results for the case-study kernels are expensive enough to
be worth caching per session; every fixture that mutates nothing is
session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.gpu import GPUSpec, LaunchConfig, Simulator


@pytest.fixture(scope="session")
def small_spec() -> GPUSpec:
    """One-SM spec: every block simulated, outputs complete."""
    return GPUSpec.small(1)


@pytest.fixture(scope="session")
def sim(small_spec) -> Simulator:
    return Simulator(small_spec)


def build_saxpy(restrict: bool = False):
    """The canonical little kernel used across many tests."""
    kb = KernelBuilder("saxpy")
    x = kb.param("x", ptr(f32, readonly=restrict, restrict=restrict))
    y = kb.param("y", ptr(f32))
    a = kb.param("a", f32)
    n = kb.param("n", i32)
    i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    kb.return_if(i >= n)
    kb.store(y, i, a * x[i] + y[i])
    return compile_kernel(kb.build())


@pytest.fixture(scope="session")
def saxpy():
    return build_saxpy()


@pytest.fixture(scope="session")
def saxpy_launch(sim, saxpy):
    n = 1024
    xs = np.arange(n, dtype=np.float32)
    ys = np.ones(n, dtype=np.float32)
    return sim.launch(
        saxpy,
        LaunchConfig(grid=(8, 1), block=(128, 1)),
        args={"x": xs, "y": ys, "a": 2.0, "n": n},
    )


LOOP_SASS = """
        /*0000*/ S2R R0, SR_TID.X ;
        /*0010*/ MOV R2, c[0x0][0x160] ;
        /*0020*/ IADD3 R2, R2, R0, RZ ;
.LOOP:
        /*0030*/ LDG.E.SYS R4, [R2+0x10] ;
        /*0040*/ FFMA R4, R4, R4, R4 ;
        /*0050*/ IADD3 R0, R0, 0x1, RZ ;
        /*0060*/ ISETP.LT.AND P0, PT, R0, 0x60, PT ;
        /*0070*/ @P0 BRA `(LOOP) ;
        /*0080*/ STG.E.SYS [R2], R4 ;
        /*0090*/ EXIT ;
"""


@pytest.fixture(scope="session")
def loop_program():
    from repro.sass import parse_sass

    return parse_sass(LOOP_SASS, "loopy")
