"""Deterministic chaos suite: inject a fault at every registered
fail-point and assert the engine still produces a well-formed partial
report — findings from the surviving stages, at least one diagnostic
naming the failure, valid schema-v3 JSON, and renderable text/HTML.

Scenario notes: the fail-points live on different execution paths, so
each one pins the engine configuration that reaches it (``fast`` picks
the trace-driven vs legacy timed path; ``dry_run`` reaches the parser
sites; ``also_arm`` sinks the upper degradation-ladder rungs so the
functional-only rung actually executes).
"""

import json

import numpy as np
import pytest

from repro.core import GPUscout
from repro.core.jsonout import SCHEMA_VERSION, report_to_dict
from repro.errors import (
    AnalysisError,
    MetricError,
    SimulationError,
)
from repro.gpu import GPUSpec, LaunchConfig
from repro.testing import fail_at, fail_points
from repro.testing.faultinject import REGISTRY, SERVE_SITES, fail_point

from tests.conftest import LOOP_SASS, build_saxpy

N = 512
CONFIG = LaunchConfig(grid=(4, 1), block=(128, 1))


@pytest.fixture(scope="module")
def saxpy_ck():
    return build_saxpy()


def saxpy_args():
    return {
        "x": np.arange(N, dtype=np.float32),
        "y": np.ones(N, dtype=np.float32),
        "a": 2.0,
        "n": N,
    }


#: per-site scenario: how to reach the site, and what to inject there
SCENARIOS = {
    "parser.program": dict(kind="sass"),
    "parser.instruction": dict(kind="sass"),
    "executor.step": dict(fast=False, exc=SimulationError),
    "caches.l2_lookup": dict(fast=True, exc=SimulationError),
    "scheduler.run_wave": dict(fast=False, exc=SimulationError),
    "scheduler.run_wave_trace": dict(fast=True, exc=SimulationError),
    "trace.build": dict(fast=True, exc=SimulationError),
    "batch.functional": dict(
        fast=True, exc=SimulationError,
        also_arm=["scheduler.run_wave_trace", "scheduler.run_wave"],
    ),
    "simulator.launch": dict(fast=True, exc=SimulationError),
    "sampler.sample": dict(fast=True, exc=SimulationError),
    "metrics.collect": dict(fast=True, exc=MetricError),
    "engine.analysis": dict(fast=True, exc=AnalysisError),
    "engine.predictions": dict(fast=True, exc=AnalysisError),
}


def _run_scenario(site, scenario, saxpy_ck):
    exc = scenario.get("exc", SimulationError)
    if scenario.get("kind") == "sass":
        scout = GPUscout()
        with fail_at(site, exc) as fp:
            report = scout.analyze(LOOP_SASS, dry_run=True)
        return fp, report
    scout = GPUscout(spec=GPUSpec.small(1), fast=scenario["fast"])
    from contextlib import ExitStack

    with ExitStack() as stack:
        for extra in scenario.get("also_arm", []):
            stack.enter_context(fail_at(extra, SimulationError))
        fp = stack.enter_context(fail_at(site, exc))
        report = scout.analyze(saxpy_ck, CONFIG, saxpy_args(),
                               max_blocks=2)
    return fp, report


def test_every_fail_point_has_a_scenario():
    # serve.* sites live outside the analyze() pipeline; their chaos
    # scenarios are tests/serve/test_chaos_serve.py
    assert set(SCENARIOS) | SERVE_SITES == set(fail_points()) == set(REGISTRY)
    assert not set(SCENARIOS) & SERVE_SITES


@pytest.mark.parametrize("site", sorted(SCENARIOS))
def test_single_point_failure_yields_partial_report(site, saxpy_ck):
    fp, report = _run_scenario(site, SCENARIOS[site], saxpy_ck)

    # the injection actually fired, exactly where we armed it
    assert fp.triggered >= 1, f"fail-point {site} never reached"

    # a well-formed report came back regardless
    assert report.kernel
    assert isinstance(report.findings, list)
    assert report.diagnostics, f"{site}: no diagnostic recorded"

    # at least one diagnostic names the failed site (directly, or via
    # the injected exception's message)
    def mentions(d):
        return site in d.site or site in d.message
    assert any(mentions(d) for d in report.diagnostics), (
        site, [str(d) for d in report.diagnostics],
    )

    # schema-v3 JSON round-trips
    data = json.loads(json.dumps(report_to_dict(report)))
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["mode"] in ("full", "functional", "static", "dry-run")
    assert data["diagnostics"]
    for d in data["diagnostics"]:
        for key in ("stage", "site", "error", "message", "severity"):
            assert key in d

    # both renderers cope with the degraded report
    text = report.render()
    assert "[health]" in text
    html = report.render_html()
    assert "Run health" in html


class TestChaosDetails:
    def test_dead_analysis_spares_the_others(self, saxpy_ck):
        scout = GPUscout(spec=GPUSpec.small(1))
        healthy = scout.analyze(saxpy_ck, dry_run=True)
        with fail_at("engine.analysis", AnalysisError) as fp:
            report = scout.analyze(saxpy_ck, dry_run=True)
        assert fp.triggered == 1
        # one analysis died; every other analysis still reported
        dead = {d.detail.get("analysis") for d in report.diagnostics}
        assert len(dead) == 1
        survivors = {f.analysis for f in report.findings}
        assert survivors == {
            f.analysis for f in healthy.findings
            if f.analysis not in dead
        }

    def test_persistent_failure_exhausts_the_ladder(self, saxpy_ck):
        # times=None: the component is broken on *every* rung
        scout = GPUscout(spec=GPUSpec.small(1), fast=True)
        with fail_at("simulator.launch", SimulationError,
                     times=None) as fp:
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args())
        assert fp.triggered == 3  # trace, legacy, functional-only
        assert report.mode == "static"
        assert report.launch is None
        assert any("static-only" in d.message for d in report.diagnostics)

    def test_total_parse_failure_still_reports(self):
        scout = GPUscout()
        with fail_at("parser.program", SimulationError) as fp:
            report = scout.analyze(LOOP_SASS, dry_run=True)
        assert fp.triggered == 1
        assert report.findings == []
        assert len(report.program) == 0
        assert any(d.severity == "error" for d in report.diagnostics)

    def test_unexpected_crash_writes_reproducer_bundle(
            self, saxpy_ck, tmp_path, monkeypatch):
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        scout = GPUscout(spec=GPUSpec.small(1))
        with fail_at("engine.predictions", RuntimeError) as fp:
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args(),
                                   max_blocks=2)
        assert fp.triggered == 1
        bundles = [d for d in report.diagnostics
                   if "reproducer" in d.detail]
        assert len(bundles) == 1
        bundle = bundles[0]
        assert bundle.detail["reproducer"] in bundle.message
        import pathlib

        bdir = pathlib.Path(bundle.detail["reproducer"])
        assert bdir.is_dir()
        for name in ("kernel.sass", "launch.json", "environment.json",
                     "traceback.txt"):
            assert (bdir / name).exists(), name
        env = json.loads((bdir / "environment.json").read_text())
        assert "python" in env
        launch = json.loads((bdir / "launch.json").read_text())
        assert launch["grid"] == [4, 1]

    def test_expected_errors_write_no_bundle(self, saxpy_ck, tmp_path,
                                             monkeypatch):
        import os
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        scout = GPUscout(spec=GPUSpec.small(1), fast=True)
        with fail_at("simulator.launch", SimulationError):
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args())
        assert report.diagnostics
        assert not any("reproducer" in d.detail
                       for d in report.diagnostics)
        assert os.listdir(tmp_path) == []

    def test_fail_point_noop_when_unarmed(self):
        fail_point("caches.l2_lookup")  # must not raise

    def test_unknown_fail_point_rejected(self):
        with pytest.raises(ValueError):
            with fail_at("no.such.site"):
                pass

    def test_double_arming_rejected(self):
        with fail_at("caches.l2_lookup", SimulationError):
            with pytest.raises(RuntimeError):
                with fail_at("caches.l2_lookup", SimulationError):
                    pass
