"""Advice-observation loop: the stalls a finding tells the user to
watch must actually be observable in the dynamic data for the
case-study kernels (the paper's premise that the three pillars agree).
"""

import pytest

from repro.core import GPUscout
from repro.gpu import LaunchConfig
from repro.gpu.stalls import StallReason
from repro.kernels.calibration import heat_spec, mixbench_spec, sgemm_spec
from repro.kernels.heat import build_heat, heat_args
from repro.kernels.mixbench import build_mixbench, mixbench_args
from repro.kernels.sgemm import build_sgemm, sgemm_args, sgemm_launch
from repro.sampling import PCSampler


def _scout(spec):
    return GPUscout(spec=spec, sampler=PCSampler(period_cycles=128))


class TestMixbenchLoop:
    @pytest.fixture(scope="class")
    def report(self):
        args = mixbench_args(4096, 8, "sp")
        args["compute_iterations"] = 2
        return _scout(mixbench_spec()).analyze(
            build_mixbench("sp", 8),
            LaunchConfig(grid=(16, 1), block=(256, 1)), args,
            max_blocks=8,
        )

    def test_vectorize_focus_observed(self, report):
        finding = next(f for f in report.findings_for("use_vectorized_loads")
                       if f.severity.value >= 1)
        observed = {r for r, v in finding.stall_profile.items() if v > 0}
        # the flagged loads' lines show memory-path stalls
        assert observed & {StallReason.LONG_SCOREBOARD,
                           StallReason.LG_THROTTLE}

    def test_metric_focus_collected_with_values(self, report):
        finding = next(f for f in report.findings_for("use_vectorized_loads")
                       if f.severity.value >= 1)
        assert finding.metrics["derived__sectors_per_global_load"] > 4.0
        assert finding.metrics["launch__registers_per_thread"] > 0


class TestHeatLoop:
    @pytest.fixture(scope="class")
    def reports(self):
        scout = _scout(heat_spec())
        out = {}
        for variant in ("naive", "texture"):
            w, h = 256, 64
            ck = build_heat(variant)
            args, t0 = heat_args(w, h, variant=variant)
            tex = {"t_tex": t0.reshape(h, w)} if variant == "texture" else {}
            out[variant] = scout.analyze(
                ck, LaunchConfig(grid=(w // 256, h), block=(256, 1)),
                args, textures=tex, max_blocks=16,
            )
        return out

    def test_texture_advice_predicts_tex_throttle(self, reports):
        naive = reports["naive"]
        finding = reports["naive"].findings_for("use_texture_memory")[0]
        assert StallReason.TEX_THROTTLE in finding.stall_focus
        # before the change: no TEX stalls anywhere
        assert naive.sampling.by_reason().get(StallReason.TEX_THROTTLE, 0) == 0
        # after applying the advice: they appear, as warned
        after = reports["texture"].sampling.by_reason()
        assert after.get(StallReason.TEX_THROTTLE, 0) > 0

    def test_texture_metrics_appear_after_change(self, reports):
        assert reports["naive"].metrics.get(
            "l1tex__t_bytes_pipe_tex.sum", 0) == 0
        # the texture run's base set may not include tex metrics, but
        # its findings no longer recommend texture
        assert not reports["texture"].has_finding("use_texture_memory")


class TestSgemmLoop:
    @pytest.fixture(scope="class")
    def reports(self):
        scout = _scout(sgemm_spec())
        out = {}
        n = 128
        for variant in ("naive", "shared"):
            ck = build_sgemm(variant)
            out[variant] = scout.analyze(
                ck, sgemm_launch(variant, n, n), sgemm_args(n, n, n),
                max_blocks=8,
            )
        return out

    def test_shared_advice_predicts_mio(self, reports):
        finding = reports["naive"].findings_for("use_shared_memory")[0]
        assert StallReason.MIO_THROTTLE in finding.stall_focus
        before = reports["naive"].sampling.by_reason()
        after = reports["shared"].sampling.by_reason()
        mio = (StallReason.MIO_THROTTLE, StallReason.SHORT_SCOREBOARD)
        assert sum(after.get(r, 0) for r in mio) > \
            sum(before.get(r, 0) for r in mio)

    def test_bank_conflict_metric_present_after_change(self, reports):
        shared = reports["shared"]
        finding = shared.findings_for("use_shared_memory")
        if finding:  # the tiled kernel still loads from global
            ways = finding[0].metrics.get("derived__smem_ld_bank_conflict_ways")
            assert ways is None or ways >= 1.0

    def test_restrict_advice_disappears_when_applied(self):
        """Marking the pointers const __restrict__ silences §4.5."""
        from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
        from repro.cudalite.intrinsics import mad

        def build(restrict):
            kb = KernelBuilder("mini_gemm")
            a = kb.param("a", ptr(f32, readonly=restrict, restrict=restrict))
            b = kb.param("b", ptr(f32, readonly=restrict, restrict=restrict))
            c = kb.param("c", ptr(f32))
            k = kb.param("k", i32)
            row = kb.let("row", kb.thread_idx.y, dtype=i32)
            col = kb.let("col", kb.thread_idx.x, dtype=i32)
            acc = kb.let("acc", 0.0, dtype=f32)
            with kb.for_range("p", 0, k) as p:
                kb.assign(acc, mad(a[row * k + p], b[p * 16 + col], acc))
            kb.store(c, row * 16 + col, acc)
            return compile_kernel(kb.build())

        scout = GPUscout()
        plain = scout.analyze(build(False), dry_run=True)
        assert plain.has_finding("use_restrict")
        restricted = scout.analyze(build(True), dry_run=True)
        assert not restricted.has_finding("use_restrict")
