"""Terminal-report rendering unit tests (core/report.py), plus the
overhead breakdown and the explain CLI."""

import pytest

from repro.core.findings import Finding, Severity, SourceLoc
from repro.core.overhead import OverheadBreakdown
from repro.core.report import _fmt_value, render_finding
from repro.gpu.stalls import StallReason


def _finding(**kw):
    base = dict(
        analysis="use_vectorized_loads",
        title="Use vectorized global memory loads",
        severity=Severity.WARNING,
        message="4 loads off R2.",
        recommendation="Use float4.",
    )
    base.update(kw)
    return Finding(**base)


class TestFormatValue:
    def test_integer_with_unit(self):
        assert _fmt_value("launch__registers_per_thread", 25.0) == \
            "25 register"

    def test_float_with_unit(self):
        assert _fmt_value(
            "l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct", 71.484
        ) == "71.48 %"

    def test_unknown_metric_no_unit(self):
        assert _fmt_value("made_up", 3.0) == "3"


class TestRenderFinding:
    def test_basic_block(self):
        text = render_finding(_finding())
        assert "WARNING" in text
        assert "Use vectorized global memory loads" in text
        assert "Advice: Use float4." in text

    def test_severity_tags(self):
        assert "CRITICAL" in render_finding(_finding(severity=Severity.CRITICAL))
        assert "INFO" in render_finding(_finding(severity=Severity.INFO))

    def test_registers_and_sources(self):
        f = _finding(registers=["R4", "R5"],
                     locations=[SourceLoc("k.cu", 55)])
        text = render_finding(f)
        assert "Registers: R4, R5" in text
        assert "k.cu:55" in text

    def test_loop_note(self):
        assert "for-loop" in render_finding(_finding(in_loop=True))
        assert "for-loop" not in render_finding(_finding(in_loop=False))

    def test_pressure_line(self):
        f = _finding(details={"live_register_pressure": 27})
        assert "Live register pressure" in render_finding(f)

    def test_stall_profile_rendering(self):
        f = _finding(stall_profile={
            StallReason.SELECTED: 100,
            StallReason.LG_THROTTLE: 64,
            StallReason.LONG_SCOREBOARD: 36,
        })
        text = render_finding(f)
        assert "stalled_lg_throttle" in text
        assert "64.0 %" in text
        # the dominant reason gets its verbose explanation
        assert "L1 instruction queue" in text

    def test_selected_excluded_from_shares(self):
        f = _finding(stall_profile={StallReason.SELECTED: 1000,
                                    StallReason.WAIT: 10})
        text = render_finding(f)
        assert "100.0 %" in text  # WAIT is 100 % of stalls

    def test_metrics_block(self):
        f = _finding(metrics={"launch__registers_per_thread": 25.0})
        text = render_finding(f)
        assert "Metrics to pay attention to" in text
        assert "25 register" in text

    def test_color_codes(self):
        plain = render_finding(_finding(), color=False)
        colored = render_finding(_finding(), color=True)
        assert "\x1b[" not in plain
        assert "\x1b[33m" in colored  # warning = yellow


class TestOverheadBreakdown:
    def test_totals(self):
        o = OverheadBreakdown(kernel_seconds=0.01,
                              sass_analysis_seconds=0.002,
                              pc_sampling_seconds=0.08,
                              metrics_seconds=0.2)
        assert o.total_seconds == pytest.approx(0.282)
        assert o.total_factor == pytest.approx(28.2)

    def test_zero_kernel_infinite_factor(self):
        o = OverheadBreakdown(0.0, 0.001, 0.0, 0.0)
        assert o.total_factor == float("inf")

    def test_as_dict(self):
        o = OverheadBreakdown(1.0, 0.1, 0.2, 0.3)
        d = o.as_dict()
        assert d["kernel_s"] == 1.0
        assert d["total_s"] == pytest.approx(0.6)
        assert d["total_factor"] == pytest.approx(0.6)


class TestExplainCli:
    def test_explain_stall(self, capsys):
        from repro.cli import main

        assert main(["explain", "stalled_lg_throttle"]) == 0
        assert "L1 instruction queue" in capsys.readouterr().out

    def test_explain_stall_without_prefix(self, capsys):
        from repro.cli import main

        assert main(["explain", "long_scoreboard"]) == 0
        assert "scoreboard dependency" in capsys.readouterr().out

    def test_explain_metric(self, capsys):
        from repro.cli import main

        assert main(["explain", "dram__bytes.sum"]) == 0
        assert "DRAM" in capsys.readouterr().out

    def test_explain_listing(self, capsys):
        from repro.cli import main

        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "stalled_tex_throttle" in out
        assert "derived__smem_ld_bank_conflict_ways" in out

    def test_explain_unknown(self, capsys):
        from repro.cli import main

        assert main(["explain", "nonsense"]) == 1
