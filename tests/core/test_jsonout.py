"""JSON serialization tests for GPUscout reports."""

import json

import pytest

from repro.core import GPUscout, report_to_dict, report_to_json
from repro.core.jsonout import SCHEMA_VERSION
from repro.gpu import GPUSpec, LaunchConfig
from repro.kernels.heat import build_heat, heat_args


@pytest.fixture(scope="module")
def full_report():
    scout = GPUscout(spec=GPUSpec.small(1))
    w, h = 64, 64
    ck = build_heat("naive")
    args, t0 = heat_args(w, h)
    return scout.analyze(
        ck, LaunchConfig(grid=(w // 16, h // 16), block=(16, 16)), args,
        max_blocks=4,
    )


@pytest.fixture(scope="module")
def dry_report():
    return GPUscout().analyze(build_heat("naive"), dry_run=True)


class TestSchema:
    def test_roundtrips_through_json(self, full_report):
        text = report_to_json(full_report)
        data = json.loads(text)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kernel"] == "jacobi_naive"
        assert not data["dry_run"]

    def test_findings_fields(self, full_report):
        data = report_to_dict(full_report)
        for f in data["findings"]:
            for key in ("analysis", "title", "severity", "message",
                        "recommendation", "pcs", "source_lines",
                        "registers", "in_loop", "details", "stall_focus",
                        "metric_focus", "stall_profile", "metrics"):
                assert key in f, key
            assert f["severity"] in ("INFO", "WARNING", "CRITICAL")

    def test_dynamic_sections_present(self, full_report):
        data = report_to_dict(full_report)
        assert "metrics" in data
        assert "stalls" in data
        assert "launch" in data
        assert "overhead" in data
        assert data["launch"]["cycles"] > 0
        assert data["stalls"]["total_samples"] >= 0

    def test_dry_run_omits_dynamic(self, dry_report):
        data = report_to_dict(dry_report)
        assert "metrics" not in data
        assert "stalls" not in data
        assert "launch" not in data
        assert data["dry_run"]

    def test_ptx_atomics_section(self):
        from repro.kernels.histogram import build_histogram

        data = report_to_dict(
            GPUscout().analyze(build_histogram("shared"), dry_run=True)
        )
        assert data["ptx_atomics"]["shared"] >= 1

    def test_conversion_counts_survive(self, dry_report):
        data = report_to_dict(dry_report)
        conv = next(f for f in data["findings"]
                    if f["analysis"] == "datatype_conversions")
        assert conv["details"]["total"] == 6

    def test_stall_names_are_cupti(self, full_report):
        data = report_to_dict(full_report)
        for f in data["findings"]:
            for name in f["stall_profile"]:
                assert name.startswith("stalled_")

    def test_json_sorted_and_stable(self, dry_report):
        assert report_to_json(dry_report) == report_to_json(dry_report)


class TestCliJson:
    def test_json_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--kernel", "sgemm:naive", "--dry-run",
                     "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "sgemm_naive"

    def test_json_to_file_keeps_text(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "out.json"
        assert main(["analyze", "--kernel", "sgemm:naive", "--dry-run",
                     "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "GPUscout analysis" in out  # text still printed
        assert json.loads(target.read_text())["dry_run"]

    def test_reduction_kernels_resolvable(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--kernel", "reduction:warp",
                     "--dry-run"]) == 0
