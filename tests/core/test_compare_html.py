"""Tests for the Figure-7 extensions: metrics comparison + HTML report."""

import pytest

from repro.core import GPUscout, compare_reports, render_html
from repro.core.compare import MetricDelta
from repro.gpu import LaunchConfig
from repro.kernels.calibration import heat_spec
from repro.kernels.heat import build_heat, heat_args


@pytest.fixture(scope="module")
def two_reports():
    scout = GPUscout(spec=heat_spec())
    w, h = 256, 64
    out = []
    for variant in ("naive", "texture"):
        ck = build_heat(variant)
        args, t0 = heat_args(w, h, variant=variant)
        textures = {"t_tex": t0.reshape(h, w)} if variant == "texture" else {}
        out.append(
            scout.analyze(
                ck, LaunchConfig(grid=(w // 256, h), block=(256, 1)),
                args, textures=textures, max_blocks=16,
            )
        )
    return out


class TestMetricDelta:
    def test_directions(self):
        assert MetricDelta("m", 1.0, 2.0, False).direction == "rise"
        assert MetricDelta("m", 2.0, 1.0, False).direction == "fall"
        assert MetricDelta("m", 2.0, 2.0, False).direction == "same"

    def test_change_pct(self):
        assert MetricDelta("m", 10.0, 15.0, False).change_pct == 50.0
        assert MetricDelta("m", 0.0, 5.0, False).change_pct == float("inf")
        assert MetricDelta("m", 0.0, 0.0, False).change_pct is None


class TestCompareReports:
    def test_speedup_computed(self, two_reports):
        old, new = two_reports
        cmp = compare_reports(old, new)
        assert cmp.speedup == pytest.approx(
            old.launch.cycles / new.launch.cycles
        )
        assert cmp.speedup > 1.2  # texture wins on the calibrated spec

    def test_watched_metrics_flagged(self, two_reports):
        cmp = compare_reports(*two_reports)
        watched = {d.name for d in cmp.watched()}
        # the naive findings asked to watch texture metrics
        assert "derived__tex_cache_miss_pct" in watched

    def test_new_metrics_appear(self, two_reports):
        cmp = compare_reports(*two_reports)
        tex_bytes = next(d for d in cmp.metric_deltas
                         if d.name == "l1tex__t_bytes_pipe_tex.sum")
        assert tex_bytes.before == 0.0
        assert tex_bytes.after > 0.0
        assert tex_bytes.direction == "rise"

    def test_stall_deltas_cover_tex_throttle(self, two_reports):
        from repro.gpu.stalls import StallReason

        cmp = compare_reports(*two_reports)
        tex = next((t for t in cmp.stall_deltas
                    if t[0] is StallReason.TEX_THROTTLE), None)
        assert tex is not None
        before, after = tex[1], tex[2]
        assert before == 0.0 and after > 0.0

    def test_render_text(self, two_reports):
        cmp = compare_reports(*two_reports)
        text = cmp.render()
        assert "Metrics comparison" in text or "metrics comparison" in text
        assert "speedup" in text.lower()
        assert "stalled_tex_throttle" in text

    def test_dry_run_rejected(self, two_reports):
        dry = GPUscout().analyze(build_heat("naive"), dry_run=True)
        with pytest.raises(ValueError):
            compare_reports(dry, two_reports[1])


class TestHtmlReport:
    def test_full_page_structure(self, two_reports):
        html_text = render_html(two_reports[0])
        assert html_text.startswith("<!DOCTYPE html>")
        assert "Source code" in html_text
        assert "SASS instructions" in html_text
        assert "Findings" in html_text
        assert "Warp-stall distribution" in html_text
        assert "Kernel-wide metrics" in html_text

    def test_line_correlation_attributes(self, two_reports):
        html_text = render_html(two_reports[0])
        # both panels carry data-line attributes for the hover link
        assert html_text.count("data-line=") > 20

    def test_escaping(self):
        # source containing HTML-sensitive characters must be escaped
        report = GPUscout().analyze(
            "LDG.E.SYS R4, [R2] ;\nEXIT ;\n", dry_run=True
        )
        page = render_html(report)
        assert "<script>alert" not in page

    def test_comparison_section(self, two_reports):
        cmp = compare_reports(*two_reports)
        page = render_html(two_reports[1], comparison=cmp)
        assert "Metrics comparison (old vs new)" in page
        assert "&#9733;" in page  # watched star

    def test_dry_run_page(self):
        report = GPUscout().analyze(build_heat("naive"), dry_run=True)
        page = render_html(report)
        assert "dry run" in page
        assert "Kernel-wide metrics" not in page

    def test_findings_badges(self, two_reports):
        page = render_html(two_reports[0])
        assert "class='badge" in page

    def test_report_method(self, two_reports):
        assert two_reports[0].render_html().startswith("<!DOCTYPE html>")


class TestCompareCli:
    def test_compare_command(self, capsys):
        from repro.cli import main

        assert main(["compare", "--old", "heat:naive", "--new",
                     "heat:restrict", "--size", "64",
                     "--max-blocks", "2"]) == 0
        out = capsys.readouterr().out
        assert "metrics comparison" in out.lower()

    def test_analyze_html_flag(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "report.html"
        assert main(["analyze", "--kernel", "mixbench:sp:naive",
                     "--size", "256", "--max-blocks", "2",
                     "--html", str(target)]) == 0
        assert target.exists()
        assert "<!DOCTYPE html>" in target.read_text()

    def test_disasm_ptx_flag(self, capsys):
        from repro.cli import main

        assert main(["disasm", "--kernel", "sgemm:naive", "--ptx"]) == 0
        out = capsys.readouterr().out
        assert ".visible .entry" in out
