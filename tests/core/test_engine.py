"""GPUscout engine tests: workflow stages, dry-run, correlation,
report rendering."""

import numpy as np
import pytest

from repro.core import GPUscout, Severity, default_analyses
from repro.core.base import Analysis, AnalysisContext, register_analysis
from repro.core.findings import Finding
from repro.errors import AnalysisError
from repro.gpu import GPUSpec, LaunchConfig
from repro.gpu.stalls import StallReason


@pytest.fixture(scope="module")
def scout():
    return GPUscout(spec=GPUSpec.small(1))


@pytest.fixture(scope="module")
def saxpy_report(scout, saxpy):
    n = 1024
    return scout.analyze(
        saxpy,
        LaunchConfig(grid=(8, 1), block=(128, 1)),
        args={"x": np.zeros(n, np.float32), "y": np.zeros(n, np.float32),
              "a": 2.0, "n": n},
    )


class TestRegistry:
    def test_default_set_covers_paper_sections(self):
        names = {a.name for a in default_analyses()}
        assert names == {
            "use_vectorized_loads",
            "register_spilling",
            "use_shared_memory",
            "use_shared_atomics",
            "use_restrict",
            "use_texture_memory",
            "datatype_conversions",
        }

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_analysis
            class Dup(Analysis):
                name = "use_restrict"

                def run(self, ctx):
                    return []

    def test_custom_analysis_pluggable(self, saxpy):
        class CountExits(Analysis):
            name = "count_exits"
            description = "count EXIT instructions"

            def run(self, ctx: AnalysisContext):
                n = sum(1 for i in ctx.program if i.opcode.base == "EXIT")
                return [Finding(
                    analysis=self.name, title="exits",
                    severity=Severity.INFO, message=str(n),
                    recommendation="none",
                )]

        scout = GPUscout(analyses=[CountExits()])
        report = scout.analyze(saxpy, dry_run=True)
        assert report.findings[0].analysis == "count_exits"


class TestDryRun:
    def test_dry_run_no_dynamic_sections(self, scout, saxpy):
        report = scout.analyze(saxpy, dry_run=True)
        assert report.dry_run
        assert report.sampling is None
        assert report.metrics is None
        assert report.launch is None
        assert report.overhead.pc_sampling_seconds == 0.0
        assert report.overhead.metrics_seconds == 0.0
        assert report.overhead.sass_analysis_seconds > 0.0

    def test_dry_run_accepts_raw_sass(self, scout):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R5, [R2+0x4] ;\n"
            "STG.E.SYS [R6], R4 ;\n"
            "EXIT ;\n"
        )
        report = scout.analyze(text, dry_run=True)
        assert report.has_finding("use_vectorized_loads")

    def test_dry_run_accepts_program(self, scout, loop_program):
        report = scout.analyze(loop_program, dry_run=True)
        assert report.kernel == "loopy"

    def test_raw_sass_dynamic_rejected(self, scout):
        with pytest.raises(AnalysisError):
            scout.analyze("EXIT ;\n", dry_run=False)

    def test_dynamic_needs_config(self, scout, saxpy):
        with pytest.raises(AnalysisError):
            scout.analyze(saxpy, dry_run=False)

    def test_unknown_object_rejected(self, scout):
        with pytest.raises(AnalysisError):
            scout.analyze(12345, dry_run=True)


class TestDynamicRun:
    def test_three_pillars_present(self, saxpy_report):
        assert not saxpy_report.dry_run
        assert saxpy_report.sampling is not None
        assert saxpy_report.metrics is not None
        assert saxpy_report.launch is not None
        assert saxpy_report.line_profiles

    def test_findings_carry_stall_profiles(self, saxpy_report):
        flagged = [f for f in saxpy_report.findings if f.pcs]
        assert flagged
        assert any(f.stall_profile for f in flagged)

    def test_findings_carry_requested_metrics(self, saxpy_report):
        for f in saxpy_report.findings:
            for name in f.metrics:
                assert name in f.metric_focus

    def test_base_metrics_collected(self, saxpy_report):
        assert "sm__cycles_elapsed.avg" in saxpy_report.metrics.values

    def test_overhead_metrics_dominate(self, saxpy_report):
        """Figure 6's headline: metric collection is the most prominent
        overhead contributor."""
        o = saxpy_report.overhead
        assert o.metrics_seconds > o.pc_sampling_seconds
        assert o.metrics_seconds > o.sass_analysis_seconds
        assert o.total_factor > 1.0

    def test_reuse_existing_launch(self, scout, saxpy, saxpy_launch):
        report = scout.analyze(saxpy, launch=saxpy_launch)
        assert report.launch is saxpy_launch

    def test_findings_sorted_by_severity(self, saxpy_report):
        sevs = [f.severity for f in saxpy_report.findings]
        assert sevs == sorted(sevs, reverse=True)


class TestReportRendering:
    def test_sections_present(self, saxpy_report):
        text = saxpy_report.render()
        assert "GPUscout analysis of kernel 'saxpy'" in text
        assert "Kernel-wide metric analysis" in text
        assert "Warp-stall sample distribution" in text
        assert "[overhead]" in text

    def test_dry_run_rendering(self, scout, saxpy):
        text = scout.analyze(saxpy, dry_run=True).render()
        assert "dry run" in text
        assert "Kernel-wide metric analysis" not in text

    def test_source_locations_rendered(self, saxpy_report):
        text = saxpy_report.render()
        assert "saxpy.cu:" in text

    def test_stall_explanations_attached(self, saxpy_report):
        text = saxpy_report.render()
        assert "stalled_" in text

    def test_color_mode(self, saxpy_report):
        plain = saxpy_report.render(color=False)
        colored = saxpy_report.render(color=True)
        assert "\x1b[" not in plain
        assert "\x1b[" in colored or not saxpy_report.findings

    def test_no_findings_message(self, scout):
        report = scout.analyze("MOV R1, R2 ;\nEXIT ;\n", dry_run=True)
        assert "No data-movement bottleneck" in report.render()


class TestSpillReportEndToEnd:
    """Figure 2's scenario: a register-starved kernel produces the
    spill finding with writer attribution and lg_throttle stalls."""

    @pytest.fixture(scope="class")
    def spill_report(self):
        from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
        from repro.cudalite.intrinsics import mad

        kb = KernelBuilder("spilly", max_registers=10)
        src = kb.param("src", ptr(f32))
        dst = kb.param("dst", ptr(f32))
        base = kb.let("base", kb.thread_idx.x * 16, dtype=i32)
        vals = kb.local_array("vals", f32, 16)
        with kb.for_range("j", 0, 16, unroll=True) as j:
            vals[j] = src[base + j]
        acc = kb.let("acc", 0.0, dtype=f32)
        with kb.for_range("i", 0, 4):
            with kb.for_range("j", 0, 16, unroll=True) as j:
                kb.assign(acc, mad(vals[j], vals[j], acc))
        kb.store(dst, base, acc)
        ck = compile_kernel(kb.build(), max_registers=10)
        from repro.sampling import PCSampler

        scout = GPUscout(spec=GPUSpec.small(1),
                         sampler=PCSampler(period_cycles=128))
        n = 8 * 256 * 16
        return scout.analyze(
            ck, LaunchConfig(grid=(8, 1), block=(256, 1)),
            args={"src": np.zeros(n, np.float32),
                  "dst": np.zeros(n, np.float32)},
        )

    def test_spill_finding_present(self, spill_report):
        assert spill_report.has_finding("register_spilling")

    def test_writer_attribution(self, spill_report):
        f = spill_report.findings_for("register_spilling")[0]
        assert f.details["causing_operation"] is not None
        assert f.details["spill_stores_total"] > 0

    def test_local_metrics_nonzero(self, spill_report):
        f = spill_report.findings_for("register_spilling")[0]
        assert f.metrics.get("launch__local_mem_per_thread", 0) > 0

    def test_lg_throttle_observed(self, spill_report):
        totals = spill_report.sampling.by_reason()
        assert totals.get(StallReason.LG_THROTTLE, 0) > 0

    def test_rendered_like_figure_2(self, spill_report):
        text = spill_report.render()
        assert "Register spilling" in text
        assert "spilled to local memory" in text
