"""Per-analysis tests over hand-written SASS (§4.1–§4.7).

Working from raw SASS text mirrors the paper's design point that
GPUscout "operates directly on the disassembled SASS code without
assuming the availability of the source CUDA program".
"""


from repro.core.base import AnalysisContext
from repro.core.atomics import SharedAtomicsAnalysis
from repro.core.conversions import DatatypeConversionsAnalysis
from repro.core.findings import Severity
from repro.core.restrict import RestrictAnalysis
from repro.core.shared_mem import SharedMemoryAnalysis
from repro.core.spilling import RegisterSpillingAnalysis
from repro.core.texture import TextureMemoryAnalysis
from repro.core.vectorize import VectorizeLoadsAnalysis
from repro.sass import parse_sass


def ctx_of(text: str) -> AnalysisContext:
    return AnalysisContext(parse_sass(text))


class TestVectorize:
    ADJACENT = """
        //## File "k.cu", line 55
        LDG.E.SYS R4, [R2] ;
        LDG.E.SYS R5, [R2+0x4] ;
        LDG.E.SYS R6, [R2+0x8] ;
        LDG.E.SYS R7, [R2+0xc] ;
        FADD R8, R4, R5 ;
        FADD R8, R8, R6 ;
        FADD R8, R8, R7 ;
        STG.E.SYS [R10], R8 ;
        EXIT ;
    """

    def test_detects_adjacent_run(self):
        findings = VectorizeLoadsAnalysis().run(ctx_of(self.ADJACENT))
        warn = [f for f in findings if f.severity is Severity.WARNING]
        assert len(warn) == 1
        f = warn[0]
        assert f.details["achievable_width_bits"] == 128
        assert f.details["base_register"] == "R2"
        assert 55 in f.lines

    def test_two_adjacent_suggests_64bit(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R5, [R2+0x4] ;\n"
            "STG.E.SYS [R6], R4 ;\n"
            "EXIT ;\n"
        )
        findings = VectorizeLoadsAnalysis().run(ctx_of(text))
        warn = [f for f in findings if f.severity is Severity.WARNING]
        assert warn[0].details["achievable_width_bits"] == 64

    def test_non_adjacent_not_flagged(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R5, [R2+0x40] ;\n"
            "EXIT ;\n"
        )
        findings = VectorizeLoadsAnalysis().run(ctx_of(text))
        assert not [f for f in findings if f.severity is Severity.WARNING]

    def test_different_base_values_not_grouped(self):
        # R2 is redefined between the loads: same name, different address
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "IADD3 R2, R2, 0x100, RZ ;\n"
            "LDG.E.SYS R5, [R2+0x4] ;\n"
            "EXIT ;\n"
        )
        findings = VectorizeLoadsAnalysis().run(ctx_of(text))
        assert not [f for f in findings if f.severity is Severity.WARNING]

    def test_existing_vector_load_reported_info(self):
        text = "LDG.E.128.SYS R4, [R2] ;\nEXIT ;\n"
        findings = VectorizeLoadsAnalysis().run(ctx_of(text))
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert "128-bit" in findings[0].message

    def test_wide_loads_not_counted_in_runs(self):
        text = (
            "LDG.E.64.SYS R4, [R2] ;\n"
            "LDG.E.64.SYS R6, [R2+0x8] ;\n"
            "EXIT ;\n"
        )
        findings = VectorizeLoadsAnalysis().run(ctx_of(text))
        assert not [f for f in findings if f.severity is Severity.WARNING]


class TestSpilling:
    SPILL = """
        //## File "k.cu", line 18
        IADD3 R5, R1, R2, RZ ;
        //## File "k.cu", line 19
        STL [0x4], R5 ;
        MOV R5, 0x7 ;
        //## File "k.cu", line 22
        LDL R6, [0x4] ;
        STG.E.SYS [R8], R6 ;
        EXIT ;
    """

    def test_detects_spill_and_blames_writer(self):
        findings = RegisterSpillingAnalysis().run(ctx_of(self.SPILL))
        assert len(findings) == 1
        f = findings[0]
        assert f.details["spilled_register"] == "R5"
        assert f.details["causing_operation"] == "IADD3"
        assert 19 in f.lines

    def test_clean_kernel_no_findings(self):
        assert RegisterSpillingAnalysis().run(
            ctx_of("MOV R1, R2 ;\nEXIT ;\n")
        ) == []

    def test_spill_in_loop_critical(self):
        text = (
            ".L:\n"
            "IADD3 R5, R5, 0x1, RZ ;\n"
            "STL [0x0], R5 ;\n"
            "LDL R6, [0x0] ;\n"
            "ISETP.LT.AND P0, PT, R6, 0x40, PT ;\n"
            "@P0 BRA `(L) ;\n"
            "EXIT ;\n"
        )
        findings = RegisterSpillingAnalysis().run(ctx_of(text))
        assert findings[0].severity is Severity.CRITICAL
        assert findings[0].in_loop

    def test_metric_focus_includes_paper_formulas(self):
        findings = RegisterSpillingAnalysis().run(ctx_of(self.SPILL))
        assert "derived__l2_queries_due_to_local_memory" in \
            findings[0].metric_focus


class TestSharedMemory:
    LOOPED = """
        MOV R2, c[0x0][0x160] ;
        .L:
        //## File "k.cu", line 9
        LDG.E.SYS R4, [R2] ;
        FFMA R5, R4, R4, R5 ;
        FMUL R6, R4, R5 ;
        IADD3 R0, R0, 0x1, RZ ;
        ISETP.LT.AND P0, PT, R0, 0x20, PT ;
        @P0 BRA `(L) ;
        STG.E.SYS [R8], R6 ;
        EXIT ;
    """

    def test_loop_load_with_arith_flagged(self):
        findings = SharedMemoryAnalysis().run(ctx_of(self.LOOPED))
        assert len(findings) == 1
        f = findings[0]
        assert f.severity is Severity.WARNING
        assert f.in_loop
        assert "R4" in f.registers
        assert f.details["arithmetic_uses"] >= 2

    def test_unused_load_not_flagged(self):
        text = "LDG.E.SYS R4, [R2] ;\nSTG.E.SYS [R6], R4 ;\nEXIT ;\n"
        assert SharedMemoryAnalysis().run(ctx_of(text)) == []

    def test_single_use_outside_loop_not_flagged(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "STG.E.SYS [R6], R5 ;\n"
            "EXIT ;\n"
        )
        assert SharedMemoryAnalysis().run(ctx_of(text)) == []

    def test_repeated_same_address_counted(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "LDG.E.SYS R6, [R2] ;\n"
            "FADD R7, R6, 2.0 ;\n"
            "FMUL R7, R7, R5 ;\n"
            "STG.E.SYS [R8], R7 ;\n"
            "EXIT ;\n"
        )
        findings = SharedMemoryAnalysis().run(ctx_of(text))
        assert findings
        assert findings[0].details["same_address_load_repeats"] == 2


class TestAtomics:
    def test_global_atomics_flagged(self):
        text = (
            "//## File \"k.cu\", line 4\n"
            "RED.E.ADD.F32 [R2], R5 ;\n"
            "EXIT ;\n"
        )
        findings = SharedAtomicsAnalysis().run(ctx_of(text))
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING
        assert findings[0].details["global_atomics"] == 1

    def test_global_atomic_in_loop_critical(self):
        text = (
            ".L:\n"
            "RED.E.ADD.F32 [R2], R5 ;\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(L) ;\n"
            "EXIT ;\n"
        )
        findings = SharedAtomicsAnalysis().run(ctx_of(text))
        assert findings[0].severity is Severity.CRITICAL
        assert "amplifies" in findings[0].message

    def test_shared_atomics_only_info(self):
        text = "ATOMS.ADD.F32 [R2], R5 ;\nEXIT ;\n"
        findings = SharedAtomicsAnalysis().run(ctx_of(text))
        assert findings[0].severity is Severity.INFO
        assert "MIO" in findings[0].recommendation \
            or "MIO" in findings[0].message

    def test_no_atomics_no_findings(self):
        assert SharedAtomicsAnalysis().run(ctx_of("EXIT ;\n")) == []

    def test_atom_with_return_value_counted(self):
        text = "ATOM.E.ADD R4, [R2], R5 ;\nEXIT ;\n"
        findings = SharedAtomicsAnalysis().run(ctx_of(text))
        assert findings[0].details["global_atomics"] == 1


class TestRestrict:
    def test_readonly_load_flagged(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "STG.E.SYS [R8], R5 ;\n"
            "EXIT ;\n"
        )
        findings = RestrictAnalysis().run(ctx_of(text))
        assert len(findings) == 1
        assert "R4" in findings[0].registers

    def test_already_constant_not_flagged(self):
        text = (
            "LDG.E.CONSTANT.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "STG.E.SYS [R8], R5 ;\n"
            "EXIT ;\n"
        )
        assert RestrictAnalysis().run(ctx_of(text)) == []

    def test_stored_through_pointer_not_flagged(self):
        # load and store through the same base: potential aliasing
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "STG.E.SYS [R2+0x4], R5 ;\n"
            "EXIT ;\n"
        )
        assert RestrictAnalysis().run(ctx_of(text)) == []

    def test_mutated_register_not_flagged(self):
        # the loaded value is updated in place (mixbench pattern)
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "FFMA R4, R4, R4, 1.0 ;\n"
            "STG.E.SYS [R8], R4 ;\n"
            "EXIT ;\n"
        )
        assert RestrictAnalysis().run(ctx_of(text)) == []


class TestTexture:
    PAPER_LISTING_1 = """
        LDG.E.SYS R0, [R2] ;
        LDG.E.SYS R5, [R4] ;
        LDG.E.SYS R7, [R4+-0x8] ;
        LDG.E.SYS R9, [R2+-0x8] ;
        STG.E.SYS [R6], R9 ;
        EXIT ;
    """

    def test_paper_listing_detected(self):
        """The exact SASS of paper Listing 1 yields texture candidates
        for both base registers."""
        findings = TextureMemoryAnalysis().run(ctx_of(self.PAPER_LISTING_1))
        bases = {f.details["base_register"] for f in findings}
        assert bases == {"R2", "R4"}

    def test_non_readonly_not_flagged(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R5, [R2+0x4] ;\n"
            "FFMA R4, R4, R4, R5 ;\n"  # R4 mutated in place
            "STG.E.SYS [R6], R4 ;\n"
            "EXIT ;\n"
        )
        findings = TextureMemoryAnalysis().run(ctx_of(text))
        assert findings == []

    def test_far_apart_offsets_not_local(self):
        text = (
            "LDG.E.SYS R4, [R2] ;\n"
            "LDG.E.SYS R5, [R2+0x1000] ;\n"
            "STG.E.SYS [R6], R4 ;\n"
            "EXIT ;\n"
        )
        assert TextureMemoryAnalysis().run(ctx_of(text)) == []

    def test_recommendation_mentions_tex_throttle(self):
        findings = TextureMemoryAnalysis().run(ctx_of(self.PAPER_LISTING_1))
        from repro.gpu.stalls import StallReason

        assert StallReason.TEX_THROTTLE in findings[0].stall_focus


class TestConversions:
    def test_counts_by_kind(self):
        text = (
            "I2F R4, R1 ;\n"
            "I2F R5, R2 ;\n"
            "F2F.F64.F32 R6, R4 ;\n"
            "EXIT ;\n"
        )
        findings = DatatypeConversionsAnalysis().run(ctx_of(text))
        assert len(findings) == 1
        f = findings[0]
        assert f.details["total"] == 3
        assert f.details["by_kind"] == {"I2F": 2, "F2F": 1}

    def test_no_conversions_no_findings(self):
        assert DatatypeConversionsAnalysis().run(ctx_of("EXIT ;\n")) == []

    def test_loop_conversions_warn(self):
        text = (
            ".L:\n"
            "I2F R4, R0 ;\n"
            "IADD3 R0, R0, 0x1, RZ ;\n"
            "ISETP.LT.AND P0, PT, R0, 0x10, PT ;\n"
            "@P0 BRA `(L) ;\n"
            "EXIT ;\n"
        )
        findings = DatatypeConversionsAnalysis().run(ctx_of(text))
        assert findings[0].severity is Severity.WARNING
