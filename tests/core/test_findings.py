"""Finding data-model tests."""

from repro.core.findings import Finding, Severity, SourceLoc
from repro.gpu.stalls import StallReason


def _mk(**kw):
    base = dict(
        analysis="x", title="t", severity=Severity.WARNING,
        message="m", recommendation="r",
    )
    base.update(kw)
    return Finding(**base)


class TestSourceLoc:
    def test_str(self):
        assert str(SourceLoc("a.cu", 12)) == "a.cu:12"
        assert str(SourceLoc(None, 12)) == "kernel.cu:12"
        assert str(SourceLoc("a.cu", None)) == "<unknown>"


class TestFinding:
    def test_lines_sorted_unique(self):
        f = _mk(locations=[SourceLoc("k.cu", 9), SourceLoc("k.cu", 3),
                           SourceLoc("k.cu", 9), SourceLoc("k.cu", None)])
        assert f.lines == [3, 9]

    def test_dominant_stall(self):
        f = _mk(stall_profile={
            StallReason.SELECTED: 100,
            StallReason.LG_THROTTLE: 30,
            StallReason.WAIT: 10,
        })
        assert f.dominant_stall() is StallReason.LG_THROTTLE

    def test_dominant_stall_none(self):
        assert _mk().dominant_stall() is None
        assert _mk(stall_profile={StallReason.SELECTED: 5}).dominant_stall() \
            is None

    def test_severity_ordering(self):
        assert Severity.CRITICAL > Severity.WARNING > Severity.INFO
