"""AnalysisContext static-fact helpers: reaching definitions, address
groups, value-range use counting, read-only classification."""


from repro.core.base import AnalysisContext
from repro.sass import parse_sass
from repro.sass.isa import Register


def ctx_of(text: str) -> AnalysisContext:
    return AnalysisContext(parse_sass(text))


class TestReachingDef:
    TEXT = """
        MOV R2, c[0x0][0x160] ;
        LDG.E.SYS R4, [R2] ;
        IADD3 R2, R2, 0x100, RZ ;
        LDG.E.SYS R5, [R2] ;
        EXIT ;
    """

    def test_stream_order_reaching(self):
        ctx = ctx_of(self.TEXT)
        r2 = Register(2)
        assert ctx.reaching_def(r2, 1) == 0
        assert ctx.reaching_def(r2, 3) == 2

    def test_unwritten_register(self):
        ctx = ctx_of(self.TEXT)
        assert ctx.reaching_def(Register(9), 3) == -1

    def test_groups_split_on_redefinition(self):
        ctx = ctx_of(self.TEXT)
        groups = ctx.global_load_groups
        assert len(groups) == 2
        keys = {g.key for g in groups}
        assert (2, 0) in keys and (2, 2) in keys


class TestAddressGroups:
    def test_offsets_collected(self):
        ctx = ctx_of(
            "MOV R2, c[0x0][0x160] ;\n"
            "LDG.E.SYS R4, [R2+0x8] ;\n"
            "LDG.E.SYS R5, [R2] ;\n"
            "LDG.E.SYS R6, [R2+0x8] ;\n"
            "EXIT ;\n"
        )
        (group,) = ctx.global_load_groups
        assert group.offsets() == [0, 8]
        assert len(group.accesses) == 3

    def test_access_groups_include_stores(self):
        ctx = ctx_of(
            "MOV R2, c[0x0][0x160] ;\n"
            "LDG.E.SYS R4, [R2] ;\n"
            "STG.E.SYS [R2+0x4], R4 ;\n"
            "EXIT ;\n"
        )
        assert len(ctx.global_load_groups[0].accesses) == 1
        assert len(ctx.global_access_groups[0].accesses) == 2

    def test_absolute_addresses_skipped(self):
        ctx = ctx_of("LDL R4, [0x8] ;\nEXIT ;\n")
        assert ctx.global_load_groups == []


class TestValueUses:
    TEXT = """
        LDG.E.SYS R4, [R2] ;
        FADD R5, R4, 1.0 ;
        FMUL R6, R4, R5 ;
        MOV R4, 0x7 ;
        IADD3 R7, R4, R4, RZ ;
        EXIT ;
    """

    def test_value_range_cuts_at_redefinition(self):
        ctx = ctx_of(self.TEXT)
        r4 = Register(4)
        first_value = ctx.value_uses(r4, 0)
        assert first_value == [1, 2]
        second_value = ctx.value_uses(r4, 3)
        assert second_value == [4]

    def test_arithmetic_subset(self):
        ctx = ctx_of(self.TEXT)
        r4 = Register(4)
        assert ctx.value_arithmetic_uses(r4, 0) == [1, 2]

    def test_architectural_count_merges_both(self):
        ctx = ctx_of(self.TEXT)
        r4 = Register(4)
        assert len(ctx.arithmetic_uses(r4)) == 3  # both values merged

    def test_unknown_register(self):
        ctx = ctx_of(self.TEXT)
        assert ctx.value_uses(Register(99), 0) == []


class TestReadOnlyClassification:
    def test_load_only_register(self):
        ctx = ctx_of(
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "STG.E.SYS [R6], R5 ;\n"
            "EXIT ;\n"
        )
        assert ctx.is_readonly_register(Register(4))
        assert not ctx.is_readonly_register(Register(5))

    def test_loop_reload_still_readonly(self):
        ctx = ctx_of(
            ".L:\n"
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R5, R4 ;\n"
            "IADD3 R2, R2, 0x4, RZ ;\n"
            "ISETP.LT.AND P0, PT, R2, 0x100, PT ;\n"
            "@P0 BRA `(L) ;\n"
            "EXIT ;\n"
        )
        assert ctx.is_readonly_register(Register(4))

    def test_inplace_update_not_readonly(self):
        ctx = ctx_of(
            "LDG.E.SYS R4, [R2] ;\n"
            "FFMA R4, R4, R4, 1.0 ;\n"
            "STG.E.SYS [R6], R4 ;\n"
            "EXIT ;\n"
        )
        assert not ctx.is_readonly_register(Register(4))

    def test_disjoint_reuse_still_readonly(self):
        # the second write to R4 starts an unrelated value (R4 dead)
        ctx = ctx_of(
            "LDG.E.SYS R4, [R2] ;\n"
            "FADD R5, R4, 1.0 ;\n"
            "LDG.E.SYS R4, [R2+0x4] ;\n"
            "FADD R5, R5, R4 ;\n"
            "STG.E.SYS [R6], R5 ;\n"
            "EXIT ;\n"
        )
        assert ctx.is_readonly_register(Register(4))

    def test_never_loaded_not_readonly(self):
        ctx = ctx_of("MOV R4, 0x1 ;\nEXIT ;\n")
        assert not ctx.is_readonly_register(Register(4))


class TestCFGReachingDef:
    """CFG-aware reaching definitions (not stream order)."""

    BRANCHY = """
        MOV R1, 0x1 ;
        ISETP.LT.AND P0, PT, R0, 0x10, PT ;
        @P0 BRA `(SKIP) ;
        MOV R1, 0x2 ;
        .SKIP:
        MOV R2, R1 ;
        EXIT ;
    """

    def test_definition_inside_branch_is_ambiguous(self):
        # stream order would blame instruction 3 alone; through the CFG
        # both the pre-branch def (0) and the taken-arm def (3) reach
        ctx = ctx_of(self.BRANCHY)
        assert ctx.reaching_def(Register(1), 4) == -2
        assert ctx.reaching.defs_at(Register(1), 4) == (0, 3)

    def test_branch_does_not_leak_backwards(self):
        ctx = ctx_of(self.BRANCHY)
        # before the branch only the first def exists
        assert ctx.reaching_def(Register(1), 1) == 0

    def test_definition_after_join_is_unique_again(self):
        text = """
            MOV R1, 0x1 ;
            ISETP.LT.AND P0, PT, R0, 0x10, PT ;
            @P0 BRA `(SKIP) ;
            MOV R1, 0x2 ;
            .SKIP:
            MOV R1, 0x3 ;
            MOV R2, R1 ;
            EXIT ;
        """
        ctx = ctx_of(text)
        assert ctx.reaching_def(Register(1), 5) == 4

    def test_loop_body_def_reaches_its_own_header(self):
        text = """
            MOV R2, c[0x0][0x160] ;
            .LOOP:
            LDG.E.SYS R4, [R2] ;
            IADD3 R2, R2, 0x80, RZ ;
            ISETP.LT.AND P0, PT, R2, 0x800, PT ;
            @P0 BRA `(LOOP) ;
            EXIT ;
        """
        ctx = ctx_of(text)
        # at the loop load both the initial def and the increment reach
        assert ctx.reaching.defs_at(Register(2), 1) == (0, 2)
        assert ctx.reaching_def(Register(2), 1) == -2
