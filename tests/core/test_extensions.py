"""Extension analyses (§7-style additions): uncoalesced access and
predication efficiency."""


from repro.core import (
    GPUscout,
    Severity,
    all_analyses,
    default_analyses,
    extension_analyses,
)
from repro.core.base import AnalysisContext
from repro.core.coalescing import UncoalescedAccessAnalysis
from repro.core.divergence import PredicationEfficiencyAnalysis
from repro.sass import parse_sass


def ctx_of(text: str) -> AnalysisContext:
    return AnalysisContext(parse_sass(text))


class TestRegistry:
    def test_extensions_not_in_defaults(self):
        default_names = {a.name for a in default_analyses()}
        assert "uncoalesced_access" not in default_names
        assert "predication_efficiency" not in default_names

    def test_extension_registry(self):
        ext_names = {a.name for a in extension_analyses()}
        assert ext_names == {"uncoalesced_access", "predication_efficiency"}

    def test_all_is_union(self):
        names = {a.name for a in all_analyses()}
        assert {a.name for a in default_analyses()} <= names
        assert {a.name for a in extension_analyses()} <= names


class TestUncoalesced:
    STRIDED = """
        S2R R0, SR_TID.X ;
        IMAD R1, R0, 0x8, RZ ;
        MOV R4, c[0x0][0x160] ;
        IMAD.WIDE R2, R1, 0x4, R4 ;
        LDG.E.SYS R5, [R2] ;
        STG.E.SYS [R2], R5 ;
        EXIT ;
    """
    DENSE = """
        S2R R0, SR_TID.X ;
        MOV R4, c[0x0][0x160] ;
        IMAD.WIDE R2, R0, 0x4, R4 ;
        LDG.E.SYS R5, [R2] ;
        STG.E.SYS [R2], R5 ;
        EXIT ;
    """

    def test_strided_flagged(self):
        findings = UncoalescedAccessAnalysis().run(ctx_of(self.STRIDED))
        assert len(findings) >= 1
        f = findings[0]
        assert f.severity is Severity.WARNING
        assert f.details["lane_byte_stride"] == 32
        assert f.details["estimated_sectors_per_access"] == 32

    def test_dense_not_flagged(self):
        assert UncoalescedAccessAnalysis().run(ctx_of(self.DENSE)) == []

    def test_vector_stride_matching_width_ok(self):
        # float4 access with 16-byte lane stride moves 16 bytes: dense
        text = """
            S2R R0, SR_TID.X ;
            MOV R4, c[0x0][0x160] ;
            IMAD.WIDE R2, R0, 0x10, R4 ;
            LDG.E.128.SYS R8, [R2] ;
            EXIT ;
        """
        assert UncoalescedAccessAnalysis().run(ctx_of(text)) == []

    def test_shifted_index_traced(self):
        text = """
            S2R R0, SR_TID.X ;
            SHF.L.U32 R1, R0, 0x3 ;
            MOV R4, c[0x0][0x160] ;
            IMAD.WIDE R2, R1, 0x4, R4 ;
            LDG.E.SYS R5, [R2] ;
            EXIT ;
        """
        findings = UncoalescedAccessAnalysis().run(ctx_of(text))
        assert findings and findings[0].details["lane_byte_stride"] == 32

    def test_non_tid_index_ignored(self):
        text = """
            MOV R0, c[0x0][0x170] ;
            IMAD R1, R0, 0x8, RZ ;
            MOV R4, c[0x0][0x160] ;
            IMAD.WIDE R2, R1, 0x4, R4 ;
            LDG.E.SYS R5, [R2] ;
            EXIT ;
        """
        assert UncoalescedAccessAnalysis().run(ctx_of(text)) == []

    def test_mixbench_naive_flagged_heat_not(self):
        from repro.kernels.heat import build_heat
        from repro.kernels.mixbench import build_mixbench

        scout = GPUscout(analyses=all_analyses())
        mix = scout.analyze(build_mixbench("sp", 8), dry_run=True)
        assert mix.has_finding("uncoalesced_access")
        heat = scout.analyze(build_heat("naive"), dry_run=True)
        assert not heat.has_finding("uncoalesced_access")


class TestPredication:
    def test_no_predication_no_finding(self):
        assert PredicationEfficiencyAnalysis().run(
            ctx_of("MOV R1, R2 ;\nEXIT ;\n")
        ) == []

    def test_guard_on_exit_ignored(self):
        text = (
            "ISETP.GE.AND P0, PT, R0, 0x40, PT ;\n"
            "@P0 EXIT ;\n"
            "MOV R1, R2 ;\n"
            "EXIT ;\n"
        )
        assert PredicationEfficiencyAnalysis().run(ctx_of(text)) == []

    def test_dual_arm_detected(self):
        text = (
            "ISETP.GE.AND P0, PT, R0, 0x40, PT ;\n"
            "@P0 MOV R1, 0x1 ;\n"
            "@P0 STG.E.SYS [R2], R1 ;\n"
            "@!P0 MOV R1, 0x2 ;\n"
            "@!P0 STG.E.SYS [R2], R1 ;\n"
            "EXIT ;\n"
        )
        findings = PredicationEfficiencyAnalysis().run(ctx_of(text))
        assert len(findings) == 1
        f = findings[0]
        assert f.severity is Severity.WARNING  # 4/6 > 0.3
        assert f.details["dual_arm_predicates"] == [0]
        assert f.details["predicated_memory_ops"] == 2

    def test_light_predication_info(self):
        text = (
            "ISETP.GE.AND P0, PT, R0, 0x40, PT ;\n"
            + "MOV R1, R2 ;\n" * 10
            + "@P0 MOV R3, 0x1 ;\n"
            + "EXIT ;\n"
        )
        findings = PredicationEfficiencyAnalysis().run(ctx_of(text))
        assert findings[0].severity is Severity.INFO

    def test_heat_kernel_reports_predication(self):
        from repro.kernels.heat import build_heat

        scout = GPUscout(analyses=all_analyses())
        report = scout.analyze(build_heat("naive"), dry_run=True)
        f = report.findings_for("predication_efficiency")[0]
        assert f.details["dual_arm_predicates"]  # the if/else arms
        assert 0.0 < f.details["predicated_fraction"] < 1.0


class TestCliExtended:
    def test_extended_flag(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--kernel", "mixbench:sp:naive",
                     "--dry-run", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "Uncoalesced global memory access" in out

    def test_default_excludes_extensions(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--kernel", "mixbench:sp:naive",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "Uncoalesced" not in out
