"""Predict-vs-measure cross-validation harness (repro.core.validate)."""

import pytest

from repro.core.validate import (
    ALL_KERNELS,
    SMOKE_KERNELS,
    render_validations,
    validate_kernel,
)


class TestSgemm:
    @pytest.fixture(scope="class")
    def shared(self):
        return validate_kernel("sgemm:shared", size=64)

    def test_every_proven_prediction_matches(self, shared):
        assert shared.mismatches == []
        assert shared.ok

    def test_bank_conflicts_predicted_exactly(self, shared):
        # the unpadded [TILE][TILE] layout makes the 2-way LDS conflict
        # a static certainty; the simulator must agree access by access
        lds = [c for c in shared.checks
               if c.space == "shared" and c.opcode.startswith("LDS")]
        assert lds, "sgemm:shared must load from shared memory"
        conflicted = [c for c in lds if c.proven and c.predicted > 1.0]
        assert conflicted
        for c in conflicted:
            assert c.matches is True

    def test_all_accesses_proven(self, shared):
        # sgemm is fully affine: nothing should be left unproven
        assert shared.unproven == []

    def test_naive_global_sectors_match(self):
        r = validate_kernel("sgemm:naive", size=64)
        assert r.ok
        glb = [c for c in r.checks if c.space == "global" and c.proven]
        assert glb
        for c in glb:
            assert c.matches is True


class TestHistogramShared:
    @pytest.fixture(scope="class")
    def hist(self):
        return validate_kernel("histogram:shared", size=256)

    def test_proven_accesses_match(self, hist):
        assert hist.ok
        assert len(hist.proven) >= 3

    def test_shared_transactions_match(self, hist):
        shared = [c for c in hist.checks
                  if c.space == "shared" and c.proven]
        assert shared
        for c in shared:
            assert c.matches is True

    def test_data_dependent_atomic_unproven(self, hist):
        # the histogram bin is data-dependent: claiming a count for the
        # shared atomic would be a guess, and the harness must not
        unproven = [c.opcode for c in hist.unproven]
        assert any(op.startswith("ATOMS") for op in unproven)
        for c in hist.unproven:
            assert c.predicted is None
            assert c.reason


class TestHarnessMechanics:
    def test_smoke_subset_is_fast_and_known(self):
        assert set(SMOKE_KERNELS) <= set(ALL_KERNELS)
        assert 2 <= len(SMOKE_KERNELS) <= 4

    def test_to_dict_roundtrips(self):
        import json

        r = validate_kernel("mixbench:sp:naive", size=64)
        d = r.to_dict()
        json.dumps(d)  # serialisable
        assert d["kernel"] == "mixbench:sp:naive"
        assert d["ok"] is True
        assert d["mismatches"] == 0
        assert len(d["checks"]) == len(r.checks)

    def test_render_mentions_totals(self):
        r = validate_kernel("mixbench:sp:naive", size=64)
        text = render_validations([r])
        assert "mixbench:sp:naive" in text
        assert "TOTAL" in text
        assert "mismatches=0" in text

    def test_request_counts_enumerated_exactly(self):
        r = validate_kernel("mixbench:sp:naive", size=64)
        once = [c for c in r.checks if c.predicted_requests is not None]
        assert once
        for c in once:
            assert c.predicted_requests == c.requests


class TestBlameCrossCheck:
    """``validate --blame``: every sampled dependency stall's blamed
    producer must have actually executed per the hardware counters."""

    @pytest.fixture(scope="class", params=["sgemm:shared", "heat:naive"])
    def result(self, request):
        return validate_kernel(request.param, size=64, blame=True)

    def test_no_blame_mismatches(self, result):
        assert result.blame_mismatches == []
        assert result.ok

    def test_coverage_meets_the_bar(self, result):
        assert result.blame_checks, "no dependency stalls sampled"
        assert result.blame_coverage is not None
        assert result.blame_coverage >= 0.9

    def test_confirmed_producers_name_real_instructions(self, result):
        confirmed = [c for c in result.blame_checks
                     if c.verdict == "confirmed"]
        assert confirmed
        for c in confirmed:
            assert c.producer_pc is not None
            assert c.producer_op
            assert c.activity

    def test_blame_fields_serialise(self, result):
        import json

        d = result.to_dict()
        json.dumps(d)
        assert d["blame"]["mismatches"] == 0
        assert len(d["blame"]["checks"]) == len(result.blame_checks)

    def test_blame_off_by_default(self):
        r = validate_kernel("mixbench:sp:naive", size=64)
        assert r.blame_checks == []
        assert r.blame_coverage is None

    def test_render_includes_blame_summary(self, result):
        text = render_validations([result])
        assert "blame:" in text
        assert "blame-mismatches=0" in text
