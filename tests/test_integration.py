"""End-to-end integration tests reproducing the paper's case-study
*shapes* at test scale (the benchmark harness runs the full-size
versions; see benchmarks/ and EXPERIMENTS.md)."""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.gpu import LaunchConfig, Simulator
from repro.gpu.stalls import StallReason
from repro.kernels.heat import build_heat, heat_args
from repro.kernels.mixbench import build_mixbench, mixbench_args
from repro.kernels.sgemm import (
    build_sgemm,
    sgemm_args,
    sgemm_launch,
    sgemm_reference,
)


from repro.kernels.calibration import heat_spec, mixbench_spec, sgemm_spec


class TestMixbenchCaseStudy:
    """§5.1 shape: vectorization speeds up all three dtypes and lowers
    the long-scoreboard share."""

    @pytest.fixture(scope="class")
    def results(self):
        sim = Simulator(mixbench_spec())
        out = {}
        for dtype in ("sp", "dp", "int"):
            for vec in (False, True):
                ck = build_mixbench(dtype, 8, vectorized=vec)
                args = mixbench_args(4096, 8, dtype)
                args["compute_iterations"] = 4
                out[(dtype, vec)] = sim.launch(
                    ck, LaunchConfig(grid=(16, 1), block=(256, 1)),
                    args=args, functional_all=False,
                )
        return out

    @pytest.mark.parametrize("dtype", ["sp", "dp", "int"])
    def test_vectorized_faster(self, results, dtype):
        naive = results[(dtype, False)]
        vec = results[(dtype, True)]
        assert vec.cycles < naive.cycles

    @pytest.mark.parametrize("dtype", ["sp", "dp", "int"])
    def test_fewer_load_instructions(self, results, dtype):
        assert (results[(dtype, True)].counters.global_load_instructions
                < results[(dtype, False)].counters.global_load_instructions)

    def test_memory_stall_share_drops(self, results):
        """Paper: long-scoreboard dropped 70 % -> 62 % per active warp.
        In our model the naive variant's memory waiting surfaces as
        lg_throttle rather than long_scoreboard (the LG queue is the
        binding stage); the combined LG-path share drops, which is the
        same observation (see EXPERIMENTS.md)."""
        def mem_share(res):
            tot = res.counters.stall_totals()
            stall = sum(v for k, v in tot.items()
                        if k is not StallReason.SELECTED)
            return (tot.get(StallReason.LONG_SCOREBOARD, 0)
                    + tot.get(StallReason.LG_THROTTLE, 0)) / stall

        assert mem_share(results[("sp", True)]) < mem_share(results[("sp", False)])

    def test_occupancy_drops_with_vectorization(self, results):
        """Paper: achieved occupancy 92 % -> 83 %."""
        assert (results[("sp", True)].achieved_occupancy
                < results[("sp", False)].achieved_occupancy)


class TestHeatCaseStudy:
    """§5.2 shape: texture variant is faster; restrict variant changes
    little; TEX throttle appears only after the texture switch."""

    @pytest.fixture(scope="class")
    def results(self):
        sim = Simulator(heat_spec())
        w, h = 256, 128
        out = {}
        for variant in ("naive", "restrict", "texture"):
            ck = build_heat(variant)
            args, t0 = heat_args(w, h, variant=variant)
            tex = {"t_tex": t0.reshape(h, w)} if variant == "texture" else {}
            out[variant] = sim.launch(
                ck, LaunchConfig(grid=(w // 256, h), block=(256, 1)),
                args=args, textures=tex, max_blocks=32, functional_all=False,
            )
        return out

    def test_texture_faster_than_naive(self, results):
        """Paper: 39.2 % runtime improvement (1.65x)."""
        speedup = results["naive"].cycles / results["texture"].cycles
        assert 1.3 < speedup < 2.2

    def test_restrict_effect_small(self, results):
        """Paper: +0.3 % only."""
        naive = results["naive"].cycles
        restrict = results["restrict"].cycles
        assert abs(naive - restrict) / naive < 0.02

    def test_tex_throttle_only_with_texture(self, results):
        get = lambda r: r.counters.stall_totals().get(  # noqa: E731
            StallReason.TEX_THROTTLE, 0)
        assert get(results["naive"]) == 0
        assert get(results["texture"]) > 0

    def test_texture_bytes_reported(self, results):
        c = results["texture"].device_counters
        assert c.texture_sectors * 32 > 0
        miss_pct = 100.0 * c.texture_misses / max(
            c.texture_misses + c.texture_hits, 1)
        assert 0 < miss_pct < 100  # partial locality, as in the paper


class TestSgemmCaseStudy:
    """§5.3 shape: shared-memory tiling is a large win; vectorized
    shared is faster still; register pressure climbs."""

    @pytest.fixture(scope="class")
    def results(self):
        sim = Simulator(sgemm_spec())
        n = 256
        out = {}
        for variant in ("naive", "shared", "shared_vec"):
            ck = build_sgemm(variant)
            args = sgemm_args(n, n, n)
            out[variant] = (
                ck,
                sim.launch(ck, sgemm_launch(variant, n, n), args=args,
                           max_blocks=8, functional_all=False),
            )
        return out

    def test_shared_much_faster(self, results):
        naive = results["naive"][1].cycles
        shared = results["shared"][1].cycles
        assert shared < naive / 2  # large win (paper: 54x at 10240^2)

    def test_vectorized_faster_still(self, results):
        assert results["shared_vec"][1].cycles < results["shared"][1].cycles

    def test_mio_stalls_rise_with_shared(self, results):
        def mio(res):
            tot = res.counters.stall_totals()
            stall = sum(v for k, v in tot.items()
                        if k is not StallReason.SELECTED)
            return (tot.get(StallReason.MIO_THROTTLE, 0)
                    + tot.get(StallReason.SHORT_SCOREBOARD, 0)) / stall

        assert mio(results["shared"][1]) > mio(results["naive"][1])

    def test_register_climb(self, results):
        regs = {v: ck.allocation.registers_used
                for v, (ck, _) in results.items()}
        assert regs["naive"] <= regs["shared"] < regs["shared_vec"]


class TestOptimizationGuidedWorkflow:
    """The paper's §5 loop: analyze -> apply recommendation ->
    re-analyze shows the predicted stall shifts."""

    def test_mixbench_workflow(self):
        scout = GPUscout(spec=mixbench_spec())
        args = mixbench_args(2048, 8, "sp")
        args["compute_iterations"] = 4
        cfg = LaunchConfig(grid=(8, 1), block=(256, 1))

        naive_report = scout.analyze(build_mixbench("sp", 8), cfg, dict(args))
        warns = [f for f in naive_report.findings_for("use_vectorized_loads")
                 if f.severity.value >= 1]
        assert warns, "the tool must recommend vectorization first"

        vec_report = scout.analyze(
            build_mixbench("sp", 8, vectorized=True), cfg, dict(args)
        )
        # the recommendation held: fewer cycles after the change
        assert vec_report.launch.cycles < naive_report.launch.cycles

    def test_sgemm_correctness_through_ladder(self):
        sim = Simulator(sgemm_spec())
        n = 64
        ref = None
        for variant in ("naive", "shared", "shared_vec"):
            args = sgemm_args(n, n, n)
            res = sim.launch(build_sgemm(variant), sgemm_launch(variant, n, n),
                             args=args)
            got = res.read_buffer("c")
            if ref is None:
                ref = sgemm_reference(args)
            assert np.allclose(got, ref, rtol=1e-3, atol=1e-4), variant
