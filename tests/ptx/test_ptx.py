"""PTX stage tests: writer, parser, and the §4.4 PTX atomics scan."""


from repro.cudalite import (
    KernelBuilder,
    compile_kernel,
    f32,
    f64,
    float4,
    i32,
    ptr,
)
from repro.cudalite.intrinsics import mad, sqrtf
from repro.ptx import kernel_to_ptx, parse_ptx, scan_atomics


def _histogram_kernel(loop_global: bool = False):
    kb = KernelBuilder("histo")
    data = kb.param("data", ptr(i32, readonly=True))
    hist = kb.param("hist", ptr(f32))
    sm = kb.shared_array("local_hist", f32, 64)
    t = kb.let("t", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    with kb.for_range("i", 0, 4) as i:
        v = kb.let("v", data[t * 4 + i])
        if loop_global:
            kb.atomic_add_global(hist, v % 64, 1.0)
        else:
            kb.atomic_add_shared(sm, v % 64, 1.0)
    kb.sync_threads()
    kb.atomic_add_global(hist, t % 64, sm[t % 64])
    return kb.build()


class TestWriter:
    def test_header_and_params(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert ".visible .entry histo(" in ptx
        assert ".param .u64 histo_param_0" in ptx
        assert ".target sm_70" in ptx

    def test_shared_declared(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert ".shared .align 16 .b8 __smem[256];" in ptx

    def test_atomics_rendered_with_space(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert "atom.shared.add.f32" in ptx
        assert "red.global.add.f32" in ptx

    def test_builtins_become_sregs(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert "%tid.x" in ptx
        assert "%ctaid.x" in ptx

    def test_line_markers_present(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert "// line" in ptx

    def test_setp_and_branch(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert "setp.lt.s32" in ptx
        assert "bra $L_" in ptx

    def test_float_literal_hex_form(self):
        ptx = kernel_to_ptx(_histogram_kernel())
        assert "0f3F800000" in ptx  # 1.0f

    def test_vector_load(self):
        kb = KernelBuilder("vec")
        p = kb.param("p", ptr(f32))
        o = kb.param("o", ptr(f32))
        v = kb.let("v", p.as_vector(float4)[0], dtype=float4)
        kb.store(o.as_vector(float4), 0, v)
        ptx = kernel_to_ptx(kb.build())
        assert "ld.global.v4.f32" in ptx
        assert "st.global.v4.f32" in ptx

    def test_readonly_load_nc(self):
        kb = KernelBuilder("ro")
        p = kb.param("p", ptr(f32, readonly=True, restrict=True))
        o = kb.param("o", ptr(f32))
        kb.store(o, 0, p[0])
        ptx = kernel_to_ptx(kb.build())
        assert "ld.global.nc" in ptx

    def test_math_opcodes(self):
        kb = KernelBuilder("m")
        o = kb.param("o", ptr(f32))
        a = kb.param("a", f32)
        d = kb.param("d", ptr(f64))
        kb.store(o, 0, mad(a, a, sqrtf(a)))
        kb.store(d, 0, a.cast(f64) * 2.0)
        ptx = kernel_to_ptx(kb.build())
        assert "fma.rn.f32" in ptx
        assert "sqrt.approx.f32" in ptx
        assert "cvt.f64.f32" in ptx

    def test_conversions(self):
        kb = KernelBuilder("c")
        o = kb.param("o", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        kb.store(o, t, t.cast(f32))
        ptx = kernel_to_ptx(kb.build())
        assert "cvt.rn.f32.s32" in ptx

    def test_sass_artifacts_absent(self):
        """PTX must not leak SASS-only forms (LOP3 LUTs, PT chains)."""
        ptx = kernel_to_ptx(_histogram_kernel())
        assert ", 192" not in ptx  # LOP3 LUT immediate
        assert "%pt," not in ptx.lower().replace(" ", "")


class TestParser:
    def test_roundtrip_structure(self):
        kernel = _histogram_kernel()
        pk = parse_ptx(kernel_to_ptx(kernel))
        assert pk.name == "histo"
        assert len(pk.params) == 2
        assert pk.shared_bytes == 256
        assert pk.instructions()

    def test_guards(self):
        pk = parse_ptx(kernel_to_ptx(_histogram_kernel()))
        guarded = [i for i in pk.instructions() if i.guard]
        assert guarded
        assert all(g.guard.startswith(("%p", "!%p")) for g in guarded)

    def test_labels_positioned(self):
        pk = parse_ptx(kernel_to_ptx(_histogram_kernel()))
        labels = pk.label_positions()
        assert labels
        branches = [i for i in pk.instructions() if i.is_branch]
        assert branches
        assert all(b.branch_target() is not None for b in branches)

    def test_lines_attached(self):
        pk = parse_ptx(kernel_to_ptx(_histogram_kernel()))
        assert any(i.line is not None for i in pk.instructions())

    def test_opcode_histogram(self):
        pk = parse_ptx(kernel_to_ptx(_histogram_kernel()))
        hist = pk.opcode_histogram()
        assert hist["atom"] >= 1
        assert hist["red"] >= 1
        assert hist["ld"] >= 1

    def test_atomic_classification(self):
        pk = parse_ptx(kernel_to_ptx(_histogram_kernel()))
        spaces = {i.atomic_space for i in pk.instructions() if i.is_atomic}
        assert spaces == {"shared", "global"}


class TestAtomicsScan:
    def test_counts(self):
        summary = scan_atomics(parse_ptx(kernel_to_ptx(_histogram_kernel())))
        assert summary.global_atomics == 1
        assert summary.shared_atomics == 1
        assert summary.total == 2

    def test_loop_membership(self):
        summary = scan_atomics(parse_ptx(kernel_to_ptx(_histogram_kernel())))
        assert summary.shared_in_loop == 1  # the per-element shared add
        assert summary.global_in_loop == 0  # the merge is after the loop

    def test_global_in_loop_detected(self):
        summary = scan_atomics(
            parse_ptx(kernel_to_ptx(_histogram_kernel(loop_global=True)))
        )
        assert summary.global_in_loop >= 1
        assert summary.recommends_shared_atomics

    def test_no_atomics(self):
        kb = KernelBuilder("plain")
        o = kb.param("o", ptr(f32))
        kb.store(o, 0, 1.0)
        summary = scan_atomics(parse_ptx(kernel_to_ptx(kb.build())))
        assert summary.total == 0
        assert not summary.recommends_shared_atomics

    def test_sites_carry_lines(self):
        summary = scan_atomics(parse_ptx(kernel_to_ptx(_histogram_kernel())))
        assert all(line is not None for _, line in summary.sites)


class TestEngineCrossCheck:
    def test_ptx_summary_attached_to_report(self):
        from repro.core import GPUscout

        ck = compile_kernel(_histogram_kernel(loop_global=True))
        report = GPUscout().analyze(ck, dry_run=True)
        assert report.ptx_atomics is not None
        finding = report.findings_for("use_shared_atomics")[0]
        # SASS-level and PTX-level counts agree
        assert finding.details["global_atomics"] == \
            finding.details["ptx_global_atomics"]
        assert finding.details["shared_atomics"] == \
            finding.details["ptx_shared_atomics"]

    def test_raw_sass_has_no_ptx(self):
        from repro.core import GPUscout

        report = GPUscout().analyze("EXIT ;\n", dry_run=True)
        assert report.ptx_atomics is None

    def test_compiled_kernel_exposes_ptx_text(self):
        ck = compile_kernel(_histogram_kernel())
        assert ".visible .entry" in ck.ptx_text
