"""Functional-execution semantics: each instruction family is exercised
through a tiny compiled kernel and checked against NumPy."""

import numpy as np
import pytest

from repro.cudalite import (
    KernelBuilder,
    compile_kernel,
    f32,
    f64,
    float4,
    i32,
    ptr,
)
from repro.cudalite.intrinsics import fmaxf, fminf, mad, rcpf, rsqrtf, sqrtf
from repro.errors import SimulationError
from repro.gpu import GPUSpec, LaunchConfig, Simulator


@pytest.fixture(scope="module")
def sim1():
    return Simulator(GPUSpec.small(1))


def run_unary_f32(sim, fn, xs):
    kb = KernelBuilder("t")
    src = kb.param("src", ptr(f32))
    dst = kb.param("dst", ptr(f32))
    i = kb.let("i", kb.thread_idx.x, dtype=i32)
    kb.store(dst, i, fn(kb, src[i]))
    ck = compile_kernel(kb.build())
    out = np.zeros_like(xs)
    res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(len(xs), 1)),
                     args={"src": xs, "dst": out})
    return res.read_buffer("dst")


class TestFloat32Ops:
    def test_add_mul_fma(self, sim1):
        xs = np.linspace(-4, 4, 32, dtype=np.float32)
        got = run_unary_f32(sim1, lambda kb, x: x * x + x, xs)
        assert np.array_equal(got, xs * xs + xs)

    def test_mad(self, sim1):
        xs = np.linspace(0.1, 3, 32, dtype=np.float32)
        got = run_unary_f32(sim1, lambda kb, x: mad(x, 2.0, 1.0), xs)
        assert np.allclose(got, xs * np.float32(2) + np.float32(1))

    def test_sqrt_rcp_rsq(self, sim1):
        xs = np.linspace(0.25, 9, 32, dtype=np.float32)
        assert np.allclose(run_unary_f32(sim1, lambda kb, x: sqrtf(x), xs),
                           np.sqrt(xs))
        assert np.allclose(run_unary_f32(sim1, lambda kb, x: rcpf(x), xs),
                           1.0 / xs)
        assert np.allclose(run_unary_f32(sim1, lambda kb, x: rsqrtf(x), xs),
                           1.0 / np.sqrt(xs), rtol=1e-6)

    def test_min_max(self, sim1):
        xs = np.linspace(-2, 2, 32, dtype=np.float32)
        got = run_unary_f32(sim1, lambda kb, x: fminf(fmaxf(x, -1.0), 1.0), xs)
        assert np.array_equal(got, np.clip(xs, -1, 1))

    def test_negation(self, sim1):
        xs = np.linspace(-2, 2, 32, dtype=np.float32)
        got = run_unary_f32(sim1, lambda kb, x: -x, xs)
        assert np.array_equal(got, -xs)

    def test_division(self, sim1):
        xs = np.linspace(1, 5, 32, dtype=np.float32)
        got = run_unary_f32(sim1, lambda kb, x: x / 2.0, xs)
        assert np.allclose(got, xs / 2.0, rtol=1e-6)


class TestIntegerOps:
    def _run_i32(self, sim, fn, xs):
        kb = KernelBuilder("t")
        src = kb.param("src", ptr(i32))
        dst = kb.param("dst", ptr(i32))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        kb.store(dst, i, fn(src[i]))
        ck = compile_kernel(kb.build())
        out = np.zeros_like(xs)
        res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(len(xs), 1)),
                         args={"src": xs, "dst": out})
        return res.read_buffer("dst")

    def test_add_sub_mul(self, sim1):
        xs = np.arange(-16, 16, dtype=np.int32)
        assert np.array_equal(self._run_i32(sim1, lambda x: x + 7, xs), xs + 7)
        assert np.array_equal(self._run_i32(sim1, lambda x: x - 7, xs), xs - 7)
        assert np.array_equal(self._run_i32(sim1, lambda x: x * 3, xs), xs * 3)

    def test_shifts(self, sim1):
        xs = np.arange(32, dtype=np.int32)
        assert np.array_equal(self._run_i32(sim1, lambda x: x << 2, xs),
                              xs << 2)
        assert np.array_equal(self._run_i32(sim1, lambda x: x >> 1, xs),
                              xs >> 1)

    def test_arithmetic_right_shift(self, sim1):
        xs = np.arange(-32, 0, dtype=np.int32)
        assert np.array_equal(self._run_i32(sim1, lambda x: x / 4, xs[::1] * 0 + 16),
                              np.full_like(xs, 4))
        # signed >> keeps the sign
        assert np.array_equal(self._run_i32(sim1, lambda x: x >> 1, xs),
                              xs >> 1)

    def test_bitwise(self, sim1):
        xs = np.arange(32, dtype=np.int32)
        assert np.array_equal(self._run_i32(sim1, lambda x: x & 5, xs), xs & 5)
        assert np.array_equal(self._run_i32(sim1, lambda x: x | 9, xs), xs | 9)
        assert np.array_equal(self._run_i32(sim1, lambda x: x ^ 3, xs), xs ^ 3)

    def test_modulo_pow2(self, sim1):
        xs = np.arange(32, dtype=np.int32)
        assert np.array_equal(self._run_i32(sim1, lambda x: x % 8, xs), xs % 8)

    def test_wraparound(self, sim1):
        xs = np.full(32, 2**31 - 1, dtype=np.int32)
        got = self._run_i32(sim1, lambda x: x + 1, xs)
        assert np.array_equal(got, xs + np.int32(1))


class TestConversions:
    def test_i2f_f2i(self, sim1):
        kb = KernelBuilder("t")
        src = kb.param("src", ptr(i32))
        dst = kb.param("dst", ptr(f32))
        back = kb.param("back", ptr(i32))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        x = kb.let("x", src[i].cast(f32))
        kb.store(dst, i, x)
        kb.store(back, i, (x * 2.0).cast(i32))
        ck = compile_kernel(kb.build())
        xs = np.arange(-16, 16, dtype=np.int32)
        res = sim1.launch(
            ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
            args={"src": xs, "dst": np.zeros(32, np.float32),
                  "back": np.zeros(32, np.int32)},
        )
        assert np.array_equal(res.read_buffer("dst"), xs.astype(np.float32))
        assert np.array_equal(res.read_buffer("back"),
                              np.trunc(xs * 2.0).astype(np.int32))

    def test_f32_f64_roundtrip(self, sim1):
        kb = KernelBuilder("t")
        src = kb.param("src", ptr(f32))
        wide = kb.param("wide", ptr(f64))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        kb.store(wide, i, src[i].cast(f64) * 2.0)
        ck = compile_kernel(kb.build())
        xs = np.linspace(0, 1, 32, dtype=np.float32)
        res = sim1.launch(
            ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
            args={"src": xs, "wide": np.zeros(32, np.float64)},
        )
        assert np.allclose(res.read_buffer("wide"),
                           xs.astype(np.float64) * 2.0)


class TestFp64:
    def test_dfma_chain(self, sim1):
        kb = KernelBuilder("t")
        src = kb.param("src", ptr(f64))
        dst = kb.param("dst", ptr(f64))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        x = kb.let("x", src[i])
        kb.store(dst, i, mad(x, x, 0.5))
        ck = compile_kernel(kb.build())
        xs = np.linspace(0, 2, 32, dtype=np.float64)
        res = sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                          args={"src": xs, "dst": np.zeros(32, np.float64)})
        assert np.array_equal(res.read_buffer("dst"), xs * xs + 0.5)


class TestVectorOps:
    def test_float4_roundtrip_and_math(self, sim1):
        kb = KernelBuilder("t")
        src = kb.param("src", ptr(f32))
        dst = kb.param("dst", ptr(f32))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        v = kb.let("v", src.as_vector(float4)[i], dtype=float4)
        w = kb.let("w", mad(v, 2.0, 1.0), dtype=float4)
        kb.store(dst.as_vector(float4), i, w)
        ck = compile_kernel(kb.build())
        xs = np.arange(128, dtype=np.float32)
        res = sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                          args={"src": xs, "dst": np.zeros(128, np.float32)})
        assert np.array_equal(res.read_buffer("dst"), xs * 2 + 1)

    def test_lane_extraction(self, sim1):
        kb = KernelBuilder("t")
        src = kb.param("src", ptr(f32))
        dst = kb.param("dst", ptr(f32))
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        v = kb.let("v", src.as_vector(float4)[i], dtype=float4)
        kb.store(dst, i, v.x + v.y + v.z + v.w)
        ck = compile_kernel(kb.build())
        xs = np.arange(128, dtype=np.float32)
        res = sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                          args={"src": xs, "dst": np.zeros(32, np.float32)})
        assert np.array_equal(res.read_buffer("dst")[:32],
                              xs.reshape(32, 4).sum(axis=1))


class TestPredicationAndGuards:
    def test_partial_warp_active(self, sim1):
        kb = KernelBuilder("t")
        dst = kb.param("dst", ptr(f32))
        n = kb.param("n", i32)
        i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
                   dtype=i32)
        kb.return_if(i >= n)
        kb.store(dst, i, 1.0)
        ck = compile_kernel(kb.build())
        out = np.zeros(64, np.float32)
        res = sim1.launch(ck, LaunchConfig(grid=(2, 1), block=(32, 1)),
                          args={"dst": out, "n": 40})
        got = res.read_buffer("dst")
        assert np.array_equal(got[:40], np.ones(40, np.float32))
        assert np.array_equal(got[40:], np.zeros(24, np.float32))

    def test_if_else_complement(self, sim1):
        kb = KernelBuilder("t")
        dst = kb.param("dst", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        with kb.if_then(t < 16):
            kb.store(dst, t, 1.0)
        with kb.if_then(t >= 16):
            kb.store(dst, t, 2.0)
        ck = compile_kernel(kb.build())
        res = sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                          args={"dst": np.zeros(32, np.float32)})
        got = res.read_buffer("dst")
        assert np.array_equal(got, np.array([1.0] * 16 + [2.0] * 16,
                                            dtype=np.float32))

    def test_odd_block_size_masks_tail(self, sim1):
        kb = KernelBuilder("t")
        dst = kb.param("dst", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        kb.store(dst, t, 3.0)
        ck = compile_kernel(kb.build())
        res = sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(40, 1)),
                          args={"dst": np.zeros(64, np.float32)})
        got = res.read_buffer("dst")
        assert np.count_nonzero(got) == 40


class TestMemorySafety:
    def test_out_of_bounds_raises(self, sim1):
        kb = KernelBuilder("t")
        dst = kb.param("dst", ptr(f32))
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        kb.store(dst, t + 1_000_000, 1.0)
        ck = compile_kernel(kb.build())
        with pytest.raises(SimulationError):
            sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                        args={"dst": np.zeros(8, np.float32)})

    def test_shared_out_of_bounds_raises(self, sim1):
        kb = KernelBuilder("t")
        kb.param("dst", ptr(f32))
        sm = kb.shared_array("s", f32, 8)
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        sm[t * 100] = 1.0
        ck = compile_kernel(kb.build())
        with pytest.raises(SimulationError):
            sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                        args={"dst": np.zeros(8, np.float32)})
