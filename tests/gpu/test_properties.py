"""Property-based tests for the hardware substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.caches import SectorCache, line_groups
from repro.gpu.coalesce import coalesce_sectors, shared_transactions
from repro.gpu.scheduler import Timeline
from repro.gpu.timed_trace import (
    _pack_coalesce,
    _pack_shared_tx,
    _pack_unique_counts,
)


addresses = hnp.arrays(
    dtype=np.int64,
    shape=32,
    elements=st.integers(0, 2**20).map(lambda v: v * 4),
)
masks = hnp.arrays(dtype=np.bool_, shape=32)

#: (rows, 32) packs — the stacked warp-major shape the trace build
#: feeds to the vectorized per-warp packers
pack_addresses = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 4), st.just(32)),
    elements=st.integers(0, 2**14).map(lambda v: v * 4),
)
pack_masks = hnp.arrays(dtype=np.bool_,
                        shape=st.tuples(st.integers(1, 4), st.just(32)))


@given(pack_addresses, st.sampled_from([4, 8, 16, 64]), pack_masks)
@settings(max_examples=100, deadline=None)
def test_pack_coalesce_matches_scalar(addrs, nbytes, guard):
    """The vectorized pack produces, row by row, exactly the scalar
    ``coalesce_sectors`` pools and exactly the ``line_groups`` structure
    over each pool (with absolute pool indices).  nbytes=64 forces the
    wider-than-a-sector fallback path."""
    rows = min(addrs.shape[0], guard.shape[0])
    addrs, guard = addrs[:rows], guard[:rows]
    offs, pool, groups = _pack_coalesce(addrs, nbytes, guard, 32, 128)
    assert len(offs) == rows + 1 and len(groups) == rows
    assert all(type(s) is int for s in pool)
    for w in range(rows):
        o0, o1 = offs[w], offs[w + 1]
        ref = coalesce_sectors(addrs[w], nbytes, guard[w], 32).tolist()
        assert pool[o0:o1] == ref
        ref_groups = line_groups(ref, 128, 32, 4)
        rebased = tuple((ln, mk, c, i - o0, j - o0)
                        for ln, mk, c, i, j in groups[w])
        assert rebased == ref_groups


@given(pack_addresses, st.sampled_from([4, 8]), pack_masks)
@settings(max_examples=100, deadline=None)
def test_pack_shared_tx_matches_scalar(addrs, nbytes, guard):
    rows = min(addrs.shape[0], guard.shape[0])
    addrs, guard = addrs[:rows] % 4096, guard[:rows]
    tx = _pack_shared_tx(addrs, nbytes, guard, 32, 4)
    assert tx == [shared_transactions(addrs[w], nbytes, guard[w], 32, 4)
                  for w in range(rows)]


@given(pack_addresses, pack_masks)
@settings(max_examples=100, deadline=None)
def test_pack_unique_counts_matches_numpy(addrs, guard):
    rows = min(addrs.shape[0], guard.shape[0])
    addrs, guard = addrs[:rows], guard[:rows]
    uniq, serial = _pack_unique_counts(addrs.copy(), guard)
    for w in range(rows):
        act = addrs[w][guard[w]]
        if len(act) == 0:
            assert uniq[w] == 0 and serial[w] == 0
            continue
        vals, counts = np.unique(act, return_counts=True)
        assert uniq[w] == len(vals)
        assert serial[w] == counts.max()


pool_streams = st.lists(
    st.lists(st.integers(0, 255).map(lambda v: v * 32),
             min_size=0, max_size=48),
    min_size=1, max_size=10,
)


@given(pool_streams, st.sampled_from([512, 1024]))
@settings(max_examples=80, deadline=None)
def test_probe_pool_variants_match_lookup(streams, size):
    """``probe_pool`` and ``probe_pool_grouped`` are bit-identical to a
    per-sector ``lookup`` walk: same hit/miss totals, same forwarded
    miss order, same resident lines, masks and LRU stamps — across a
    stream of pools long enough to force evictions."""
    ref = SectorCache("ref", size, assoc=2)
    via_pool = SectorCache("p", size, assoc=2)
    via_groups = SectorCache("g", size, assoc=2)
    for raw in streams:
        pool = sorted(set(raw))
        expect_missed = [s for s in pool if not ref.lookup(s)]
        h1, m1, missed1 = via_pool.probe_pool(pool)
        groups = line_groups(pool, 128, 32, 4)
        h2, m2, missed2 = via_groups.probe_pool_grouped(groups, pool)
        assert missed1 == expect_missed and missed2 == expect_missed
        assert h1 == h2 == len(pool) - len(expect_missed)
        assert m1 == m2 == len(expect_missed)
    for c in (via_pool, via_groups):
        assert c.stats.hits == ref.stats.hits
        assert c.stats.misses == ref.stats.misses
        assert c._clock == ref._clock
        assert c._lines == ref._lines
        assert c._sets == ref._sets


@given(addresses, st.sampled_from([4, 8, 16]), masks)
@settings(max_examples=120, deadline=None)
def test_coalesce_bounds(addrs, nbytes, mask):
    """Sector count is bounded by active lanes x sectors-per-access and
    at least 1 when any lane is active."""
    sectors = coalesce_sectors(addrs, nbytes, mask)
    active = int(mask.sum())
    if active == 0:
        assert len(sectors) == 0
        return
    per_access = nbytes // 32 + 2  # an access can straddle
    assert 1 <= len(sectors) <= active * per_access
    assert all(s % 32 == 0 for s in sectors)
    # sorted unique
    assert np.array_equal(sectors, np.unique(sectors))


@given(addresses, masks)
@settings(max_examples=120, deadline=None)
def test_coalesce_covers_accesses(addrs, mask):
    """Every active access byte-range falls inside some reported sector."""
    sectors = set(coalesce_sectors(addrs, 4, mask).tolist())
    for a in addrs[mask]:
        assert (a // 32) * 32 in sectors
        assert ((a + 3) // 32) * 32 in sectors


@given(addresses, masks)
@settings(max_examples=120, deadline=None)
def test_shared_transactions_bounds(addrs, mask):
    tx = shared_transactions(addrs % 4096, 4, mask)
    active = int(mask.sum())
    if active == 0:
        assert tx == 0
    else:
        assert 1 <= tx <= 32


@given(addresses, masks)
@settings(max_examples=100, deadline=None)
def test_coalesce_mask_monotone(addrs, mask):
    """Activating more lanes can only add sectors."""
    some = set(coalesce_sectors(addrs, 4, mask).tolist())
    all_on = set(coalesce_sectors(addrs, 4, np.ones(32, bool)).tolist())
    assert some <= all_on


@given(
    st.lists(st.integers(0, 255).map(lambda v: v * 32),
             min_size=1, max_size=300),
    st.sampled_from([512, 1024, 4096]),
)
@settings(max_examples=80, deadline=None)
def test_cache_conservation(sector_stream, size):
    """hits + misses == accesses; a repeat of the immediately preceding
    sector is always a hit."""
    c = SectorCache("t", size, assoc=2)
    prev = None
    for s in sector_stream:
        hit = c.lookup(s)
        if s == prev:
            assert hit
        prev = s
    assert c.stats.hits + c.stats.misses == len(sector_stream)


@given(st.lists(st.integers(0, 63).map(lambda v: v * 32),
                min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_cache_large_enough_never_evicts(stream):
    """A cache bigger than the touched footprint misses each sector at
    most once."""
    c = SectorCache("t", 64 * 1024, assoc=16)
    for s in stream:
        c.lookup(s)
    assert c.stats.misses == len(set(stream))


bookings = st.lists(
    st.tuples(
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=100,
)


@given(bookings, st.sampled_from([0.25, 1.0, 4.0, 32.0]))
@settings(max_examples=120, deadline=None)
def test_timeline_completions_monotone(reqs, rate):
    """A pipelined resource completes requests in booking order: for
    positive units the returned completion times never decrease, and
    each booking strictly advances ``next_free``."""
    tl = Timeline(rate)
    prev_done = 0.0
    for t, units in reqs:
        done = tl.book(t, units)
        assert done >= prev_done
        assert done == tl.next_free
        assert done >= t  # cannot complete before the request arrives
        prev_done = done


@given(bookings, st.sampled_from([0.25, 1.0, 4.0, 32.0]),
       st.floats(0.0, 2e6, allow_nan=False, allow_infinity=False))
@settings(max_examples=120, deadline=None)
def test_timeline_backlog_never_negative(reqs, rate, probe_t):
    """``backlog`` is clamped at zero no matter how the resource was
    booked or when it is probed."""
    tl = Timeline(rate)
    assert tl.backlog(probe_t) >= 0.0
    for t, units in reqs:
        tl.book(t, units)
        assert tl.backlog(t) >= 0.0
        assert tl.backlog(probe_t) >= 0.0
