"""Property-based tests for the hardware substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.caches import SectorCache
from repro.gpu.coalesce import coalesce_sectors, shared_transactions
from repro.gpu.scheduler import Timeline


addresses = hnp.arrays(
    dtype=np.int64,
    shape=32,
    elements=st.integers(0, 2**20).map(lambda v: v * 4),
)
masks = hnp.arrays(dtype=np.bool_, shape=32)


@given(addresses, st.sampled_from([4, 8, 16]), masks)
@settings(max_examples=120, deadline=None)
def test_coalesce_bounds(addrs, nbytes, mask):
    """Sector count is bounded by active lanes x sectors-per-access and
    at least 1 when any lane is active."""
    sectors = coalesce_sectors(addrs, nbytes, mask)
    active = int(mask.sum())
    if active == 0:
        assert len(sectors) == 0
        return
    per_access = nbytes // 32 + 2  # an access can straddle
    assert 1 <= len(sectors) <= active * per_access
    assert all(s % 32 == 0 for s in sectors)
    # sorted unique
    assert np.array_equal(sectors, np.unique(sectors))


@given(addresses, masks)
@settings(max_examples=120, deadline=None)
def test_coalesce_covers_accesses(addrs, mask):
    """Every active access byte-range falls inside some reported sector."""
    sectors = set(coalesce_sectors(addrs, 4, mask).tolist())
    for a in addrs[mask]:
        assert (a // 32) * 32 in sectors
        assert ((a + 3) // 32) * 32 in sectors


@given(addresses, masks)
@settings(max_examples=120, deadline=None)
def test_shared_transactions_bounds(addrs, mask):
    tx = shared_transactions(addrs % 4096, 4, mask)
    active = int(mask.sum())
    if active == 0:
        assert tx == 0
    else:
        assert 1 <= tx <= 32


@given(addresses, masks)
@settings(max_examples=100, deadline=None)
def test_coalesce_mask_monotone(addrs, mask):
    """Activating more lanes can only add sectors."""
    some = set(coalesce_sectors(addrs, 4, mask).tolist())
    all_on = set(coalesce_sectors(addrs, 4, np.ones(32, bool)).tolist())
    assert some <= all_on


@given(
    st.lists(st.integers(0, 255).map(lambda v: v * 32),
             min_size=1, max_size=300),
    st.sampled_from([512, 1024, 4096]),
)
@settings(max_examples=80, deadline=None)
def test_cache_conservation(sector_stream, size):
    """hits + misses == accesses; a repeat of the immediately preceding
    sector is always a hit."""
    c = SectorCache("t", size, assoc=2)
    prev = None
    for s in sector_stream:
        hit = c.lookup(s)
        if s == prev:
            assert hit
        prev = s
    assert c.stats.hits + c.stats.misses == len(sector_stream)


@given(st.lists(st.integers(0, 63).map(lambda v: v * 32),
                min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_cache_large_enough_never_evicts(stream):
    """A cache bigger than the touched footprint misses each sector at
    most once."""
    c = SectorCache("t", 64 * 1024, assoc=16)
    for s in stream:
        c.lookup(s)
    assert c.stats.misses == len(set(stream))


bookings = st.lists(
    st.tuples(
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=100,
)


@given(bookings, st.sampled_from([0.25, 1.0, 4.0, 32.0]))
@settings(max_examples=120, deadline=None)
def test_timeline_completions_monotone(reqs, rate):
    """A pipelined resource completes requests in booking order: for
    positive units the returned completion times never decrease, and
    each booking strictly advances ``next_free``."""
    tl = Timeline(rate)
    prev_done = 0.0
    for t, units in reqs:
        done = tl.book(t, units)
        assert done >= prev_done
        assert done == tl.next_free
        assert done >= t  # cannot complete before the request arrives
        prev_done = done


@given(bookings, st.sampled_from([0.25, 1.0, 4.0, 32.0]),
       st.floats(0.0, 2e6, allow_nan=False, allow_infinity=False))
@settings(max_examples=120, deadline=None)
def test_timeline_backlog_never_negative(reqs, rate, probe_t):
    """``backlog`` is clamped at zero no matter how the resource was
    booked or when it is probed."""
    tl = Timeline(rate)
    assert tl.backlog(probe_t) >= 0.0
    for t, units in reqs:
        tl.book(t, units)
        assert tl.backlog(t) >= 0.0
        assert tl.backlog(probe_t) >= 0.0
