"""Execution-trace facility tests."""

import numpy as np
import pytest

from repro.gpu import (
    GPUSpec,
    LaunchConfig,
    Simulator,
    TraceRecorder,
    format_trace,
)
from repro.gpu.stalls import StallReason
from tests.conftest import build_saxpy


@pytest.fixture(scope="module")
def traced():
    saxpy = build_saxpy()
    rec = TraceRecorder()
    sim = Simulator(GPUSpec.small(1))
    res = sim.launch(
        saxpy, LaunchConfig(grid=(2, 1), block=(64, 1)),
        args={"x": np.ones(128, np.float32),
              "y": np.zeros(128, np.float32), "a": 1.0, "n": 128},
        trace=rec,
    )
    return rec, res


class TestRecording:
    def test_event_per_issue(self, traced):
        rec, res = traced
        assert len(rec.events) == res.counters.inst_issued

    def test_cycles_monotone_per_warp(self, traced):
        rec, _ = traced
        for warp in {e.warp for e in rec.events}:
            cycles = [e.cycle for e in rec.for_warp(warp)]
            assert cycles == sorted(cycles)

    def test_pcs_follow_program(self, traced):
        rec, res = traced
        n = len(res.compiled.program)
        for e in rec.events:
            assert 0 <= e.pc < n

    def test_stall_reasons_attached(self, traced):
        rec, _ = traced
        stalled = [e for e in rec.events if e.stall_reason is not None]
        assert stalled
        # saxpy: the FMUL waits on the load
        assert any(e.stall_reason is StallReason.LONG_SCOREBOARD
                   for e in stalled)

    def test_queries(self, traced):
        rec, _ = traced
        long_ones = rec.stalls_over(50)
        assert all(e.stall_cycles > 50 for e in long_ones)
        timeline = rec.issue_timeline(bucket=64)
        assert sum(timeline.values()) == len(rec.events)

    def test_truncation(self):
        saxpy = build_saxpy()
        rec = TraceRecorder(max_events=5)
        sim = Simulator(GPUSpec.small(1))
        sim.launch(saxpy, LaunchConfig(grid=(1, 1), block=(64, 1)),
                   args={"x": np.zeros(64, np.float32),
                         "y": np.zeros(64, np.float32), "a": 1.0, "n": 64},
                   trace=rec)
        assert len(rec.events) == 5
        assert rec.truncated


class TestFormatting:
    def test_table(self, traced):
        rec, _ = traced
        text = format_trace(rec, limit=10)
        assert "cycle" in text
        assert "LDG.E" in format_trace(rec, limit=100)
        assert "more events" in text

    def test_warp_filter(self, traced):
        rec, _ = traced
        text = format_trace(rec, limit=1000, warp=0)
        assert "   1  " not in text.replace("blk", "")  # crude: no warp 1

    def test_truncation_note(self):
        rec = TraceRecorder(max_events=0)
        rec.record(0.0, 0, 0, 0, "NOP", 0.0, None)
        assert rec.truncated
        assert "truncated" in format_trace(rec)


class TestSessionTrace:
    def test_session_launch_traced(self):
        from repro.gpu import DeviceSession

        session = DeviceSession(GPUSpec.small(1))
        saxpy = build_saxpy()
        rec = TraceRecorder()
        x = session.upload(np.zeros(64, np.float32))
        y = session.upload(np.zeros(64, np.float32))
        session.launch(saxpy, LaunchConfig(grid=(1, 1), block=(64, 1)),
                       args={"x": x, "y": y, "a": 1.0, "n": 64}, trace=rec)
        assert rec.events
