"""Unit tests for :class:`repro.gpu.executor.DeviceMemory` access
checking — bounds and natural-alignment enforcement."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.executor import DeviceMemory


class TestAlignment:
    def test_misaligned_4_byte_access_raises(self):
        mem = DeviceMemory(1024)
        with pytest.raises(SimulationError, match="misaligned 4-byte"):
            mem.read_u32(np.array([2], dtype=np.int64))
        with pytest.raises(SimulationError, match="misaligned 4-byte"):
            mem.write_u32(np.array([0, 4, 6], dtype=np.int64),
                          np.zeros(3, dtype=np.uint32))

    def test_misaligned_8_byte_access_raises(self):
        mem = DeviceMemory(1024)
        with pytest.raises(SimulationError, match="misaligned 8-byte"):
            mem.atomic_add_f64(np.array([4], dtype=np.int64),
                               np.ones(1, dtype=np.float64))

    def test_error_names_offending_address(self):
        mem = DeviceMemory(1024)
        with pytest.raises(SimulationError, match="0x6"):
            mem.read_u32(np.array([4, 6], dtype=np.int64))

    def test_aligned_accesses_pass(self):
        mem = DeviceMemory(1024)
        mem.write_u32(np.array([0, 4, 1020], dtype=np.int64),
                      np.array([1, 2, 3], dtype=np.uint32))
        got = mem.read_u32(np.array([0, 4, 1020], dtype=np.int64))
        assert got.tolist() == [1, 2, 3]
        mem.atomic_add_f64(np.array([8, 16], dtype=np.int64),
                           np.array([1.5, 2.5]))

    def test_check_covers_other_pow2_widths(self):
        # the old implementation silently skipped any width not in (4, 8)
        mem = DeviceMemory(1024)
        with pytest.raises(SimulationError, match="misaligned 16-byte"):
            mem._check(np.array([8], dtype=np.int64), 16)
        mem._check(np.array([16], dtype=np.int64), 16)  # aligned: fine
        mem._check(np.array([3], dtype=np.int64), 1)  # byte access: any addr


class TestBounds:
    def test_out_of_bounds_raises(self):
        mem = DeviceMemory(256)
        with pytest.raises(SimulationError, match="out of bounds"):
            mem.read_u32(np.array([256], dtype=np.int64))
        with pytest.raises(SimulationError, match="out of bounds"):
            mem.read_u32(np.array([-4], dtype=np.int64))

    def test_empty_access_is_noop(self):
        mem = DeviceMemory(256)
        assert mem.read_u32(np.empty(0, dtype=np.int64)).size == 0
