"""The per-opcode latency table behind the ``latency_table`` toggle.

Two equivalence contracts guard the threading of
:class:`repro.sass.latency.LatencyModel` through the issue path:

* toggle **off** (the default) the scheduler must not change at all —
  the existing timed-equivalence suites pin that; here we additionally
  prove the threaded model itself is a no-op by forcing ``mode="spec"``
  with the toggle *on* and demanding bit-identity with toggle-off;
* toggle **on** (``mode="table"``) the model is its own baseline: the
  trace consumer and the legacy per-issue path must stay bit-identical
  to *each other*, and warm trace-cache replays must rebuild their
  issue plans when the latency model changes (``plan_sig`` staleness).
"""

import numpy as np
import pytest

from repro.cli import resolve_kernel
from repro.gpu.simulator import Simulator, resolve_latency_table
from repro.gpu.trace_cache import trace_cache
from repro.sampling.pcsampler import PCSampler

CASES = [
    ("sgemm:shared", 64),
    ("heat:naive", 64),
    ("mixbench:dp:naive", 512),
    ("reduction:shared", 512),
]


def _launch(resolved, *, fast, latency_table):
    ck, config, args, textures = resolved
    sim = Simulator(fast=fast, latency_table=latency_table)
    return sim.launch(ck, config, args, textures=textures,
                      max_blocks=2, functional_all=True)


def _surfaces(res):
    sampler = PCSampler(period_cycles=128)
    return (res.cycles, res.counters, res.memory.buf.copy(),
            sampler.sample(res).samples)


def _assert_identical(a, b, what):
    assert a.cycles == b.cycles, f"{what}: cycle counts differ"
    assert a.counters == b.counters, f"{what}: counters differ"
    assert np.array_equal(a.memory.buf, b.memory.buf), (
        f"{what}: device memory differs"
    )
    sampler = PCSampler(period_cycles=128)
    assert sampler.sample(a).samples == sampler.sample(b).samples, (
        f"{what}: PC-sample streams differ"
    )


class TestResolveToggle:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_LATENCY_TABLE", raising=False)
        assert resolve_latency_table() is False
        assert Simulator().latency_table is False

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATENCY_TABLE", "1")
        assert resolve_latency_table(False) is False
        monkeypatch.delenv("REPRO_LATENCY_TABLE")
        assert resolve_latency_table(True) is True

    @pytest.mark.parametrize("val,expect", [
        ("1", True), ("true", True), ("on", True), ("yes", True),
        ("0", False), ("false", False), ("off", False), ("", False),
    ])
    def test_environment_variable(self, monkeypatch, val, expect):
        monkeypatch.setenv("REPRO_LATENCY_TABLE", val)
        assert resolve_latency_table() is expect


class TestSpecModeIsNoOp:
    """Toggle on + ``mode="spec"`` must equal toggle off bit-for-bit:
    the model resolves exactly the scheduler's inline defaults, so any
    difference would mean the threading itself perturbs timing."""

    @pytest.mark.parametrize("spec,size", CASES,
                             ids=[f"{s}-{n}" for s, n in CASES])
    @pytest.mark.parametrize("fast", [False, True], ids=["legacy", "trace"])
    def test_spec_mode_bit_identical_to_off(self, monkeypatch, spec,
                                            size, fast):
        import repro.sass.latency as latmod

        real = latmod.LatencyModel

        def spec_mode(program, gspec, mode="table"):
            return real(program, gspec, mode="spec")

        rk = resolve_kernel(spec, size, 4)
        off = _launch(rk, fast=fast, latency_table=False)
        monkeypatch.setattr(latmod, "LatencyModel", spec_mode)
        on = _launch(rk, fast=fast, latency_table=True)
        _assert_identical(off, on, f"{spec} size={size} fast={fast}")


class TestTableModeEquivalence:
    """Table mode changes timing by design; its own contract is that
    the trace consumer and the legacy path agree with each other."""

    @pytest.mark.parametrize("spec,size", CASES,
                             ids=[f"{s}-{n}" for s, n in CASES])
    def test_paths_agree_under_table(self, spec, size):
        rk = resolve_kernel(spec, size, 4)
        legacy = _launch(rk, fast=False, latency_table=True)
        fast = _launch(rk, fast=True, latency_table=True)
        _assert_identical(legacy, fast, f"{spec} size={size} table")

    def test_table_mode_actually_differs(self):
        """Sanity: on an FP64 kernel the per-opcode numbers must move
        the clock — otherwise the toggle tests prove nothing."""
        rk = resolve_kernel("mixbench:dp:naive", 512, 4)
        off = _launch(rk, fast=True, latency_table=False)
        on = _launch(rk, fast=True, latency_table=True)
        assert off.cycles != on.cycles

    def test_deterministic_under_table(self):
        rk = resolve_kernel("sgemm:shared", 64, 4)
        a = _launch(rk, fast=True, latency_table=True)
        b = _launch(rk, fast=True, latency_table=True)
        _assert_identical(a, b, "repeat table-mode launch")


class TestPlanSigStaleness:
    """Cached timed traces embed an issue plan built under one latency
    model; replaying the same trace under another model must rebuild
    the plan, not reuse stale issue costs."""

    @pytest.fixture
    def cache(self):
        c = trace_cache()
        assert c is not None
        c.clear()
        yield c
        c.clear()

    def test_warm_replay_rebuilds_plan_across_models(self, cache):
        rk = resolve_kernel("sgemm:shared", 64, 4)
        # cold run (spec defaults) builds and caches the traces + plans
        base_off = _launch(rk, fast=True, latency_table=False)
        # warm replay under the table model: trace hits, plan must not
        base_on = _launch(rk, fast=True, latency_table=True)
        assert cache.hits > 0, "expected warm trace-cache replay"
        assert base_off.cycles != base_on.cycles
        # and back again: bit-identical to the original spec-mode run
        again_off = _launch(rk, fast=True, latency_table=False)
        _assert_identical(base_off, again_off,
                          "warm replay after model switch")
        # table-mode warm replay also reproduces itself
        again_on = _launch(rk, fast=True, latency_table=True)
        _assert_identical(base_on, again_on,
                          "second table-mode warm replay")
