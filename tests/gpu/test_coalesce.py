"""Coalescing and shared-memory bank-conflict model tests."""

import numpy as np

from repro.gpu.coalesce import coalesce_sectors, shared_transactions

ALL = np.ones(32, dtype=bool)


class TestCoalesceSectors:
    def test_fully_coalesced_f32(self):
        addrs = np.arange(32, dtype=np.int64) * 4
        sectors = coalesce_sectors(addrs, 4, ALL)
        assert len(sectors) == 4  # 128 B / 32 B

    def test_broadcast_single_sector(self):
        addrs = np.full(32, 256, dtype=np.int64)
        assert len(coalesce_sectors(addrs, 4, ALL)) == 1

    def test_fully_strided_worst_case(self):
        addrs = np.arange(32, dtype=np.int64) * 128
        assert len(coalesce_sectors(addrs, 4, ALL)) == 32

    def test_vector_load_coalesced(self):
        addrs = np.arange(32, dtype=np.int64) * 16
        sectors = coalesce_sectors(addrs, 16, ALL)
        assert len(sectors) == 16  # 512 B

    def test_straddling_access_touches_both(self):
        addrs = np.array([30], dtype=np.int64)
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        addrs = np.full(32, 30, dtype=np.int64)
        sectors = coalesce_sectors(addrs, 4, mask)
        assert len(sectors) == 2

    def test_inactive_lanes_ignored(self):
        addrs = np.arange(32, dtype=np.int64) * 128
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        assert len(coalesce_sectors(addrs, 4, mask)) == 4

    def test_empty_mask(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert len(coalesce_sectors(addrs, 4, np.zeros(32, dtype=bool))) == 0

    def test_sector_base_alignment(self):
        addrs = np.array([100] * 32, dtype=np.int64)
        sectors = coalesce_sectors(addrs, 4, ALL)
        assert all(s % 32 == 0 for s in sectors)

    def test_unsorted_addresses(self):
        addrs = np.arange(32, dtype=np.int64)[::-1].copy() * 4
        assert len(coalesce_sectors(addrs, 4, ALL)) == 4


class TestSharedTransactions:
    def test_conflict_free_stride_1(self):
        addrs = np.arange(32, dtype=np.int64) * 4
        assert shared_transactions(addrs, 4, ALL) == 1

    def test_broadcast_is_one(self):
        addrs = np.full(32, 64, dtype=np.int64)
        assert shared_transactions(addrs, 4, ALL) == 1

    def test_two_way_conflict(self):
        # stride 2 words: lanes pair up on 16 banks, 2 words per bank
        addrs = np.arange(32, dtype=np.int64) * 8
        assert shared_transactions(addrs, 4, ALL) == 2

    def test_32_way_conflict(self):
        # all lanes hit bank 0 with distinct words
        addrs = np.arange(32, dtype=np.int64) * 128
        assert shared_transactions(addrs, 4, ALL) == 32

    def test_wide_access_splits_words(self):
        # 8-byte accesses at stride 8: each of the two word-phases sees
        # 64 words over 32 banks -> 2 words/bank -> 2 transactions each
        addrs = np.arange(32, dtype=np.int64) * 8
        tx = shared_transactions(addrs, 8, ALL)
        assert tx == 4

    def test_empty_mask_zero(self):
        assert shared_transactions(np.zeros(32, np.int64), 4,
                                   np.zeros(32, bool)) == 0

    def test_monotone_in_conflicts(self):
        free = shared_transactions(np.arange(32, dtype=np.int64) * 4, 4, ALL)
        conflicted = shared_transactions(
            np.arange(32, dtype=np.int64) * 256, 4, ALL
        )
        assert conflicted > free
