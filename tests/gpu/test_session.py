"""DeviceSession tests: resident buffers, multi-launch, warm caches."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu import DeviceSession, GPUSpec, LaunchConfig
from repro.kernels.heat import build_heat, heat_reference
from tests.conftest import build_saxpy


@pytest.fixture
def session():
    return DeviceSession(GPUSpec.small(1), capacity_bytes=8 * 1024 * 1024)


class TestAllocation:
    def test_alloc_zeroed(self, session):
        buf = session.alloc((16,), np.float32)
        assert np.array_equal(session.download(buf),
                              np.zeros(16, np.float32))

    def test_upload_download_roundtrip(self, session):
        data = np.arange(100, dtype=np.int32).reshape(10, 10)
        buf = session.upload(data)
        assert np.array_equal(session.download(buf), data)
        assert buf.shape == (10, 10)

    def test_alignment(self, session):
        a = session.alloc((3,), np.float32)
        b = session.alloc((3,), np.float32)
        assert a.offset % 256 == 0
        assert b.offset % 256 == 0
        assert b.offset > a.offset

    def test_duplicate_name_rejected(self, session):
        session.alloc((4,), np.float32, "x")
        with pytest.raises(LaunchError):
            session.alloc((4,), np.float32, "x")

    def test_out_of_memory(self):
        small = DeviceSession(GPUSpec.small(1), capacity_bytes=4096)
        with pytest.raises(LaunchError):
            small.alloc((10_000_000,), np.float32)


class TestLaunch:
    def test_device_buffers_as_args(self, session):
        saxpy = build_saxpy()
        n = 256
        x = session.upload(np.arange(n, dtype=np.float32))
        y = session.upload(np.ones(n, dtype=np.float32))
        session.launch(saxpy, LaunchConfig(grid=(2, 1), block=(128, 1)),
                       args={"x": x, "y": y, "a": 2.0, "n": n})
        got = session.download(y)
        assert np.array_equal(got, 2.0 * np.arange(n, dtype=np.float32) + 1)

    def test_host_array_auto_uploaded(self, session):
        saxpy = build_saxpy()
        n = 128
        y = session.upload(np.zeros(n, dtype=np.float32))
        session.launch(saxpy, LaunchConfig(grid=(1, 1), block=(128, 1)),
                       args={"x": np.ones(n, dtype=np.float32),
                             "y": y, "a": 3.0, "n": n})
        assert np.array_equal(session.download(y),
                              np.full(n, 3.0, np.float32))

    def test_dtype_validation(self, session):
        saxpy = build_saxpy()
        x = session.upload(np.zeros(4, np.float64))
        y = session.upload(np.zeros(4, np.float32))
        with pytest.raises(LaunchError, match="dtype"):
            session.launch(saxpy, LaunchConfig(grid=(1, 1), block=(32, 1)),
                           args={"x": x, "y": y, "a": 1.0, "n": 4})

    def test_missing_args(self, session):
        saxpy = build_saxpy()
        with pytest.raises(LaunchError, match="missing"):
            session.launch(saxpy, LaunchConfig(), args={})

    def test_iterative_buffer_swap(self, session):
        """The §5.2 Jacobi pattern: ping-pong device buffers."""
        W = H = 64
        ck = build_heat("naive")
        rng = np.random.default_rng(7)
        t0 = (rng.random(W * H) * 10).astype(np.float32)
        a = session.upload(t0)
        b = session.alloc((W * H,), np.float32)
        cfg = LaunchConfig(grid=(W // 16, H // 16), block=(16, 16))
        cur, nxt = a, b
        for _ in range(3):
            session.launch(ck, cfg, args={
                "t_in": cur, "t_out": nxt, "w": W, "h": H,
                "k": np.float32(0.2), "amp": np.float32(0.05),
            })
            cur, nxt = nxt, cur
        ref = heat_reference(t0, W, H, 0.2, 0.05, steps=3)
        assert np.allclose(session.download(cur), ref, atol=1e-5)

    def test_warm_cache_across_launches(self):
        """A footprint that fits L1 sees more hits on relaunch."""
        session = DeviceSession(GPUSpec.small(1))
        saxpy = build_saxpy()
        n = 512  # 2 KiB x and y: well inside the 16 KiB L1
        x = session.upload(np.zeros(n, np.float32))
        y = session.upload(np.zeros(n, np.float32))
        cfg = LaunchConfig(grid=(2, 1), block=(256, 1))
        args = {"x": x, "y": y, "a": 1.0, "n": n}
        cold = session.launch(saxpy, cfg, args=args, functional_all=False)
        warm = session.launch(saxpy, cfg, args=args, functional_all=False)
        assert warm.counters.global_load_l1_hits > \
            cold.counters.global_load_l1_hits
        assert warm.cycles <= cold.cycles

    def test_cache_stats_reflects_warm_reuse(self):
        session = DeviceSession(GPUSpec.small(1))
        saxpy = build_saxpy()
        n = 512
        x = session.upload(np.zeros(n, np.float32))
        y = session.upload(np.zeros(n, np.float32))
        cfg = LaunchConfig(grid=(2, 1), block=(256, 1))
        args = {"x": x, "y": y, "a": 1.0, "n": n}
        before = session.cache_stats()
        assert set(before) == {"l1", "tex", "l2", "traces"}
        session.launch(saxpy, cfg, args=args, functional_all=False)
        after = session.cache_stats()
        assert after["l1"]["hits"] + after["l1"]["misses"] > \
            before["l1"]["hits"] + before["l1"]["misses"]


class TestTextures:
    def test_bind_texture_and_launch(self, session):
        W = H = 32
        ck = build_heat("texture")
        rng = np.random.default_rng(9)
        t0 = (rng.random(W * H) * 10).astype(np.float32)
        out = session.alloc((W * H,), np.float32)
        tex = session.bind_texture(t0.reshape(H, W))
        cfg = LaunchConfig(grid=(W // 16, H // 16), block=(16, 16))
        session.launch(ck, cfg, args={
            "t_out": out, "w": W, "h": H,
            "k": np.float32(0.2), "amp": np.float32(0.05),
        }, textures={"t_tex": tex})
        ref = heat_reference(t0, W, H, 0.2, 0.05, steps=1)
        assert np.array_equal(session.download(out), ref)

    def test_texture_from_device_buffer(self, session):
        data = np.arange(64, dtype=np.float32).reshape(8, 8)
        buf = session.upload(data)
        layout = session.bind_texture(buf)
        assert layout.width == 8 and layout.height == 8

    def test_non_2d_rejected(self, session):
        with pytest.raises(LaunchError):
            session.bind_texture(np.zeros(16, np.float32))

    def test_texture_binding_mismatch(self, session):
        ck = build_heat("texture")
        out = session.alloc((16 * 16,), np.float32)
        with pytest.raises(LaunchError, match="texture"):
            session.launch(
                ck, LaunchConfig(grid=(1, 16), block=(16, 16)),
                args={"t_out": out, "w": 16, "h": 16,
                      "k": np.float32(0.2), "amp": np.float32(0.05)},
            )
