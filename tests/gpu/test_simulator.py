"""Launch orchestration: configs, argument staging, extrapolation,
functional completion, occupancy reporting."""

import numpy as np
import pytest

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.errors import LaunchError
from repro.gpu import GPUSpec, LaunchConfig, Simulator
from repro.gpu.simulator import TextureDesc


class TestLaunchConfig:
    def test_shapes(self):
        cfg = LaunchConfig(grid=(4, 2), block=(16, 8))
        assert cfg.num_blocks == 8
        assert cfg.threads_per_block == 128
        assert cfg.warps_per_block == 4

    def test_partial_warp_rounds_up(self):
        assert LaunchConfig(block=(33, 1)).warps_per_block == 2

    def test_too_many_threads(self):
        with pytest.raises(LaunchError):
            LaunchConfig(block=(64, 32))

    def test_zero_dim(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(0, 1))


class TestArgumentStaging:
    def test_missing_arg(self, sim, saxpy):
        with pytest.raises(LaunchError, match="missing"):
            sim.launch(saxpy, LaunchConfig(), args={"x": np.zeros(4, np.float32)})

    def test_unknown_arg(self, sim, saxpy):
        with pytest.raises(LaunchError, match="unknown"):
            sim.launch(
                saxpy, LaunchConfig(),
                args={"x": np.zeros(4, np.float32),
                      "y": np.zeros(4, np.float32),
                      "a": 1.0, "n": 4, "bogus": 1},
            )

    def test_wrong_dtype(self, sim, saxpy):
        with pytest.raises(LaunchError, match="dtype"):
            sim.launch(
                saxpy, LaunchConfig(),
                args={"x": np.zeros(4, np.float64),
                      "y": np.zeros(4, np.float32), "a": 1.0, "n": 4},
            )

    def test_scalar_for_pointer(self, sim, saxpy):
        with pytest.raises(LaunchError, match="NumPy array"):
            sim.launch(saxpy, LaunchConfig(),
                       args={"x": 1, "y": np.zeros(4, np.float32),
                             "a": 1.0, "n": 4})

    def test_texture_binding_mismatch(self, sim, saxpy):
        with pytest.raises(LaunchError, match="texture"):
            sim.launch(
                saxpy, LaunchConfig(),
                args={"x": np.zeros(4, np.float32),
                      "y": np.zeros(4, np.float32), "a": 1.0, "n": 4},
                textures={"ghost": np.zeros((2, 2), np.float32)},
            )

    def test_input_arrays_not_mutated(self, sim, saxpy):
        xs = np.arange(64, dtype=np.float32)
        ys = np.ones(64, dtype=np.float32)
        xs_copy, ys_copy = xs.copy(), ys.copy()
        sim.launch(saxpy, LaunchConfig(grid=(1, 1), block=(64, 1)),
                   args={"x": xs, "y": ys, "a": 2.0, "n": 64})
        assert np.array_equal(xs, xs_copy)
        assert np.array_equal(ys, ys_copy)  # host copy untouched

    def test_read_buffer_shapes(self, sim, saxpy):
        ys = np.ones((8, 8), dtype=np.float32)
        res = sim.launch(saxpy, LaunchConfig(grid=(1, 1), block=(64, 1)),
                         args={"x": np.zeros(64, np.float32),
                               "y": ys, "a": 1.0, "n": 64})
        assert res.read_buffer("y").shape == (8, 8)


class TestExtrapolation:
    def _count_kernel(self):
        kb = KernelBuilder("counting")
        dst = kb.param("dst", ptr(f32))
        i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
                   dtype=i32)
        kb.store(dst, i, 1.0)
        return compile_kernel(kb.build())

    def test_max_blocks_scales_counters(self, small_spec):
        sim = Simulator(small_spec)
        ck = self._count_kernel()
        n_blocks = 16
        out = np.zeros(n_blocks * 64, np.float32)
        full = sim.launch(ck, LaunchConfig(grid=(n_blocks, 1), block=(64, 1)),
                          args={"dst": out})
        capped = sim.launch(ck, LaunchConfig(grid=(n_blocks, 1), block=(64, 1)),
                            args={"dst": out}, max_blocks=4)
        assert capped.extrapolation == 4.0
        assert capped.simulated_blocks == 4
        # extrapolated totals match the full run
        assert capped.counters.inst_issued == full.counters.inst_issued

    def test_functional_all_completes_output(self, small_spec):
        sim = Simulator(small_spec)
        ck = self._count_kernel()
        out = np.zeros(16 * 64, np.float32)
        res = sim.launch(ck, LaunchConfig(grid=(16, 1), block=(64, 1)),
                         args={"dst": out}, max_blocks=2, functional_all=True)
        assert np.array_equal(res.read_buffer("dst"), np.ones(16 * 64,
                                                              np.float32))

    def test_functional_all_off_leaves_gaps(self, small_spec):
        sim = Simulator(small_spec)
        ck = self._count_kernel()
        out = np.zeros(16 * 64, np.float32)
        res = sim.launch(ck, LaunchConfig(grid=(16, 1), block=(64, 1)),
                         args={"dst": out}, max_blocks=2, functional_all=False)
        got = res.read_buffer("dst")
        assert np.count_nonzero(got) == 2 * 64

    def test_multi_sm_simulates_share(self):
        sim = Simulator(GPUSpec.small(4))
        ck = self._count_kernel()
        out = np.zeros(8 * 64, np.float32)
        res = sim.launch(ck, LaunchConfig(grid=(8, 1), block=(64, 1)),
                         args={"dst": out})
        assert res.simulated_blocks == 2  # 8 blocks / 4 SMs
        # device counters cover the whole grid
        assert res.device_counters.global_store_instructions == 8 * 2
        # functional_all still completed everything
        assert np.array_equal(res.read_buffer("dst"),
                              np.ones(8 * 64, np.float32))


class TestOccupancyReporting:
    def test_achieved_le_one(self, saxpy_launch):
        assert 0.0 < saxpy_launch.achieved_occupancy <= 1.0

    def test_theoretical_from_calculator(self, saxpy_launch):
        assert saxpy_launch.theoretical_occupancy == 1.0

    def test_oversized_shared_refuses_launch(self, sim):
        kb = KernelBuilder("hog")
        kb.param("dst", ptr(f32))
        kb.shared_array("s", f32, 40000)  # 160 KB > 96 KB per SM
        ck = compile_kernel(kb.build())
        with pytest.raises(LaunchError):
            sim.launch(ck, LaunchConfig(),
                       args={"dst": np.zeros(4, np.float32)})


class TestTextures:
    def test_texture_desc_wrapper(self, sim):
        kb = KernelBuilder("texread")
        dst = kb.param("dst", ptr(f32))
        tex = kb.texture("tex")
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        kb.store(dst, i, kb.tex2d(tex, i, 0))
        ck = compile_kernel(kb.build())
        img = np.arange(64, dtype=np.float32).reshape(2, 32)
        res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                         args={"dst": np.zeros(32, np.float32)},
                         textures={"tex": TextureDesc(img)})
        assert np.array_equal(res.read_buffer("dst"), img[0])

    def test_texture_coordinates_clamp(self, sim):
        kb = KernelBuilder("texclamp")
        dst = kb.param("dst", ptr(f32))
        tex = kb.texture("tex")
        i = kb.let("i", kb.thread_idx.x, dtype=i32)
        kb.store(dst, i, kb.tex2d(tex, i - 5, i - 5))
        ck = compile_kernel(kb.build())
        img = np.arange(16, dtype=np.float32).reshape(4, 4)
        res = sim.launch(ck, LaunchConfig(grid=(1, 1), block=(32, 1)),
                         args={"dst": np.zeros(32, np.float32)},
                         textures={"tex": img})
        got = res.read_buffer("dst")
        assert got[0] == img[0, 0]  # clamped to (0, 0)
        assert got[-1] == img[3, 3]  # clamped to max

    def test_non_2d_texture_rejected(self, sim):
        kb = KernelBuilder("tex1d")
        dst = kb.param("dst", ptr(f32))
        tex = kb.texture("tex")
        kb.store(dst, 0, kb.tex2d(tex, 0, 0))
        ck = compile_kernel(kb.build())
        with pytest.raises(LaunchError):
            sim.launch(ck, LaunchConfig(),
                       args={"dst": np.zeros(4, np.float32)},
                       textures={"tex": np.zeros(8, np.float32)})


class TestDuration:
    def test_duration_consistent_with_clock(self, saxpy_launch):
        expected = saxpy_launch.cycles / saxpy_launch.spec.clock_hz
        assert saxpy_launch.duration_s == pytest.approx(expected)

    def test_cycles_positive(self, saxpy_launch):
        assert saxpy_launch.cycles > 0
