"""Texture layout (block-linear storage) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.executor import DeviceMemory, TextureLayout


class TestAddresses:
    def test_bijective_over_grid(self):
        layout = TextureLayout(base=0, width=16, height=8)
        ys, xs = np.mgrid[0:8, 0:16]
        addrs = layout.addresses(xs.ravel(), ys.ravel())
        assert len(np.unique(addrs)) == 16 * 8

    def test_alignment(self):
        layout = TextureLayout(base=256, width=16, height=8)
        ys, xs = np.mgrid[0:8, 0:16]
        addrs = layout.addresses(xs.ravel(), ys.ravel())
        assert (addrs % 4 == 0).all()
        assert addrs.min() >= 256
        assert addrs.max() + 4 <= 256 + layout.nbytes

    def test_clamping(self):
        layout = TextureLayout(base=0, width=16, height=8)
        a = layout.addresses(np.array([-5]), np.array([0]))
        b = layout.addresses(np.array([0]), np.array([0]))
        assert a[0] == b[0]
        a = layout.addresses(np.array([100]), np.array([100]))
        b = layout.addresses(np.array([15]), np.array([7]))
        assert a[0] == b[0]

    def test_tile_locality(self):
        """Texels within one tile land within one tile-sized span."""
        layout = TextureLayout(base=0, width=64, height=64,
                               tile_x=8, tile_y=4)
        tile_bytes = 8 * 4 * 4
        xs = np.arange(8)
        for y in range(4):
            addrs = layout.addresses(xs, np.full(8, y))
            assert addrs.max() - addrs.min() < tile_bytes

    def test_vertical_neighbors_same_tile(self):
        layout = TextureLayout(base=0, width=64, height=64,
                               tile_x=8, tile_y=4)
        a = layout.addresses(np.array([3]), np.array([1]))
        b = layout.addresses(np.array([3]), np.array([2]))
        tile_bytes = 8 * 4 * 4
        assert a[0] // tile_bytes == b[0] // tile_bytes

    def test_flat_layout_is_row_major(self):
        layout = TextureLayout(base=0, width=16, height=4,
                               tile_x=16, tile_y=1)
        addrs = layout.addresses(np.arange(16), np.zeros(16, dtype=int))
        assert np.array_equal(addrs, np.arange(16) * 4)


class TestUpload:
    def test_roundtrip_through_addresses(self):
        layout = TextureLayout(base=128, width=20, height=12)
        mem = DeviceMemory(128 + layout.nbytes)
        img = np.arange(240, dtype=np.float32).reshape(12, 20)
        layout.upload(mem, img)
        ys, xs = np.mgrid[0:12, 0:20]
        addrs = layout.addresses(xs.ravel(), ys.ravel())
        values = mem.buf.view(np.float32)[addrs >> 2]
        assert np.array_equal(values.reshape(12, 20), img)

    def test_shape_mismatch(self):
        layout = TextureLayout(base=0, width=8, height=8)
        mem = DeviceMemory(layout.nbytes)
        with pytest.raises(ValueError):
            layout.upload(mem, np.zeros((4, 4), np.float32))

    def test_non_multiple_dimensions_padded(self):
        # 10x6 with 8x4 tiles -> 2x2 tiles padded
        layout = TextureLayout(base=0, width=10, height=6)
        assert layout.nbytes == 2 * 2 * 8 * 4 * 4


@given(
    st.integers(1, 64), st.integers(1, 64),
    st.sampled_from([(8, 4), (4, 4), (16, 2), (32, 1)]),
)
@settings(max_examples=60, deadline=None)
def test_layout_bijective_property(width, height, tile):
    layout = TextureLayout(base=0, width=width, height=height,
                           tile_x=tile[0], tile_y=tile[1])
    ys, xs = np.mgrid[0:height, 0:width]
    addrs = layout.addresses(xs.ravel(), ys.ravel())
    assert len(np.unique(addrs)) == width * height
    assert addrs.max() + layout.elem_bytes <= layout.nbytes
