"""Raw-SASS micro-execution tests — instruction semantics straight from
listings, including opcodes the compiler emits rarely."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.microbench import execute_sass


class TestBasics:
    def test_docstring_example(self):
        result = execute_sass(
            "MOV32I R1, 0x2 ;\nIADD3 R2, R1, 0x3, RZ ;\nEXIT ;\n"
        )
        assert int(result.reg(2)[0]) == 5

    def test_tid_lanes(self):
        result = execute_sass("S2R R1, SR_TID.X ;\nEXIT ;\n")
        assert np.array_equal(result.reg(1), np.arange(32, dtype=np.uint32))

    def test_seeded_registers(self):
        result = execute_sass(
            "IADD3 R3, R1, R2, RZ ;\nEXIT ;\n",
            regs={1: np.arange(32, dtype=np.int32),
                  2: np.full(32, 100, dtype=np.int32)},
        )
        assert np.array_equal(result.reg_s32(3), np.arange(32) + 100)

    def test_seeded_memory_load(self):
        data = np.arange(32, dtype=np.float32).tobytes()
        result = execute_sass(
            "MOV32I R2, 0x0 ;\n"
            "S2R R1, SR_TID.X ;\n"
            "IMAD.WIDE R2, R1, 0x4, R2 ;\n"
            "LDG.E.SYS R4, [R2] ;\n"
            "EXIT ;\n",
            memory=np.frombuffer(data, dtype=np.uint8),
        )
        assert np.array_equal(result.reg_f32(4),
                              np.arange(32, dtype=np.float32))

    def test_params(self):
        result = execute_sass(
            "MOV R1, c[0x0][0x160] ;\nEXIT ;\n", params={0x160: 77}
        )
        assert int(result.reg(1)[0]) == 77

    def test_partial_warp(self):
        result = execute_sass(
            "MOV32I R1, 0x9 ;\nEXIT ;\n", active_lanes=4
        )
        assert np.count_nonzero(result.reg(1)) == 4

    def test_step_budget(self):
        with pytest.raises(SimulationError):
            execute_sass(
                ".L:\nBRA `(L) ;\nEXIT ;\n", max_steps=10
            )

    def test_empty_program_rejected(self):
        with pytest.raises(SimulationError):
            execute_sass("")


class TestRareOpcodes:
    def test_sel(self):
        result = execute_sass(
            "S2R R1, SR_TID.X ;\n"
            "ISETP.LT.AND P0, PT, R1, 0x10, PT ;\n"
            "MOV32I R2, 0x1 ;\n"
            "MOV32I R3, 0x2 ;\n"
            "SEL R4, R2, R3, P0 ;\n"
            "EXIT ;\n"
        )
        want = np.where(np.arange(32) < 16, 1, 2)
        assert np.array_equal(result.reg_s32(4), want)

    def test_imnmx_both_polarities(self):
        text = (
            "S2R R1, SR_TID.X ;\n"
            "MOV32I R2, 0x10 ;\n"
            "IMNMX R3, R1, R2, PT ;\n"   # min
            "IMNMX R4, R1, R2, !PT ;\n"  # max
            "EXIT ;\n"
        )
        result = execute_sass(text)
        lanes = np.arange(32)
        assert np.array_equal(result.reg_s32(3), np.minimum(lanes, 16))
        assert np.array_equal(result.reg_s32(4), np.maximum(lanes, 16))

    def test_fmnmx(self):
        result = execute_sass(
            "S2R R1, SR_TID.X ;\n"
            "I2F R2, R1 ;\n"
            "FMNMX R3, R2, 10.0, PT ;\n"
            "EXIT ;\n"
        )
        assert np.array_equal(result.reg_f32(3),
                              np.minimum(np.arange(32), 10).astype(np.float32))

    def test_lop3_arbitrary_lut(self):
        # LUT 0x96 = a XOR b XOR c
        result = execute_sass(
            "S2R R1, SR_TID.X ;\n"
            "MOV32I R2, 0x5 ;\n"
            "MOV32I R3, 0x3 ;\n"
            "LOP3.LUT R4, R1, R2, R3, 0x96 ;\n"
            "EXIT ;\n"
        )
        want = np.arange(32) ^ 5 ^ 3
        assert np.array_equal(result.reg_s32(4), want)

    def test_predicated_exit_masks(self):
        result = execute_sass(
            "S2R R1, SR_TID.X ;\n"
            "ISETP.GE.AND P0, PT, R1, 0x8, PT ;\n"
            "@P0 EXIT ;\n"
            "MOV32I R2, 0x1 ;\n"
            "EXIT ;\n"
        )
        assert np.count_nonzero(result.reg(2)) == 8

    def test_shfl_bfly_raw(self):
        result = execute_sass(
            "S2R R1, SR_TID.X ;\n"
            "SHFL.BFLY R2, R1, 0x1, 0x1f ;\n"
            "EXIT ;\n"
        )
        assert np.array_equal(result.reg(2),
                              (np.arange(32) ^ 1).astype(np.uint32))

    def test_paper_listing_1_executes(self):
        """The paper's Listing 1 (texture-pattern SASS) actually runs."""
        mem = np.zeros(256, dtype=np.uint8)
        mem.view(np.float32)[:8] = np.arange(8, dtype=np.float32)
        result = execute_sass(
            "MOV32I R2, 0x10 ;\n"
            "MOV32I R4, 0x18 ;\n"
            "LDG.E.SYS R0, [R2] ;\n"
            "LDG.E.SYS R5, [R4] ;\n"
            "LDG.E.SYS R7, [R4+-0x8] ;\n"
            "LDG.E.SYS R9, [R2+-0x8] ;\n"
            "STG.E.SYS [R6], R9 ;\n"
            "EXIT ;\n",
            regs={6: np.full(32, 128, dtype=np.uint32)},
            memory=mem, active_lanes=1,
        )
        assert result.reg_f32(0)[0] == 4.0   # [0x10] = element 4
        assert result.reg_f32(9)[0] == 2.0   # [0x10 - 8] = element 2
        assert result.memory.buf.view(np.float32)[32] == 2.0
