"""Sector-cache and memory-hierarchy tests."""

import pytest

from repro.gpu.caches import MemoryHierarchy, SectorCache
from repro.gpu.config import GPUSpec


class TestSectorCache:
    def test_cold_miss_then_hit(self):
        c = SectorCache("t", 4096)
        assert not c.lookup(0)
        assert c.lookup(0)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_sector_granularity_within_line(self):
        c = SectorCache("t", 4096, line_bytes=128, sector_bytes=32)
        c.lookup(0)  # fills sector 0 of line 0
        assert not c.lookup(32)  # sector 1 still missing
        assert c.lookup(32)

    def test_lru_eviction(self):
        # 2 sets x 2 ways x 128 B lines = 512 B
        c = SectorCache("t", 512, assoc=2)
        set_stride = 128 * c.num_sets
        a, b, d = 0, set_stride, 2 * set_stride  # all map to set 0
        c.lookup(a)
        c.lookup(b)
        c.lookup(d)  # evicts a (LRU)
        assert not c.lookup(a)

    def test_lru_touch_refreshes(self):
        c = SectorCache("t", 512, assoc=2)
        set_stride = 128 * c.num_sets
        a, b, d = 0, set_stride, 2 * set_stride
        c.lookup(a)
        c.lookup(b)
        c.lookup(a)  # refresh a
        c.lookup(d)  # evicts b now
        assert c.lookup(a)
        assert not c.lookup(b)

    def test_no_fill_probe(self):
        c = SectorCache("t", 4096)
        assert not c.lookup(0, fill=False)
        assert not c.lookup(0)  # still cold

    def test_reset(self):
        c = SectorCache("t", 4096)
        c.lookup(0)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.lookup(0)

    def test_hit_rate_properties(self):
        c = SectorCache("t", 4096)
        assert c.stats.hit_rate == 0.0
        c.lookup(0)
        c.lookup(0)
        assert c.stats.hit_rate == 0.5
        assert c.stats.miss_rate == 0.5


class TestMemoryHierarchy:
    @pytest.fixture
    def hier(self):
        return MemoryHierarchy(GPUSpec.small(1))

    def test_l1_miss_goes_to_l2(self, hier):
        res = hier.access([0, 32, 64], "global")
        assert res.l1_misses == 3
        assert res.l2_misses == 3
        assert res.deepest == "dram"

    def test_warm_l1_hits(self, hier):
        hier.access([0, 32], "global")
        res = hier.access([0, 32], "global")
        assert res.l1_hits == 2
        assert res.deepest == "l1"

    def test_l2_hit_after_l1_eviction(self, hier):
        hier.access([0], "global")
        # thrash L1 (16 KiB in the small spec)
        hier.access([4096 + 128 * i for i in range(256)], "global")
        res = hier.access([0], "global")
        assert res.l1_misses == 1
        # L2 (64 KiB) still holds it
        assert res.l2_hits == 1
        assert res.deepest == "l2"

    def test_atomics_bypass_l1(self, hier):
        res1 = hier.access([0], "atomic")
        assert res1.l1_misses == 1
        res2 = hier.access([0], "atomic")
        assert res2.l1_misses == 1  # still bypasses
        assert res2.l2_hits == 1

    def test_writes_bypass_l1_allocate_l2(self, hier):
        hier.access([0], "global", write=True)
        res = hier.access([0], "global", write=True)
        assert res.l2_hits == 1

    def test_texture_uses_own_cache(self, hier):
        hier.access([0], "texture")
        res_tex = hier.access([0], "texture")
        assert res_tex.l1_hits == 1
        # the same sector through the LSU path is an L1 miss (tex cache
        # is separate) but an L2 hit
        res_lsu = hier.access([0], "global")
        assert res_lsu.l1_misses == 1
        assert res_lsu.l2_hits == 1

    def test_readonly_space_cached(self, hier):
        hier.access([0], "readonly")
        assert hier.access([0], "readonly").l1_hits == 1

    def test_conservation(self, hier):
        res = hier.access([32 * i for i in range(10)], "global")
        assert res.sectors_total == res.l1_hits + res.l1_misses
        assert res.l1_misses == res.l2_hits + res.l2_misses
