"""Differential regression tests: batched vs. per-warp execution.

The fast path's hard contract (see ``repro.gpu.batch``) is that for
every in-tree kernel it produces **bit-identical** device memory and
identical counters vs. the legacy per-warp functional loop.  These
tests run each case-study kernel in both modes at two grid sizes and
compare the raw memory images and the full ``Counters`` blocks.
"""

import numpy as np
import pytest

from repro.cli import resolve_kernel
from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.gpu.simulator import LaunchConfig, Simulator, resolve_fast_mode

# every case-study family from the paper, two grid sizes each
CASES = [
    ("sgemm:naive", 64), ("sgemm:naive", 96),
    ("sgemm:shared", 64), ("sgemm:shared", 96),
    ("sgemm:shared_vec", 64), ("sgemm:shared_vec", 96),
    ("heat:naive", 64), ("heat:naive", 96),
    ("heat:restrict", 64), ("heat:restrict", 96),
    ("heat:texture", 64), ("heat:texture", 96),
    ("mixbench:sp:naive", 512), ("mixbench:sp:naive", 1024),
    ("mixbench:sp:vec", 512), ("mixbench:sp:vec", 1024),
    ("mixbench:dp:naive", 512), ("mixbench:dp:naive", 1024),
    ("mixbench:int:naive", 512), ("mixbench:int:naive", 1024),
    ("histogram:global", 1024), ("histogram:global", 2048),
    ("histogram:shared", 1024), ("histogram:shared", 2048),
    ("reduction:atomic", 512), ("reduction:atomic", 1024),
    ("reduction:shared", 512), ("reduction:shared", 1024),
    ("reduction:warp", 512), ("reduction:warp", 1024),
]


def _run(spec: str, size: int, fast: bool):
    ck, config, args, textures = resolve_kernel(spec, size, 4)
    sim = Simulator(fast=fast)
    return sim.launch(ck, config, args, textures=textures,
                      max_blocks=1, functional_all=True)


@pytest.mark.parametrize("spec,size", CASES,
                         ids=[f"{s}-{n}" for s, n in CASES])
def test_bit_identical_memory_and_counters(spec, size):
    legacy = _run(spec, size, fast=False)
    fast = _run(spec, size, fast=True)
    assert fast.fast_path, f"{spec} did not take the batched path"
    assert not legacy.fast_path
    assert np.array_equal(legacy.memory.buf, fast.memory.buf), (
        f"{spec} size={size}: device memory differs between paths"
    )
    assert legacy.counters == fast.counters, (
        f"{spec} size={size}: counters differ between paths"
    )
    assert legacy.counters.inst_functional > 0, (
        f"{spec} size={size}: no functional work executed — the "
        "differential test proved nothing"
    )


def _build_varloop():
    """A kernel whose loop trip count varies per *block*: warps stay
    warp-uniform (legal), but the pack's warps disagree on the branch,
    forcing the batched engine to dissolve mid-flight."""
    kb = KernelBuilder("varloop")
    dst = kb.param("dst", ptr(f32))
    g = kb.let("g", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    acc = kb.let("acc", 0.0, dtype=f32)
    with kb.for_range("i", 0, kb.block_idx.x + 1):
        kb.assign(acc, acc + 1.5)
    kb.store(dst, g, acc)
    return compile_kernel(kb.build())


class TestDivergenceFallback:
    def test_divergent_pack_dissolves_to_legacy(self):
        ck = _build_varloop()
        config = LaunchConfig(grid=(8, 1), block=(64, 1))
        results = {}
        for fast in (False, True):
            sim = Simulator(fast=fast)
            out = np.zeros(8 * 64, dtype=np.float32)
            results[fast] = sim.launch(ck, config, {"dst": out},
                                       max_blocks=1, functional_all=True)
        legacy, fast = results[False], results[True]
        assert np.array_equal(legacy.memory.buf, fast.memory.buf)
        assert legacy.counters == fast.counters
        got = fast.read_buffer("dst").reshape(8, 64)
        expected = 1.5 * (np.arange(8, dtype=np.float32) + 1)
        assert np.array_equal(got, np.broadcast_to(expected[:, None], (8, 64)))

    def test_functional_inst_counter_equal_after_dissolve(self):
        ck = _build_varloop()
        config = LaunchConfig(grid=(6, 1), block=(96, 1))
        counts = []
        for fast in (False, True):
            sim = Simulator(fast=fast)
            out = np.zeros(6 * 96, dtype=np.float32)
            r = sim.launch(ck, config, {"dst": out},
                           max_blocks=1, functional_all=True)
            counts.append(r.counters.inst_functional)
        assert counts[0] == counts[1] > 0


class TestFastModeResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "0")
        assert resolve_fast_mode(True) is True
        monkeypatch.setenv("REPRO_FAST", "1")
        assert resolve_fast_mode(False) is False

    def test_env_disables(self, monkeypatch):
        for value in ("0", "false", "OFF", "no"):
            monkeypatch.setenv("REPRO_FAST", value)
            assert resolve_fast_mode() is False

    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert resolve_fast_mode() is True
        assert Simulator().fast is True
