"""Differential regression tests: trace-consumer vs. legacy timed wave.

The timed fast path's hard contract (see ``repro.gpu.timed_trace``) is
that driving the event-heap scheduler from a precomputed effect trace
changes **nothing observable**: for every in-tree kernel the cycle
count, the full ``Counters`` block (including per-(PC, reason) stall
cycles), device memory and the derived PC-sample stream must be
bit-identical to the legacy ``Executor.step``-per-issue path.  These
tests run every case-study kernel in both modes with a multi-block
timed window and compare all four surfaces, plus the dissolve path
(mid-trace divergence rolls committed effects back and replays the
wave warp-by-warp).
"""

import numpy as np
import pytest

from repro.cli import resolve_kernel
from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr, u32
from repro.errors import LaunchError
from repro.gpu.predecode import predecode
from repro.gpu.session import DeviceSession
from repro.gpu.simulator import LaunchConfig, Simulator
from repro.gpu.timed_trace import timed_batchable
from repro.sampling.pcsampler import PCSampler

# every case-study family from the paper; reduction:* exercises the
# order-tagged float-atomic replay (deferred commit in legacy heap order)
CASES = [
    ("sgemm:naive", 64), ("sgemm:naive", 96),
    ("sgemm:shared", 64),
    ("sgemm:shared_vec", 64),
    ("heat:naive", 64), ("heat:naive", 96),
    ("heat:restrict", 64),
    ("heat:texture", 64),
    ("mixbench:sp:naive", 512), ("mixbench:sp:naive", 1024),
    ("mixbench:sp:vec", 512),
    ("mixbench:dp:naive", 512),
    ("mixbench:int:naive", 512),
    ("histogram:global", 1024), ("histogram:global", 2048),
    ("histogram:shared", 1024),
    ("reduction:atomic", 512),
    ("reduction:shared", 512),
    ("reduction:warp", 512),
]


def _run(spec: str, size: int, fast: bool):
    ck, config, args, textures = resolve_kernel(spec, size, 4)
    sim = Simulator(fast=fast)
    res = sim.launch(ck, config, args, textures=textures,
                     max_blocks=2, functional_all=True)
    return ck, res


@pytest.mark.parametrize("spec,size", CASES,
                         ids=[f"{s}-{n}" for s, n in CASES])
def test_timed_identical_across_paths(spec, size):
    ck, legacy = _run(spec, size, fast=False)
    _, fast = _run(spec, size, fast=True)
    eligible = timed_batchable(predecode(ck.program))
    assert fast.timed_fast_path == eligible, (
        f"{spec}: trace path taken={fast.timed_fast_path}, "
        f"eligibility says {eligible}"
    )
    assert not legacy.timed_fast_path
    assert legacy.cycles == fast.cycles, (
        f"{spec} size={size}: cycle counts differ "
        f"({legacy.cycles} vs {fast.cycles})"
    )
    assert legacy.counters == fast.counters, (
        f"{spec} size={size}: counters differ between timed paths"
    )
    assert np.array_equal(legacy.memory.buf, fast.memory.buf), (
        f"{spec} size={size}: device memory differs between timed paths"
    )
    sampler = PCSampler(period_cycles=128)
    assert sampler.sample(legacy).samples == sampler.sample(fast).samples, (
        f"{spec} size={size}: PC-sample streams differ"
    )


def _build_varloop_rmw():
    """Per-block loop trip counts diverge mid-wave, after a committed
    global RMW store and a global atomic: the trace build must dissolve,
    roll those effects back exactly, and replay the wave on the legacy
    engine — no double-applied store or atomic."""
    kb = KernelBuilder("varloop_rmw")
    dst = kb.param("dst", ptr(f32))
    cnt = kb.param("cnt", ptr(u32))
    g = kb.let("g", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    old = kb.let("old", dst[g], dtype=f32)
    kb.store(dst, g, old + 1.0)
    kb.atomic_add_global(cnt, 0, 1)
    acc = kb.let("acc", 0.0, dtype=f32)
    with kb.for_range("i", 0, kb.block_idx.x + 1):
        kb.assign(acc, acc + 1.5)
    kb.store(dst, g, acc + old)
    return compile_kernel(kb.build())


def _build_varloop_barrier():
    """Loop trip counts diverge *between warps of one block* upstream of
    ``__syncthreads()``: per-warp segments cannot reorder warps across a
    barrier they must re-meet at, so this is the one divergence shape
    that still dissolves to the legacy interleaved path."""
    kb = KernelBuilder("varloop_barrier")
    dst = kb.param("dst", ptr(f32))
    tid = kb.let("tid", kb.thread_idx.y * 32 + kb.thread_idx.x, dtype=i32)
    g = kb.let("g", kb.block_idx.x * 64 + tid, dtype=i32)
    buf = kb.shared_array("buf", f32, 64)
    acc = kb.let("acc", 0.0, dtype=f32)
    with kb.for_range("i", 0, kb.thread_idx.y + 1):
        kb.assign(acc, acc + 1.5)
    buf[tid] = acc
    kb.sync_threads()
    # read the partner lane in the *other* warp: wrong unless both
    # warps genuinely met at the barrier
    kb.store(dst, g, buf[tid ^ 32])
    return compile_kernel(kb.build())


class TestDivergenceSegments:
    def test_divergent_wave_runs_trace_timed(self):
        """grid=(81,) on an 80-SM part puts blocks 0 and 80 in SM0's
        first timed wave; their trip counts (1 vs 81) diverge after the
        RMW+atomic prefix has executed in the batched build.  Per-warp
        trace segments keep the build valid across the pack split, so
        the wave replays trace-timed — bit-identical to legacy."""
        ck = _build_varloop_rmw()
        config = LaunchConfig(grid=(81, 1), block=(64, 1))
        n = 81 * 64
        results = {}
        for fast in (False, True):
            sim = Simulator(fast=fast)
            args = {"dst": np.full(n, 0.25, dtype=np.float32),
                    "cnt": np.zeros(1, dtype=np.uint32)}
            results[fast] = sim.launch(ck, config, args,
                                       max_blocks=2, functional_all=True)
        legacy, fast = results[False], results[True]
        assert timed_batchable(predecode(ck.program))
        # divergence no longer dissolves: segments carry the split
        assert fast.timed_fast_path
        assert legacy.cycles == fast.cycles
        assert legacy.counters == fast.counters
        assert np.array_equal(legacy.memory.buf, fast.memory.buf)
        sampler = PCSampler(period_cycles=128)
        assert (sampler.sample(legacy).samples
                == sampler.sample(fast).samples)
        # functional exactness through the split: each thread bumped
        # cnt exactly once and saw the original dst in its final store
        got_cnt = fast.read_buffer("cnt")
        assert got_cnt[0] == n, "atomic applied a wrong number of times"
        got = fast.read_buffer("dst").reshape(81, 64)
        expected = 1.5 * (np.arange(81, dtype=np.float32) + 1) + 0.25
        assert np.array_equal(got, np.broadcast_to(expected[:, None],
                                                   (81, 64)))

    def test_divergent_warps_at_barrier_still_dissolve(self):
        """Intra-block divergence upstream of a barrier cannot be
        segmented (the block's warps must re-meet at the BAR), so the
        build dissolves and replays legacy — still bit-identical."""
        ck = _build_varloop_barrier()
        config = LaunchConfig(grid=(2, 1), block=(32, 2))
        n = 2 * 64
        results = {}
        for fast in (False, True):
            sim = Simulator(fast=fast)
            args = {"dst": np.zeros(n, dtype=np.float32)}
            results[fast] = sim.launch(ck, config, args,
                                       max_blocks=2, functional_all=True)
        legacy, fast = results[False], results[True]
        assert timed_batchable(predecode(ck.program))
        assert not fast.timed_fast_path
        assert legacy.cycles == fast.cycles
        assert legacy.counters == fast.counters
        assert np.array_equal(legacy.memory.buf, fast.memory.buf)
        # each lane reads its partner warp's accumulator: warp 0 lanes
        # see 3.0 (y=1 ran 2 trips), warp 1 lanes see 1.5
        got = fast.read_buffer("dst").reshape(2, 2, 32)
        assert np.array_equal(got[:, 0, :], np.full((2, 32), 3.0,
                                                    dtype=np.float32))
        assert np.array_equal(got[:, 1, :], np.full((2, 32), 1.5,
                                                    dtype=np.float32))


def test_zero_dissolves_across_suite():
    """Every in-tree case-study kernel is trace-eligible *and* every
    timed wave actually replays trace-driven — zero legacy dissolves.
    ``reduction:*`` (order-tagged float atomics) and the variable-trip
    kernels (per-warp segments) used to be the two dissolve cases."""
    seen = set()
    for spec, size in CASES:
        if spec in seen:
            continue
        seen.add(spec)
        ck, res = _run(spec, size, fast=True)
        assert timed_batchable(predecode(ck.program)), (
            f"{spec}: not trace-eligible"
        )
        assert res.timed_fast_path, f"{spec}: a wave dissolved to legacy"


class TestDeterminism:
    @pytest.mark.parametrize("fast", [False, True], ids=["legacy", "trace"])
    def test_repeated_launch_bit_equal(self, fast):
        runs = []
        for _ in range(2):
            ck, config, args, textures = resolve_kernel("sgemm:naive", 64, 4)
            sim = Simulator(fast=fast)
            r = sim.launch(ck, config, args, textures=textures,
                           max_blocks=2, functional_all=True)
            runs.append(r)
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].counters == runs[1].counters
        assert np.array_equal(runs[0].memory.buf, runs[1].memory.buf)


class TestMaxBlocksValidation:
    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_non_positive_max_blocks_rejected(self, bad):
        ck, config, args, textures = resolve_kernel("heat:naive", 64, 4)
        sim = Simulator()
        with pytest.raises(LaunchError, match="max_blocks must be positive"):
            sim.launch(ck, config, args, textures=textures, max_blocks=bad)


class TestSessionWarmCaches:
    def test_warm_cache_launches_identical_across_paths(self):
        """Back-to-back launches in a session share cache state; the
        trace consumer must replay tag lookups in exactly the legacy
        order or the *second* launch diverges."""
        per_mode = {}
        for fast in (False, True):
            sess = DeviceSession(fast=fast)
            ck, config, args, _ = resolve_kernel("sgemm:naive", 64, 4)
            # upload once and reuse the handles, so the second launch
            # touches the same addresses the first one warmed
            handles = {k: sess.upload(v) if isinstance(v, np.ndarray) else v
                       for k, v in args.items()}
            first = sess.launch(ck, config, handles,
                                max_blocks=2, functional_all=True)
            second = sess.launch(ck, config, handles,
                                 max_blocks=2, functional_all=True)
            per_mode[fast] = (first, second)
        for i in range(2):
            legacy, fast = per_mode[False][i], per_mode[True][i]
            assert legacy.cycles == fast.cycles
            assert legacy.counters == fast.counters
        # the warm second launch must actually differ from the cold one
        assert per_mode[True][0].cycles != per_mode[True][1].cycles or (
            per_mode[True][0].counters != per_mode[True][1].counters
        )
