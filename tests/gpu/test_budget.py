"""Resource-guard (SimBudget) and degradation-ladder tests."""

import numpy as np
import pytest

from repro.core import GPUscout
from repro.errors import SimulationError, SimulationTimeout
from repro.gpu import GPUSpec, LaunchConfig, Simulator
from repro.gpu.budget import SimBudget
from repro.testing import fail_at

from tests.conftest import build_saxpy


@pytest.fixture(scope="module")
def saxpy_ck():
    return build_saxpy()


N = 1024
CONFIG = LaunchConfig(grid=(8, 1), block=(128, 1))


def saxpy_args():
    return {
        "x": np.arange(N, dtype=np.float32),
        "y": np.ones(N, dtype=np.float32),
        "a": 2.0,
        "n": N,
    }


class TestSimBudget:
    def test_instruction_limit_trips(self):
        b = SimBudget(max_instructions=10)
        with pytest.raises(SimulationTimeout) as exc:
            b.spend(11)
        assert exc.value.limit == "instructions"

    def test_cycle_limit_trips(self):
        b = SimBudget(max_cycles=100.0)
        with pytest.raises(SimulationTimeout) as exc:
            b.check(cycles=101.0)
        assert exc.value.limit == "cycles"

    def test_wall_clock_limit_trips(self):
        b = SimBudget(max_wall_seconds=0.0)
        b.arm()
        with pytest.raises(SimulationTimeout) as exc:
            b.check()
        assert exc.value.limit == "wall-clock"

    def test_latches_once_tripped(self):
        b = SimBudget(max_instructions=10)
        with pytest.raises(SimulationTimeout):
            b.spend(11)
        # a later check with no further spending still fails fast
        with pytest.raises(SimulationTimeout):
            b.check()
        assert b.exhausted == "instructions"

    def test_unlimited_budget_never_trips(self):
        b = SimBudget()
        b.arm()
        b.spend(10**9, cycles=10**12)
        assert b.exhausted == ""

    def test_seconds_left(self):
        assert SimBudget().seconds_left is None
        b = SimBudget(max_wall_seconds=60.0)
        b.arm()
        assert 0 < b.seconds_left <= 60.0


class TestLaunchUnderBudget:
    @pytest.mark.parametrize("fast", [True, False])
    def test_instruction_budget_raises_timeout(self, saxpy_ck, fast):
        sim = Simulator(GPUSpec.small(1), fast=fast)
        with pytest.raises(SimulationTimeout):
            sim.launch(saxpy_ck, CONFIG, saxpy_args(),
                       budget=SimBudget(max_instructions=10))

    def test_generous_budget_changes_nothing(self, saxpy_ck):
        sim = Simulator(GPUSpec.small(1))
        base = sim.launch(saxpy_ck, CONFIG, saxpy_args())
        budget = SimBudget(max_instructions=10**9, max_cycles=1e12,
                           max_wall_seconds=600.0)
        guarded = sim.launch(saxpy_ck, CONFIG, saxpy_args(), budget=budget)
        assert guarded.cycles == base.cycles
        assert guarded.counters.inst_issued == base.counters.inst_issued
        assert budget.instructions > 0

    def test_timed_false_skips_timing(self, saxpy_ck):
        sim = Simulator(GPUSpec.small(1))
        launch = sim.launch(saxpy_ck, CONFIG, saxpy_args(), timed=False)
        assert launch.cycles == 0.0
        assert launch.counters.inst_issued == 0
        assert launch.counters.inst_functional > 0
        # output buffers are still complete
        ys = launch.read_buffer("y")
        expected = 2.0 * np.arange(N, dtype=np.float32) + 1.0
        np.testing.assert_allclose(ys, expected)


class TestDegradationLadder:
    def test_cycle_budget_demotes_to_static_only(self, saxpy_ck):
        # the acceptance scenario: a kernel that exceeds its cycle
        # budget must walk the whole ladder and complete static-only —
        # never raise
        scout = GPUscout(spec=GPUSpec.small(1),
                         budget=SimBudget(max_cycles=1.0))
        report = scout.analyze(saxpy_ck, CONFIG, saxpy_args())
        assert report.mode == "static"
        assert report.launch is None
        assert report.degraded
        timeouts = [d for d in report.diagnostics
                    if d.error == "SimulationTimeout"]
        assert timeouts, "demotions must record the timeout"
        assert any("static-only" in d.message for d in report.diagnostics)
        # findings from the static pillar survive
        assert isinstance(report.findings, list)
        assert "[health]" in report.render()

    def test_per_call_budget_overrides_engine_default(self, saxpy_ck):
        scout = GPUscout(spec=GPUSpec.small(1))
        report = scout.analyze(saxpy_ck, CONFIG, saxpy_args(),
                               budget=SimBudget(max_cycles=1.0))
        assert report.mode == "static"

    def test_timed_failure_demotes_to_functional(self, saxpy_ck):
        # both timed rungs die -> the functional rung still runs and
        # the report says so
        scout = GPUscout(spec=GPUSpec.small(1), fast=True)
        with fail_at("scheduler.run_wave_trace", SimulationError) as t, \
                fail_at("scheduler.run_wave", SimulationError) as w:
            report = scout.analyze(saxpy_ck, CONFIG, saxpy_args())
        assert t.triggered == 1
        assert w.triggered == 1
        assert report.mode == "functional"
        assert report.launch is not None
        assert report.launch.counters.inst_functional > 0
        assert report.sampling is None  # no stall data without timing
        assert len(report.diagnostics) >= 2

    def test_healthy_run_is_full_mode(self, saxpy_ck):
        scout = GPUscout(spec=GPUSpec.small(1))
        report = scout.analyze(saxpy_ck, CONFIG, saxpy_args())
        assert report.mode == "full"
        assert report.diagnostics == []
        assert not report.degraded
        assert "[health]" not in report.render()
