"""Timing-model tests: stall attribution, throttles, barriers,
latency hiding."""

import numpy as np
import pytest

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.cudalite.intrinsics import mad
from repro.gpu import GPUSpec, LaunchConfig, Simulator
from repro.gpu.scheduler import Timeline
from repro.gpu.stalls import StallReason


@pytest.fixture(scope="module")
def sim1():
    return Simulator(GPUSpec.small(1))


class TestTimeline:
    def test_booking_advances(self):
        tl = Timeline(rate=2.0)
        assert tl.book(10.0, 4) == 12.0
        assert tl.book(10.0, 2) == 13.0  # queued behind

    def test_backlog(self):
        tl = Timeline(rate=1.0)
        tl.book(0.0, 10)
        assert tl.backlog(4.0) == 6.0
        assert tl.backlog(20.0) == 0.0

    def test_ready_after_backlog(self):
        tl = Timeline(rate=1.0)
        tl.book(0.0, 100)
        assert tl.ready_after_backlog(40.0) == 60.0


def _memory_bound(sim):
    kb = KernelBuilder("membound")
    src = kb.param("src", ptr(f32))
    dst = kb.param("dst", ptr(f32))
    i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    x = kb.let("x", src[i])
    kb.store(dst, i, x + 1.0)
    ck = compile_kernel(kb.build())
    n = 4096
    return sim.launch(
        ck, LaunchConfig(grid=(16, 1), block=(256, 1)),
        args={"src": np.zeros(n, np.float32), "dst": np.zeros(n, np.float32)},
    )


def _compute_bound(sim):
    kb = KernelBuilder("computebound")
    dst = kb.param("dst", ptr(f32))
    i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    acc = kb.let("acc", 1.0, dtype=f32)
    with kb.for_range("k", 0, 64):
        kb.assign(acc, mad(acc, acc, 0.001))
    kb.store(dst, i, acc)
    ck = compile_kernel(kb.build())
    n = 4096
    return sim.launch(
        ck, LaunchConfig(grid=(16, 1), block=(256, 1)),
        args={"dst": np.zeros(n, np.float32)},
    )


class TestStallAttribution:
    def test_memory_bound_dominated_by_long_scoreboard(self, sim1):
        res = _memory_bound(sim1)
        totals = res.counters.stall_totals()
        stall = {k: v for k, v in totals.items()
                 if k is not StallReason.SELECTED}
        dominant = max(stall, key=lambda k: stall[k])
        assert dominant in (StallReason.LONG_SCOREBOARD,
                            StallReason.LG_THROTTLE)

    def test_compute_bound_not_memory_dominated(self, sim1):
        res = _compute_bound(sim1)
        totals = res.counters.stall_totals()
        ls = totals.get(StallReason.LONG_SCOREBOARD, 0)
        stall_sum = sum(v for k, v in totals.items()
                        if k is not StallReason.SELECTED)
        assert ls / stall_sum < 0.5

    def test_selected_counts_equal_issues(self, sim1, saxpy_launch):
        totals = saxpy_launch.counters.stall_totals()
        assert totals[StallReason.SELECTED] == pytest.approx(
            saxpy_launch.counters.inst_issued
        )

    def test_stalls_keyed_by_existing_pcs(self, saxpy_launch):
        n = len(saxpy_launch.compiled.program)
        for (pc, _), cycles in saxpy_launch.counters.stall_cycles.items():
            assert 0 <= pc < n
            assert cycles >= 0


class TestBarriers:
    def test_barrier_stall_recorded(self, sim1):
        kb = KernelBuilder("barrier")
        dst = kb.param("dst", ptr(f32))
        sm = kb.shared_array("s", f32, 256)
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        sm[t] = t.cast(f32)
        kb.sync_threads()
        kb.store(dst, t, sm[255 - t])
        ck = compile_kernel(kb.build())
        res = sim1.launch(ck, LaunchConfig(grid=(1, 1), block=(256, 1)),
                          args={"dst": np.zeros(256, np.float32)})
        totals = res.counters.stall_totals()
        assert totals.get(StallReason.BARRIER, 0) > 0
        got = res.read_buffer("dst")
        assert np.array_equal(got, np.arange(256, dtype=np.float32)[::-1])


class TestThrottles:
    def test_tex_pipeline_throttles(self, sim1):
        kb = KernelBuilder("texheavy")
        dst = kb.param("dst", ptr(f32))
        tex = kb.texture("tex")
        ix = kb.let("ix", kb.thread_idx.x, dtype=i32)
        # independent fetches issue back-to-back and fill the TEX queue
        vals = [kb.let(f"v{j}", kb.tex2d(tex, ix + j, 0)) for j in range(16)]
        acc = kb.let("acc", 0.0, dtype=f32)
        for v in vals:
            kb.assign(acc, acc + v)
        kb.store(dst, ix, acc)
        ck = compile_kernel(kb.build())
        img = np.ones((8, 128), np.float32)
        res = sim1.launch(ck, LaunchConfig(grid=(2, 1), block=(128, 1)),
                          args={"dst": np.zeros(256, np.float32)},
                          textures={"tex": img})
        totals = res.counters.stall_totals()
        assert totals.get(StallReason.TEX_THROTTLE, 0) > 0

    def test_mio_pressure_from_shared(self, sim1):
        kb = KernelBuilder("smemheavy")
        dst = kb.param("dst", ptr(f32))
        sm = kb.shared_array("s", f32, 32)
        t = kb.let("t", kb.thread_idx.x, dtype=i32)
        sm[t % 32] = 1.0
        acc = kb.let("acc", 0.0, dtype=f32)
        with kb.for_range("j", 0, 16, unroll=True) as j:
            kb.assign(acc, acc + sm[(t + j) % 32])
        kb.store(dst, t, acc)
        ck = compile_kernel(kb.build())
        res = sim1.launch(ck, LaunchConfig(grid=(4, 1), block=(256, 1)),
                          args={"dst": np.zeros(1024, np.float32)})
        totals = res.counters.stall_totals()
        assert (totals.get(StallReason.MIO_THROTTLE, 0)
                + totals.get(StallReason.SHORT_SCOREBOARD, 0)) > 0


class TestLatencyHiding:
    def test_more_warps_hide_latency(self, sim1):
        """Same total work split across more warps should not be slower
        per element (latency hiding)."""
        def launch(block, grid):
            kb = KernelBuilder("lat")
            src = kb.param("src", ptr(f32))
            dst = kb.param("dst", ptr(f32))
            i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
                       dtype=i32)
            kb.store(dst, i, src[i] * 2.0)
            ck = compile_kernel(kb.build())
            n = block * grid
            return sim1.launch(
                ck, LaunchConfig(grid=(grid, 1), block=(block, 1)),
                args={"src": np.zeros(n, np.float32),
                      "dst": np.zeros(n, np.float32)},
            )

        few = launch(32, 1)    # one warp
        many = launch(256, 4)  # 32 warps, 32x the work
        assert many.cycles < few.cycles * 32


class TestVectorizationTiming:
    def test_vector_loads_cheaper_than_scalar_strided(self, sim1):
        """Per-thread-contiguous data: 4 scalar loads touch the same
        sectors as one 128-bit load but cost 4x the LSU slots."""
        from repro.kernels.mixbench import build_mixbench, mixbench_args

        spec = GPUSpec.small(1).with_(dram_sectors_per_cycle=4.0)
        fast_sim = Simulator(spec)
        results = {}
        for vec in (False, True):
            ck = build_mixbench("sp", 8, vectorized=vec)
            args = mixbench_args(2048, 8, "sp")
            args["compute_iterations"] = 2
            res = fast_sim.launch(
                ck, LaunchConfig(grid=(8, 1), block=(256, 1)), args=args
            )
            results[vec] = res
        assert results[True].cycles < results[False].cycles
        assert (results[True].counters.global_load_instructions
                < results[False].counters.global_load_instructions)
