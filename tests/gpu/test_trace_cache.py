"""Content-addressed trace cache: warm replays must be hits, bit-equal,
and skippable via the environment."""

import numpy as np
import pytest

from repro.cli import resolve_kernel
from repro.gpu.simulator import Simulator
from repro.gpu.trace_cache import TraceCache, trace_cache


@pytest.fixture
def cache():
    c = trace_cache()
    assert c is not None
    c.clear()
    yield c
    c.clear()


def _resolve(spec="sgemm:naive", size=64):
    # the cache keys program identity by object (``id(compiled)`` plus a
    # strong ref), so warm-replay tests must reuse one resolved kernel —
    # exactly how benchmark repeats and what-if reruns behave
    return resolve_kernel(spec, size, 4)


def _launch(resolved, **kw):
    ck, config, args, textures = resolved
    sim = Simulator(fast=True)
    return sim.launch(ck, config, args, textures=textures,
                      max_blocks=2, functional_all=True, **kw)


class TestWarmReplay:
    def test_repeat_launch_hits_cache(self, cache):
        rk = _resolve()
        first = _launch(rk)
        assert cache.hits == 0 and cache.misses > 0
        second = _launch(rk)
        assert cache.hits > 0, "warm repeat rebuilt every trace"
        assert first.timed_fast_path and second.timed_fast_path

    def test_warm_replay_bit_identical(self, cache):
        rk = _resolve()
        first = _launch(rk)
        second = _launch(rk)
        assert cache.hits > 0
        assert first.cycles == second.cycles
        assert first.counters == second.counters
        assert np.array_equal(first.memory.buf, second.memory.buf)

    def test_deferred_atomics_hit_cache_and_commit(self, cache):
        """reduction:atomic defers float atomics to replay; the cached
        trace must re-commit them on every warm replay, not carry the
        first replay's values in ``post_writes``."""
        rk = _resolve("reduction:atomic", 512)
        first = _launch(rk)
        second = _launch(rk)
        assert cache.hits > 0
        assert first.cycles == second.cycles
        assert first.counters == second.counters
        assert np.array_equal(first.memory.buf, second.memory.buf)

    def test_mutated_input_misses(self, cache):
        ck, config, args, textures = resolve_kernel("sgemm:naive", 64, 4)
        Simulator(fast=True).launch(ck, config, args, textures=textures,
                                    max_blocks=2, functional_all=True)
        hits_before = cache.hits
        args2 = {k: (v + 1 if isinstance(v, np.ndarray) else v)
                 for k, v in args.items()}
        Simulator(fast=True).launch(ck, config, args2, textures=textures,
                                    max_blocks=2, functional_all=True)
        assert cache.hits == hits_before, (
            "launch against mutated buffers replayed a stale trace"
        )


class TestDisable:
    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert trace_cache() is None

    def test_disabled_launch_still_trace_timed(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        rk = _resolve()
        reference = _launch(rk)
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        res = _launch(rk)
        assert res.timed_fast_path
        assert res.cycles == reference.cycles
        assert res.counters == reference.counters

    def test_budgeted_launch_bypasses_cache(self, cache):
        """Supervised/budgeted launches must not populate or consume the
        cache: skipping build work would change degradation decisions."""
        from repro.gpu.budget import SimBudget

        _launch(_resolve(), budget=SimBudget(max_cycles=10**9))
        assert cache.hits == 0 and cache.misses == 0


class TestLRU:
    def test_capacity_evicts_oldest(self):
        c = TraceCache(capacity=2)
        for i in range(3):
            c.put((("k", i), 0, 0, 1, 1), _FakeTrace(), {}, object())
        assert len(c._entries) == 2
        assert c.get((("k", 0), 0, 0, 1, 1)) is None
        assert c.get((("k", 2), 0, 0, 1, 1)) is not None


class _FakeTrace:
    n_warps = 0
