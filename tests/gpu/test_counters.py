"""Counter-block semantics: aggregation, scaling, stall tables, and the
texture line-fill accounting added to the hierarchy."""

import pytest

from repro.gpu.caches import MemoryHierarchy
from repro.gpu.config import GPUSpec
from repro.gpu.counters import Counters
from repro.gpu.stalls import StallReason


class TestCounters:
    def test_record_l2(self):
        c = Counters()
        c.record_l2("global", hits=3, misses=2)
        c.record_l2("local", hits=1, misses=0)
        assert c.l2_sectors_by_space["global"] == 5
        assert c.dram_sectors == 2
        assert c.l2_sectors_total == 6

    def test_record_l2_noop_when_empty(self):
        c = Counters()
        c.record_l2("global", 0, 0)
        assert c.l2_sectors_total == 0

    def test_stall_aggregation(self):
        c = Counters()
        c.add_stall(3, StallReason.WAIT, 5.0)
        c.add_stall(3, StallReason.WAIT, 2.0)
        c.add_stall(4, StallReason.BARRIER, 1.0)
        c.add_stall(4, StallReason.WAIT, 0.0)  # zero ignored
        assert c.stall_totals() == {StallReason.WAIT: 7.0,
                                    StallReason.BARRIER: 1.0}
        assert c.stalls_at_pc(3) == {StallReason.WAIT: 7.0}
        assert c.stalls_at_pc(99) == {}

    def test_scaled_preserves_ratios(self):
        c = Counters()
        c.inst_issued = 100
        c.global_load_l1_hits = 30
        c.global_load_l1_misses = 10
        c.add_stall(0, StallReason.WAIT, 8.0)
        c.inst_by_pc[0] = 100
        s = c.scaled(4.0)
        assert s.inst_issued == 400
        assert s.global_load_l1_hits / s.global_load_l1_misses == \
            c.global_load_l1_hits / c.global_load_l1_misses
        assert s.stall_cycles[(0, StallReason.WAIT)] == 32.0
        assert s.inst_by_pc[0] == 400
        # original untouched
        assert c.inst_issued == 100

    def test_scaled_identity(self):
        c = Counters()
        c.inst_issued = 7
        s = c.scaled(1.0)
        assert s.inst_issued == 7
        assert s is not c


class TestTextureLineFill:
    @pytest.fixture
    def hier(self):
        return MemoryHierarchy(GPUSpec.small(1))

    def test_miss_promotes_siblings(self, hier):
        res = hier.access([0], "texture")
        assert res.l1_misses == 1
        assert res.fill_sectors == 3  # rest of the 128 B line
        # every sector of the line now hits
        for sector in (32, 64, 96):
            follow = hier.access([sector], "texture")
            assert follow.l1_hits == 1

    def test_fill_traffic_accounted_at_l2(self, hier):
        res = hier.access([0], "texture")
        # 1 requested + 3 promoted sectors all reached L2
        assert res.l2_hits + res.l2_misses == 4

    def test_lsu_path_not_line_filled(self, hier):
        hier.access([0], "global")
        follow = hier.access([32], "global")
        assert follow.l1_misses == 1  # sibling was NOT promoted

    def test_requested_counts_exclude_fills(self, hier):
        # the first sector's line fill promotes the second request too
        res = hier.access([0, 32], "texture")
        assert res.sectors_total == 2
        assert res.l1_misses == 1
        assert res.l1_hits == 1
        assert res.fill_sectors == 3
