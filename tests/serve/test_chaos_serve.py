"""Chaos scenarios for the serving layer's two fail-points (the engine
sites live in ``tests/test_chaos.py``):

* ``serve.cache_read`` — a disk cache read comes back corrupted: the
  entry is discarded, the result recomputed, and the response carries a
  diagnostic naming the site.
* ``serve.worker_death`` — the dispatched-to worker dies: the request
  is retried on another shard member, the worker respawned, and the
  response annotated with the retry.
"""

import pytest

from repro.gpu.trace_cache import FileStore, configure_trace_cache
from repro.serve.service import KernelRunner
from repro.testing import fail_at

KERNEL = "reduction:warp"


@pytest.fixture(autouse=True)
def _detach_disk_tier():
    yield
    configure_trace_cache(None)


class TestCacheReadCorruption:
    def test_filestore_reports_injected_corruption(self, tmp_path):
        store = FileStore(tmp_path)
        store.put("k", b"payload")
        with fail_at("serve.cache_read", OSError) as fp:
            payload, corrupted = store.get("k")
        assert fp.triggered == 1
        assert payload is None and corrupted
        assert not (tmp_path / "k.bin").exists(), \
            "corrupt entry must be discarded"
        # recompute-and-reput round trip works afterwards
        store.put("k", b"payload")
        assert store.get("k") == (b"payload", False)

    def test_corrupt_l3_recomputed_with_diagnostic(self, tmp_path):
        KernelRunner(cache_dir=str(tmp_path)).run(
            {"kernel": KERNEL, "size": 128})
        # a fresh runner (fresh memory tier) must read L3 from disk —
        # where the injected corruption strikes
        fresh = KernelRunner(cache_dir=str(tmp_path))
        with fail_at("serve.cache_read", OSError) as fp:
            env = fresh.run({"kernel": KERNEL, "size": 128})
        assert fp.triggered == 1
        assert env["ok"], "corruption degrades the response, not the run"
        assert env["cache"] == "cold", "discarded entry forces recompute"
        sites = [d.get("site")
                 for d in env["report"].get("diagnostics", [])]
        assert "serve.cache_read" in sites
        assert env["cacheable"] is False
        # the poisoned address was dropped; the next run repopulates it
        repeat = fresh.run({"kernel": KERNEL, "size": 128})
        assert repeat["cacheable"] is True


class TestWorkerDeath:
    def test_dead_worker_respawned_and_request_retried(self, tmp_path):
        from repro.serve.pool import WorkerPool

        with WorkerPool(2, cache_dir=str(tmp_path)) as pool:
            with fail_at("serve.worker_death", RuntimeError) as fp:
                env = pool.submit(
                    {"kernel": KERNEL, "size": 128, "dry_run": True},
                    arch_key="v100", timeout=300,
                )
            assert fp.triggered == 1
            assert env["ok"], "death must be retried, not surfaced"
            assert env["retries"] == 1
            sites = [d.get("site")
                     for d in env["report"].get("diagnostics", [])]
            assert "serve.worker_death" in sites
            stats = pool.stats()
            assert stats["respawns"] == 1
            assert stats["alive"] == 2, "replacement worker running"
            # the pool keeps serving afterwards
            again = pool.submit(
                {"kernel": KERNEL, "size": 128, "dry_run": True},
                arch_key="v100", timeout=300,
            )
            assert again["ok"] and "retries" not in again

    def test_persistent_death_exhausts_attempts_cleanly(self, tmp_path):
        from repro.serve.pool import MAX_ATTEMPTS, WorkerPool

        with WorkerPool(2, cache_dir=str(tmp_path)) as pool:
            with fail_at("serve.worker_death", RuntimeError,
                         times=None) as fp:
                env = pool.submit(
                    {"kernel": KERNEL, "size": 128, "dry_run": True},
                    arch_key="v100", timeout=60,
                )
            assert fp.triggered >= 2
            assert env["ok"] is False and env["code"] == 70
            assert env["retries"] <= MAX_ATTEMPTS
