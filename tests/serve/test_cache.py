"""Cache tiers: FileStore integrity/eviction, the bounded in-memory
trace-cache LRU (entry- and byte-capped), the shared disk L2 tier, and
the ReportCache's memory/disk interplay."""

import os
import pickle
import time

import numpy as np

from repro.gpu.trace_cache import FileStore, TraceCache
from repro.serve.cache import ReportCache, StaticCache


class _FakeTrace:
    n_warps = 0


def _key(i):
    return (("k", i), 0, 0, 1, 1)


class TestFileStore:
    def test_round_trip(self, tmp_path):
        s = FileStore(tmp_path)
        s.put("abc", b"payload")
        payload, corrupted = s.get("abc")
        assert payload == b"payload" and not corrupted

    def test_miss(self, tmp_path):
        s = FileStore(tmp_path)
        assert s.get("nope") == (None, False)
        assert s.misses == 1

    def test_no_partial_files_visible(self, tmp_path):
        s = FileStore(tmp_path)
        s.put("abc", b"x" * 1000)
        assert [p.name for p in tmp_path.iterdir()] == ["abc.bin"]

    def test_corrupted_entry_discarded(self, tmp_path):
        s = FileStore(tmp_path)
        s.put("abc", b"payload")
        path = tmp_path / "abc.bin"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # bit rot in the payload: CRC must catch it
        path.write_bytes(bytes(raw))
        payload, corrupted = s.get("abc")
        assert payload is None and corrupted
        assert not path.exists(), "corrupt entry must be deleted"
        assert s.corrupt == 1
        # and the follow-up read is a clean miss, not corruption again
        assert s.get("abc") == (None, False)

    def test_truncated_entry_discarded(self, tmp_path):
        s = FileStore(tmp_path)
        s.put("abc", b"payload")
        path = tmp_path / "abc.bin"
        path.write_bytes(path.read_bytes()[:6])
        assert s.get("abc") == (None, True)

    def test_eviction_drops_least_recently_used(self, tmp_path):
        s = FileStore(tmp_path, max_bytes=3500)
        for i, name in enumerate(["a", "b", "c"]):
            s.put(name, bytes(1000))
            os.utime(tmp_path / f"{name}.bin", (i + 1, i + 1))
        # reading "a" touches it; inserting "d" must evict "b" (oldest)
        now = time.time()
        os.utime(tmp_path / "a.bin", (now, now))
        s.put("d", bytes(1000))
        present = {p.stem for p in tmp_path.glob("*.bin")}
        assert "b" not in present
        assert "a" in present and "d" in present


class TestTraceCacheLRU:
    def test_capacity_eviction_order(self):
        c = TraceCache(capacity=3)
        for i in range(3):
            c.put(_key(i), _FakeTrace(), {}, object())
        assert c.keys() == [_key(0), _key(1), _key(2)]
        # a hit refreshes recency: 0 moves to the back...
        assert c.get(_key(0)) is not None
        assert c.keys() == [_key(1), _key(2), _key(0)]
        # ...so inserting past capacity evicts 1, not 0
        c.put(_key(3), _FakeTrace(), {}, object())
        assert c.keys() == [_key(2), _key(0), _key(3)]
        assert c.get(_key(1)) is None

    def test_byte_cap_evicts(self):
        class _BigTrace:
            __slots__ = ("payload",)
            n_warps = 0

            def __init__(self, nbytes):
                self.payload = np.zeros(nbytes, dtype=np.uint8)

        c = TraceCache(capacity=100, max_bytes=4096)
        for i in range(4):
            c.put(_key(i), _BigTrace(1500), {}, object())
        # 4 x ~1.5KB > 4KB: the byte cap, not the entry cap, must bite
        assert len(c.keys()) < 4
        assert c.bytes <= 4096
        assert c.get(_key(3)) is not None, "newest entry evicted"

    def test_update_replaces_byte_accounting(self):
        class _BigTrace:
            __slots__ = ("payload",)
            n_warps = 0

            def __init__(self, nbytes):
                self.payload = np.zeros(nbytes, dtype=np.uint8)

        c = TraceCache(capacity=4, max_bytes=10**9)
        assert c.bytes == 0
        c.put(_key(0), _BigTrace(4000), {}, object())
        before = c.bytes
        c.put(_key(0), _BigTrace(4000), {}, object())
        assert c.bytes == before, "re-put double-counted entry bytes"


class TestTraceCacheDiskTier:
    def _trace(self):
        from repro.gpu.timed_trace import TimedTrace

        z = np.zeros(0, dtype=np.int64)
        return TimedTrace(z, z, z, {}, 1, 8, np.zeros(1, dtype=np.int64))

    def _wave_key(self, tag="deadbeef"):
        # element 0 is the in-process id; the rest is content
        return ((12345, tag, (1, 1), (32, 1)), 0, 0, 1, 1)

    def test_cross_process_content_hit(self, tmp_path):
        """A second cache (fresh process in real life) with a different
        id component but identical content must hit through the store."""
        store = FileStore(tmp_path)
        a = TraceCache(store=store)
        a.put(self._wave_key(), self._trace(), {0: 1}, object())
        b = TraceCache(store=store)
        other_id_key = ((99999,) + self._wave_key()[0][1:],) + \
            self._wave_key()[1:]
        ent = b.get(other_id_key, compiled=object())
        assert ent is not None
        assert ent.warp_counts == {0: 1}
        assert b.disk_hits == 1

    def test_different_content_misses(self, tmp_path):
        store = FileStore(tmp_path)
        a = TraceCache(store=store)
        a.put(self._wave_key("aaaa"), self._trace(), {}, object())
        b = TraceCache(store=store)
        assert b.get(self._wave_key("bbbb"), compiled=object()) is None

    def test_disk_payload_has_no_plan(self, tmp_path):
        store = FileStore(tmp_path)
        c = TraceCache(store=store)
        trace = self._trace()
        trace.plan = ["decoded-program-ref"]  # lazily built, process-local
        c.put(self._wave_key(), trace, {}, object())
        (path,) = tmp_path.glob("*.bin")
        stored, _ = pickle.loads(path.read_bytes()[8:])
        assert stored.plan is None


class TestStaticCache:
    def test_lru(self):
        c = StaticCache(capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1
        c.put("c", 3)
        assert c.get("b") is None and c.get("a") == 1
        assert c.stats()["entries"] == 2


class TestReportCache:
    def test_memory_round_trip_is_isolated(self, tmp_path):
        c = ReportCache(tmp_path)
        c.put("k", {"findings": [1, 2]})
        got, corrupted = c.get("k")
        assert got == {"findings": [1, 2]} and not corrupted
        got["findings"].append(3)  # callers may mutate their copy
        assert c.get("k")[0] == {"findings": [1, 2]}

    def test_disk_tier_survives_new_instance(self, tmp_path):
        ReportCache(tmp_path).put("k", {"x": 1})
        fresh = ReportCache(tmp_path)
        assert fresh.get("k") == ({"x": 1}, False)
        assert fresh.disk_hits == 1

    def test_corrupt_disk_entry_reported(self, tmp_path):
        c = ReportCache(tmp_path)
        c.put("k", {"x": 1})
        fresh = ReportCache(tmp_path)
        (path,) = (tmp_path).glob("*.bin")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert fresh.get("k") == (None, True)

    def test_memory_only(self):
        c = ReportCache(None)
        c.put("k", {"x": 1})
        assert c.get("k") == ({"x": 1}, False)
        assert c.get("other") == (None, False)
