"""KernelRunner contracts: served reports are byte-identical to the
one-shot CLI's ``--json`` output (modulo volatile timing fields) on the
cold, warm-L1 and warm-L3 paths; per-request deadlines degrade instead
of failing; failures map onto the CLI's stage codes."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import (
    AnalysisError,
    CompileError,
    LaunchError,
    SassSyntaxError,
    SimulationError,
)
from repro.gpu.trace_cache import configure_trace_cache
from repro.serve.protocol import EXIT_USAGE, ProtocolError, strip_volatile
from repro.serve.service import KernelRunner, error_envelope

KERNEL = "reduction:warp"
SIZE = 512


@pytest.fixture(autouse=True)
def _detach_disk_tier():
    # KernelRunner(cache_dir=...) attaches a disk tier to the process-
    # wide trace cache; leave no trace for the rest of the suite
    yield
    configure_trace_cache(None)


def cli_report(*argv) -> dict:
    import contextlib
    import io

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli_main(list(argv) + ["--json", "-"])
    assert code == 0
    return json.loads(out.getvalue())


class TestByteIdentity:
    def test_cold_matches_cli(self):
        runner = KernelRunner()
        env = runner.run({"kernel": KERNEL, "size": SIZE})
        assert env["ok"] and env["cache"] == "cold"
        via_cli = cli_report("analyze", "--kernel", KERNEL,
                             "--size", str(SIZE))
        assert strip_volatile(env["report"]) == strip_volatile(via_cli)

    def test_warm_l1_matches_cli(self):
        # no cache_dir -> no L3 report store, so the repeat exercises
        # the static-artifact reuse path (L1) end to end
        runner = KernelRunner()
        cold = runner.run({"kernel": KERNEL, "size": SIZE})
        warm = runner.run({"kernel": KERNEL, "size": SIZE})
        assert cold["cache"] == "cold" and warm["cache"] == "l1"
        assert strip_volatile(warm["report"]) == \
            strip_volatile(cold["report"])
        via_cli = cli_report("analyze", "--kernel", KERNEL,
                             "--size", str(SIZE))
        assert strip_volatile(warm["report"]) == strip_volatile(via_cli)

    def test_warm_l3_byte_identical(self, tmp_path):
        runner = KernelRunner(cache_dir=str(tmp_path))
        cold = runner.run({"kernel": KERNEL, "size": SIZE})
        warm = runner.run({"kernel": KERNEL, "size": SIZE})
        assert cold["cache"] == "cold" and warm["cache"] == "l3"
        assert warm["address"] == cold["address"]
        # L3 serves the stored body verbatim — identical even before
        # stripping volatile fields
        assert warm["report"] == cold["report"]
        via_cli = cli_report("analyze", "--kernel", KERNEL,
                             "--size", str(SIZE))
        assert strip_volatile(warm["report"]) == strip_volatile(via_cli)

    def test_l3_survives_process_restart(self, tmp_path):
        KernelRunner(cache_dir=str(tmp_path)).run(
            {"kernel": KERNEL, "size": SIZE})
        fresh = KernelRunner(cache_dir=str(tmp_path))
        env = fresh.run({"kernel": KERNEL, "size": SIZE})
        assert env["cache"] == "l3"
        assert fresh.reports.disk_hits == 1

    def test_dry_run_matches_cli(self):
        runner = KernelRunner()
        env = runner.run({"kernel": KERNEL, "size": SIZE,
                          "dry_run": True})
        assert env["ok"]
        via_cli = cli_report("analyze", "--kernel", KERNEL,
                             "--size", str(SIZE), "--dry-run")
        assert strip_volatile(env["report"]) == strip_volatile(via_cli)


class TestRequestOptions:
    def test_max_blocks_changes_address_but_shares_l1(self, tmp_path):
        runner = KernelRunner(cache_dir=str(tmp_path))
        a = runner.run({"kernel": KERNEL, "size": SIZE, "max_blocks": 2})
        b = runner.run({"kernel": KERNEL, "size": SIZE, "max_blocks": 4})
        assert a["address"] != b["address"]
        assert b["cache"] == "l1", "same program+geometry must reuse L1"

    def test_deadline_degrades_and_is_not_cached(self, tmp_path):
        runner = KernelRunner(cache_dir=str(tmp_path))
        env = runner.run({"kernel": KERNEL, "size": SIZE,
                          "deadline": 1e-9})
        assert env["ok"], "an expired deadline degrades, never fails"
        assert env["report"]["mode"] in ("functional", "static")
        assert not env["cacheable"]
        # the degraded body must not become the canonical answer
        repeat = runner.run({"kernel": KERNEL, "size": SIZE})
        assert repeat["cache"] != "l3"
        assert repeat["report"]["mode"] == "full"

    def test_sass_submission_is_static_only(self):
        sass = cli_sass()
        runner = KernelRunner()
        env = runner.run({"sass": sass, "dry_run": True})
        assert env["ok"]
        assert env["report"]["mode"] == "dry-run"


def cli_sass() -> str:
    import contextlib
    import io

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        assert cli_main(["disasm", "--kernel", KERNEL]) == 0
    return out.getvalue()


class TestErrorMapping:
    @pytest.mark.parametrize("exc,code", [
        (SassSyntaxError("x"), 2),
        (CompileError("x"), 3),
        (LaunchError("x"), 4),
        (SimulationError("x"), 5),
        (AnalysisError("x"), 6),
        (ProtocolError("x"), EXIT_USAGE),
        (SystemExit("unknown kernel family"), EXIT_USAGE),
        (RuntimeError("x"), 70),
    ])
    def test_stage_codes(self, exc, code):
        env = error_envelope(exc)
        assert env["ok"] is False and env["code"] == code
        assert env["message"]

    def test_unknown_kernel_family_is_usage(self):
        env = KernelRunner().run({"kernel": "bogus:thing"})
        assert env["ok"] is False and env["code"] == EXIT_USAGE

    def test_malformed_submission_is_usage(self):
        env = KernelRunner().run({"kernel": KERNEL, "sass": "both"})
        assert env["code"] == EXIT_USAGE

    def test_envelope_always_returned(self):
        env = KernelRunner().run(None)
        assert env["ok"] is False and env["code"] == EXIT_USAGE
        assert "elapsed_s" in env
