"""HTTP end-to-end: submissions, batches, cache hits, error statuses,
and the stats endpoint — against a live ``ScoutServer`` on a loopback
ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.gpu.trace_cache import configure_trace_cache
from repro.serve import ScoutServer
from repro.serve.protocol import EXIT_USAGE, strip_volatile

KERNEL = "reduction:warp"


@pytest.fixture
def server(tmp_path):
    srv = ScoutServer(workers=0, cache_dir=str(tmp_path)).start()
    yield srv
    srv.stop()
    configure_trace_cache(None)


def post(srv, path, body, timeout=120):
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(srv.url + path, data=data)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def get(srv, path):
    try:
        with urllib.request.urlopen(srv.url + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["mode"] == "inline"

    def test_unknown_path_404(self, server):
        status, body = get(server, "/nope")
        assert status == 404 and body["ok"] is False
        status, _ = post(server, "/v1/nope", {"kernel": KERNEL})
        assert status == 404

    def test_analyze_cold_then_warm(self, server):
        status, cold = post(server, "/v1/analyze",
                            {"kernel": KERNEL, "size": 128})
        assert status == 200 and cold["cache"] == "cold"
        status, warm = post(server, "/v1/analyze",
                            {"kernel": KERNEL, "size": 128})
        assert status == 200 and warm["cache"] == "l3"
        assert warm["report"] == cold["report"]

    def test_front_memo_answers_without_engine(self, server):
        post(server, "/v1/analyze", {"kernel": KERNEL, "size": 128})
        cold_runs = server.runner.cold
        post(server, "/v1/analyze", {"kernel": KERNEL, "size": 128})
        assert server.l3_front_hits == 1
        assert server.runner.cold == cold_runs, \
            "warm repeat must not reach the engine"

    def test_batch_preserves_order_and_reports_partial_failure(
            self, server):
        status, body = post(server, "/v1/batch", {"requests": [
            {"kernel": KERNEL, "size": 128},
            {"kernel": "bogus:kernel"},
            {"kernel": KERNEL, "size": 128, "dry_run": True},
        ]})
        assert status == 200
        assert body["ok"] is False, "one failed member flips batch ok"
        ok0, bad, ok2 = body["responses"]
        assert ok0["ok"] and ok2["ok"]
        assert bad["code"] == EXIT_USAGE
        assert ok2["report"]["mode"] == "dry-run"

    def test_batch_malformed_body(self, server):
        status, body = post(server, "/v1/batch", {"nope": []})
        assert status == 400 and body["code"] == EXIT_USAGE

    def test_invalid_json_body(self, server):
        status, body = post(server, "/v1/analyze", b"{not json")
        assert status == 400 and body["code"] == EXIT_USAGE

    def test_usage_errors_are_400(self, server):
        for payload in ({"kernel": KERNEL, "bogus": 1},
                        {"kernel": KERNEL, "size": "big"},
                        {"kernel": KERNEL, "arch": "h100"}):
            status, body = post(server, "/v1/analyze", payload)
            assert status == 400 and body["code"] == EXIT_USAGE

    def test_per_request_deadline(self, server):
        status, env = post(server, "/v1/analyze",
                           {"kernel": KERNEL, "size": 512,
                            "deadline": 1e-9})
        assert status == 200 and env["ok"]
        assert env["report"]["mode"] in ("functional", "static")
        assert env["cacheable"] is False

    def test_stats_shape(self, server):
        post(server, "/v1/analyze", {"kernel": KERNEL, "size": 128})
        status, stats = get(server, "/v1/stats")
        assert status == 200
        assert stats["requests"] >= 1
        assert "runner" in stats and "static" in stats["runner"]

    def test_identical_concurrent_requests_coalesce(self, server):
        from concurrent.futures import ThreadPoolExecutor

        body = {"kernel": KERNEL, "size": 128}
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(
                lambda _: post(server, "/v1/analyze", body), range(4)))
        assert all(status == 200 and env["ok"]
                   for status, env in results)
        reports = [env["report"] for _, env in results]
        assert all(r == reports[0] for r in reports)
        assert server.runner.cold == 1, \
            "identical concurrent submissions must compute once"
        assert server.coalesced >= 1

    def test_served_matches_cli(self, server):
        import contextlib
        import io

        from repro.cli import main as cli_main

        status, env = post(server, "/v1/analyze",
                           {"kernel": KERNEL, "size": 128})
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            assert cli_main(["analyze", "--kernel", KERNEL, "--size",
                             "128", "--json", "-"]) == 0
        assert strip_volatile(env["report"]) == \
            strip_volatile(json.loads(out.getvalue()))


class TestPooledServer:
    def test_batch_fans_out_and_second_pass_hits(self, tmp_path):
        with ScoutServer(workers=2, cache_dir=str(tmp_path)).start() \
                as srv:
            reqs = {"requests": [
                {"kernel": KERNEL, "size": 128},
                {"kernel": "histogram:shared", "size": 256},
                {"kernel": KERNEL, "size": 128, "dry_run": True},
            ]}
            status, first = post(srv, "/v1/batch", reqs, timeout=300)
            assert status == 200 and first["ok"]
            workers = {r.get("worker") for r in first["responses"]}
            assert workers <= {0, 1} and None not in workers
            status, second = post(srv, "/v1/batch", reqs, timeout=300)
            assert status == 200
            assert all(r["cache"] == "l3" for r in second["responses"])
        configure_trace_cache(None)
