"""FileStore under contention: two writer threads racing the byte-cap
LRU eviction while a reader keeps tripping over a corrupted entry.

The invariants the telemetry work leans on:

* **occupancy never goes negative** — ``bytes_used()`` recomputes from
  the directory, so concurrent unlink (evictor) + unlink (corrupt
  discard) of the same file must not drive any accounting below zero;
* **eviction order is mtime-consistent** — the survivor set after a
  byte-cap squeeze is the most-recently-touched files;
* corrupt discards and evictions land in their *own* counters (a
  corrupt entry deleted by the reader is not an eviction)."""

import os
import struct
import threading
import time
import zlib

import pytest

from repro.gpu.trace_cache import FileStore
from repro.obs import metrics as obs_metrics

PAYLOAD = b"x" * 1024


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    obs_metrics.arm(False)


def corrupt_entry(store, key):
    """Flip payload bytes in place, keeping the stored CRC stale."""
    path = store._path(key)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestCorruption:
    def test_corrupt_entry_discarded_and_counted(self, tmp_path):
        store = FileStore(tmp_path, max_bytes=1 << 20)
        store.put("k", PAYLOAD)
        corrupt_entry(store, "k")
        payload, corrupted = store.get("k")
        assert payload is None and corrupted is True
        assert store.corrupt == 1
        assert not store._path("k").exists()
        # the discard is not an eviction
        assert store.evictions == 0
        payload, corrupted = store.get("k")
        assert payload is None and corrupted is False  # plain miss now

    def test_truncated_and_bad_magic_rejected(self, tmp_path):
        store = FileStore(tmp_path, max_bytes=1 << 20)
        store._path("short").write_bytes(b"GS")
        assert store.get("short") == (None, True)
        blob = b"NOPE" + struct.pack("<I", zlib.crc32(PAYLOAD)) + PAYLOAD
        store._path("magic").write_bytes(blob)
        assert store.get("magic") == (None, True)
        assert store.corrupt == 2


class TestEvictionOrder:
    def test_lru_eviction_is_mtime_consistent(self, tmp_path):
        # cap fits ~3 entries (header is 8 bytes per entry)
        store = FileStore(tmp_path, max_bytes=3 * 1040)
        for i in range(3):
            store.put(f"k{i}", PAYLOAD)
            then = time.time() - 100 + i
            os.utime(store._path(f"k{i}"), (then, then))
        # touch k0 so k1 becomes the LRU victim
        now = time.time()
        os.utime(store._path("k0"), (now, now))
        store.put("k3", PAYLOAD)
        survivors = {p.stem for p in tmp_path.glob("*.bin")}
        assert "k1" not in survivors, \
            "oldest-mtime entry must be evicted first"
        assert "k0" in survivors and "k3" in survivors
        assert store.evictions >= 1
        assert store.bytes_used() <= store.max_bytes

    def test_occupancy_tracks_disk(self, tmp_path):
        store = FileStore(tmp_path, max_bytes=1 << 20)
        assert store.bytes_used() == 0
        store.put("a", PAYLOAD)
        assert store.bytes_used() == len(PAYLOAD) + 8
        store.delete("a")
        assert store.bytes_used() == 0
        store.delete("a")  # double delete is harmless
        assert store.bytes_used() == 0


class TestWriterRace:
    def test_two_writers_racing_eviction_and_corrupt_discard(
            self, tmp_path):
        """Two writers hammer a store capped at ~8 entries while a
        reader loop keeps hitting (and thereby discarding) entries a
        saboteur corrupts; after the dust settles every invariant
        holds."""
        obs_metrics.arm(True)
        store = FileStore(tmp_path, max_bytes=8 * 1040)
        stop = threading.Event()
        errors = []

        def writer(tag):
            try:
                i = 0
                while not stop.is_set():
                    store.put(f"{tag}{i % 24}", PAYLOAD)
                    i += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def saboteur():
            try:
                while not stop.is_set():
                    for path in list(tmp_path.glob("w0*.bin")):
                        try:
                            raw = bytearray(path.read_bytes())
                            raw[-1] ^= 0xFF
                            path.write_bytes(bytes(raw))
                        except OSError:
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    for i in range(24):
                        used = store.bytes_used()
                        assert used >= 0, used
                        store.get(f"w0{i}")
                        store.get(f"w1{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=("w0",)),
                   threading.Thread(target=writer, args=("w1",)),
                   threading.Thread(target=saboteur),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        time.sleep(1.5)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors

        assert store.bytes_used() >= 0
        assert store.corrupt >= 1, "saboteur must have been caught"
        assert store.evictions >= 1, "byte cap must have squeezed"
        # on-disk state is still coherent: every surviving entry reads
        # back clean or is discarded as corrupt — never garbage
        for path in list(tmp_path.glob("*.bin")):
            payload, _ = store.get(path.stem)
            assert payload in (None, PAYLOAD)
        # counters exported to the registry match the attrs
        snap = obs_metrics.REGISTRY.snapshot()
        assert snap["gpuscout_store_corrupt_total"]["series"][
            'store="traces"'] >= store.corrupt - 1

    def test_eviction_under_race_converges_under_cap(self, tmp_path):
        store = FileStore(tmp_path, max_bytes=4 * 1040)

        def blast(tag):
            for i in range(40):
                store.put(f"{tag}{i}", PAYLOAD)

        threads = [threading.Thread(target=blast, args=(t,))
                   for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        # a final put triggers one more sweep with no concurrent
        # writers: the store must settle at or under its cap
        store.put("final", PAYLOAD)
        assert store.bytes_used() <= store.max_bytes
        assert store.evictions > 0
