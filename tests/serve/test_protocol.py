"""Wire-protocol properties: request validation, error mapping, and the
content-address sensitivity contract (any change to SASS text, launch
geometry, parameter values, or arch config must change the address)."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import LaunchConfig
from repro.gpu.config import GPUSpec
from repro.serve.protocol import (
    EXIT_USAGE,
    AnalyzeRequest,
    ProtocolError,
    arch_spec,
    content_address,
    http_status_for,
    spec_fingerprint,
    strip_volatile,
)

SASS = "IADD R0, R1, R2 ;"
CONFIG = LaunchConfig(grid=(4, 1), block=(128, 1))
SPEC = GPUSpec.small(1)


def addr(sass=SASS, config=CONFIG, params=None, spec=SPEC, extras=None):
    return content_address(sass, config, params, spec, extras)


class TestRequestValidation:
    def test_minimal_kernel_request(self):
        req = AnalyzeRequest.from_dict({"kernel": "sgemm:naive"})
        assert req.kernel == "sgemm:naive"
        assert req.arch == "v100" and not req.dry_run

    def test_round_trips_through_to_dict(self):
        req = AnalyzeRequest.from_dict(
            {"kernel": "heat:naive", "size": 128, "deadline": 1.5}
        )
        assert AnalyzeRequest.from_dict(req.to_dict()) == req

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},                                          # neither kernel nor sass
        {"kernel": "a", "sass": "b"},                # both
        {"kernel": "a", "bogus": 1},                 # unknown field
        {"kernel": "a", "size": "big"},              # wrong type
        {"kernel": "a", "size": True},               # bool is not an int here
        {"kernel": "a", "size": 0},                  # non-positive
        {"kernel": "a", "arch": "h100"},             # unknown arch
        {"sass": SASS},                              # sass needs dry_run
    ])
    def test_rejected(self, payload):
        with pytest.raises(ProtocolError):
            AnalyzeRequest.from_dict(payload)

    def test_arch_spec_unknown_is_usage_error(self):
        with pytest.raises(ProtocolError):
            arch_spec("h100")


class TestHttpMapping:
    @pytest.mark.parametrize("code,status", [
        (0, 200), (2, 400), (3, 400), (4, 400), (EXIT_USAGE, 400),
        (5, 500), (6, 500), (70, 500),
    ])
    def test_status(self, code, status):
        assert http_status_for(code) == status


class TestContentAddressSensitivity:
    """ISSUE acceptance: any change to any keyed input changes the key."""

    def test_deterministic(self):
        assert addr() == addr()

    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_any_sass_change(self, suffix):
        assert addr(sass=SASS + suffix) != addr()

    @given(st.tuples(st.integers(1, 64), st.integers(1, 8)),
           st.tuples(st.integers(1, 256), st.integers(1, 4)))
    @settings(max_examples=60, deadline=None)
    def test_any_geometry_change(self, grid, block):
        config = LaunchConfig(grid=grid, block=block)
        changed = (list(config.grid) != list(CONFIG.grid)
                   or list(config.block) != list(CONFIG.block))
        assert (addr(config=config) != addr()) == changed

    @given(st.dictionaries(
        st.sampled_from(["size", "iters", "alpha", "n"]),
        st.one_of(st.integers(-1000, 1000),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=8)),
        max_size=4,
    ))
    @settings(max_examples=60, deadline=None)
    def test_any_param_change(self, params):
        # one-directional on purpose: numerically-equal-but-differently-
        # typed params (256 vs 256.0) may key differently, which is a
        # safe false miss — a false HIT is what the property forbids
        base = {"size": 256}
        if params != base:
            assert addr(params=params) != addr(params=base)

    @given(st.sampled_from([
        "num_sms", "warp_size", "sector_bytes", "l1_line_bytes",
        "l2_line_bytes", "l2_bytes", "smem_banks", "lat_dram",
    ]), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_any_arch_field_change(self, field, bump):
        base = GPUSpec.small(1)
        mutated = dataclasses.replace(
            base, **{field: getattr(base, field) + bump}
        )
        assert addr(spec=mutated) != addr(spec=base)
        assert spec_fingerprint(mutated) != spec_fingerprint(base)

    def test_extras_and_schema_enter_the_address(self, monkeypatch):
        assert addr(extras={"fast": True}) != addr(extras={"fast": False})
        before = addr()
        import repro.core.jsonout as jo

        monkeypatch.setattr(jo, "SCHEMA_VERSION", jo.SCHEMA_VERSION + 1)
        assert addr() != before


class TestStripVolatile:
    def test_removes_only_volatile_fields(self):
        report = {
            "kernel": "k", "profile": {"spans": []}, "overhead": 0.1,
            "trace_path": "/tmp/t.json",
            "launch": {"grid": [4, 1], "duration_s": 0.5},
            "diagnostics": [
                {"stage": "s", "detail": {"elapsed_s": 1, "span": "x",
                                          "kept": True}},
            ],
            "findings": [{"title": "t"}],
        }
        out = strip_volatile(report)
        assert "profile" not in out and "overhead" not in out
        assert "trace_path" not in out
        assert "duration_s" not in out["launch"]
        assert out["diagnostics"][0]["detail"] == {"kept": True}
        # non-volatile content intact, input untouched
        assert out["findings"] == report["findings"]
        assert report["launch"]["duration_s"] == 0.5

    def test_output_is_json_clean(self):
        out = strip_volatile({"launch": {"grid": (4, 1)}})
        assert json.loads(json.dumps(out)) == out


class TestSchemaBumpInvalidation:
    """The v5 schema (stall blame) must orphan every L3 report cached
    under v4: same request, different content address, guaranteed miss."""

    def test_v4_addressed_entry_misses_under_v5(self, monkeypatch,
                                                tmp_path):
        from repro.serve.cache import ReportCache
        import repro.core.jsonout as jo

        assert jo.SCHEMA_VERSION >= 5  # blame landed in v5

        monkeypatch.setattr(jo, "SCHEMA_VERSION", 4)
        old_key = addr()
        cache = ReportCache(directory=tmp_path)
        cache.put(old_key, {"kernel": "k", "schema_version": 4})
        got, _ = cache.get(old_key)
        assert got is not None  # the v4 entry itself is retrievable

        monkeypatch.undo()
        new_key = addr()
        assert new_key != old_key
        got, corrupted = cache.get(new_key)
        assert got is None and not corrupted
        assert cache.misses > 0

    def test_v5_reports_carry_blame(self):
        """The field the bump paid for actually exists on the wire."""
        from repro.core.findings import Finding, Severity
        from repro.core.jsonout import _finding_dict

        d = _finding_dict(Finding(analysis="x", title="t",
                                  severity=Severity.INFO,
                                  message="m", recommendation="r"))
        assert d["blame"] == []
