"""Telemetry over HTTP: ``GET /metrics`` exposition, cross-worker
snapshot aggregation, enriched ``/healthz`` and ``/v1/stats``, and the
``--trace-dir`` per-request Chrome traces."""

import json
import urllib.error
import urllib.request

import pytest

from repro.gpu.trace_cache import configure_trace_cache
from repro.obs import metrics as obs_metrics
from repro.obs.chrometrace import validate_chrome_trace
from repro.serve import ScoutServer

KERNEL = "reduction:warp"


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    obs_metrics.arm(False)
    configure_trace_cache(None)


def post(srv, path, body, headers=None, timeout=300):
    req = urllib.request.Request(srv.url + path,
                                 data=json.dumps(body).encode(),
                                 headers=headers or {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp, json.loads(resp.read())


def get_text(srv, path):
    with urllib.request.urlopen(srv.url + path, timeout=30) as resp:
        return resp.status, resp.headers, resp.read().decode()


class TestMetricsEndpoint:
    def test_scrape_is_valid_and_covers_required_families(
            self, tmp_path):
        with ScoutServer(workers=0, cache_dir=str(tmp_path)).start() \
                as srv:
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            status, headers, text = get_text(srv, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert obs_metrics.validate_exposition(text) == []
        for family in ("gpuscout_http_requests_total",
                       "gpuscout_http_request_seconds",
                       "gpuscout_cache_hits_total",
                       "gpuscout_cache_misses_total",
                       "gpuscout_cache_entries",
                       "gpuscout_engine_stage_seconds",
                       "gpuscout_engine_runs_total"):
            assert f"# TYPE {family} " in text, family
        # all three cache tiers are present on one scrape
        for tier in ("l1", "l2", "l3"):
            assert f'gpuscout_cache_hits_total{{tier="{tier}"}}' \
                in text, tier

    def test_request_latency_histogram_counts_requests(self, tmp_path):
        with ScoutServer(workers=0, cache_dir=str(tmp_path)).start() \
                as srv:
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            _, _, text = get_text(srv, "/metrics")
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith('gpuscout_http_request_seconds_count'
                             '{endpoint="/v1/analyze"}'))
        assert float(line.rsplit(" ", 1)[1]) >= 1

    def test_disarmed_server_serves_empty_exposition(self, tmp_path):
        # the process-global registry may hold counts from earlier
        # tests; a disarmed server must neither add to it nor set
        # scrape-time gauges
        obs_metrics.REGISTRY.reset()
        with ScoutServer(workers=0, cache_dir=str(tmp_path),
                         metrics=False).start() as srv:
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            _, _, text = get_text(srv, "/metrics")
        assert obs_metrics.validate_exposition(text) == []
        for line in text.splitlines():
            if line.startswith("gpuscout_") and "_bucket" not in line:
                value = float(line.rsplit(" ", 1)[1])
                assert value == 0, line


class TestCrossWorkerAggregation:
    def test_counters_aggregate_across_two_workers(self, tmp_path):
        """The merge-protocol acceptance test: two forked workers each
        run distinct kernels; their engine counters must land in one
        scrape, and the pool must hold one snapshot per worker."""
        with ScoutServer(workers=2, cache_dir=str(tmp_path)).start() \
                as srv:
            _, body = post(srv, "/v1/batch", {"requests": [
                {"kernel": KERNEL, "size": 128},
                {"kernel": "histogram:shared", "size": 256},
                {"kernel": "sgemm:naive", "size": 32},
                {"kernel": "heat:naive", "size": 64},
            ]})
            assert body["ok"]
            workers = {r["worker"] for r in body["responses"]}
            assert workers == {0, 1}, \
                "batch must fan out to both workers"

            snaps = list(srv.pool._telemetry.values())
            stamped = set(srv.pool._telemetry)
            assert {w for w, _ in stamped} == {0, 1}

            per_worker = [
                snap["gpuscout_engine_runs_total"]["series"]
                ['mode="full"'] for snap in snaps]
            assert all(n >= 1 for n in per_worker), per_worker

            _, _, text = get_text(srv, "/metrics")
        assert obs_metrics.validate_exposition(text) == []
        for family in ("gpuscout_pool_inflight",
                       "gpuscout_pool_respawns_total"):
            assert f"# TYPE {family} " in text, family
        line = next(ln for ln in text.splitlines()
                    if ln.startswith(
                        'gpuscout_engine_runs_total{mode="full"}'))
        scraped = float(line.rsplit(" ", 1)[1])
        assert scraped == sum(per_worker), \
            "/metrics must equal the sum of per-worker counters"
        assert scraped >= 4

    def test_worker_snapshots_replace_not_double_count(self, tmp_path):
        """Cumulative worker snapshots REPLACE the pool's stored copy
        per (worker, generation) — running more work must not double
        previously-merged counts."""
        with ScoutServer(workers=1, cache_dir=str(tmp_path)).start() \
                as srv:
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            merged1 = srv.pool.telemetry()
            runs1 = merged1["gpuscout_engine_runs_total"]["series"][
                'mode="full"']
            post(srv, "/v1/analyze",
                 {"kernel": "histogram:shared", "size": 256})
            merged2 = srv.pool.telemetry()
            runs2 = merged2["gpuscout_engine_runs_total"]["series"][
                'mode="full"']
        assert (runs1, runs2) == (1, 2)


class TestHealthAndStats:
    def test_healthz_pooled_reports_worker_generations(self, tmp_path):
        with ScoutServer(workers=2, cache_dir=str(tmp_path)).start() \
                as srv:
            _, _, raw = get_text(srv, "/healthz")
        body = json.loads(raw)
        assert body["ok"] is True and body["mode"] == "pooled"
        pool = body["pool"]
        assert pool["workers"] == 2 and pool["alive"] == 2
        assert pool["generations"] == {"0": 0, "1": 0}
        assert pool["last_respawn"] is None
        assert pool["respawns"] == 0

    def test_healthz_reports_respawn_reason(self, tmp_path):
        with ScoutServer(workers=1, cache_dir=str(tmp_path)).start() \
                as srv:
            victim = srv.pool._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            try:
                post(srv, "/v1/analyze", {"kernel": KERNEL,
                                          "size": 128})
            except urllib.error.HTTPError:
                pass  # single-worker ring: the request may fail, but
                # dispatch must still have respawned the worker
            _, _, raw = get_text(srv, "/healthz")
        pool = json.loads(raw)["pool"]
        assert pool["respawns"] >= 1
        assert pool["generations"]["0"] >= 1
        assert pool["last_respawn"]["worker"] == 0
        assert "terminated" in pool["last_respawn"]["reason"]

    def test_stats_telemetry_quantiles_and_occupancy(self, tmp_path):
        with ScoutServer(workers=0, cache_dir=str(tmp_path)).start() \
                as srv:
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            _, _, raw = get_text(srv, "/v1/stats")
        stats = json.loads(raw)
        occ = stats["occupancy"]
        assert occ["l3"]["entries"] >= 1
        assert occ["l3"]["bytes"] > 0
        assert occ["l2"]["entries"] >= 0
        tele = stats["telemetry"]
        hist = tele["histograms"][
            'gpuscout_http_request_seconds{endpoint="/v1/analyze"}']
        assert hist["count"] >= 2
        assert hist["p50"] is not None and hist["p99"] is not None
        assert hist["p50"] <= hist["p99"]

    def test_request_id_header_echoed(self, tmp_path):
        with ScoutServer(workers=0, cache_dir=str(tmp_path)).start() \
                as srv:
            resp, body = post(srv, "/v1/analyze",
                              {"kernel": KERNEL, "size": 128},
                              headers={"X-Request-Id": "my-rid-42"})
        assert resp.headers["X-Request-Id"] == "my-rid-42"
        assert body["request_id"] == "my-rid-42"


class TestTraceDir:
    def test_pooled_request_yields_stitched_chrome_trace(
            self, tmp_path):
        """The ISSUE acceptance test: one ``/v1/analyze`` against a
        pooled server with ``--trace-dir`` yields exactly one Chrome
        trace holding server-side spans (queue, dispatch, cache probe)
        AND worker-side engine spans under one request ID, and it
        passes ``validate_chrome_trace``."""
        trace_dir = tmp_path / "traces"
        with ScoutServer(workers=1, cache_dir=str(tmp_path / "cache"),
                         trace_dir=str(trace_dir)).start() as srv:
            resp, body = post(srv, "/v1/analyze",
                              {"kernel": KERNEL, "size": 128})
        rid = body["request_id"]
        paths = list(trace_dir.glob("*.json"))
        assert [p.stem for p in paths] == [rid]
        data = json.loads(paths[0].read_text())
        assert validate_chrome_trace(data) == []
        assert data["metadata"]["request_id"] == rid
        assert data["metadata"]["kernel"]  # resolved engine name

        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert all(e["args"]["request_id"] == rid for e in slices)
        server_names = {e["name"] for e in slices if e["pid"] == 0}
        assert {"validate", "cache:probe", "queue",
                "dispatch"} <= server_names
        worker_names = {e["name"] for e in slices if e["pid"] != 0}
        assert worker_names, "worker engine spans must be stitched in"
        assert any("launch" in n or "parse" in n
                   for n in worker_names), worker_names
        procs = {e["args"]["name"] for e in data["traceEvents"]
                 if e["name"] == "process_name"}
        assert procs == {"server", "worker 0"}

    def test_inline_trace_has_engine_process(self, tmp_path):
        trace_dir = tmp_path / "traces"
        with ScoutServer(workers=0, cache_dir=str(tmp_path / "cache"),
                         trace_dir=str(trace_dir)).start() as srv:
            _, body = post(srv, "/v1/analyze",
                           {"kernel": KERNEL, "size": 128})
        data = json.loads(
            (trace_dir / f"{body['request_id']}.json").read_text())
        assert validate_chrome_trace(data) == []
        procs = {e["args"]["name"] for e in data["traceEvents"]
                 if e["name"] == "process_name"}
        assert "engine (inline)" in procs

    def test_warm_hits_trace_without_worker_spans(self, tmp_path):
        trace_dir = tmp_path / "traces"
        with ScoutServer(workers=0, cache_dir=str(tmp_path / "cache"),
                         trace_dir=str(trace_dir)).start() as srv:
            post(srv, "/v1/analyze", {"kernel": KERNEL, "size": 128})
            _, warm = post(srv, "/v1/analyze",
                           {"kernel": KERNEL, "size": 128})
        assert warm["cache"] == "l3"
        data = json.loads(
            (trace_dir / f"{warm['request_id']}.json").read_text())
        assert validate_chrome_trace(data) == []
        # a cached answer must not stitch in the ORIGINAL compute's
        # stale engine spans
        assert {e["pid"] for e in data["traceEvents"]} == {0}
