"""Documentation consistency tests: generated docs in sync, README
claims match reality, every public module documented."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestGeneratedDocs:
    def test_metrics_doc_in_sync(self):
        import sys

        sys.path.insert(0, str(ROOT / "tools"))
        try:
            from gen_metric_docs import build
        finally:
            sys.path.pop(0)
        on_disk = (ROOT / "docs" / "metrics.md").read_text()
        assert on_disk == build(), (
            "docs/metrics.md is stale; run tools/gen_metric_docs.py"
        )

    def test_metrics_doc_covers_registry(self):
        from repro.metrics.names import METRIC_REGISTRY

        text = (ROOT / "docs" / "metrics.md").read_text()
        for name in METRIC_REGISTRY:
            assert f"`{name}`" in text

    def test_stall_reasons_documented(self):
        from repro.gpu.stalls import StallReason

        text = (ROOT / "docs" / "metrics.md").read_text()
        for reason in StallReason:
            assert reason.cupti_name in text


class TestReadmeClaims:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_cli_commands_exist(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        for cmd in ("analyze", "disasm", "list-kernels", "compare",
                    "explain"):
            assert cmd in sub.choices

    def test_example_files_exist(self, readme):
        for m in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / m.group(1)).exists(), m.group(0)

    def test_doc_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (ROOT / name).exists()
        for name in ("architecture.md", "writing-kernels.md",
                     "simulator.md", "metrics.md"):
            assert (ROOT / "docs" / name).exists()


class TestDocstringCoverage:
    def test_public_modules_have_docstrings(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_have_docstrings(self):
        import inspect

        from repro import core, cudalite, gpu, metrics, ptx, sampling, sass

        missing = []
        for pkg in (core, cudalite, gpu, metrics, ptx, sampling, sass):
            for name in getattr(pkg, "__all__", []):
                obj = getattr(pkg, name)
                if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                    missing.append(f"{pkg.__name__}.{name}")
        assert not missing, f"classes without docstrings: {missing}"
