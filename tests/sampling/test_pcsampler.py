"""PC sampler and line-profile aggregation tests."""

import pytest

from repro.gpu.stalls import StallReason
from repro.sampling import PCSampler, build_line_profiles
from repro.sampling.pcsampler import PCSample, PCSamplingResult


class TestSampler:
    def test_sample_counts_proportional(self, saxpy_launch):
        sampler = PCSampler(period_cycles=64)
        result = sampler.sample(saxpy_launch)
        assert result.total_samples > 0
        # expectation: total stall cycles / period, +-1 per entry
        total_cycles = sum(saxpy_launch.counters.stall_cycles.values())
        assert result.total_samples == pytest.approx(
            total_cycles / 64, abs=len(saxpy_launch.counters.stall_cycles)
        )

    def test_larger_period_fewer_samples(self, saxpy_launch):
        fine = PCSampler(period_cycles=32).sample(saxpy_launch)
        coarse = PCSampler(period_cycles=1024).sample(saxpy_launch)
        assert coarse.total_samples < fine.total_samples

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PCSampler(period_cycles=0)

    def test_samples_have_lines(self, saxpy_launch):
        result = PCSampler(period_cycles=64).sample(saxpy_launch)
        lined = [s for s in result.samples if s.line is not None]
        assert lined  # line tables attached

    def test_shares_sum_to_one(self, saxpy_launch):
        result = PCSampler(period_cycles=64).sample(saxpy_launch)
        total = sum(
            result.stall_share(r) for r in StallReason
            if r is not StallReason.SELECTED
        )
        assert total == pytest.approx(1.0)

    def test_dominant_reason(self, saxpy_launch):
        result = PCSampler(period_cycles=64).sample(saxpy_launch)
        # the FADD consuming the loads should stall on long scoreboard
        by_reason = result.by_reason()
        stall_only = {k: v for k, v in by_reason.items()
                      if k is not StallReason.SELECTED}
        assert max(stall_only, key=lambda k: stall_only[k]) is \
            StallReason.LONG_SCOREBOARD

    def test_overhead_grows_with_duration(self, saxpy_launch):
        sampler = PCSampler()
        base = sampler.overhead_seconds(saxpy_launch)
        assert base > 0

    def test_at_pc_and_at_line(self, saxpy_launch):
        result = PCSampler(period_cycles=64).sample(saxpy_launch)
        s = next(s for s in result.samples if s.line is not None)
        assert result.at_pc(s.pc)
        assert result.at_line(s.line)


class TestLineProfiles:
    def test_aggregation(self):
        sampling = PCSamplingResult(
            kernel="k", period_cycles=64, total_samples=30,
            samples=[
                PCSample(0, 5, StallReason.LONG_SCOREBOARD, 10),
                PCSample(1, 5, StallReason.LG_THROTTLE, 5),
                PCSample(2, 7, StallReason.WAIT, 10),
                PCSample(3, None, StallReason.WAIT, 5),  # dropped
            ],
        )
        profiles = build_line_profiles(sampling)
        assert set(profiles) == {5, 7}
        assert profiles[5].total_samples == 15
        assert profiles[5].dominant() is StallReason.LONG_SCOREBOARD
        assert profiles[5].share(StallReason.LG_THROTTLE) == pytest.approx(1 / 3)

    def test_selected_excluded_from_share(self):
        sampling = PCSamplingResult(
            kernel="k", period_cycles=64, total_samples=20,
            samples=[
                PCSample(0, 1, StallReason.SELECTED, 10),
                PCSample(0, 1, StallReason.BARRIER, 10),
            ],
        )
        prof = build_line_profiles(sampling)[1]
        assert prof.share(StallReason.BARRIER) == 1.0
        assert prof.dominant() is StallReason.BARRIER

    def test_empty_profile(self):
        sampling = PCSamplingResult(kernel="k", period_cycles=64,
                                    total_samples=0, samples=[])
        assert build_line_profiles(sampling) == {}

    def test_share_zero_when_no_stalls(self):
        sampling = PCSamplingResult(
            kernel="k", period_cycles=64, total_samples=5,
            samples=[PCSample(0, 1, StallReason.SELECTED, 5)],
        )
        prof = build_line_profiles(sampling)[1]
        assert prof.share(StallReason.WAIT) == 0.0
        assert prof.dominant() is None
