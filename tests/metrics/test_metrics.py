"""Metric registry, derivation and the ncu facade."""

import math

import pytest

from repro.errors import MetricError
from repro.metrics import (
    METRIC_REGISTRY,
    NsightComputeCLI,
    derive_metric,
    describe_metric,
)
from repro.metrics.names import METRIC_SETS


class TestRegistry:
    def test_every_metric_derivable(self, saxpy_launch):
        for name in METRIC_REGISTRY:
            value = derive_metric(name, saxpy_launch)
            assert isinstance(value, float)
            assert not math.isnan(value)

    def test_metric_sets_reference_known_names(self):
        for set_name, names in METRIC_SETS.items():
            for name in names:
                assert name in METRIC_REGISTRY, (set_name, name)

    def test_unknown_metric_raises(self, saxpy_launch):
        with pytest.raises(MetricError):
            derive_metric("sm__made_up.sum", saxpy_launch)

    def test_describe(self):
        assert describe_metric("launch__registers_per_thread")
        assert describe_metric("nope") == ""


class TestDerivations:
    def test_registers_per_thread(self, saxpy_launch):
        assert derive_metric("launch__registers_per_thread", saxpy_launch) \
            == saxpy_launch.compiled.program.registers_per_thread

    def test_occupancy_percent_range(self, saxpy_launch):
        v = derive_metric(
            "sm__warps_active.avg.pct_of_peak_sustained_active", saxpy_launch
        )
        assert 0 < v <= 100

    def test_bytes_are_sector_multiples(self, saxpy_launch):
        sectors = derive_metric(
            "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum", saxpy_launch
        )
        bytes_ = derive_metric(
            "l1tex__t_bytes_pipe_lsu_mem_global_op_ld.sum", saxpy_launch
        )
        assert bytes_ == sectors * 32

    def test_hit_plus_miss_is_100(self, saxpy_launch):
        hit = derive_metric(
            "l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct",
            saxpy_launch,
        )
        miss = derive_metric("derived__l1_global_load_miss_pct", saxpy_launch)
        assert hit + miss == pytest.approx(100.0)

    def test_device_counters_scale_with_sms(self, saxpy):
        import numpy as np

        from repro.gpu import GPUSpec, LaunchConfig, Simulator

        n = 1024
        args = {
            "x": np.zeros(n, np.float32),
            "y": np.zeros(n, np.float32),
            "a": 1.0,
            "n": n,
        }
        cfg = LaunchConfig(grid=(8, 1), block=(128, 1))
        one = Simulator(GPUSpec.small(1)).launch(saxpy, cfg, args)
        four = Simulator(GPUSpec.small(4)).launch(saxpy, cfg, args)
        # device-level totals agree regardless of how many SMs simulate
        assert derive_metric("smsp__inst_executed_op_global_ld.sum", four) \
            == derive_metric("smsp__inst_executed_op_global_ld.sum", one)

    def test_no_shared_usage_zero(self, saxpy_launch):
        assert derive_metric("derived__smem_ld_bank_conflict_ways",
                             saxpy_launch) == 0.0
        assert derive_metric("smsp__inst_executed_op_shared_ld.sum",
                             saxpy_launch) == 0.0

    def test_conversion_count_zero_for_saxpy(self, saxpy_launch):
        assert derive_metric("smsp__sass_inst_executed_op_conversion.sum",
                             saxpy_launch) == 0.0

    def test_l2_local_queries_formula(self, saxpy_launch):
        # no spills in saxpy -> zero local traffic
        assert derive_metric("derived__l2_queries_due_to_local_memory",
                             saxpy_launch) == 0.0


class TestNcuFacade:
    def test_collect(self, saxpy_launch):
        ncu = NsightComputeCLI()
        report = ncu.collect(saxpy_launch, METRIC_SETS["base"])
        assert report.kernel == "saxpy"
        assert set(report.values) == set(METRIC_SETS["base"])
        assert report.collection_seconds > 0
        assert report.replay_passes == math.ceil(len(METRIC_SETS["base"]) / 4)

    def test_more_metrics_more_passes(self, saxpy_launch):
        ncu = NsightComputeCLI()
        few = ncu.collect(saxpy_launch, list(METRIC_REGISTRY)[:4])
        many = ncu.collect(saxpy_launch, list(METRIC_REGISTRY))
        assert many.replay_passes > few.replay_passes
        assert many.collection_seconds > few.collection_seconds

    def test_unknown_metric_rejected(self, saxpy_launch):
        with pytest.raises(MetricError):
            NsightComputeCLI().collect(saxpy_launch, ["bogus.metric"])

    def test_getitem_and_get(self, saxpy_launch):
        report = NsightComputeCLI().collect(
            saxpy_launch, ["launch__registers_per_thread"]
        )
        assert report["launch__registers_per_thread"] > 0
        assert report.get("missing", -1.0) == -1.0

    def test_overhead_scales_with_kernel_time(self, saxpy_launch):
        cheap = NsightComputeCLI(replay_overhead_factor=1.0, per_pass_setup_s=0.0)
        costly = NsightComputeCLI(replay_overhead_factor=100.0,
                                  per_pass_setup_s=0.0)
        names = ["launch__registers_per_thread"]
        assert costly.collect(saxpy_launch, names).collection_seconds > \
            cheap.collect(saxpy_launch, names).collection_seconds
