"""Exception hierarchy and Diagnostic record tests."""

import pytest

import repro.errors as errors_mod
from repro.errors import (
    AnalysisError,
    CompileError,
    Diagnostic,
    LaunchError,
    ReproError,
    ResourceLimitError,
    SassSyntaxError,
    SimulationError,
    SimulationTimeout,
    diagnostic_from_exception,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        SassSyntaxError, CompileError, LaunchError, SimulationError,
        ResourceLimitError, AnalysisError, SimulationTimeout,
    ])
    def test_everything_is_a_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_simulation_timeout_dual_parentage(self):
        # catchable both as "the simulation failed" and as "a resource
        # limit tripped" — the degradation ladder uses the former, the
        # validate deadline the latter
        exc = SimulationTimeout("over budget", limit="cycles")
        assert isinstance(exc, SimulationError)
        assert isinstance(exc, ResourceLimitError)
        assert exc.limit == "cycles"
        assert "over budget" in str(exc)

    def test_all_is_complete(self):
        public = {
            name for name, obj in vars(errors_mod).items()
            if not name.startswith("_")
            and getattr(obj, "__module__", None) == "repro.errors"
        }
        assert public == set(errors_mod.__all__)

    def test_all_names_exist(self):
        for name in errors_mod.__all__:
            assert hasattr(errors_mod, name), name


class TestDiagnostic:
    def test_str_names_stage_site_and_error(self):
        d = Diagnostic(stage="parse", site="parser.instruction",
                       error="SassSyntaxError", message="bad operand",
                       lineno=7)
        text = str(d)
        assert "parse" in text
        assert "parser.instruction" in text
        assert "SassSyntaxError" in text
        assert "7" in text

    def test_to_dict_omits_empty_fields(self):
        d = Diagnostic(stage="launch", site="simulator.launch",
                       error="SimulationError", message="boom")
        data = d.to_dict()
        assert data["stage"] == "launch"
        assert "traceback" not in data
        assert "lineno" not in data
        assert "detail" not in data

    def test_to_dict_keeps_populated_fields(self):
        d = Diagnostic(stage="static", site="engine.analysis",
                       error="RuntimeError", message="x",
                       traceback="tb", lineno=3, detail={"analysis": "a"})
        data = d.to_dict()
        assert data["traceback"] == "tb"
        assert data["lineno"] == 3
        assert data["detail"] == {"analysis": "a"}

    def test_from_exception(self):
        try:
            raise SimulationError("deadlock")
        except SimulationError as exc:
            d = diagnostic_from_exception("launch", "simulator.launch", exc)
        assert d.error == "SimulationError"
        assert d.message == "deadlock"
        assert "deadlock" in d.traceback

    def test_from_exception_without_traceback(self):
        d = diagnostic_from_exception(
            "parse", "parser.instruction", ValueError("nope"),
            with_traceback=False,
        )
        assert d.traceback == ""
