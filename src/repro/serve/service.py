"""The per-process compute side of the analysis service.

A :class:`KernelRunner` lives in every service worker (and in the
server process itself when running inline, ``--workers 0``).  It owns
the process-local cache tiers and walks a submission down them:

1. resolve the kernel (built-in specs are compiled once per process and
   memoised — compilation is part of the static cost);
2. derive the content address; a shared-disk **L3** hit returns the
   stored report JSON without touching the engine;
3. an **L1** hit (static artifacts per SASS hash + geometry) skips
   parse/analyses/affine and goes straight to the dynamic stages;
4. the dynamic stages themselves hit **L2** (the content-addressed
   effect-trace cache, :mod:`repro.gpu.trace_cache`) so repeat
   simulations are replay-only;
5. a full miss runs the one-shot pipeline and populates every tier.

Per-request failures never escape as exceptions: :func:`error_envelope`
maps them to the CLI's stage codes (parse=2 … internal=70, usage=64)
inside a JSON body, and the engine's own fault boundaries mean a
poisoned submission degrades *that response* while the process lives
on.  A per-request ``deadline`` becomes a
:class:`~repro.gpu.budget.SimBudget` wall-clock guard, degrading the
run down the usual ladder on expiry — exactly the CLI's ``--deadline``
semantics.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Optional

from repro.errors import Diagnostic
from repro.serve.cache import ReportCache, StaticCache
from repro.serve.protocol import (
    EXIT_USAGE,
    AnalyzeRequest,
    ProtocolError,
    arch_spec,
    content_address,
    static_key,
)

__all__ = ["KernelRunner", "corruption_diagnostic", "error_envelope"]

_MB = 1024 * 1024


def error_envelope(exc: BaseException) -> dict:
    """The JSON error body for a failed submission: the CLI's stage
    code, the exception class, and the message."""
    from repro.cli import exit_code_for

    if isinstance(exc, ProtocolError):
        code = EXIT_USAGE
    elif isinstance(exc, SystemExit):
        # resolve_kernel raises SystemExit for unknown specs — in
        # server mode that is a usage error, not a shutdown
        exc = ProtocolError(str(exc))
        code = EXIT_USAGE
    else:
        code = exit_code_for(exc)
    return {
        "ok": False,
        "code": code,
        "error": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
    }


def corruption_diagnostic(tier: str) -> dict:
    """The diagnostic attached to a response that was recomputed
    because a cached entry failed its integrity check."""
    return Diagnostic(
        stage="serve",
        site="serve.cache_read",
        error="",
        message=f"corrupted {tier} cache entry discarded; "
                "result recomputed",
        severity="warning",
    ).to_dict()


class KernelRunner:
    """Process-local analysis engine with warm L1/L2/L3 tiers."""

    def __init__(self, cache_dir: Optional[str] = None,
                 fast: Optional[bool] = None,
                 deadline: Optional[float] = None,
                 worker_id: Optional[int] = None,
                 static_capacity: int = 128,
                 cache_mb: int = 256):
        self.fast = fast
        self.deadline = deadline
        self.worker_id = worker_id
        self.static = StaticCache(capacity=static_capacity)
        #: resolved built-in kernels: (spec, size, iters) -> tuple;
        #: reuse keeps ``id(compiled)`` stable, which is what makes the
        #: in-memory L2 tier hit across repeat submissions
        self._resolved: OrderedDict = OrderedDict()
        self._resolved_capacity = 64
        self._scouts: dict = {}
        self._lock = threading.Lock()
        self.reports: Optional[ReportCache] = None
        if cache_dir is not None:
            from repro.gpu.trace_cache import configure_trace_cache

            configure_trace_cache(
                os.path.join(cache_dir, "traces"),
                max_store_bytes=cache_mb * _MB,
            )
            self.reports = ReportCache(
                os.path.join(cache_dir, "reports"),
                max_disk_bytes=cache_mb * _MB,
            )
        self.cold = 0
        self.l1_hits = 0
        self.l3_hits = 0

    # ------------------------------------------------------------------
    def run(self, payload: dict) -> dict:
        """Serve one submission dict; always returns an envelope."""
        t0 = time.perf_counter()
        try:
            req = AnalyzeRequest.from_dict(payload)
            env = self._run(req)
        except BaseException as exc:  # noqa: BLE001 — boundary
            env = error_envelope(exc)
        env["elapsed_s"] = round(time.perf_counter() - t0, 6)
        if self.worker_id is not None:
            env["worker"] = self.worker_id
        return env

    # ------------------------------------------------------------------
    def _resolve(self, req: AnalyzeRequest):
        """(kernel-or-sass, config, args, textures, sass_text) for a
        validated request; built-in kernels are compiled once per
        process."""
        if req.sass is not None:
            return req.sass, None, None, {}, req.sass
        from repro.cli import resolve_kernel

        key = (req.kernel, req.size, req.compute_iterations)
        with self._lock:
            hit = self._resolved.get(key)
            if hit is not None:
                self._resolved.move_to_end(key)
        if hit is None:
            hit = resolve_kernel(req.kernel, req.size,
                                 req.compute_iterations)
            with self._lock:
                self._resolved[key] = hit
                while len(self._resolved) > self._resolved_capacity:
                    self._resolved.popitem(last=False)
        ck, config, args, textures = hit
        return ck, config, args, textures, ck.sass_text

    def _scout(self, req: AnalyzeRequest):
        key = (req.arch, req.extended)
        scout = self._scouts.get(key)
        if scout is None:
            from repro.core import GPUscout, all_analyses

            scout = GPUscout(
                analyses=all_analyses() if req.extended else None,
                spec=arch_spec(req.arch),
                fast=self.fast,
            )
            self._scouts[key] = scout
        return scout

    # ------------------------------------------------------------------
    def _run(self, req: AnalyzeRequest) -> dict:
        from repro.core.jsonout import report_to_dict
        from repro.gpu.budget import SimBudget
        from repro.gpu.simulator import resolve_fast_mode

        kernel, config, args, textures, sass_text = self._resolve(req)
        spec = arch_spec(req.arch)
        address = content_address(
            sass_text, config,
            params={
                "spec": req.kernel, "size": req.size,
                "iters": req.compute_iterations,
                "max_blocks": req.max_blocks,
            },
            spec=spec,
            extras={
                "dry_run": req.dry_run, "extended": req.extended,
                "fast": resolve_fast_mode(self.fast),
            },
        )

        corrupted = False
        if self.reports is not None:
            cached, corrupted = self.reports.get(address)
            if cached is not None:
                self.l3_hits += 1
                return {"ok": True, "code": 0, "cache": "l3",
                        "address": address, "kernel": cached.get("kernel"),
                        "cacheable": True, "report": cached}

        scout = self._scout(req)
        skey = static_key(sass_text, config, req.extended)
        art = self.static.get(skey)
        cache_tier = "l1" if art is not None else "cold"
        deadline = req.deadline if req.deadline is not None \
            else self.deadline
        budget = SimBudget(max_wall_seconds=deadline) \
            if deadline is not None else None

        # one request computes at a time per process: the engine and
        # the global trace cache are not re-entrant (workers provide
        # the parallelism; inline mode serialises here)
        with self._lock:
            if art is None:
                art = scout.analyze_static(kernel, config)
                self.static.put(skey, art)
            if req.sass is not None or req.dry_run:
                report = scout.analyze(kernel, config=config,
                                       dry_run=True, static=art)
            else:
                report = scout.analyze(
                    kernel, config, args, textures=textures,
                    max_blocks=req.max_blocks, budget=budget,
                    static=art,
                )
        if cache_tier == "l1":
            self.l1_hits += 1
        else:
            self.cold += 1

        body = report_to_dict(report)
        if corrupted:
            body.setdefault("diagnostics", []).append(
                corruption_diagnostic("report"))
        # partial (degraded) results are served but never cached: a
        # transient fault or an expired deadline must not become the
        # canonical answer for this content address
        cacheable = not report.degraded and not corrupted
        if cacheable and self.reports is not None:
            self.reports.put(address, body)
        return {"ok": True, "code": 0, "cache": cache_tier,
                "address": address, "kernel": report.kernel,
                "cacheable": cacheable, "report": body}

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        from repro.gpu.trace_cache import trace_cache

        out = {
            "cold": self.cold,
            "l1_hits": self.l1_hits,
            "l3_hits": self.l3_hits,
            "static": self.static.stats(),
        }
        if self.reports is not None:
            out["reports"] = self.reports.stats()
        tc = trace_cache()
        if tc is not None:
            out["traces"] = tc.stats()
        return out
