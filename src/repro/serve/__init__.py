"""Analysis-as-a-service: the long-lived ``gpuscout serve`` stack.

The one-shot CLI re-parses SASS, re-runs the static passes and
re-simulates on every invocation; this package turns the engine into a
resident service so repeat queries — the common case while a developer
iterates on a kernel — are answered from a content-addressed result
cache in milliseconds, and batches fan out across a worker pool.

Layers (DESIGN.md §9):

* :mod:`repro.serve.protocol` — the HTTP/JSON request schema over the
  existing schema-v4 report JSON, content-address derivation, and the
  CLI exit-code ↔ HTTP status mapping;
* :mod:`repro.serve.cache` — the L1 (static artifacts) and L3 (full
  report JSON) tiers; L2 (effect traces) lives in
  :mod:`repro.gpu.trace_cache`;
* :mod:`repro.serve.service` — the per-process compute engine gluing
  the cache tiers to :class:`~repro.core.engine.GPUscout`;
* :mod:`repro.serve.pool` — the ``multiprocessing`` worker pool with
  arch-config shard affinity and dead-worker retry;
* :mod:`repro.serve.server` — the stdlib ``ThreadingHTTPServer``
  front end (``POST /v1/analyze``, ``POST /v1/batch``,
  ``GET /v1/stats``, ``GET /healthz``).
"""

from repro.serve.protocol import (
    AnalyzeRequest,
    ProtocolError,
    content_address,
    http_status_for,
    strip_volatile,
)
from repro.serve.server import ScoutServer

__all__ = [
    "AnalyzeRequest",
    "ProtocolError",
    "ScoutServer",
    "content_address",
    "http_status_for",
    "strip_volatile",
]
