"""L1 and L3 tiers of the multi-level result cache.

Every tier is keyed by content (see :mod:`repro.serve.protocol`), so
invalidation is structural — a changed input derives a different key
and simply misses; stale entries age out of the size-capped LRUs.

* **L1 — static artifacts** (:class:`StaticCache`): per (SASS hash,
  geometry, analysis set), the parsed program, CFG/affine context and
  pristine findings from :meth:`~repro.core.engine.GPUscout.analyze_static`.
  In-memory only (the artifacts hold live ``Program``/CFG objects) and
  per-process: each service worker warms its own.
* **L2 — effect traces** lives in :mod:`repro.gpu.trace_cache` (shared
  disk tier across workers).
* **L3 — full reports** (:class:`ReportCache`): the schema-v4 report
  JSON per full content address, memory-first with a disk tier behind
  it (atomic-rename writes, CRC-checked reads via
  :class:`~repro.gpu.trace_cache.FileStore`).  A warm L3 hit is one
  dict lookup or one file read — no engine involvement at all.

A corrupted disk entry (failed CRC, or an injected ``serve.cache_read``
fault) is deleted and reported so the service can attach a
:class:`~repro.errors.Diagnostic` to the recomputed response.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Optional

from repro.gpu.trace_cache import FileStore
from repro.obs.metrics import REGISTRY as _METRICS

__all__ = ["ReportCache", "StaticCache"]

_MB = 1024 * 1024

# telemetry series for the L1 (static artifacts) and L3 (full report)
# tiers; no-ops while the registry is disarmed
_L1_HITS = _METRICS.counter(
    "gpuscout_cache_hits_total", "Cache hits by tier", tier="l1")
_L1_MISSES = _METRICS.counter(
    "gpuscout_cache_misses_total", "Cache misses by tier", tier="l1")
_L1_EVICTIONS = _METRICS.counter(
    "gpuscout_cache_evictions_total",
    "Cache entries evicted by size caps", tier="l1")
_L3_HITS = _METRICS.counter(
    "gpuscout_cache_hits_total", "Cache hits by tier", tier="l3")
_L3_MISSES = _METRICS.counter(
    "gpuscout_cache_misses_total", "Cache misses by tier", tier="l3")
_L3_DISK_HITS = _METRICS.counter(
    "gpuscout_cache_disk_hits_total",
    "Cache hits served from the shared disk tier", tier="l3")
_L3_EVICTIONS = _METRICS.counter(
    "gpuscout_cache_evictions_total",
    "Cache entries evicted by size caps", tier="l3")


class StaticCache:
    """Entry-capped LRU of :class:`~repro.core.engine.StaticArtifacts`."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        with self._lock:
            art = self._entries.get(key)
            if art is None:
                self.misses += 1
                _L1_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _L1_HITS.inc()
            return art

    def put(self, key: str, artifacts) -> None:
        with self._lock:
            self._entries[key] = artifacts
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                _L1_EVICTIONS.inc()

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ReportCache:
    """Memory + disk LRU of full report JSON, keyed by content address.

    ``get`` returns ``(report_dict | None, corrupted)`` — the flag is
    ``True`` when a disk entry existed but failed its integrity check
    and was discarded, so the caller can diagnose the forced recompute.
    """

    def __init__(self, directory=None, capacity: int = 256,
                 max_disk_bytes: int = 256 * _MB):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.store: Optional[FileStore] = (
            FileStore(directory, max_bytes=max_disk_bytes,
                      name="reports")
            if directory is not None else None
        )
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        #: bytes held by the in-memory tier (sum of blob lengths)
        self.bytes = 0

    def get(self, key: str) -> tuple[Optional[dict], bool]:
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _L3_HITS.inc()
                # deep copy: callers must not mutate the cached body
                return json.loads(cached), False
        if self.store is not None:
            payload, corrupted = self.store.get(key)
            if payload is not None:
                try:
                    report = json.loads(payload.decode())
                except Exception:
                    self.store.delete(key)
                    self.store.note_corrupt()
                    self.misses += 1
                    _L3_MISSES.inc()
                    return None, True
                with self._lock:
                    self._remember(key, payload.decode())
                self.hits += 1
                self.disk_hits += 1
                _L3_HITS.inc()
                _L3_DISK_HITS.inc()
                return report, False
            if corrupted:
                self.misses += 1
                _L3_MISSES.inc()
                return None, True
        self.misses += 1
        _L3_MISSES.inc()
        return None, False

    def put(self, key: str, report: dict) -> None:
        blob = json.dumps(report, sort_keys=True)
        with self._lock:
            self._remember(key, blob)
        if self.store is not None:
            self.store.put(key, blob.encode())

    def _remember(self, key: str, blob: str) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= len(old)
        self._entries[key] = blob
        self.bytes += len(blob)
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.bytes -= len(evicted)
            self.evictions += 1
            _L3_EVICTIONS.inc()

    def stats(self) -> dict:
        out = {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        if self.store is not None:
            out["store"] = self.store.stats()
        return out
