"""The stdlib HTTP/JSON front end: ``gpuscout serve``.

Endpoints (JSON unless noted):

* ``POST /v1/analyze`` — one submission (see
  :class:`~repro.serve.protocol.AnalyzeRequest`); responds with the
  envelope ``{"ok", "code", "cache", "report", "request_id", ...}``.
  Failures map the CLI stage codes onto HTTP statuses
  (:func:`~repro.serve.protocol.http_status_for`).
* ``POST /v1/batch`` — ``{"requests": [...]}``; members are fanned out
  across the worker pool (or served sequentially inline) and the
  responses returned in submission order.
* ``GET /v1/stats`` — cache hit/miss counters per tier, pool health,
  and (when telemetry is armed) histogram quantiles plus per-tier byte
  occupancy.
* ``GET /metrics`` — the merged metrics registry (server process plus
  every worker generation) in Prometheus text exposition format.
* ``GET /healthz`` — liveness plus pool health: worker generation
  counters and the last respawn reason, so orchestration can tell
  "healthy" from "respawn-looping".

The server process keeps the **L3 front cache**: a memo from request
fingerprints to content addresses plus the report store, so a repeat
submission is answered with one dict lookup (or one CRC-checked file
read) without waking any worker.  Batch members that miss are
dispatched concurrently; identical concurrent submissions coalesce
onto one computation (single-flight), and members sharing a program
land in the same worker's warm L1 via shard-ring affinity.

**Request tracing.**  Every request gets an ID (``X-Request-Id``
header, or minted) that is echoed in the response envelope and header,
attached to latency-histogram buckets as an exemplar, and propagated
through the fork boundary into the worker.  With ``--trace-dir`` the
server additionally times its own side (validate, cache probe, queue
wait, dispatch), stitches the worker's engine spans back in, and drops
one Chrome trace per request — open it in Perfetto to see where a slow
request spent its time.
"""

from __future__ import annotations

import hashlib
import json
import secrets
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Optional

from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.metrics import (
    arm,
    armed,
    merge_snapshots,
    render_prometheus,
    set_exemplar,
    summarize,
)
from repro.obs.request_trace import build_request_trace, write_request_trace
from repro.obs.slog import configure as configure_logging
from repro.obs.slog import get_logger
from repro.obs.slog import mode as log_mode
from repro.obs.spans import NULL_PROFILER, Profiler, Span
from repro.serve.protocol import (
    AnalyzeRequest,
    ProtocolError,
    arch_spec,
    http_status_for,
    spec_fingerprint,
)
from repro.serve.service import (
    KernelRunner,
    corruption_diagnostic,
    error_envelope,
)

__all__ = ["ScoutServer", "new_request_id"]

#: cap on concurrently-dispatched batch members per request
BATCH_FANOUT = 16
#: largest accepted request body (a raw-SASS listing fits comfortably)
MAX_BODY_BYTES = 8 * 1024 * 1024

#: endpoint label values are bounded to the known routes — anything
#: else (scanners, typos) collapses into "other" so label cardinality
#: cannot be driven by request paths
_KNOWN_ENDPOINTS = frozenset(
    {"/healthz", "/metrics", "/v1/stats", "/v1/analyze", "/v1/batch"})

_log = get_logger("serve.http")


def new_request_id() -> str:
    """A fresh request ID (16 hex chars)."""
    return secrets.token_hex(8)


class ScoutServer:
    """A long-lived analysis service around one cache directory."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0, cache_dir: Optional[str] = None,
                 deadline: Optional[float] = None,
                 fast: Optional[bool] = None,
                 cache_mb: int = 256,
                 metrics: bool = True,
                 access_log: bool = False,
                 trace_dir: Optional[str] = None):
        self.deadline = deadline
        self.fast = fast
        self.trace_dir = trace_dir
        if metrics:
            # arm BEFORE forking the pool so workers inherit the flag
            arm(True)
        if access_log and log_mode() == "off":
            configure_logging(mode="text", level="debug")
        self.access_log = access_log
        self.pool = None
        if workers > 0:
            from repro.serve.pool import WorkerPool

            self.pool = WorkerPool(workers, cache_dir=cache_dir,
                                   fast=fast, deadline=deadline)
        #: the inline runner doubles as the server-side L3 front cache
        #: (its ReportCache shares the disk tier with the workers)
        self.runner = KernelRunner(cache_dir=cache_dir, fast=fast,
                                   deadline=deadline, cache_mb=cache_mb)
        #: request-fingerprint -> content-address memo: lets the server
        #: answer repeats from L3 without resolving (= compiling) the
        #: kernel itself
        self._address_memo: OrderedDict = OrderedDict()
        self._memo_lock = threading.Lock()
        #: single-flight table: request fingerprints currently being
        #: computed; identical concurrent submissions (batch duplicates,
        #: racing clients) wait for the leader instead of recomputing
        self._inflight: dict = {}
        self.requests = 0
        self.l3_front_hits = 0
        self.coalesced = 0
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.scout = self
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ScoutServer":
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="gpuscout-serve",
            daemon=True,
        )
        self._thread.start()
        _log.info("server.start", url=self.url,
                  workers=0 if self.pool is None
                  else len(self.pool._workers))
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.pool is not None:
            self.pool.close()
        _log.info("server.stop", requests=self.requests)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()

    # -- request handling ------------------------------------------------
    def _request_key(self, req: AnalyzeRequest) -> str:
        """Fingerprint of the submission as written: the proxy key the
        address memo maps onto real content addresses."""
        from repro.core.jsonout import SCHEMA_VERSION
        from repro.gpu.simulator import resolve_fast_mode

        payload = {
            "req": req.to_dict(),
            "arch": spec_fingerprint(arch_spec(req.arch)),
            "schema": SCHEMA_VERSION,
            "fast": resolve_fast_mode(self.fast),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _front_hit(self, rkey: str) -> tuple[Optional[dict], bool]:
        """L3 front lookup: ``(envelope | None, corrupted)``."""
        with self._memo_lock:
            address = self._address_memo.get(rkey)
        if address is None or self.runner.reports is None:
            return None, False
        cached, corrupted = self.runner.reports.get(address)
        if cached is None:
            return None, corrupted
        return {"ok": True, "code": 0, "cache": "l3", "address": address,
                "kernel": cached.get("kernel"), "cacheable": True,
                "report": cached}, False

    def handle_submission(self, payload,
                          request_id: Optional[str] = None
                          ) -> tuple[int, dict]:
        """Serve one submission; returns (HTTP status, envelope).  The
        envelope always carries ``request_id``."""
        self.requests += 1
        request_id = request_id or new_request_id()
        prof = Profiler() if self.trace_dir else NULL_PROFILER
        set_exemplar(request_id)
        try:
            status, env = self._handle(payload, request_id, prof)
        finally:
            set_exemplar(None)
        # worker-side plumbing that must not leak to clients
        queue_ns = env.pop("_queue_ns", None)
        env["request_id"] = request_id
        if prof.enabled:
            self._write_trace(request_id, prof, env, queue_ns)
        return status, env

    def _handle(self, payload, request_id: str,
                prof: Profiler) -> tuple[int, dict]:
        with prof.span("validate"):
            try:
                req = AnalyzeRequest.from_dict(payload)
            except ProtocolError as exc:
                env = error_envelope(exc)
                return http_status_for(env["code"]), env
            rkey = self._request_key(req)

        with prof.span("cache:probe"):
            env, corrupted = self._front_hit(rkey)
        if env is not None:
            self.l3_front_hits += 1
            return 200, env

        # single-flight: if an identical submission is already being
        # computed, wait for its result instead of computing it again
        while True:
            with self._memo_lock:
                leader_done = self._inflight.get(rkey)
                if leader_done is None:
                    self._inflight[rkey] = threading.Event()
                    break
            with prof.span("coalesce:wait"):
                leader_done.wait(timeout=600.0)
            env, corrupted = self._front_hit(rkey)
            if env is not None:
                self.coalesced += 1
                return 200, env
            # leader failed or its result was uncacheable: loop to
            # either become the new leader or wait on one

        try:
            if self.pool is not None:
                with prof.span("dispatch"):
                    env = self.pool.submit(
                        payload, arch_key=req.arch,
                        meta={"request_id": request_id})
            else:
                with prof.span("compute"):
                    env = self.runner.run(payload)
            if env.get("ok") and env.get("cacheable"):
                with self._memo_lock:
                    self._address_memo[rkey] = env["address"]
                    while len(self._address_memo) > 4096:
                        self._address_memo.popitem(last=False)
                # pooled responses flow through the server's report
                # cache too, so the memory tier answers repeats
                # without disk I/O
                if self.pool is not None and \
                        self.runner.reports is not None:
                    self.runner.reports.put(env["address"], env["report"])
        finally:
            with self._memo_lock:
                done = self._inflight.pop(rkey, None)
            if done is not None:
                done.set()
        if corrupted and env.get("ok"):
            env["report"].setdefault("diagnostics", []).append(
                corruption_diagnostic("report"))
        return http_status_for(env.get("code", 70)), env

    def _write_trace(self, request_id: str, prof: Profiler, env: dict,
                     queue_ns) -> None:
        """Dump one per-request Chrome trace (server-side spans plus
        the worker's engine spans when this request computed fresh).
        Tracing failures never break serving."""
        try:
            spans = list(prof.spans)
            if queue_ns is not None:
                # fork shares CLOCK_MONOTONIC, so the worker's dequeue
                # stamp pairs directly with our enqueue stamp
                spans.append(Span(name="queue", start_ns=queue_ns[0],
                                  end_ns=queue_ns[1], depth=1))
            wspans = []
            if env.get("cache") in ("cold", "l1"):
                report = env.get("report") or {}
                wspans = (report.get("profile") or {}).get("spans", [])
            data = build_request_trace(
                request_id, spans, wspans,
                worker_id=env.get("worker"),
                endpoint="/v1/analyze",
                kernel=env.get("kernel") or "")
            write_request_trace(self.trace_dir, request_id, data)
        except Exception:
            _log.warning("trace.write_failed", request_id=request_id)

    def handle_batch(self, payload,
                     request_id: Optional[str] = None
                     ) -> tuple[int, dict]:
        """Serve a batch: ``{"requests": [...]}`` in order.  Member
        envelopes carry derived request IDs (``<batch id>-<index>``)."""
        request_id = request_id or new_request_id()
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("requests"), list):
            env = error_envelope(ProtocolError(
                "batch body must be {'requests': [...]}"))
            return http_status_for(env["code"]), env
        items = payload["requests"]
        if not items:
            return 200, {"ok": True, "responses": [],
                         "request_id": request_id}
        fanout = min(BATCH_FANOUT, len(items))
        with ThreadPoolExecutor(max_workers=fanout) as pool:
            results = list(pool.map(
                lambda pair: self.handle_submission(
                    pair[1], request_id=f"{request_id}-{pair[0]}")[1],
                enumerate(items)))
        return 200, {
            "ok": all(r.get("ok") for r in results),
            "responses": results,
            "request_id": request_id,
        }

    # -- telemetry -------------------------------------------------------
    def observe_request(self, endpoint: str, status: int,
                        seconds: float,
                        request_id: Optional[str] = None) -> None:
        """Record one served HTTP request into the registry."""
        if not armed():
            return
        ep = endpoint if endpoint in _KNOWN_ENDPOINTS else "other"
        _METRICS.counter(
            "gpuscout_http_requests_total", "HTTP requests served",
            endpoint=ep, status=str(status)).inc()
        _METRICS.histogram(
            "gpuscout_http_request_seconds",
            "HTTP request latency in seconds", endpoint=ep,
        ).observe(seconds, exemplar=request_id)

    def occupancy(self) -> dict:
        """Per-tier entry/byte occupancy, computed at call time."""
        from repro.gpu.trace_cache import trace_cache

        out: dict = {
            "l1": {"entries": len(self.runner.static._entries)},
        }
        tc = trace_cache()
        if tc is not None:
            l2 = {"entries": len(tc._entries), "bytes": tc.bytes}
            if tc.store is not None:
                l2["store_bytes"] = tc.store.bytes_used()
            out["l2"] = l2
        if self.runner.reports is not None:
            reports = self.runner.reports
            l3 = {"entries": len(reports._entries),
                  "bytes": reports.bytes}
            if reports.store is not None:
                l3["store_bytes"] = reports.store.bytes_used()
            out["l3"] = l3
        return out

    def _set_occupancy_gauges(self) -> None:
        """Refresh the scrape-time occupancy gauges.  Only the serving
        process sets these (workers never create the series), so the
        shared disk tiers are counted exactly once after the merge."""
        occ = self.occupancy()
        for tier, vals in occ.items():
            _METRICS.gauge(
                "gpuscout_cache_entries",
                "Entries held by the in-memory cache tier",
                tier=tier).set(vals.get("entries", 0))
            if "bytes" in vals:
                _METRICS.gauge(
                    "gpuscout_cache_bytes",
                    "Bytes held by the in-memory cache tier",
                    tier=tier).set(vals["bytes"])
        store_names = {"l2": "traces", "l3": "reports"}
        for tier, store in store_names.items():
            vals = occ.get(tier) or {}
            if "store_bytes" in vals:
                _METRICS.gauge(
                    "gpuscout_store_bytes",
                    "Bytes held by the shared on-disk store",
                    store=store).set(vals["store_bytes"])

    def merged_snapshot(self) -> dict:
        """The registry snapshot for this process merged with the
        latest snapshot of every worker generation."""
        self._set_occupancy_gauges()
        snaps = [_METRICS.snapshot()]
        if self.pool is not None:
            snaps.append(self.pool.telemetry())
        return merge_snapshots(snaps)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition)."""
        return render_prometheus(self.merged_snapshot())

    def health(self) -> dict:
        """The ``GET /healthz`` body: liveness plus pool generation
        counters and the last respawn reason."""
        out: dict = {"ok": True}
        if self.pool is None:
            out["mode"] = "inline"
        else:
            out["mode"] = "pooled"
            ps = self.pool.stats()
            out["pool"] = {
                "workers": ps["workers"],
                "alive": ps["alive"],
                "inflight": ps["inflight"],
                "retries": ps["retries"],
                "respawns": ps["respawns"],
                "generations": ps["generations"],
                "last_respawn": ps["last_respawn"],
            }
        return out

    def stats(self) -> dict:
        out = {
            "requests": self.requests,
            "l3_front_hits": self.l3_front_hits,
            "coalesced": self.coalesced,
            "runner": self.runner.stats(),
            "occupancy": self.occupancy(),
        }
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        if armed():
            out["telemetry"] = summarize(self.merged_snapshot())
        return out


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the owning :class:`ScoutServer`."""

    server_version = "gpuscout-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def scout(self) -> ScoutServer:
        return self.server.scout

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        # http.server's own notices (404 paths, bad methods, protocol
        # errors) flow to the structured logger at DEBUG instead of
        # being discarded — `--access-log` / REPRO_LOG make them
        # visible, analysis output streams stay clean
        _log.debug("http.server", message=format % args,
                   client=self.address_string())

    def _request_id(self) -> str:
        return self.headers.get("X-Request-Id") or new_request_id()

    def _send(self, status: int, body: dict,
              request_id: Optional[str] = None) -> None:
        blob = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(blob)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4; "
                                       "charset=utf-8") -> None:
        blob = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("missing or oversized request body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode())
        except Exception:
            raise ProtocolError("request body is not valid JSON") from None

    def _access(self, method: str, status: int, elapsed: float,
                request_id: str, **fields) -> None:
        self.scout.observe_request(self.path, status, elapsed,
                                   request_id)
        _log.info("http.access", method=method, path=self.path,
                  status=status, elapsed_ms=round(elapsed * 1e3, 3),
                  request_id=request_id, client=self.address_string(),
                  **fields)

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        t0 = perf_counter()
        rid = self._request_id()
        if self.path == "/healthz":
            status = 200
            self._send(status, self.scout.health(), request_id=rid)
        elif self.path == "/v1/stats":
            status = 200
            self._send(status, self.scout.stats(), request_id=rid)
        elif self.path == "/metrics":
            status = 200
            self._send_text(status, self.scout.metrics_text())
        else:
            status = 404
            self._send(status, {"ok": False, "error": "NotFound",
                                "message": self.path}, request_id=rid)
        self._access("GET", status, perf_counter() - t0, rid)

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        t0 = perf_counter()
        rid = self._request_id()
        try:
            payload = self._read_json()
        except ProtocolError as exc:
            env = error_envelope(exc)
            status = http_status_for(env["code"])
            self._send(status, env, request_id=rid)
            self._access("POST", status, perf_counter() - t0, rid)
            return
        if self.path == "/v1/analyze":
            status, env = self.scout.handle_submission(
                payload, request_id=rid)
        elif self.path == "/v1/batch":
            status, env = self.scout.handle_batch(payload,
                                                  request_id=rid)
        else:
            status, env = 404, {"ok": False, "error": "NotFound",
                                "message": self.path}
        self._send(status, env, request_id=rid)
        self._access("POST", status, perf_counter() - t0, rid,
                     cache=env.get("cache"))
