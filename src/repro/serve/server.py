"""The stdlib HTTP/JSON front end: ``gpuscout serve``.

Endpoints (all JSON):

* ``POST /v1/analyze`` — one submission (see
  :class:`~repro.serve.protocol.AnalyzeRequest`); responds with the
  envelope ``{"ok", "code", "cache", "report", ...}``.  Failures map
  the CLI stage codes onto HTTP statuses
  (:func:`~repro.serve.protocol.http_status_for`).
* ``POST /v1/batch`` — ``{"requests": [...]}``; members are fanned out
  across the worker pool (or served sequentially inline) and the
  responses returned in submission order.
* ``GET /v1/stats`` — cache hit/miss counters per tier, pool health.
* ``GET /healthz`` — liveness.

The server process keeps the **L3 front cache**: a memo from request
fingerprints to content addresses plus the report store, so a repeat
submission is answered with one dict lookup (or one CRC-checked file
read) without waking any worker.  Batch members that miss are
dispatched concurrently; identical concurrent submissions coalesce
onto one computation (single-flight), and members sharing a program
land in the same worker's warm L1 via shard-ring affinity.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.protocol import (
    AnalyzeRequest,
    ProtocolError,
    arch_spec,
    http_status_for,
    spec_fingerprint,
)
from repro.serve.service import (
    KernelRunner,
    corruption_diagnostic,
    error_envelope,
)

__all__ = ["ScoutServer"]

#: cap on concurrently-dispatched batch members per request
BATCH_FANOUT = 16
#: largest accepted request body (a raw-SASS listing fits comfortably)
MAX_BODY_BYTES = 8 * 1024 * 1024


class ScoutServer:
    """A long-lived analysis service around one cache directory."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0, cache_dir: Optional[str] = None,
                 deadline: Optional[float] = None,
                 fast: Optional[bool] = None,
                 cache_mb: int = 256):
        self.deadline = deadline
        self.fast = fast
        self.pool = None
        if workers > 0:
            from repro.serve.pool import WorkerPool

            self.pool = WorkerPool(workers, cache_dir=cache_dir,
                                   fast=fast, deadline=deadline)
        #: the inline runner doubles as the server-side L3 front cache
        #: (its ReportCache shares the disk tier with the workers)
        self.runner = KernelRunner(cache_dir=cache_dir, fast=fast,
                                   deadline=deadline, cache_mb=cache_mb)
        #: request-fingerprint -> content-address memo: lets the server
        #: answer repeats from L3 without resolving (= compiling) the
        #: kernel itself
        self._address_memo: OrderedDict = OrderedDict()
        self._memo_lock = threading.Lock()
        #: single-flight table: request fingerprints currently being
        #: computed; identical concurrent submissions (batch duplicates,
        #: racing clients) wait for the leader instead of recomputing
        self._inflight: dict = {}
        self.requests = 0
        self.l3_front_hits = 0
        self.coalesced = 0
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.scout = self
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ScoutServer":
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="gpuscout-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()

    # -- request handling ------------------------------------------------
    def _request_key(self, req: AnalyzeRequest) -> str:
        """Fingerprint of the submission as written: the proxy key the
        address memo maps onto real content addresses."""
        from repro.core.jsonout import SCHEMA_VERSION
        from repro.gpu.simulator import resolve_fast_mode

        payload = {
            "req": req.to_dict(),
            "arch": spec_fingerprint(arch_spec(req.arch)),
            "schema": SCHEMA_VERSION,
            "fast": resolve_fast_mode(self.fast),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _front_hit(self, rkey: str) -> tuple[Optional[dict], bool]:
        """L3 front lookup: ``(envelope | None, corrupted)``."""
        with self._memo_lock:
            address = self._address_memo.get(rkey)
        if address is None or self.runner.reports is None:
            return None, False
        cached, corrupted = self.runner.reports.get(address)
        if cached is None:
            return None, corrupted
        return {"ok": True, "code": 0, "cache": "l3", "address": address,
                "kernel": cached.get("kernel"), "cacheable": True,
                "report": cached}, False

    def handle_submission(self, payload) -> tuple[int, dict]:
        """Serve one submission; returns (HTTP status, envelope)."""
        self.requests += 1
        try:
            req = AnalyzeRequest.from_dict(payload)
        except ProtocolError as exc:
            env = error_envelope(exc)
            return http_status_for(env["code"]), env

        rkey = self._request_key(req)
        env, corrupted = self._front_hit(rkey)
        if env is not None:
            self.l3_front_hits += 1
            return 200, env

        # single-flight: if an identical submission is already being
        # computed, wait for its result instead of computing it again
        while True:
            with self._memo_lock:
                leader_done = self._inflight.get(rkey)
                if leader_done is None:
                    self._inflight[rkey] = threading.Event()
                    break
            leader_done.wait(timeout=600.0)
            env, corrupted = self._front_hit(rkey)
            if env is not None:
                self.coalesced += 1
                return 200, env
            # leader failed or its result was uncacheable: loop to
            # either become the new leader or wait on one

        try:
            if self.pool is not None:
                env = self.pool.submit(payload, arch_key=req.arch)
            else:
                env = self.runner.run(payload)
            if env.get("ok") and env.get("cacheable"):
                with self._memo_lock:
                    self._address_memo[rkey] = env["address"]
                    while len(self._address_memo) > 4096:
                        self._address_memo.popitem(last=False)
                # pooled responses flow through the server's report
                # cache too, so the memory tier answers repeats
                # without disk I/O
                if self.pool is not None and \
                        self.runner.reports is not None:
                    self.runner.reports.put(env["address"], env["report"])
        finally:
            with self._memo_lock:
                done = self._inflight.pop(rkey, None)
            if done is not None:
                done.set()
        if corrupted and env.get("ok"):
            env["report"].setdefault("diagnostics", []).append(
                corruption_diagnostic("report"))
        return http_status_for(env.get("code", 70)), env

    def handle_batch(self, payload) -> tuple[int, dict]:
        """Serve a batch: ``{"requests": [...]}`` in order."""
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("requests"), list):
            env = error_envelope(ProtocolError(
                "batch body must be {'requests': [...]}"))
            return http_status_for(env["code"]), env
        items = payload["requests"]
        if not items:
            return 200, {"ok": True, "responses": []}
        fanout = min(BATCH_FANOUT, len(items))
        with ThreadPoolExecutor(max_workers=fanout) as pool:
            results = list(pool.map(
                lambda item: self.handle_submission(item)[1], items))
        return 200, {
            "ok": all(r.get("ok") for r in results),
            "responses": results,
        }

    def stats(self) -> dict:
        out = {
            "requests": self.requests,
            "l3_front_hits": self.l3_front_hits,
            "coalesced": self.coalesced,
            "runner": self.runner.stats(),
        }
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        return out


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the owning :class:`ScoutServer`."""

    server_version = "gpuscout-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def scout(self) -> ScoutServer:
        return self.server.scout

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        pass  # request logging stays out of the analysis output streams

    def _send(self, status: int, body: dict) -> None:
        blob = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("missing or oversized request body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode())
        except Exception:
            raise ProtocolError("request body is not valid JSON") from None

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        if self.path == "/healthz":
            self._send(200, {"ok": True})
        elif self.path == "/v1/stats":
            self._send(200, self.scout.stats())
        else:
            self._send(404, {"ok": False, "error": "NotFound",
                             "message": self.path})

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        try:
            payload = self._read_json()
        except ProtocolError as exc:
            env = error_envelope(exc)
            self._send(http_status_for(env["code"]), env)
            return
        if self.path == "/v1/analyze":
            status, env = self.scout.handle_submission(payload)
        elif self.path == "/v1/batch":
            status, env = self.scout.handle_batch(payload)
        else:
            status, env = 404, {"ok": False, "error": "NotFound",
                                "message": self.path}
        self._send(status, env)
