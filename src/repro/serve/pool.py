"""Multiprocessing worker pool with arch-config shard affinity.

Each worker is a separate process running a
:class:`~repro.serve.service.KernelRunner` loop: it owns a warm
process-local L1 (static artifacts) and in-memory L2 (effect traces),
and shares the disk L2/L3 tiers with its siblings through the cache
directory.  Submissions are dispatched to the *shard ring* of their
arch config: the ring is every worker, rotated by a stable hash of the
arch fingerprint, walked least-loaded-first — so with one arch in
flight the whole pool parallelises a batch, while distinct archs
anchor at distinct primary workers and keep their warm state apart.

**Fault tolerance.**  A worker that dies mid-request (or is killed by
the ``serve.worker_death`` fail point at dispatch time) is respawned,
and the request is retried on the next shard member; the response
carries a ``retries`` count plus a diagnostic so the client can see
the bumpy road.  Requests are pure functions of their content address,
so retrying is always safe.

**Telemetry.**  When the parent's metrics registry is armed (the
worker inherits the flag through fork), each worker zeroes its
inherited counter values at startup — fork copies the parent's live
registry, and re-reporting those values would double-count — then
attaches a cumulative registry snapshot stamped ``(worker,
generation)`` to every result envelope.  The pool keeps only the
*latest* snapshot per stamp, so resends replace (idempotent) and a
respawned worker's fresh zeroes land under a new generation instead of
erasing its predecessor's final counts.  :meth:`WorkerPool.telemetry`
merges the lot for ``/metrics``.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from time import perf_counter_ns
from typing import Optional

from repro.errors import Diagnostic
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.metrics import merge_snapshots
from repro.obs.slog import get_logger
from repro.testing.faultinject import fail_point

__all__ = ["WorkerPool"]

#: dispatch attempts per request (first try + retries on other workers)
MAX_ATTEMPTS = 3
_POLL_S = 0.05

_log = get_logger("serve.pool")

_POOL_INFLIGHT = _METRICS.gauge(
    "gpuscout_pool_inflight", "Requests currently dispatched to workers")
_POOL_RETRIES = _METRICS.counter(
    "gpuscout_pool_retries_total",
    "Requests re-dispatched after a worker death")
_POOL_RESPAWNS = _METRICS.counter(
    "gpuscout_pool_respawns_total", "Workers respawned after dying",
    reason="worker-death")


def _worker_main(worker_id: int, generation: int, task_q, result_q,
                 cache_dir, fast, deadline) -> None:
    """Worker-process entry point: serve requests until the ``None``
    sentinel arrives."""
    from repro.obs.metrics import REGISTRY, armed, set_exemplar
    from repro.serve.service import KernelRunner, error_envelope

    # fork copied the parent's live registry values; zero them in
    # place so this worker's snapshots report only its own work
    REGISTRY.reset()
    runner = KernelRunner(cache_dir=cache_dir, fast=fast,
                          deadline=deadline, worker_id=worker_id)
    while True:
        item = task_q.get()
        if item is None:
            break
        req_id, payload, meta = item
        meta = meta or {}
        dequeued_ns = perf_counter_ns()
        set_exemplar(meta.get("request_id"))
        try:
            env = runner.run(payload)
        except BaseException as exc:  # noqa: BLE001 — keep serving
            env = error_envelope(exc)
            env["worker"] = worker_id
        finally:
            set_exemplar(None)
        if "enqueued_ns" in meta:
            # parent and child share CLOCK_MONOTONIC (fork), so the
            # server can turn this into a queue-wait span directly
            env["_queue_ns"] = (meta["enqueued_ns"], dequeued_ns)
        if armed():
            env["_telemetry"] = {
                "worker": worker_id,
                "generation": generation,
                "snapshot": REGISTRY.snapshot(),
            }
        result_q.put((req_id, env))


class _Worker:
    __slots__ = ("id", "process", "queue", "inflight", "generation")

    def __init__(self, wid, process, queue):
        self.id = wid
        self.process = process
        self.queue = queue
        self.inflight = 0
        #: bumped on every respawn; a dispatcher that sees the bump
        #: knows its queued item went down with the old queue
        self.generation = 0


class _Pending:
    __slots__ = ("event", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.payload = None


class WorkerPool:
    """N analysis workers fed through per-worker queues."""

    def __init__(self, n_workers: int, cache_dir: Optional[str] = None,
                 fast: Optional[bool] = None,
                 deadline: Optional[float] = None,
                 mp_context: Optional[str] = None):
        import multiprocessing as mp

        if n_workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        if mp_context is None:
            # fork is dramatically cheaper to warm up (the parent's
            # imported modules come along); fall back where unsupported
            mp_context = "fork" if "fork" in mp.get_all_start_methods() \
                else None
        self._ctx = mp.get_context(mp_context)
        self.cache_dir = cache_dir
        self.fast = fast
        self.deadline = deadline
        self._result_q = self._ctx.Queue()
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._seq = itertools.count(1)
        self.retries = 0
        self.respawns = 0
        #: latest registry snapshot per (worker id, generation) stamp —
        #: replace semantics make resends idempotent, and keeping dead
        #: generations preserves their final counts across respawns
        self._telemetry: dict[tuple, dict] = {}
        #: who respawned last and why ("healthy" vs "respawn-looping"
        #: is /healthz material)
        self.last_respawn: Optional[dict] = None
        self._closed = False
        self._workers = [self._spawn(i) for i in range(n_workers)]
        self._collector = threading.Thread(
            target=self._collect, name="serve-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    def _spawn(self, wid: int, generation: int = 0) -> _Worker:
        queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, generation, queue, self._result_q,
                  self.cache_dir, self.fast, self.deadline),
            daemon=True,
            name=f"gpuscout-worker-{wid}",
        )
        proc.start()
        worker = _Worker(wid, proc, queue)
        worker.generation = generation
        return worker

    def _collect(self) -> None:
        while True:
            item = self._result_q.get()
            if item is None:
                return
            req_id, env = item
            telemetry = env.pop("_telemetry", None) \
                if isinstance(env, dict) else None
            if telemetry is not None:
                stamp = (telemetry.get("worker"),
                         telemetry.get("generation"))
                with self._lock:
                    self._telemetry[stamp] = telemetry.get("snapshot",
                                                           {})
            with self._lock:
                pending = self._pending.pop(req_id, None)
            if pending is not None:
                pending.payload = env
                pending.event.set()
            # else: a retried request's late duplicate — drop it

    # ------------------------------------------------------------------
    def ring(self, arch_key: str) -> list[_Worker]:
        """The shard ring for an arch config: all workers, rotated by
        a stable hash so distinct archs anchor at distinct primaries."""
        n = len(self._workers)
        off = zlib.crc32(arch_key.encode()) % n
        return [self._workers[(off + i) % n] for i in range(n)]

    def _pick(self, ring: list[_Worker], exclude: set[int]) -> \
            Optional[_Worker]:
        candidates = [w for w in ring if w.id not in exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda w: w.inflight)

    # ------------------------------------------------------------------
    def submit(self, payload: dict, arch_key: str = "",
               timeout: float = 600.0,
               meta: Optional[dict] = None) -> dict:
        """Dispatch one submission to its shard; returns the worker's
        envelope.  Dead workers are respawned and the request retried
        on another shard member (``MAX_ATTEMPTS`` total).  ``meta``
        rides along to the worker (request ID for exemplars and
        tracing); the enqueue timestamp is stamped per attempt."""
        from repro.serve.service import error_envelope

        ring = self.ring(arch_key)
        tried: set[int] = set()
        retries = 0
        for _ in range(MAX_ATTEMPTS):
            worker = self._pick(ring, tried)
            if worker is None:
                break
            tried.add(worker.id)
            try:
                fail_point("serve.worker_death")
            except Exception:
                # injected chaos: the chosen worker dies right as the
                # request is dispatched — exercises the real retry path
                worker.process.terminate()
            env = self._dispatch(worker, payload, timeout, meta)
            if env is not None:
                if retries:
                    self.retries += retries
                    _POOL_RETRIES.inc(retries)
                    env["retries"] = retries
                    report = env.get("report")
                    if isinstance(report, dict):
                        report.setdefault("diagnostics", []).append(
                            Diagnostic(
                                stage="serve",
                                site="serve.worker_death",
                                error="",
                                message=f"worker died; request retried "
                                        f"{retries}x on another shard "
                                        "member",
                                severity="warning",
                            ).to_dict())
                return env
            retries += 1
        err = error_envelope(RuntimeError(
            f"request failed on {len(tried)} worker(s)"))
        err["retries"] = retries
        return err

    def _dispatch(self, worker: _Worker, payload: dict,
                  timeout: float,
                  meta: Optional[dict] = None) -> Optional[dict]:
        """One attempt on one worker; ``None`` means the worker died
        (it has been respawned) and the caller should retry."""
        req_id = next(self._seq)
        pending = _Pending()
        with self._lock:
            self._pending[req_id] = pending
            worker.inflight += 1
            gen = worker.generation
        _POOL_INFLIGHT.inc()
        try:
            meta = dict(meta) if meta else {}
            meta["enqueued_ns"] = perf_counter_ns()
            worker.queue.put((req_id, payload, meta))
            deadline = timeout
            waited = 0.0
            while waited < deadline:
                if pending.event.wait(_POLL_S):
                    return pending.payload
                waited += _POLL_S
                if worker.generation != gen:
                    # another dispatcher respawned the worker: our item
                    # went down with the old queue
                    return None
                if not worker.process.is_alive():
                    # grace window: the result may already be in flight
                    if pending.event.wait(5 * _POLL_S):
                        return pending.payload
                    self._respawn(worker, gen)
                    return None
            return pending.payload if pending.event.is_set() else None
        finally:
            with self._lock:
                self._pending.pop(req_id, None)
                worker.inflight -= 1
            _POOL_INFLIGHT.dec()

    def _respawn(self, worker: _Worker, gen: int) -> None:
        with self._lock:
            if worker.generation != gen or self._closed:
                return  # someone else already replaced it
            if not worker.process.is_alive():
                # a terminated process may die holding its queue's
                # internal lock, so the queue is abandoned with it; a
                # fresh one replaces both.  In-flight dispatches to the
                # old queue observe the generation bump and retry;
                # results already sent arrive via the shared result
                # queue as usual (or are dropped as late duplicates).
                exitcode = worker.process.exitcode
                reason = ("terminated" if exitcode is not None
                          and exitcode < 0
                          else f"exit code {exitcode}")
                fresh = self._spawn(worker.id, worker.generation + 1)
                worker.process = fresh.process
                worker.queue = fresh.queue
                worker.generation += 1
                self.respawns += 1
                self.last_respawn = {
                    "worker": worker.id,
                    "generation": worker.generation,
                    "reason": reason,
                }
                _POOL_RESPAWNS.inc()
                _log.warning("pool.respawn", worker=worker.id,
                             generation=worker.generation,
                             reason=reason)

    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        """The merged registry snapshot across every worker generation
        that ever reported (the serving process's own registry is NOT
        included — the server merges itself in at scrape time)."""
        with self._lock:
            snaps = list(self._telemetry.values())
        return merge_snapshots(snaps)

    def stats(self) -> dict:
        return {
            "workers": len(self._workers),
            "alive": sum(w.process.is_alive() for w in self._workers),
            "inflight": sum(w.inflight for w in self._workers),
            "retries": self.retries,
            "respawns": self.respawns,
            "generations": {w.id: w.generation for w in self._workers},
            "last_respawn": self.last_respawn,
        }

    def close(self, timeout: float = 5.0) -> None:
        self._closed = True
        for w in self._workers:
            try:
                w.queue.put(None)
            except Exception:
                pass
        for w in self._workers:
            w.process.join(timeout=timeout)
            if w.process.is_alive():
                w.process.terminate()
        self._result_q.put(None)
        self._collector.join(timeout=timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
