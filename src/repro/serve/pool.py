"""Multiprocessing worker pool with arch-config shard affinity.

Each worker is a separate process running a
:class:`~repro.serve.service.KernelRunner` loop: it owns a warm
process-local L1 (static artifacts) and in-memory L2 (effect traces),
and shares the disk L2/L3 tiers with its siblings through the cache
directory.  Submissions are dispatched to the *shard ring* of their
arch config: the ring is every worker, rotated by a stable hash of the
arch fingerprint, walked least-loaded-first — so with one arch in
flight the whole pool parallelises a batch, while distinct archs
anchor at distinct primary workers and keep their warm state apart.

**Fault tolerance.**  A worker that dies mid-request (or is killed by
the ``serve.worker_death`` fail point at dispatch time) is respawned,
and the request is retried on the next shard member; the response
carries a ``retries`` count plus a diagnostic so the client can see
the bumpy road.  Requests are pure functions of their content address,
so retrying is always safe.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from typing import Optional

from repro.errors import Diagnostic
from repro.testing.faultinject import fail_point

__all__ = ["WorkerPool"]

#: dispatch attempts per request (first try + retries on other workers)
MAX_ATTEMPTS = 3
_POLL_S = 0.05


def _worker_main(worker_id: int, task_q, result_q, cache_dir,
                 fast, deadline) -> None:
    """Worker-process entry point: serve requests until the ``None``
    sentinel arrives."""
    from repro.serve.service import KernelRunner, error_envelope

    runner = KernelRunner(cache_dir=cache_dir, fast=fast,
                          deadline=deadline, worker_id=worker_id)
    while True:
        item = task_q.get()
        if item is None:
            break
        req_id, payload = item
        try:
            env = runner.run(payload)
        except BaseException as exc:  # noqa: BLE001 — keep serving
            env = error_envelope(exc)
            env["worker"] = worker_id
        result_q.put((req_id, env))


class _Worker:
    __slots__ = ("id", "process", "queue", "inflight", "generation")

    def __init__(self, wid, process, queue):
        self.id = wid
        self.process = process
        self.queue = queue
        self.inflight = 0
        #: bumped on every respawn; a dispatcher that sees the bump
        #: knows its queued item went down with the old queue
        self.generation = 0


class _Pending:
    __slots__ = ("event", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.payload = None


class WorkerPool:
    """N analysis workers fed through per-worker queues."""

    def __init__(self, n_workers: int, cache_dir: Optional[str] = None,
                 fast: Optional[bool] = None,
                 deadline: Optional[float] = None,
                 mp_context: Optional[str] = None):
        import multiprocessing as mp

        if n_workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        if mp_context is None:
            # fork is dramatically cheaper to warm up (the parent's
            # imported modules come along); fall back where unsupported
            mp_context = "fork" if "fork" in mp.get_all_start_methods() \
                else None
        self._ctx = mp.get_context(mp_context)
        self.cache_dir = cache_dir
        self.fast = fast
        self.deadline = deadline
        self._result_q = self._ctx.Queue()
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._seq = itertools.count(1)
        self.retries = 0
        self.respawns = 0
        self._closed = False
        self._workers = [self._spawn(i) for i in range(n_workers)]
        self._collector = threading.Thread(
            target=self._collect, name="serve-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    def _spawn(self, wid: int) -> _Worker:
        queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, queue, self._result_q, self.cache_dir,
                  self.fast, self.deadline),
            daemon=True,
            name=f"gpuscout-worker-{wid}",
        )
        proc.start()
        return _Worker(wid, proc, queue)

    def _collect(self) -> None:
        while True:
            item = self._result_q.get()
            if item is None:
                return
            req_id, env = item
            with self._lock:
                pending = self._pending.pop(req_id, None)
            if pending is not None:
                pending.payload = env
                pending.event.set()
            # else: a retried request's late duplicate — drop it

    # ------------------------------------------------------------------
    def ring(self, arch_key: str) -> list[_Worker]:
        """The shard ring for an arch config: all workers, rotated by
        a stable hash so distinct archs anchor at distinct primaries."""
        n = len(self._workers)
        off = zlib.crc32(arch_key.encode()) % n
        return [self._workers[(off + i) % n] for i in range(n)]

    def _pick(self, ring: list[_Worker], exclude: set[int]) -> \
            Optional[_Worker]:
        candidates = [w for w in ring if w.id not in exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda w: w.inflight)

    # ------------------------------------------------------------------
    def submit(self, payload: dict, arch_key: str = "",
               timeout: float = 600.0) -> dict:
        """Dispatch one submission to its shard; returns the worker's
        envelope.  Dead workers are respawned and the request retried
        on another shard member (``MAX_ATTEMPTS`` total)."""
        from repro.serve.service import error_envelope

        ring = self.ring(arch_key)
        tried: set[int] = set()
        retries = 0
        for _ in range(MAX_ATTEMPTS):
            worker = self._pick(ring, tried)
            if worker is None:
                break
            tried.add(worker.id)
            try:
                fail_point("serve.worker_death")
            except Exception:
                # injected chaos: the chosen worker dies right as the
                # request is dispatched — exercises the real retry path
                worker.process.terminate()
            env = self._dispatch(worker, payload, timeout)
            if env is not None:
                if retries:
                    self.retries += retries
                    env["retries"] = retries
                    report = env.get("report")
                    if isinstance(report, dict):
                        report.setdefault("diagnostics", []).append(
                            Diagnostic(
                                stage="serve",
                                site="serve.worker_death",
                                error="",
                                message=f"worker died; request retried "
                                        f"{retries}x on another shard "
                                        "member",
                                severity="warning",
                            ).to_dict())
                return env
            retries += 1
        err = error_envelope(RuntimeError(
            f"request failed on {len(tried)} worker(s)"))
        err["retries"] = retries
        return err

    def _dispatch(self, worker: _Worker, payload: dict,
                  timeout: float) -> Optional[dict]:
        """One attempt on one worker; ``None`` means the worker died
        (it has been respawned) and the caller should retry."""
        req_id = next(self._seq)
        pending = _Pending()
        with self._lock:
            self._pending[req_id] = pending
            worker.inflight += 1
            gen = worker.generation
        try:
            worker.queue.put((req_id, payload))
            deadline = timeout
            waited = 0.0
            while waited < deadline:
                if pending.event.wait(_POLL_S):
                    return pending.payload
                waited += _POLL_S
                if worker.generation != gen:
                    # another dispatcher respawned the worker: our item
                    # went down with the old queue
                    return None
                if not worker.process.is_alive():
                    # grace window: the result may already be in flight
                    if pending.event.wait(5 * _POLL_S):
                        return pending.payload
                    self._respawn(worker, gen)
                    return None
            return pending.payload if pending.event.is_set() else None
        finally:
            with self._lock:
                self._pending.pop(req_id, None)
                worker.inflight -= 1

    def _respawn(self, worker: _Worker, gen: int) -> None:
        with self._lock:
            if worker.generation != gen or self._closed:
                return  # someone else already replaced it
            if not worker.process.is_alive():
                # a terminated process may die holding its queue's
                # internal lock, so the queue is abandoned with it; a
                # fresh one replaces both.  In-flight dispatches to the
                # old queue observe the generation bump and retry;
                # results already sent arrive via the shared result
                # queue as usual (or are dropped as late duplicates).
                fresh = self._spawn(worker.id)
                worker.process = fresh.process
                worker.queue = fresh.queue
                worker.generation += 1
                self.respawns += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "workers": len(self._workers),
            "alive": sum(w.process.is_alive() for w in self._workers),
            "inflight": sum(w.inflight for w in self._workers),
            "retries": self.retries,
            "respawns": self.respawns,
        }

    def close(self, timeout: float = 5.0) -> None:
        self._closed = True
        for w in self._workers:
            try:
                w.queue.put(None)
            except Exception:
                pass
        for w in self._workers:
            w.process.join(timeout=timeout)
            if w.process.is_alive():
                w.process.terminate()
        self._result_q.put(None)
        self._collector.join(timeout=timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
