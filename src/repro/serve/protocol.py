"""Wire protocol of the analysis service.

A *submission* is a JSON object naming a kernel (a built-in spec like
``sgemm:naive``, or raw SASS text) plus its launch parameters and the
arch config to analyse under.  The response wraps the one-shot CLI's
schema-v4 report JSON in a small envelope::

    {"ok": true, "code": 0, "cache": "l3", "report": {...}}

so a served analysis is byte-comparable to ``gpuscout analyze --json``
output (modulo the volatile timing/profile fields, see
:func:`strip_volatile`).

**Content addressing.**  :func:`content_address` derives the cache key
every tier hangs off: a SHA-256 over the SASS text, the launch
fingerprint (geometry + parameter values), the *full* arch-config
field set, and the report schema version.  Any change to any of those
must change the address — a Hypothesis property test pins this.

**Error mapping.**  Per-request failures carry the same stage codes
the CLI exits with (parse=2, compile=3, launch=4, simulation=5,
analysis=6, internal=70, plus usage=64 for malformed submissions);
:func:`http_status_for` maps them onto HTTP statuses (4xx for inputs
the client can fix, 5xx for server-side failures).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Optional

from repro.errors import ReproError
from repro.gpu.config import GPUSpec

__all__ = [
    "ARCHS",
    "AnalyzeRequest",
    "EXIT_USAGE",
    "ProtocolError",
    "arch_spec",
    "content_address",
    "http_status_for",
    "launch_fingerprint",
    "spec_fingerprint",
    "static_key",
    "strip_volatile",
]

#: EX_USAGE — a malformed submission (bad JSON, unknown field, unknown
#: kernel spec/arch).  Extends the CLI's parse=2 … internal=70 ladder.
EXIT_USAGE = 64

#: named arch configs a submission may select; the *fingerprint* of the
#: resolved spec (every field, not the name) enters the content address,
#: so redefining an arch invalidates its cached results
ARCHS = {
    "v100": GPUSpec.v100,
    "small": lambda: GPUSpec.small(1),
    "small4": lambda: GPUSpec.small(4),
}


class ProtocolError(ReproError):
    """A submission the service cannot act on (usage error)."""


def arch_spec(name: str) -> GPUSpec:
    try:
        return ARCHS[name]()
    except KeyError:
        raise ProtocolError(
            f"unknown arch {name!r}; known: {sorted(ARCHS)}"
        ) from None


@dataclass(frozen=True)
class AnalyzeRequest:
    """One kernel-analysis submission (already validated)."""

    kernel: Optional[str] = None  # built-in spec, e.g. "sgemm:naive"
    sass: Optional[str] = None    # raw SASS text (static analysis only)
    size: int = 256
    compute_iterations: int = 8
    max_blocks: int = 8
    dry_run: bool = False
    extended: bool = False
    arch: str = "v100"
    #: wall-clock budget (seconds) for this request's simulation; on
    #: expiry the run degrades down the usual ladder instead of failing
    deadline: Optional[float] = None

    _TYPES = {
        "kernel": (str, type(None)),
        "sass": (str, type(None)),
        "size": (int,),
        "compute_iterations": (int,),
        "max_blocks": (int,),
        "dry_run": (bool,),
        "extended": (bool,),
        "arch": (str,),
        "deadline": (int, float, type(None)),
    }

    @classmethod
    def from_dict(cls, data: Any) -> "AnalyzeRequest":
        if not isinstance(data, dict):
            raise ProtocolError("submission must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(
                f"unknown submission fields: {sorted(unknown)}"
            )
        for name, types in cls._TYPES.items():
            if name not in data:
                continue
            value = data[name]
            # bool is an int subclass: reject it where int is meant
            bad = (isinstance(value, bool) and bool not in types) \
                or not isinstance(value, types)
            if bad:
                raise ProtocolError(
                    f"field {name!r} has wrong type "
                    f"{type(value).__name__}"
                )
        req = cls(**data)
        if (req.kernel is None) == (req.sass is None):
            raise ProtocolError(
                "submission needs exactly one of 'kernel' or 'sass'"
            )
        if req.sass is not None and not req.dry_run:
            raise ProtocolError(
                "raw SASS supports static analysis only; set dry_run"
            )
        if req.size <= 0 or req.max_blocks <= 0:
            raise ProtocolError("size and max_blocks must be positive")
        if req.arch not in ARCHS:
            raise ProtocolError(
                f"unknown arch {req.arch!r}; known: {sorted(ARCHS)}"
            )
        return req

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------

def _canon(value):
    """Canonical JSON-able form of a fingerprint component (numpy
    arrays and scalars hash by content)."""
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if hasattr(value, "tobytes") and hasattr(value, "dtype"):  # ndarray
        return ["ndarray", str(value.dtype), list(value.shape),
                hashlib.sha256(value.tobytes()).hexdigest()]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def spec_fingerprint(spec: GPUSpec) -> dict:
    """Every field of the arch config — a renamed *or* retuned spec
    yields a different fingerprint."""
    return _canon(asdict(spec))


def launch_fingerprint(config, params: Optional[dict] = None) -> dict:
    """Geometry plus the parameter values the kernel will see.
    ``config`` is ``None`` for raw-SASS (static-only) submissions."""
    return {
        "grid": list(config.grid) if config is not None else None,
        "block": list(config.block) if config is not None else None,
        "params": _canon(params or {}),
    }


def content_address(sass_text: str, config, params: Optional[dict],
                    spec: GPUSpec, extras: Optional[dict] = None) -> str:
    """The full (L3) content address of one analysis result.

    Keyed by everything that can influence the report body: SASS text,
    launch fingerprint (geometry + params), the complete arch config,
    request options that change what is computed (``extras``), and the
    report schema version — bumping the schema invalidates every
    cached report at once.
    """
    from repro.core.jsonout import SCHEMA_VERSION

    payload = {
        "schema": SCHEMA_VERSION,
        "sass": hashlib.sha256(sass_text.encode()).hexdigest(),
        "launch": launch_fingerprint(config, params),
        "arch": spec_fingerprint(spec),
        "extras": _canon(extras or {}),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def static_key(sass_text: str, config, extended: bool) -> str:
    """The L1 address of one program's static artifacts: SASS text,
    launch geometry (analyses may fold it into their static results)
    and the analysis set."""
    payload = {
        "sass": hashlib.sha256(sass_text.encode()).hexdigest(),
        "grid": list(config.grid) if config is not None else None,
        "block": list(config.block) if config is not None else None,
        "extended": bool(extended),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# byte-identity helpers
# ---------------------------------------------------------------------------

#: report keys that legitimately differ between runs of identical work
_VOLATILE_TOP = ("profile", "overhead", "trace_path")


def strip_volatile(report: dict) -> dict:
    """A deep copy of a schema-v4 report dict with the timing/profile
    fields removed, leaving only the deterministic analysis content —
    the served-vs-CLI byte-identity contract compares these."""
    out = json.loads(json.dumps(report))  # deep copy, JSON-normalised
    for key in _VOLATILE_TOP:
        out.pop(key, None)
    if isinstance(out.get("launch"), dict):
        out["launch"].pop("duration_s", None)
    for d in out.get("diagnostics", []):
        detail = d.get("detail")
        if isinstance(detail, dict):
            detail.pop("elapsed_s", None)
            detail.pop("span", None)
    return out


def http_status_for(code: int) -> int:
    """HTTP status for a per-request stage code: inputs the client can
    fix are 4xx, server-side failures 5xx."""
    if code == 0:
        return 200
    if code in (2, 3, 4, EXIT_USAGE):
        return 400
    return 500
