"""Per-source-line stall aggregation.

Joins PC samples with the SASS line table so the report can say, as in
the paper's Figure 2, "For line number 18, the warp stalls are:
lg_throttle = 64.4 % ...".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.stalls import StallReason
from repro.sampling.pcsampler import PCSamplingResult

__all__ = ["LineStallProfile", "build_line_profiles"]


@dataclass
class LineStallProfile:
    """Stall distribution for one CUDA source line."""

    line: int
    total_samples: int
    by_reason: dict[StallReason, int] = field(default_factory=dict)

    def share(self, reason: StallReason) -> float:
        """Fraction of this line's *stall* samples with ``reason``."""
        stall_total = sum(
            v for k, v in self.by_reason.items()
            if k is not StallReason.SELECTED
        )
        if stall_total == 0:
            return 0.0
        return self.by_reason.get(reason, 0) / stall_total

    def dominant(self) -> Optional[StallReason]:
        candidates = {
            k: v for k, v in self.by_reason.items()
            if k is not StallReason.SELECTED and v > 0
        }
        if not candidates:
            return None
        return max(candidates, key=lambda k: candidates[k])


def build_line_profiles(sampling: PCSamplingResult) -> dict[int, LineStallProfile]:
    """Aggregate a sampling result by source line (lines only; samples
    on unattributed PCs are dropped, as CUPTI does without line info)."""
    profiles: dict[int, LineStallProfile] = {}
    for s in sampling.samples:
        if s.line is None:
            continue
        prof = profiles.get(s.line)
        if prof is None:
            prof = profiles[s.line] = LineStallProfile(line=s.line, total_samples=0)
        prof.total_samples += s.samples
        prof.by_reason[s.reason] = prof.by_reason.get(s.reason, 0) + s.samples
    return profiles
