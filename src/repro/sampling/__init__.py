"""CUPTI PC Sampling API substitute.

The real GPUscout uses CUPTI's PC Sampling API to attribute warp-stall
reasons to program counters (and through the line table to CUDA source
lines).  Our simulator tracks stall cycles exactly; this package
converts them into the *sampled* representation CUPTI produces — counts
of samples per (PC, stall reason) at a configurable sampling period —
and offers the per-line aggregation GPUscout's report correlates with
SASS findings.
"""

from repro.sampling.pcsampler import PCSample, PCSampler, PCSamplingResult
from repro.sampling.stall_report import LineStallProfile, build_line_profiles

__all__ = [
    "PCSample",
    "PCSampler",
    "PCSamplingResult",
    "LineStallProfile",
    "build_line_profiles",
]
