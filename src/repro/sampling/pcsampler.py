"""Periodic PC sampling over simulated stall attribution.

CUPTI samples one warp per SM every ``2**period`` cycles and records
its PC and issue/stall state.  Statistically, the sample counts per
(PC, reason) converge to the stall-cycle distribution — which our
simulator tracks exactly.  :class:`PCSampler` therefore draws the
deterministic expectation: ``samples = stall_cycles / period`` allocated
by largest remainder, which is what an infinitely-averaged CUPTI run
would report.  Sampling *overhead* (the run-time cost the paper's
Figure 6 shows growing with problem size) is modelled in
:func:`PCSampler.overhead_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.simulator import LaunchResult
from repro.testing.faultinject import fail_point
from repro.gpu.stalls import StallReason

__all__ = ["PCSample", "PCSamplingResult", "PCSampler"]


@dataclass(frozen=True)
class PCSample:
    """Aggregated samples for one (PC, stall reason) pair."""

    pc: int
    line: Optional[int]
    reason: StallReason
    samples: int


@dataclass
class PCSamplingResult:
    """What a CUPTI PC-sampling pass reports for one kernel launch."""

    kernel: str
    period_cycles: int
    total_samples: int
    samples: list[PCSample] = field(default_factory=list)

    # -- aggregation helpers -------------------------------------------------
    def by_reason(self) -> dict[StallReason, int]:
        out: dict[StallReason, int] = {}
        for s in self.samples:
            out[s.reason] = out.get(s.reason, 0) + s.samples
        return out

    def stall_share(self, reason: StallReason) -> float:
        """Fraction of *stall* samples (SELECTED excluded) with ``reason``."""
        totals = self.by_reason()
        stall_total = sum(
            v for k, v in totals.items() if k is not StallReason.SELECTED
        )
        if stall_total == 0:
            return 0.0
        return totals.get(reason, 0) / stall_total

    def at_pc(self, pc: int) -> dict[StallReason, int]:
        out: dict[StallReason, int] = {}
        for s in self.samples:
            if s.pc == pc:
                out[s.reason] = out.get(s.reason, 0) + s.samples
        return out

    def at_line(self, line: int) -> dict[StallReason, int]:
        out: dict[StallReason, int] = {}
        for s in self.samples:
            if s.line == line:
                out[s.reason] = out.get(s.reason, 0) + s.samples
        return out

    def dominant_reason_at(self, pc: int) -> Optional[StallReason]:
        """Largest non-SELECTED stall reason at ``pc``."""
        at = {
            k: v for k, v in self.at_pc(pc).items()
            if k is not StallReason.SELECTED
        }
        if not at:
            return None
        return max(at, key=lambda k: at[k])


class PCSampler:
    """Turns a :class:`LaunchResult` into CUPTI-style samples."""

    def __init__(self, period_cycles: int = 2048,
                 overhead_per_sample_s: float = 2.0e-6,
                 setup_s: float = 0.08):
        if period_cycles < 1:
            raise ValueError("sampling period must be >= 1 cycle")
        self.period_cycles = period_cycles
        self.overhead_per_sample_s = overhead_per_sample_s
        self.setup_s = setup_s

    def sample(self, result: LaunchResult) -> PCSamplingResult:
        """Draw the expected sample counts from exact stall cycles."""
        fail_point("sampler.sample")
        program = result.compiled.program
        table = result.counters.stall_cycles
        entries = sorted(table.items(), key=lambda kv: (kv[0][0], kv[0][1].value))
        quota: list[tuple[tuple[int, StallReason], float]] = [
            (key, cycles / self.period_cycles) for key, cycles in entries
        ]
        samples: list[PCSample] = []
        total = 0
        # largest-remainder allocation keeps per-(pc,reason) integers
        floors = [(key, int(q)) for key, q in quota]
        remainders = sorted(
            ((q - int(q), i) for i, (_, q) in enumerate(quota)),
            reverse=True,
        )
        counts = [f for _, f in floors]
        target_total = int(round(sum(q for _, q in quota)))
        deficit = target_total - sum(counts)
        for _, i in remainders[: max(deficit, 0)]:
            counts[i] += 1
        for (key, _), n in zip(floors, counts):
            if n <= 0:
                continue
            pc, reason = key
            offset = pc * 16
            line = None
            try:
                line = program.at_offset(offset).line
            except KeyError:
                pass
            samples.append(PCSample(pc=pc, line=line, reason=reason, samples=n))
            total += n
        return PCSamplingResult(
            kernel=program.name,
            period_cycles=self.period_cycles,
            total_samples=total,
            samples=samples,
        )

    def overhead_seconds(self, result: LaunchResult) -> float:
        """Modelled wall-clock cost of the sampling pass.

        CUPTI PC sampling re-runs the kernel in serialized mode and
        processes each sample on the host, so the cost scales with the
        kernel duration (Figure 6's middle series)."""
        n_samples = result.cycles / self.period_cycles
        return (
            self.setup_s
            + result.duration_s * 2.0
            + n_samples * self.overhead_per_sample_s
        )
