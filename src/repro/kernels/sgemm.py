"""SGEMM ``C <- alpha*A*B + beta*C`` (paper §5.3).

Variants mirror the case study's optimization ladder:

* ``naive`` — one thread per C element, dot product straight from
  global memory.  GPUscout flags the read-only A/B loads for
  ``__restrict__`` and the reused loads for shared memory;
* ``shared`` — shared-memory tiling (the paper's ~54x step); each
  thread stages **two adjacent** elements per tile, so re-analyzing
  this kernel makes GPUscout "newly recommend a vectorized load
  optimization" exactly as in the case study;
* ``shared_vec`` — the follow-up fix: tiles staged and C updated
  through ``float4`` (128-bit) accesses, four C columns per thread.
  Register pressure rises markedly (the paper reports 25 -> 72
  registers and an occupancy warning).

Launch shapes differ per variant; use :func:`sgemm_launch`.
All dimensions must be multiples of ``TILE`` (= 16; the case study's
10240 qualifies).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cudalite import (
    KernelBuilder,
    compile_kernel,
    f32,
    float4,
    i32,
    ptr,
)
from repro.cudalite.compiler import CompiledKernel
from repro.cudalite.intrinsics import mad
from repro.gpu.simulator import LaunchConfig

__all__ = ["build_sgemm", "sgemm_args", "sgemm_launch", "sgemm_reference",
           "SGEMM_VARIANTS", "TILE"]

SGEMM_VARIANTS = ("naive", "shared", "shared_vec")
TILE = 16


def build_sgemm(variant: str = "naive",
                max_registers: Optional[int] = None) -> CompiledKernel:
    """Compile one SGEMM variant (see the module docstring)."""
    if variant not in SGEMM_VARIANTS:
        raise ValueError(f"variant must be one of {SGEMM_VARIANTS}")
    if variant == "naive":
        return _build_naive(max_registers)
    if variant == "shared":
        return _build_shared(max_registers)
    return _build_shared_vec(max_registers)


def sgemm_launch(variant: str, m: int, n: int) -> LaunchConfig:
    """The launch configuration matching :func:`build_sgemm`."""
    if m % TILE or n % TILE:
        raise ValueError(f"m/n must be multiples of TILE={TILE}")
    grid = (n // TILE, m // TILE)
    if variant == "naive":
        return LaunchConfig(grid=grid, block=(TILE, TILE))
    if variant == "shared":
        return LaunchConfig(grid=grid, block=(TILE // 2, TILE))
    if variant == "shared_vec":
        return LaunchConfig(grid=grid, block=(TILE // 4, TILE))
    raise ValueError(f"variant must be one of {SGEMM_VARIANTS}")


def _params(kb: KernelBuilder):
    a = kb.param("a", ptr(f32))
    b = kb.param("b", ptr(f32))
    c = kb.param("c", ptr(f32))
    m = kb.param("m", i32)
    n = kb.param("n", i32)
    kk = kb.param("k", i32)
    alpha = kb.param("alpha", f32)
    beta = kb.param("beta", f32)
    return a, b, c, m, n, kk, alpha, beta


def _build_naive(max_registers) -> CompiledKernel:
    kb = KernelBuilder("sgemm_naive", max_registers=max_registers)
    a, b, c, m, n, kk, alpha, beta = _params(kb)
    row = kb.let("row", kb.block_idx.y * kb.block_dim.y + kb.thread_idx.y,
                 dtype=i32)
    col = kb.let("col", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
                 dtype=i32)
    kb.return_if((row >= m).logical_or(col >= n))
    acc = kb.let("acc", 0.0, dtype=f32)
    with kb.for_range("p", 0, kk) as p:
        kb.assign(acc, mad(a[row * kk + p], b[p * n + col], acc))
    kb.store(c, row * n + col, alpha * acc + beta * c[row * n + col])
    return compile_kernel(kb.build(), max_registers=max_registers)


def _build_shared(max_registers) -> CompiledKernel:
    """16x16 tiles staged through shared memory; block (8, 16) — every
    thread loads/computes *two adjacent columns*, giving the adjacent
    32-bit-load pattern the paper's follow-up analysis flags."""
    kb = KernelBuilder("sgemm_shared", max_registers=max_registers)
    a, b, c, m, n, kk, alpha, beta = _params(kb)
    asub = kb.shared_array("asub", f32, TILE * TILE)
    bsub = kb.shared_array("bsub", f32, TILE * TILE)
    tx = kb.let("tx", kb.thread_idx.x, dtype=i32)  # 0..7
    ty = kb.let("ty", kb.thread_idx.y, dtype=i32)  # 0..15
    row = kb.let("row", kb.block_idx.y * TILE + ty, dtype=i32)
    cx = kb.let("cx", tx * 2, dtype=i32)  # first of the 2 columns
    col = kb.let("col", kb.block_idx.x * TILE + cx, dtype=i32)
    acc0 = kb.let("acc0", 0.0, dtype=f32)
    acc1 = kb.let("acc1", 0.0, dtype=f32)
    ntiles = kb.let("ntiles", kk / TILE, dtype=i32)
    with kb.for_range("t", 0, ntiles) as t:
        asub[ty * TILE + cx] = a[row * kk + t * TILE + cx]
        asub[ty * TILE + cx + 1] = a[row * kk + t * TILE + cx + 1]
        bsub[ty * TILE + cx] = b[(t * TILE + ty) * n + col]
        bsub[ty * TILE + cx + 1] = b[(t * TILE + ty) * n + col + 1]
        kb.sync_threads()
        with kb.for_range("p", 0, TILE, unroll=True) as p:
            kb.assign(acc0, mad(asub[ty * TILE + p], bsub[p * TILE + cx], acc0))
            kb.assign(acc1, mad(asub[ty * TILE + p],
                                bsub[p * TILE + cx + 1], acc1))
        kb.sync_threads()
    kb.store(c, row * n + col, alpha * acc0 + beta * c[row * n + col])
    kb.store(c, row * n + col + 1, alpha * acc1 + beta * c[row * n + col + 1])
    return compile_kernel(kb.build(), max_registers=max_registers)


def _build_shared_vec(max_registers) -> CompiledKernel:
    """Shared tiling with float4 (128-bit) staging: block (4, 16), each
    thread loads one float4 of A/B per tile and computes four adjacent
    C columns held in a float4 accumulator."""
    kb = KernelBuilder("sgemm_shared_vec", max_registers=max_registers)
    a, b, c, m, n, kk, alpha, beta = _params(kb)
    a4 = a.as_vector(float4)
    b4 = b.as_vector(float4)
    c4 = c.as_vector(float4)
    asub = kb.shared_array("asub", f32, TILE * TILE)
    bsub = kb.shared_array("bsub", float4, TILE * TILE // 4)
    tx = kb.let("tx", kb.thread_idx.x, dtype=i32)  # 0..3
    ty = kb.let("ty", kb.thread_idx.y, dtype=i32)  # 0..15
    row = kb.let("row", kb.block_idx.y * TILE + ty, dtype=i32)
    col4 = kb.let("col4", kb.block_idx.x * (TILE // 4) + tx, dtype=i32)
    k4 = kb.let("k4", kk / 4, dtype=i32)
    n4 = kb.let("n4", n / 4, dtype=i32)
    acc = kb.let("acc", 0.0, dtype=float4)
    ntiles = kb.let("ntiles", kk / TILE, dtype=i32)
    with kb.for_range("t", 0, ntiles) as t:
        av = kb.let("av", a4[row * k4 + t * (TILE // 4) + tx], dtype=float4)
        asub[ty * TILE + tx * 4] = av.x
        asub[ty * TILE + tx * 4 + 1] = av.y
        asub[ty * TILE + tx * 4 + 2] = av.z
        asub[ty * TILE + tx * 4 + 3] = av.w
        bsub[ty * (TILE // 4) + tx] = b4[(t * TILE + ty) * n4 + col4]
        kb.sync_threads()
        with kb.for_range("p", 0, TILE, unroll=True) as p:
            kb.assign(
                acc,
                mad(asub[ty * TILE + p], bsub[p * (TILE // 4) + tx], acc),
            )
        kb.sync_threads()
    out = kb.let("out", mad(c4[row * n4 + col4], beta, acc * alpha),
                 dtype=float4)
    kb.store(c4, row * n4 + col4, out)
    return compile_kernel(kb.build(), max_registers=max_registers)


def sgemm_args(m: int, n: int, k: int, alpha: float = 1.0, beta: float = 0.5,
               rng_seed: int = 11) -> dict:
    """Host-side staging for one SGEMM launch (row-major matrices)."""
    if m % TILE or n % TILE or k % TILE:
        raise ValueError(f"matrix dims must be multiples of TILE={TILE}")
    rng = np.random.default_rng(rng_seed)
    a = (rng.random((m, k)) - 0.5).astype(np.float32)
    b = (rng.random((k, n)) - 0.5).astype(np.float32)
    c = (rng.random((m, n)) - 0.5).astype(np.float32)
    return {
        "a": a.ravel(), "b": b.ravel(), "c": c.ravel(),
        "m": m, "n": n, "k": k,
        "alpha": np.float32(alpha), "beta": np.float32(beta),
    }


def sgemm_reference(args: dict) -> np.ndarray:
    """NumPy reference ``alpha*A@B + beta*C`` (float64 accumulate)."""
    m, n, k = args["m"], args["n"], args["k"]
    a = args["a"].reshape(m, k).astype(np.float64)
    b = args["b"].reshape(k, n).astype(np.float64)
    c = args["c"].reshape(m, n).astype(np.float64)
    out = float(args["alpha"]) * (a @ b) + float(args["beta"]) * c
    return out.astype(np.float32).ravel()
