"""2D Jacobi heat-transfer stencil (paper §5.2).

Each interior point updates as::

    T_new = T_old + k * (T_top + T_bottom + T_left + T_right - 4*T_old)

plus a position-dependent heat-source term whose index arithmetic
requires exactly **six I2F conversions** (the count GPUscout flags in
the paper's case study: "our tool points at six I2F datatype
conversions ... unavoidable due to the nature of the algorithm").

Variants:

* ``naive`` — plain global loads; the left/right neighbours come off the
  same base register with ±4-byte offsets, which triggers the texture /
  vectorize pattern analyses;
* ``restrict`` — ``T_in`` declared ``const __restrict__``, so loads go
  through the read-only cache (``LDG.E.CONSTANT``);
* ``texture`` — neighbours fetched with ``tex2D`` from a tiled texture,
  exploiting the texture cache's 2D locality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.cudalite.compiler import CompiledKernel

__all__ = ["build_heat", "heat_args", "heat_reference", "HEAT_VARIANTS"]

HEAT_VARIANTS = ("naive", "restrict", "texture")


def build_heat(variant: str = "naive",
               max_registers: Optional[int] = None) -> CompiledKernel:
    """Compile one Jacobi-step variant (one time step)."""
    if variant not in HEAT_VARIANTS:
        raise ValueError(f"variant must be one of {HEAT_VARIANTS}")
    kb = KernelBuilder(f"jacobi_{variant}", max_registers=max_registers)
    use_tex = variant == "texture"
    if not use_tex:
        t_in = kb.param(
            "t_in",
            ptr(f32, readonly=variant == "restrict",
                restrict=variant == "restrict"),
        )
    t_out = kb.param("t_out", ptr(f32))
    w = kb.param("w", i32)
    h = kb.param("h", i32)
    k = kb.param("k", f32)
    amp = kb.param("amp", f32)
    tex = kb.texture("t_tex", f32) if use_tex else None

    ix = kb.let("ix", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
                dtype=i32)
    iy = kb.let("iy", kb.block_idx.y * kb.block_dim.y + kb.thread_idx.y,
                dtype=i32)
    kb.return_if((ix >= w).logical_or(iy >= h))
    idx = kb.let("idx", iy * w + ix, dtype=i32)

    # position-dependent heat source: exactly six I2F conversions
    # (ix, iy, w, h, ix-w/2, iy-h/2), as in the paper's case study
    xf = kb.let("xf", ix.cast(f32))
    yf = kb.let("yf", iy.cast(f32))
    wf = kb.let("wf", w.cast(f32))
    hf = kb.let("hf", h.cast(f32))
    dxf = kb.let("dxf", (ix - (w >> 1)).cast(f32))
    dyf = kb.let("dyf", (iy - (h >> 1)).cast(f32))
    source = kb.let(
        "source",
        amp * (xf * yf + 0.0001 * (dxf * dxf + dyf * dyf)) / (wf * hf),
    )

    interior = (
        (ix > 0)
        .logical_and(ix < w - 1)
        .logical_and(iy > 0)
        .logical_and(iy < h - 1)
    )
    if use_tex:
        centre = kb.let("centre", kb.tex2d(tex, ix, iy))
        with kb.if_then(interior):
            top = kb.let("top", kb.tex2d(tex, ix, iy - 1))
            bottom = kb.let("bottom", kb.tex2d(tex, ix, iy + 1))
            left = kb.let("left", kb.tex2d(tex, ix - 1, iy))
            right = kb.let("right", kb.tex2d(tex, ix + 1, iy))
            kb.store(
                t_out, idx,
                centre + k * (top + bottom + left + right - 4.0 * centre)
                + source,
            )
        with kb.else_then():
            kb.store(t_out, idx, centre)
    else:
        centre = kb.let("centre", t_in[idx])
        with kb.if_then(interior):
            top = kb.let("top", t_in[idx - w])
            bottom = kb.let("bottom", t_in[idx + w])
            left = kb.let("left", t_in[idx - 1])
            right = kb.let("right", t_in[idx + 1])
            kb.store(
                t_out, idx,
                centre + k * (top + bottom + left + right - 4.0 * centre)
                + source,
            )
        with kb.else_then():
            kb.store(t_out, idx, centre)
    return compile_kernel(kb.build(), max_registers=max_registers)


def heat_args(width: int, height: int, k: float = 0.2,
              amp: float = 0.05, rng_seed: int = 3,
              variant: str = "naive") -> dict:
    """Host-side staging: initial temperature field + output buffer."""
    rng = np.random.default_rng(rng_seed)
    t0 = (rng.random(width * height) * 10.0).astype(np.float32)
    out = np.zeros(width * height, dtype=np.float32)
    args = {"t_out": out, "w": width, "h": height,
            "k": np.float32(k), "amp": np.float32(amp)}
    if variant != "texture":
        args["t_in"] = t0
    return args, t0


def _source_term(width: int, height: int, amp: float) -> np.ndarray:
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float32)
    wf = np.float32(width)
    hf = np.float32(height)
    dx = (xs - np.float32(width // 2)).astype(np.float32)
    dy = (ys - np.float32(height // 2)).astype(np.float32)
    return (
        np.float32(amp)
        * (xs * ys + np.float32(0.0001) * (dx * dx + dy * dy))
        / (wf * hf)
    ).astype(np.float32)


def heat_reference(t0: np.ndarray, width: int, height: int,
                   k: float, amp: float, steps: int = 1) -> np.ndarray:
    """NumPy reference for ``steps`` Jacobi iterations."""
    t = t0.reshape(height, width).astype(np.float32).copy()
    src = _source_term(width, height, amp)
    kf = np.float32(k)
    for _ in range(steps):
        new = t.copy()
        lap = (
            t[:-2, 1:-1] + t[2:, 1:-1] + t[1:-1, :-2] + t[1:-1, 2:]
            - np.float32(4.0) * t[1:-1, 1:-1]
        )
        new[1:-1, 1:-1] = t[1:-1, 1:-1] + kf * lap + src[1:-1, 1:-1]
        t = new
    return t.ravel()
