"""Sum-reduction workload (extension; exercises §4.3/§4.4 together).

The classic CUDA optimization ladder for reductions, each rung mapping
to GPUscout territory:

* ``atomic`` — every thread ``atomicAdd``s its element into one global
  accumulator: the §4.4 worst case (kernel-wide serialization);
* ``shared`` — block-level tree reduction in shared memory with
  ``__syncthreads()`` between halving steps, one global atomic per
  block;
* ``warp`` — the modern idiom: shared tree down to warp width, then
  ``__shfl_down_sync`` finishes within registers — no memory traffic
  for the last five steps.

All variants reduce ``block_size`` elements per block into a single
float accumulator (deterministic data keeps float rounding identical
enough for tests to use modest tolerances).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cudalite import KernelBuilder, compile_kernel, f32, i32, ptr
from repro.cudalite.compiler import CompiledKernel
from repro.gpu.simulator import LaunchConfig

__all__ = ["build_reduction", "reduction_args", "reduction_launch",
           "reduction_reference", "REDUCTION_VARIANTS", "BLOCK"]

REDUCTION_VARIANTS = ("atomic", "shared", "warp")
BLOCK = 256


def build_reduction(variant: str = "shared",
                    max_registers: Optional[int] = None) -> CompiledKernel:
    """Compile one reduction variant (see the module docstring)."""
    if variant not in REDUCTION_VARIANTS:
        raise ValueError(f"variant must be one of {REDUCTION_VARIANTS}")
    kb = KernelBuilder(f"reduce_{variant}", max_registers=max_registers)
    src = kb.param("src", ptr(f32, readonly=True))
    total = kb.param("total", ptr(f32))
    g = kb.let("g", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    if variant == "atomic":
        kb.atomic_add_global(total, 0, src[g])
        return compile_kernel(kb.build(), max_registers=max_registers)

    tid = kb.let("tid", kb.thread_idx.x, dtype=i32)
    buf = kb.shared_array("buf", f32, BLOCK)
    buf[tid] = src[g]
    kb.sync_threads()
    stop = 32 if variant == "warp" else 1
    stride = BLOCK // 2
    while stride >= stop:
        with kb.if_then(tid < stride):
            buf[tid] = buf[tid] + buf[tid + stride]
        kb.sync_threads()
        stride //= 2
    if variant == "warp":
        v = kb.let("v", buf[tid], dtype=f32)
        for delta in (16, 8, 4, 2, 1):
            kb.assign(v, v + kb.shfl_down(v, delta))
        with kb.if_then(tid.eq(0)):
            kb.atomic_add_global(total, 0, v)
    else:
        with kb.if_then(tid.eq(0)):
            kb.atomic_add_global(total, 0, buf[0])
    return compile_kernel(kb.build(), max_registers=max_registers)


def reduction_launch(n: int) -> LaunchConfig:
    if n % BLOCK:
        raise ValueError(f"n must be a multiple of BLOCK={BLOCK}")
    return LaunchConfig(grid=(n // BLOCK, 1), block=(BLOCK, 1))


def reduction_args(n: int, rng_seed: int = 21) -> dict:
    rng = np.random.default_rng(rng_seed)
    data = (rng.random(n, dtype=np.float32) - 0.5)
    return {"src": data, "total": np.zeros(1, dtype=np.float32)}


def reduction_reference(data: np.ndarray) -> float:
    """float64 reference sum (tests use a tolerance for f32 ordering)."""
    return float(data.astype(np.float64).sum())
