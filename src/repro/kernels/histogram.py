"""Histogram workload for the §4.4 (shared atomics) analysis.

The paper describes the detector and the expected dynamics — global
atomics serialize kernel-wide and resolve in L2, shared atomics
serialize per block at the cost of MIO pressure — but has no dedicated
case study.  This workload supplies one:

* ``global`` — every element update is an ``atomicAdd`` on the global
  histogram, inside the per-thread loop: the §4.4 worst case ("GPUscout
  warns of global atomics especially detected in a for-loop");
* ``shared`` — the recommended fix: block-private bins in shared
  memory updated with ``ATOMS``, merged to global once per block.

``histogram_reference`` provides the NumPy oracle; counts are exact
(integer bins).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cudalite import KernelBuilder, compile_kernel, i32, ptr
from repro.cudalite.compiler import CompiledKernel
from repro.gpu.simulator import LaunchConfig

__all__ = ["build_histogram", "histogram_args", "histogram_launch",
           "histogram_reference", "HISTOGRAM_VARIANTS", "NUM_BINS"]

HISTOGRAM_VARIANTS = ("global", "shared")
NUM_BINS = 64
ITEMS_PER_THREAD = 8


def build_histogram(variant: str = "global",
                    max_registers: Optional[int] = None) -> CompiledKernel:
    """Compile one histogram variant (see the module docstring)."""
    if variant not in HISTOGRAM_VARIANTS:
        raise ValueError(f"variant must be one of {HISTOGRAM_VARIANTS}")
    kb = KernelBuilder(f"histogram_{variant}", max_registers=max_registers)
    data = kb.param("data", ptr(i32, readonly=True))
    bins = kb.param("bins", ptr(i32))
    t = kb.let("t", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
               dtype=i32)
    base = kb.let("base", t * ITEMS_PER_THREAD, dtype=i32)
    if variant == "global":
        with kb.for_range("i", 0, ITEMS_PER_THREAD) as i:
            v = kb.let("v", data[base + i])
            kb.atomic_add_global(bins, v % NUM_BINS, 1)
    else:
        local = kb.shared_array("local_bins", i32, NUM_BINS)
        tid = kb.let("tid", kb.thread_idx.x, dtype=i32)
        # zero the block-private bins (blockDim >= NUM_BINS assumed)
        with kb.if_then(tid < NUM_BINS):
            local[tid] = 0
        kb.sync_threads()
        with kb.for_range("i", 0, ITEMS_PER_THREAD) as i:
            v = kb.let("v", data[base + i])
            kb.atomic_add_shared(local, v % NUM_BINS, 1)
        kb.sync_threads()
        with kb.if_then(tid < NUM_BINS):
            kb.atomic_add_global(bins, tid, local[tid])
    return compile_kernel(kb.build(), max_registers=max_registers)


def histogram_launch(n_threads: int,
                     block: int = 256) -> LaunchConfig:
    """Launch shape covering ``n_threads`` threads."""
    if n_threads % block:
        raise ValueError("n_threads must be a multiple of the block size")
    return LaunchConfig(grid=(n_threads // block, 1), block=(block, 1))


def histogram_args(n_threads: int, rng_seed: int = 5,
                   skew: float = 0.0) -> dict:
    """Host-side staging.

    ``skew`` in [0, 1]: 0 = uniform bins (little atomic contention),
    1 = every element hits bin 0 (maximal serialization).
    """
    rng = np.random.default_rng(rng_seed)
    n = n_threads * ITEMS_PER_THREAD
    uniform = rng.integers(0, NUM_BINS, size=n)
    mask = rng.random(n) < skew
    data = np.where(mask, 0, uniform).astype(np.int32)
    return {"data": data, "bins": np.zeros(NUM_BINS, dtype=np.int32)}


def histogram_reference(data: np.ndarray) -> np.ndarray:
    """Exact NumPy histogram over NUM_BINS bins."""
    return np.bincount(data % NUM_BINS, minlength=NUM_BINS).astype(np.int32)
