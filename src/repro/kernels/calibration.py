"""Calibrated simulator configurations for the case-study benchmarks.

The paper's evaluation ran on a physical V100 at problem sizes (e.g.
10240 x 10240 SGEMM) far beyond what a Python timing simulator can
execute instruction-by-instruction.  The benchmark harness therefore
runs each case study at a reduced scale on a *calibrated* spec whose
resource balance reproduces the qualitative regime the paper's kernels
were in — which bottleneck binds, which stall reasons dominate, and
which optimization wins by roughly which factor.  EXPERIMENTS.md
records paper-vs-measured for every number.

Calibration rationale per workload:

* **mixbench** — per-thread-contiguous scalar loads are lane-strided,
  so every 32-bit ``LDG.E`` spreads over 32 sectors; the naive variant
  is LG/LSU-wavefront-bound while vectorized loads cut the wavefront
  count 4x.  DRAM bandwidth/latency are relaxed so the memory *pipe*,
  not raw bandwidth (identical for both variants), is the binding
  constraint — matching the paper's diagnosis that the win comes from
  "increased bandwidth utilization and a decreased number of
  instructions".
* **heat** — run with 1-D row blocks at a width where one texel row
  exceeds the L1 but the *tiled* texture cache keeps the 2D
  neighbourhood resident; the L2 slice bandwidth is the naive
  variant's bottleneck.  This reproduces the paper's texture speedup
  (~1.65x) and the TEX-throttle share after the switch (~25 %).
* **sgemm** — caches are scaled so that at bench size the naive
  kernel's B-column re-reads miss (as they would at 10240^2 on real
  hardware), making it long-scoreboard-bound; the MIO rate is 2
  shared-memory transactions/cycle (128-byte wavefront halves).
"""

from __future__ import annotations

from repro.gpu.config import GPUSpec

__all__ = ["mixbench_spec", "heat_spec", "sgemm_spec"]


def mixbench_spec() -> GPUSpec:
    """Spec for §5.1 (see module docstring)."""
    return GPUSpec.small(1).with_(
        name="mixbench-bench",
        dram_sectors_per_cycle=8.0,
        lat_dram=300,
        lsu_sectors_per_cycle=2.0,
    )


def heat_spec() -> GPUSpec:
    """Spec for §5.2 (see module docstring)."""
    return GPUSpec.small(1).with_(
        name="heat-bench",
        l1_bytes=2 * 1024,
        l2_bytes=16 * 1024,
        l2_sectors_per_cycle=0.4,
        tex_cache_bytes=16 * 1024,
        tex_requests_per_cycle=0.5,
        tex_queue_depth=12.0,
        mufu_ops_per_cycle=0.5,
        issue_mufu=2,
        dram_sectors_per_cycle=1.0,
    )


def sgemm_spec() -> GPUSpec:
    """Spec for §5.3 (see module docstring)."""
    return GPUSpec.small(1).with_(
        name="sgemm-bench",
        l1_bytes=4 * 1024,
        l2_bytes=16 * 1024,
        dram_sectors_per_cycle=1.0,
        mio_transactions_per_cycle=2.0,
        mio_queue_depth=6.0,
    )
