"""Case-study workloads (paper §5).

Each module builds the paper's kernels in every variant the case study
compares, plus host-side helpers (argument staging, NumPy references):

* :mod:`repro.kernels.mixbench` — §5.1: ``benchmark_func`` with
  single-precision / double-precision / integer MAD streams, naive and
  vectorized;
* :mod:`repro.kernels.heat` — §5.2: 2D Jacobi heat-transfer stencil,
  naive / texture-memory / ``__restrict__`` variants;
* :mod:`repro.kernels.sgemm` — §5.3: SGEMM, naive / shared-memory
  tiled / shared+vectorized variants;
* :mod:`repro.kernels.histogram` — the §4.4 workload this repo adds:
  global vs shared atomics;
* :mod:`repro.kernels.reduction` — extension ladder: atomic -> shared
  tree -> warp shuffle.

``repro.kernels.calibration`` holds the per-case-study simulator specs
used by the benchmark harness.
"""

from repro.kernels.mixbench import build_mixbench, mixbench_reference
from repro.kernels.heat import build_heat, heat_reference
from repro.kernels.sgemm import build_sgemm, sgemm_reference
from repro.kernels.histogram import build_histogram, histogram_reference
from repro.kernels.reduction import build_reduction, reduction_reference

__all__ = [
    "build_mixbench",
    "mixbench_reference",
    "build_heat",
    "heat_reference",
    "build_sgemm",
    "sgemm_reference",
    "build_histogram",
    "histogram_reference",
    "build_reduction",
    "reduction_reference",
]
