"""Mixbench ``benchmark_func`` (paper §5.1).

Mixbench executes multiply-add streams of configurable operational
intensity.  Each thread loads ``granularity`` elements, iterates
``compute_iterations`` rounds of ``x = x*x + seed`` over them, reduces,
and stores one result.

Variants:

* **naive** — ``granularity`` scalar loads per thread (unrolled), the
  32-bit ``LDG.E`` pattern GPUscout's §4.1 analysis flags;
* **vectorized** — the paper's fix: 128-bit vector loads
  (``float4``/``int4``; ``double2`` for DP, the widest 128-bit-aligned
  double vector) so the load loop runs for a quarter (half) the trips.

Note versus upstream mixbench: the array is laid out so each *thread*
reads ``granularity`` contiguous elements (upstream strides by block
size).  This matches the transformed access pattern the paper's Listing
2 creates with ``reinterpret_cast<float4*>`` and keeps both variants
bitwise-comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cudalite import (
    KernelBuilder,
    compile_kernel,
    double2,
    f32,
    f64,
    float4,
    i32,
    int4,
    ptr,
)
from repro.cudalite.compiler import CompiledKernel
from repro.cudalite.intrinsics import mad

__all__ = ["build_mixbench", "mixbench_args", "mixbench_reference",
           "MIXBENCH_DTYPES"]

MIXBENCH_DTYPES = ("sp", "dp", "int")

_SCALAR = {"sp": f32, "dp": f64, "int": i32}
_VECTOR = {"sp": float4, "dp": double2, "int": int4}


def build_mixbench(
    dtype: str = "sp",
    granularity: int = 8,
    vectorized: bool = False,
    max_registers: Optional[int] = None,
) -> CompiledKernel:
    """Compile one mixbench variant.

    ``granularity`` must be divisible by the vector width when
    ``vectorized`` (the paper notes the benchmark's hard-coded size is
    divisible by 4, avoiding a remainder loop).
    """
    if dtype not in MIXBENCH_DTYPES:
        raise ValueError(f"dtype must be one of {MIXBENCH_DTYPES}")
    scalar = _SCALAR[dtype]
    vector = _VECTOR[dtype]
    if vectorized and granularity % vector.lanes != 0:
        raise ValueError(
            f"granularity {granularity} not divisible by vector width "
            f"{vector.lanes}"
        )
    suffix = "vec" if vectorized else "naive"
    kb = KernelBuilder(f"benchmark_func_{dtype}_{suffix}",
                       max_registers=max_registers)
    g_data = kb.param("g_data", ptr(scalar))
    g_out = kb.param("g_out", ptr(scalar))
    iters = kb.param("compute_iterations", i32)
    seed = kb.param("seed", scalar)
    gid = kb.let("gid", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x,
                 dtype=i32)

    if not vectorized:
        base = kb.let("base", gid * granularity)
        tmps = kb.local_array("tmps", scalar, granularity)
        with kb.for_range("j", 0, granularity, unroll=True) as j:
            tmps[j] = g_data[base + j]
        with kb.for_range("i", 0, iters):
            with kb.for_range("j", 0, granularity, unroll=True) as j:
                tmps[j] = mad(tmps[j], tmps[j], seed)
        acc = kb.let("acc", 0.0 if scalar.is_float else 0, dtype=scalar)
        with kb.for_range("j", 0, granularity, unroll=True) as j:
            kb.assign(acc, acc + tmps[j])
        kb.store(g_out, gid, acc)
    else:
        lanes = vector.lanes
        nvec = granularity // lanes
        gvec = g_data.as_vector(vector)
        base = kb.let("base", gid * nvec)
        tmps = kb.local_array("tmps", vector, nvec)
        with kb.for_range("j", 0, nvec, unroll=True) as j:
            tmps[j] = gvec[base + j]
        with kb.for_range("i", 0, iters):
            with kb.for_range("j", 0, nvec, unroll=True) as j:
                tmps[j] = mad(tmps[j], tmps[j], seed)
        acc = kb.let("acc", 0.0 if scalar.is_float else 0, dtype=scalar)
        # accumulate lane-wise (unrolled explicitly: lane extraction is a
        # compile-time register selection)
        for j in range(nvec):
            for lane in range(lanes):
                kb.assign(acc, acc + _lane(tmps[j], lane))
        kb.store(g_out, gid, acc)
    return compile_kernel(kb.build(), max_registers=max_registers)


def _lane(vec_expr, lane: int):
    from repro.cudalite.builder import E
    from repro.cudalite import ast as A

    return E(A.VecLane(vec_expr.node, lane))


def mixbench_args(
    n_threads: int,
    granularity: int = 8,
    dtype: str = "sp",
    seed: float = 1.0 / 1024,
    rng_seed: int = 7,
) -> dict:
    """Host-side argument staging for one launch."""
    np_dtype = _SCALAR[dtype].np_dtype
    rng = np.random.default_rng(rng_seed)
    if dtype == "int":
        data = rng.integers(0, 3, size=n_threads * granularity).astype(np_dtype)
        seed_val = 3
    else:
        data = (rng.random(n_threads * granularity) * 0.5).astype(np_dtype)
        seed_val = np_dtype.type(seed)
    out = np.zeros(n_threads, dtype=np_dtype)
    return {"g_data": data, "g_out": out,
            "compute_iterations": 0, "seed": seed_val}


def mixbench_reference(
    data: np.ndarray, granularity: int, compute_iterations: int, seed
) -> np.ndarray:
    """NumPy reference of ``benchmark_func`` for correctness tests."""
    tmps = data.reshape(-1, granularity).copy()
    for _ in range(compute_iterations):
        if tmps.dtype.kind == "f":
            if tmps.dtype == np.float32:
                tmps = (tmps.astype(np.float32) * tmps + tmps.dtype.type(seed)
                        ).astype(tmps.dtype)
            else:
                tmps = tmps * tmps + seed
        else:
            tmps = (tmps.astype(np.int64) * tmps + int(seed)).astype(tmps.dtype)
    if tmps.dtype.kind == "f":
        acc = np.zeros(tmps.shape[0], dtype=tmps.dtype)
        for j in range(granularity):
            acc = acc + tmps[:, j]
        return acc
    return tmps.astype(np.int64).sum(axis=1).astype(tmps.dtype)
