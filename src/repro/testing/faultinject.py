"""Deterministic fault injection for the analysis pipeline.

Production components call :func:`fail_point` at named sites; the call
is a no-op unless a test armed that site with :func:`fail_at`::

    with fail_at("caches.l2_lookup", SimulationError) as fp:
        report = scout.analyze(kernel, config, args)
    assert fp.triggered == 1

Every site must be pre-registered in :data:`REGISTRY` — arming an
unknown name is an error, so the chaos suite can iterate
:func:`fail_points` and know the list is exhaustive.  Injection is
fully deterministic: a site fires on its first ``times`` hits (or every
hit with ``times=None``) and counts every trigger.

The inactive-path cost is one function call and one truthiness test of
an empty dict, cheap enough for the simulator's hot loops.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Type, Union

__all__ = ["REGISTRY", "SERVE_SITES", "FailPoint", "fail_at", "fail_point",
           "fail_points"]

#: every instrumented site: name -> where it lives / what failing there
#: simulates.  Keep in sync with the ``fail_point`` calls in the named
#: modules; ``tests/test_chaos.py`` exercises each entry.
REGISTRY: dict[str, str] = {
    "parser.program": "sass.parser.parse_sass — whole-listing parse",
    "parser.instruction": "sass.parser.parse_instruction — one SASS line",
    "executor.step": "gpu.executor.Executor.step — one warp instruction",
    "caches.l2_lookup": "gpu.caches.MemoryHierarchy.access — cache walk",
    "scheduler.run_wave": "gpu.scheduler.SMScheduler.run_wave — legacy "
                          "timed path",
    "scheduler.run_wave_trace": "gpu.scheduler.SMScheduler.run_wave_trace "
                                "— trace-driven timed path",
    "trace.build": "gpu.timed_trace.build_timed_trace — effect-trace "
                   "recording",
    "batch.functional": "gpu.batch.run_functional_batched — batched "
                        "functional completion",
    "simulator.launch": "gpu.simulator.Simulator.launch — launch setup",
    "sampler.sample": "sampling.pcsampler.PCSampler.sample — PC sampling",
    "metrics.collect": "metrics.collector.NsightComputeCLI.collect — ncu "
                       "metric collection",
    "engine.analysis": "core.engine — one registered SASS analysis",
    "engine.predictions": "core.engine — affine predicted/measured attach",
    "serve.cache_read": "gpu.trace_cache.FileStore.get — one disk cache "
                        "read (trace L2 or report L3); firing simulates "
                        "a corrupted entry, which is discarded and "
                        "recomputed",
    "serve.worker_death": "serve.pool.WorkerPool dispatch — the chosen "
                          "worker process dies before servicing the "
                          "request, which must be retried on another "
                          "shard member",
}

#: sites exercised by the serving-layer chaos tests
#: (``tests/serve/``) rather than the engine chaos suite
#: (``tests/test_chaos.py``) — they live outside the analyze() pipeline
SERVE_SITES = frozenset(
    {"serve.cache_read", "serve.worker_death"}
)

_lock = threading.Lock()
#: armed sites; empty on the happy path (the only state fail_point reads)
_ACTIVE: dict[str, "FailPoint"] = {}


class FailPoint:
    """One armed injection site (returned by :func:`fail_at`)."""

    __slots__ = ("name", "exc", "times", "triggered")

    def __init__(
        self,
        name: str,
        exc: Union[BaseException, Type[BaseException]],
        times: Optional[int],
    ):
        self.name = name
        self.exc = exc
        #: remaining firings (None = fire on every hit)
        self.times = times
        #: how often the site actually fired
        self.triggered = 0

    def _fire(self) -> None:
        if self.times is not None:
            if self.times <= 0:
                return
            self.times -= 1
        self.triggered += 1
        exc = self.exc
        if isinstance(exc, BaseException):
            raise exc
        raise exc(f"injected fault at {self.name!r}")


def fail_point(name: str) -> None:
    """Hook called by instrumented production code.  No-op unless a
    test armed ``name`` via :func:`fail_at`."""
    if _ACTIVE:
        fp = _ACTIVE.get(name)
        if fp is not None:
            fp._fire()


@contextmanager
def fail_at(
    name: str,
    exc: Union[BaseException, Type[BaseException]] = RuntimeError,
    times: Optional[int] = 1,
) -> Iterator[FailPoint]:
    """Arm fail-point ``name`` to raise ``exc`` for the duration of the
    ``with`` block.

    ``exc`` may be an exception class (instantiated with a message
    naming the site) or a ready-made instance.  ``times`` bounds how
    many hits fire (default: only the first, so retries and
    degradation-ladder rungs below the failure see a healthy
    component); ``times=None`` fires on every hit, simulating a
    persistently broken component.
    """
    if name not in REGISTRY:
        raise ValueError(
            f"unknown fail-point {name!r}; registered: "
            f"{sorted(REGISTRY)}"
        )
    fp = FailPoint(name, exc, times)
    with _lock:
        if name in _ACTIVE:
            raise RuntimeError(f"fail-point {name!r} is already armed")
        _ACTIVE[name] = fp
    try:
        yield fp
    finally:
        with _lock:
            _ACTIVE.pop(name, None)


def fail_points() -> list[str]:
    """All registered fail-point names (sorted, for exhaustive suites)."""
    return sorted(REGISTRY)
