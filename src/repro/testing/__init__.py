"""Testing utilities for the GPUscout reproduction.

Currently one member: the deterministic fault-injection harness in
:mod:`repro.testing.faultinject`, which the chaos-test suite uses to
prove every single-point failure still yields a well-formed partial
report.
"""

from repro.testing.faultinject import (
    FailPoint,
    fail_at,
    fail_point,
    fail_points,
)

__all__ = ["FailPoint", "fail_at", "fail_point", "fail_points"]
