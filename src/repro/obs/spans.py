"""Lightweight nestable span tracer (pipeline self-profiling).

The engine wraps every workflow stage in a span::

    with profiler.span("static:vectorize"):
        findings.extend(analysis.run(ctx))

Spans nest (a stack per profiler), cost two ``perf_counter_ns`` calls
each, and are **zero-cost when disabled**: a disabled profiler's
:meth:`Profiler.span` returns a shared no-op context manager and
records nothing.  :data:`NULL_PROFILER` is the canonical disabled
instance, so call sites never need an ``if profiler is not None`` —
they always hold a profiler and the disabled one does nothing.

Span names are ``stage`` or ``stage:detail`` — aggregations group by
the text before the first ``:`` (``static:vectorize`` and
``static:affine`` both roll up into ``static``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Optional

__all__ = ["NULL_PROFILER", "Profiler", "Span"]


@dataclass
class Span:
    """One completed (or still-open) span."""

    name: str
    start_ns: int
    end_ns: Optional[int] = None
    depth: int = 0
    #: free-form counters attached via :meth:`Profiler.count`
    counters: dict = field(default_factory=dict)

    @property
    def elapsed_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else perf_counter_ns()
        return end - self.start_ns

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9

    @property
    def stage(self) -> str:
        """The roll-up key: text before the first ``:``."""
        return self.name.split(":", 1)[0]

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "start_ns": self.start_ns,
            "elapsed_ns": self.elapsed_ns,
            "depth": self.depth,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        return out


class _SpanContext:
    """Context manager closing one span on exit (exceptions included —
    a failed stage still reports how long it ran before failing)."""

    __slots__ = ("_profiler", "_span")

    def __init__(self, profiler: "Profiler", span: Span):
        self._profiler = profiler
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.end_ns = perf_counter_ns()
        self._profiler._stack.pop()
        return None


class _NullContext:
    """Shared no-op context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Profiler:
    """Collects :class:`Span` records for one pipeline run.

    ``enabled=False`` makes every method a near-no-op (one attribute
    load and one branch); the engine passes :data:`NULL_PROFILER` when
    profiling is off so hot paths never pay for it.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str):
        """Open a nested span; use as ``with profiler.span("launch")``."""
        if not self.enabled:
            return _NULL_CONTEXT
        s = Span(name=name, start_ns=perf_counter_ns(),
                 depth=len(self._stack))
        self.spans.append(s)
        self._stack.append(s)
        return _SpanContext(self, s)

    def count(self, key: str, value) -> None:
        """Attach a counter to the innermost open span (dropped when no
        span is open or the profiler is disabled)."""
        if self.enabled and self._stack:
            self._stack[-1].counters[key] = value

    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def stage_totals(self) -> dict[str, float]:
        """Seconds per top-level stage (depth-0 spans only, so nested
        detail spans are not double-counted), insertion-ordered."""
        out: dict[str, float] = {}
        for s in self.spans:
            if s.depth == 0:
                out[s.stage] = out.get(s.stage, 0.0) + s.elapsed_s
        return out

    def total_seconds(self) -> float:
        return sum(self.stage_totals().values())

    def top_spans(self, n: int = 5) -> list[Span]:
        """The ``n`` longest depth-0 spans, longest first."""
        return sorted(
            (s for s in self.spans if s.depth == 0),
            key=lambda s: -s.elapsed_ns,
        )[:n]

    def to_dict(self) -> dict:
        """JSON-ready form: per-stage totals plus the full span list."""
        return {
            "stages": {k: v for k, v in self.stage_totals().items()},
            "total_s": self.total_seconds(),
            "spans": [s.to_dict() for s in self.spans],
        }


#: the canonical disabled profiler — safe to share, it never mutates
NULL_PROFILER = Profiler(enabled=False)
