"""Observability layer: self-profiling spans, simulated-GPU timeline
capture, source-line heatmaps, and production telemetry.

GPUscout's value proposition is attributing *where time goes* — warp
stalls to PCs, PCs to source lines (paper §3, §5).  This package turns
the data the pipeline already produces internally into exportable
views:

* :mod:`repro.obs.spans` — a nestable span/counter API the engine
  threads through every workflow stage, so each run can report its own
  overhead per stage (paper §6 / Figure 6, now per-stage);
* :mod:`repro.obs.timeline_capture` — opt-in recording of per-warp
  issue/stall intervals and memory-unit counter tracks during
  simulation, guaranteed not to perturb the simulated timing;
* :mod:`repro.obs.chrometrace` — Chrome Trace Event Format / Perfetto
  JSON export of a capture (one "process" per SM, one "thread" per
  warp) plus a structural validator;
* :mod:`repro.obs.heatmap` — per-PC stall cycles aggregated up the
  line table into an annotated source listing;
* :mod:`repro.obs.metrics` — the process-local metrics registry
  (counters / gauges / histograms, mergeable across the worker pool)
  behind ``GET /metrics``, the ``/v1/stats`` digest, and the
  ``[metrics]`` footer;
* :mod:`repro.obs.slog` — structured JSON logging (one object per
  line, ``REPRO_LOG=json|text|off``);
* :mod:`repro.obs.request_trace` — per-request Chrome traces that
  stitch server-side and worker-side spans across the fork boundary.
"""

from repro.obs.chrometrace import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.heatmap import Heatmap, LineHeat, build_heatmap
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    arm,
    armed,
    merge_snapshots,
    render_prometheus,
    validate_exposition,
)
from repro.obs.request_trace import build_request_trace, write_request_trace
from repro.obs.slog import configure as configure_logging
from repro.obs.slog import get_logger
from repro.obs.spans import NULL_PROFILER, Profiler, Span
from repro.obs.timeline_capture import TimelineCapture

__all__ = [
    "Heatmap",
    "LineHeat",
    "MetricsRegistry",
    "NULL_PROFILER",
    "Profiler",
    "REGISTRY",
    "Span",
    "TimelineCapture",
    "arm",
    "armed",
    "build_heatmap",
    "build_request_trace",
    "configure_logging",
    "get_logger",
    "merge_snapshots",
    "render_prometheus",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_exposition",
    "write_chrome_trace",
    "write_request_trace",
]
