"""Observability layer: self-profiling spans, simulated-GPU timeline
capture, and source-line heatmaps.

GPUscout's value proposition is attributing *where time goes* — warp
stalls to PCs, PCs to source lines (paper §3, §5).  This package turns
the data the pipeline already produces internally into three exportable
views:

* :mod:`repro.obs.spans` — a nestable span/counter API the engine
  threads through every workflow stage, so each run can report its own
  overhead per stage (paper §6 / Figure 6, now per-stage);
* :mod:`repro.obs.timeline_capture` — opt-in recording of per-warp
  issue/stall intervals and memory-unit counter tracks during
  simulation, guaranteed not to perturb the simulated timing;
* :mod:`repro.obs.chrometrace` — Chrome Trace Event Format / Perfetto
  JSON export of a capture (one "process" per SM, one "thread" per
  warp) plus a structural validator;
* :mod:`repro.obs.heatmap` — per-PC stall cycles aggregated up the
  line table into an annotated source listing.
"""

from repro.obs.chrometrace import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.heatmap import Heatmap, LineHeat, build_heatmap
from repro.obs.spans import NULL_PROFILER, Profiler, Span
from repro.obs.timeline_capture import TimelineCapture

__all__ = [
    "Heatmap",
    "LineHeat",
    "NULL_PROFILER",
    "Profiler",
    "Span",
    "TimelineCapture",
    "build_heatmap",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
