"""Per-request Chrome traces across the server/worker fork boundary.

``gpuscout serve --trace-dir DIR`` arms this: the server mints a
request ID, times its own side of a submission (validate, cache probe,
queue wait, dispatch), the worker's engine runs under its usual
:class:`~repro.obs.spans.Profiler`, and the worker ships its span list
back inside the result envelope.  :func:`build_request_trace` stitches
the two into one Chrome Trace Event object — the server as one trace
*process*, the worker as another — so a slow request opens in Perfetto
as a single timeline: queue wait on the server track, parse/launch/
sampling/metrics on the worker track, all under one request ID.

The stitch is sound because the pool forks its workers: parent and
child share ``CLOCK_MONOTONIC``, so ``perf_counter_ns`` timestamps
taken on either side live in one time domain and need no offset
correction.  Timestamps are rendered as microseconds relative to the
earliest span in the request (Chrome's ``ts`` unit is µs).

Output passes :func:`~repro.obs.chrometrace.validate_chrome_trace`."""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["build_request_trace", "write_request_trace"]


def _norm(span) -> dict:
    """A plain span dict from either a :class:`~repro.obs.spans.Span`
    or the JSON form the worker ships (name/start_ns/elapsed_ns)."""
    if isinstance(span, dict):
        return {
            "name": span["name"],
            "start_ns": span["start_ns"],
            "elapsed_ns": span.get("elapsed_ns", 0),
            "depth": span.get("depth", 0),
        }
    return {
        "name": span.name,
        "start_ns": span.start_ns,
        "elapsed_ns": span.elapsed_ns,
        "depth": span.depth,
    }


def build_request_trace(request_id: str, server_spans,
                        worker_spans=(), worker_id: Optional[int] = None,
                        endpoint: str = "", kernel: str = "") -> dict:
    """One Chrome Trace Event object for one request.

    ``server_spans`` are the HTTP-side spans (Span objects or dicts);
    ``worker_spans`` the engine spans shipped back over the result
    channel (empty for inline mode, where the engine ran in-process —
    pass its spans as a second server group is not needed: inline
    engine spans also arrive via ``worker_spans`` with
    ``worker_id=None`` and render as the "engine" process)."""
    groups = [("server", 0, [_norm(s) for s in server_spans])]
    wspans = [_norm(s) for s in worker_spans]
    if wspans:
        wpid = 1 + (worker_id if worker_id is not None else 0)
        wname = (f"worker {worker_id}" if worker_id is not None
                 else "engine (inline)")
        groups.append((wname, wpid, wspans))

    starts = [s["start_ns"] for _, _, spans in groups for s in spans]
    t0 = min(starts) if starts else 0

    events: list[dict] = []
    for pname, pid, spans in groups:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": pname},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": "request" if pid == 0
                              else "engine"},
        })
        for s in sorted(spans, key=lambda s: s["start_ns"]):
            events.append({
                "name": s["name"],
                "cat": "server" if pid == 0 else "engine",
                "ph": "X",
                "ts": (s["start_ns"] - t0) / 1e3,
                "dur": max(s["elapsed_ns"], 0) / 1e3,
                "pid": pid, "tid": 0,
                "args": {"request_id": request_id,
                         "depth": s["depth"]},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": {
            "request_id": request_id,
            "endpoint": endpoint,
            "kernel": kernel,
            "ts_unit": "us since first span of the request",
        },
    }


def write_request_trace(trace_dir: str, request_id: str,
                        data: dict) -> str:
    """Serialize one request trace to ``trace_dir/<request_id>.json``
    (creating the directory); returns the path written."""
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, f"{request_id}.json")
    with open(path, "w") as fh:
        json.dump(data, fh)
    return path
