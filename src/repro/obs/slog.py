"""Structured logging: one JSON object per line, stdlib-only.

The serve stack emits machine-parseable events (``http.access``,
``pool.respawn``, ``server.start`` …) through a tiny logger facade
rather than the stdlib :mod:`logging` tree — no handler/formatter
configuration can leak in from the host process, and the off mode is a
single integer comparison per call.

Three output modes, selected by ``REPRO_LOG`` (or programmatically via
:func:`configure`):

* ``off`` — the default; every call returns immediately;
* ``json`` — one compact JSON object per line on stderr:
  ``{"ts": ..., "level": "info", "logger": "serve.http",
  "event": "http.access", ...fields}``;
* ``text`` — the same record rendered ``LEVEL logger event k=v ...``
  for humans tailing a terminal.

``gpuscout serve --access-log`` turns the logger on (text mode at
DEBUG unless ``REPRO_LOG`` already chose a mode) so request lines and
the previously-suppressed :class:`http.server` notices become
visible."""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Optional, TextIO

__all__ = ["Logger", "configure", "get_logger", "mode"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_state_lock = threading.Lock()
_mode = "off"
_level = _LEVELS["info"]
_stream: Optional[TextIO] = None


def _init_from_env() -> None:
    global _mode, _level
    raw = os.environ.get("REPRO_LOG", "off").strip().lower()
    if raw in ("json", "text", "off"):
        _mode = raw
    lvl = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
    if lvl in _LEVELS:
        _level = _LEVELS[lvl]


_init_from_env()


def configure(mode: Optional[str] = None, level: Optional[str] = None,
              stream: Optional[TextIO] = None) -> None:
    """Set output mode (``json``/``text``/``off``), minimum level, and
    destination stream (default: current ``sys.stderr``).  ``None``
    arguments leave the corresponding setting untouched."""
    global _mode, _level, _stream
    with _state_lock:
        if mode is not None:
            if mode not in ("json", "text", "off"):
                raise ValueError(f"bad log mode {mode!r}")
            _mode = mode
        if level is not None:
            if level not in _LEVELS:
                raise ValueError(f"bad log level {level!r}")
            _level = _LEVELS[level]
        if stream is not None:
            _stream = stream


def mode() -> str:
    """The active output mode."""
    return _mode


class Logger:
    """A named event emitter; obtain via :func:`get_logger`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _mode == "off" or _LEVELS[level] < _level:
            return
        stream = _stream or sys.stderr
        if _mode == "json":
            rec = {"ts": round(time.time(), 6), "level": level,
                   "logger": self.name, "event": event}
            rec.update(fields)
            line = json.dumps(rec, separators=(",", ":"),
                              default=str)
        else:
            kv = " ".join(f"{k}={v}" for k, v in fields.items())
            line = (f"{level.upper():7s} {self.name} {event}"
                    + (f" {kv}" if kv else ""))
        with _state_lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):
                pass  # stream closed mid-shutdown: drop the record

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


_loggers: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """The (cached) logger for a dotted component name."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers.setdefault(name, Logger(name))
    return logger
