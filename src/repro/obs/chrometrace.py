"""Chrome Trace Event Format / Perfetto export of a timeline capture.

Open the output in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Layout:

* one **process** per SM (the simulator times one SM's share of the
  grid, so there is one: ``SM 0``);
* one **thread** per ``(block, warp)`` resident on that SM — each
  issued instruction is a complete (``X``) slice in category ``issue``,
  and the stall the warp paid before the issue is an ``X`` slice in
  category ``stall`` named after the :class:`StallReason`;
* **counter** (``C``) tracks for the LSU/MIO/TEX backlogs, the L1/L2
  hit rates, cumulative issued instructions, and resident (eligible)
  warps derived from slice lifetimes;
* wave-boundary annotations as instant (``i``) events.

Timestamps are simulated **cycles rendered as microseconds** (1 cycle
== 1 µs) — Chrome's ``ts`` unit is µs and cycles are the native unit
of the timing model; ``metadata.ts_unit`` records the convention.

:func:`validate_chrome_trace` is the structural validator the CI smoke
pipes traces through: every ``B`` has an ``E``, ``ts`` is monotone per
thread, and every pid/tid used by a slice is declared via metadata
events.
"""

from __future__ import annotations

import json

__all__ = ["to_chrome_trace", "validate_chrome_trace",
           "write_chrome_trace"]

#: counter-track names, stable for golden tests
_COUNTER_TRACKS = (
    ("lsu backlog", "lsu_backlog", "cycles"),
    ("mio backlog", "mio_backlog", "cycles"),
    ("tex backlog", "tex_backlog", "cycles"),
    ("l1 hit rate", "l1_hit_rate", "ratio"),
    ("l2 hit rate", "l2_hit_rate", "ratio"),
    ("inst issued", "inst_issued", "count"),
)


def to_chrome_trace(capture, program=None, spec=None,
                    sm_id: int = 0, kernel: str = "") -> dict:
    """Convert a :class:`~repro.obs.timeline_capture.TimelineCapture`
    to a Chrome Trace Event Format object (JSON-ready dict).

    ``program`` (a :class:`~repro.sass.isa.Program`) adds source-line
    attribution to slice args; ``spec`` is recorded in metadata.
    """
    pid = sm_id
    events: list[dict] = []
    # -- metadata: declare the process and every warp thread ------------
    events.append({
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "ts": 0, "args": {"name": f"SM {sm_id}"},
    })
    warp_tids: dict[tuple[int, int], int] = {}
    for tid, (block, warp) in enumerate(capture.warps()):
        warp_tids[(block, warp)] = tid
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": f"block {block} / warp {warp}"},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid,
            "tid": tid, "ts": 0, "args": {"sort_index": tid},
        })

    # -- per-issue slices ------------------------------------------------
    lines = None
    if program is not None:
        lines = [ins.line for ins in program]
    for e in capture.events:
        tid = warp_tids[(e.block, e.warp)]
        args = {"pc": e.pc}
        if lines is not None and e.pc < len(lines) and lines[e.pc] is not None:
            args["line"] = lines[e.pc]
        if e.stall_cycles > 0 and e.stall_reason is not None:
            events.append({
                "name": e.stall_reason.cupti_name, "cat": "stall",
                "ph": "X", "ts": e.cycle - e.stall_cycles,
                "dur": e.stall_cycles, "pid": pid, "tid": tid,
                "args": args,
            })
        events.append({
            "name": e.opcode, "cat": "issue", "ph": "X",
            "ts": e.cycle, "dur": 1.0, "pid": pid, "tid": tid,
            "args": args,
        })

    # -- counter tracks --------------------------------------------------
    for s in capture.counter_samples:
        for name, attr, unit in _COUNTER_TRACKS:
            events.append({
                "name": name, "cat": "counter", "ph": "C",
                "ts": s.cycle, "pid": pid,
                "args": {unit: getattr(s, attr)},
            })
    events.extend(_resident_warp_track(capture, pid))

    # -- wave annotations (dedicated thread so the instants do not
    # interleave with warp slices) ---------------------------------------
    if capture.wave_notes:
        wave_tid = len(warp_tids)
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": wave_tid, "ts": 0, "args": {"name": "waves"},
        })
        for note in capture.wave_notes:
            events.append({
                "name": f"wave:{note.kind}", "cat": "wave", "ph": "i",
                "ts": note.cycle, "pid": pid, "tid": wave_tid, "s": "t",
                "args": {"warps": note.warps, "detail": note.detail},
            })

    meta = {
        "ts_unit": "simulated SM cycles (1 cycle rendered as 1 us)",
        "kernel": kernel,
        "truncated": capture.truncated,
        "n_events": capture.n_events,
    }
    if spec is not None:
        meta["gpu"] = getattr(spec, "name", str(type(spec).__name__))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": meta,
    }


def _resident_warp_track(capture, pid: int) -> list[dict]:
    """Counter track of resident (eligible) warps, derived from slice
    lifetimes: a warp counts from its first issue to its last."""
    first_last: dict[tuple[int, int], list[float]] = {}
    for e in capture.events:
        key = (e.block, e.warp)
        fl = first_last.get(key)
        start = e.cycle - e.stall_cycles
        if fl is None:
            first_last[key] = [start, e.cycle]
        else:
            if start < fl[0]:
                fl[0] = start
            if e.cycle > fl[1]:
                fl[1] = e.cycle
    deltas: dict[float, int] = {}
    for start, end in first_last.values():
        deltas[start] = deltas.get(start, 0) + 1
        deltas[end] = deltas.get(end, 0) - 1
    out: list[dict] = []
    level = 0
    for ts in sorted(deltas):
        level += deltas[ts]
        out.append({
            "name": "resident warps", "cat": "counter", "ph": "C",
            "ts": ts, "pid": pid, "args": {"count": level},
        })
    return out


def write_chrome_trace(path: str, capture, program=None, spec=None,
                       sm_id: int = 0, kernel: str = "") -> dict:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the
    object written (handy for tests)."""
    data = to_chrome_trace(capture, program=program, spec=spec,
                           sm_id=sm_id, kernel=kernel)
    with open(path, "w") as fh:
        json.dump(data, fh)
    return data


# ----------------------------------------------------------------------
_SLICE_PHASES = ("B", "E", "X")
_KNOWN_PHASES = ("B", "E", "X", "C", "M", "i", "b", "e", "n", "s", "t", "f")


def validate_chrome_trace(data) -> list[str]:
    """Structural validation of a Chrome Trace Event object.

    Returns a list of problems (empty == valid):

    * the object must be a dict with a ``traceEvents`` list;
    * every event needs ``name``/``ph``/``pid`` and (non-``M``) ``ts``;
    * every ``B`` must have a matching ``E`` on the same (pid, tid),
      properly nested, with no ``E`` left over;
    * ``ts`` must be monotone (non-decreasing) per (pid, tid) over the
      slice phases, and ``X`` durations non-negative;
    * every pid/tid used by a slice or instant event must be declared
      via ``process_name``/``thread_name`` metadata events.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["top-level value is not an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]

    declared_pids: set = set()
    declared_tids: set = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        if ev.get("ph") == "M":
            if ev.get("name") == "process_name":
                declared_pids.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                declared_tids.add((ev.get("pid"), ev.get("tid")))

    open_stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph is None or "name" not in ev or "pid" not in ev:
            problems.append(f"event {i}: missing name/ph/pid")
            continue
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if "ts" not in ev:
            problems.append(f"event {i}: missing ts")
            continue
        pid = ev.get("pid")
        if pid not in declared_pids:
            problems.append(f"event {i}: pid {pid!r} not declared via "
                            "process_name metadata")
        key = (pid, ev.get("tid"))
        if ph in _SLICE_PHASES or ph == "i":
            if ph != "i" and key not in declared_tids:
                problems.append(f"event {i}: tid {key!r} not declared "
                                "via thread_name metadata")
            prev = last_ts.get(key)
            ts = ev["ts"]
            if prev is not None and ts < prev - 1e-9:
                problems.append(
                    f"event {i}: ts {ts} goes backwards on {key} "
                    f"(prev {prev})"
                )
            last_ts[key] = max(prev, ts) if prev is not None else ts
        if ph == "X":
            if ev.get("dur", 0) < 0:
                problems.append(f"event {i}: negative duration")
        elif ph == "B":
            open_stacks.setdefault(key, []).append(ev["name"])
        elif ph == "E":
            stack = open_stacks.get(key)
            if not stack:
                problems.append(f"event {i}: 'E' with no open 'B' on {key}")
            else:
                stack.pop()
    for key, stack in open_stacks.items():
        if stack:
            problems.append(
                f"unclosed 'B' events on {key}: {stack!r}"
            )
    return problems
