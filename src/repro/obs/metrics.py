"""Process-local metrics registry for production telemetry.

The serving stack (and the CLI under ``--profile``) records its
operational signals — request latencies, cache hits per tier, worker
respawns, engine stage durations — through one dependency-free
registry.  Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotonic, ``_total``-suffixed by convention;
* :class:`Gauge` — settable level (inflight requests, cache bytes);
* :class:`Histogram` — fixed upper-bound buckets plus sum/count, with
  an optional *exemplar* (the request ID that landed in a bucket last)
  so a latency outlier can be traced back to one request.

**Armed vs. disarmed.**  Instrument methods check one module-global
flag first and return immediately when telemetry is disarmed — the
bit-identity equivalence suites run with the registry disarmed and pay
one attribute load per call site.  ``gpuscout serve`` arms the
registry; ``REPRO_METRICS=1``/``0`` forces it on/off globally.

**Snapshot/merge protocol.**  :meth:`MetricsRegistry.snapshot` returns
a plain-dict, pickle- and JSON-safe image of every series; snapshots
from several processes (the fork-based worker pool ships one on every
result envelope) combine via :func:`merge_snapshots` — counters and
histogram buckets add, gauges add (per-process levels aggregate to the
fleet level).  Merging is associative and commutative and a merged
snapshot equals serial observation — a Hypothesis property pins this,
pickled round-trips included.  Workers *replace* their previous
snapshot keyed by ``(worker, generation)``, so resending is idempotent
and a respawned worker's fresh zeroes never erase its predecessor's
counts.

:func:`render_prometheus` serializes a snapshot in the Prometheus text
exposition format (served at ``GET /metrics``);
:func:`validate_exposition` is the structural validator CI pipes the
scrape through; :func:`summarize` derives histogram quantiles for the
enriched ``/v1/stats``.
"""

from __future__ import annotations

import bisect
import math
import os
import re
import threading
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RATE_BUCKETS",
    "REGISTRY",
    "arm",
    "armed",
    "merge_snapshots",
    "quantile",
    "render_footer",
    "render_prometheus",
    "set_exemplar",
    "summarize",
    "validate_exposition",
]

#: wall-clock seconds buckets: request latencies and engine stages
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)
#: events-per-second buckets: simulated-instruction throughput
RATE_BUCKETS = (1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8)

_armed = os.environ.get("REPRO_METRICS", "") == "1"
_exemplar_ctx = threading.local()


def arm(on: bool = True) -> None:
    """Globally arm or disarm telemetry recording.

    ``REPRO_METRICS=0`` wins: it pins telemetry off no matter who asks
    (the overhead-bench baseline and the bit-identity suites rely on
    disarmed meaning *disarmed*)."""
    global _armed
    if on and os.environ.get("REPRO_METRICS", "") == "0":
        return
    _armed = bool(on)


def armed() -> bool:
    """Whether instruments currently record."""
    return _armed


def set_exemplar(request_id: Optional[str]) -> None:
    """Set (or clear, with ``None``) the thread's current exemplar: a
    request ID that histogram observations on this thread attach to
    their bucket when no explicit exemplar is given."""
    _exemplar_ctx.value = request_id


def _current_exemplar() -> Optional[str]:
    return getattr(_exemplar_ctx, "value", None)


class Counter:
    """Monotonically increasing count (name ends ``_total``)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if not _armed:
            return
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A level that can go up and down (inflight requests, bytes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        if not _armed:
            return
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        if not _armed:
            return
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)


class Histogram:
    """Fixed-bucket histogram with per-bucket last-exemplar.

    ``buckets`` are finite upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``counts`` are per-bucket (not cumulative —
    cumulation happens at exposition time), which is what makes
    merging a plain element-wise add."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum",
                 "exemplars")

    def __init__(self, name: str, labels: tuple, buckets: tuple):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        #: bucket index -> most recent exemplar (e.g. a request ID)
        self.exemplars: dict[int, str] = {}

    def observe(self, v: float, exemplar: Optional[str] = None) -> None:
        if not _armed:
            return
        idx = bisect.bisect_left(self.buckets, v)
        self.counts[idx] += 1
        self.sum += v
        ex = exemplar if exemplar is not None else _current_exemplar()
        if ex is not None:
            self.exemplars[idx] = ex

    @property
    def count(self) -> int:
        return sum(self.counts)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All series of one metric name: kind, help text, children keyed
    by their sorted label items."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name, kind, help_text, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[tuple, object] = {}


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class MetricsRegistry:
    """Process-local, thread-safe instrument factory and store.

    ``counter``/``gauge``/``histogram`` get-or-create: the first call
    for a (name, labels) pair creates the series, later calls return
    the same instrument, so call sites need no caching discipline (but
    hot call sites may keep the reference)."""

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument factories -------------------------------------------
    def _series(self, kind: str, name: str, help_text: str,
                labels: dict, buckets: Optional[tuple] = None):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        if kind == "counter" and not name.endswith("_total"):
            raise ValueError(
                f"counter {name!r} must end with '_total'")
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, kind, help_text, buckets)
                self._families[name] = fam
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}")
            child = fam.children.get(key)
            if child is None:
                if kind == "histogram":
                    child = Histogram(name, key,
                                      buckets or fam.buckets
                                      or LATENCY_BUCKETS)
                else:
                    child = _KINDS[kind](name, key)
                fam.children[key] = child
            return child

    def counter(self, name: str, help_text: str = "",
                **labels) -> Counter:
        return self._series("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._series("gauge", name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple = LATENCY_BUCKETS,
                  **labels) -> Histogram:
        return self._series("histogram", name, help_text, labels,
                            buckets=tuple(buckets))

    # -- snapshot / reset ------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict (pickle/JSON-safe) image of every series."""
        out: dict = {}
        with self._lock:
            for name, fam in self._families.items():
                series = {}
                for key, child in fam.children.items():
                    label_str = ",".join(
                        f'{k}="{_escape_label(v)}"' for k, v in key)
                    if fam.kind == "histogram":
                        series[label_str] = {
                            "buckets": list(child.buckets),
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "exemplars": {
                                str(i): ex
                                for i, ex in child.exemplars.items()
                            },
                        }
                    else:
                        series[label_str] = child.value
                out[name] = {
                    "type": fam.kind,
                    "help": fam.help,
                    "series": series,
                }
        return out

    def reset(self) -> None:
        """Zero every series *in place* — existing instrument
        references held by call sites stay valid.  A forked worker
        calls this at startup so the parent's counts are not
        double-reported through its snapshots."""
        with self._lock:
            for fam in self._families.values():
                for child in fam.children.values():
                    if isinstance(child, Histogram):
                        child.counts = [0] * (len(child.buckets) + 1)
                        child.sum = 0.0
                        child.exemplars = {}
                    else:
                        child.value = 0.0


#: the process-wide registry every call site records through
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# snapshot merging
# ---------------------------------------------------------------------------

def merge_snapshots(snaps: list) -> dict:
    """Combine snapshots from several processes into one.

    Counters and histogram bucket counts/sums add; gauges add too
    (each process reports its own level, the merge is the fleet
    total).  Exemplars keep the last one seen per bucket.  The
    operation is associative and commutative; an empty list merges to
    an empty snapshot."""
    out: dict = {}
    for snap in snaps:
        for name, fam in snap.items():
            ofam = out.get(name)
            if ofam is None:
                ofam = {"type": fam["type"], "help": fam["help"],
                        "series": {}}
                out[name] = ofam
            for label_str, value in fam["series"].items():
                prev = ofam["series"].get(label_str)
                if prev is None:
                    if isinstance(value, dict):
                        ofam["series"][label_str] = {
                            "buckets": list(value["buckets"]),
                            "counts": list(value["counts"]),
                            "sum": value["sum"],
                            "exemplars": dict(value.get("exemplars",
                                                        {})),
                        }
                    else:
                        ofam["series"][label_str] = value
                elif isinstance(value, dict):
                    prev["counts"] = [
                        a + b for a, b in zip(prev["counts"],
                                              value["counts"])
                    ]
                    prev["sum"] += value["sum"]
                    prev["exemplars"].update(value.get("exemplars", {}))
                else:
                    ofam["series"][label_str] = prev + value
    return out


# ---------------------------------------------------------------------------
# quantiles / summaries
# ---------------------------------------------------------------------------

def quantile(hist: dict, q: float) -> Optional[float]:
    """Estimated ``q``-quantile (0..1) of a snapshot histogram series,
    linearly interpolated inside the landing bucket.  ``None`` for an
    empty histogram; the top bucket clamps to its lower bound (the
    +Inf bucket has no finite upper edge to interpolate towards)."""
    counts = hist["counts"]
    total = sum(counts)
    if total == 0:
        return None
    bounds = hist["buckets"]
    target = q * total
    cum = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        lo = bounds[i - 1] if i > 0 else 0.0
        if i < len(bounds):
            hi = bounds[i]
        else:
            return lo  # +Inf bucket: report its lower edge
        if cum + c >= target:
            frac = (target - cum) / c
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        cum += c
    return bounds[-1]


def summarize(snapshot: dict) -> dict:
    """Digest for ``/v1/stats``: every histogram's count/sum/mean and
    p50/p90/p99 plus exemplars, every counter and gauge verbatim."""
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, fam in sorted(snapshot.items()):
        for label_str, value in sorted(fam["series"].items()):
            series = f"{name}{{{label_str}}}" if label_str else name
            if fam["type"] == "histogram":
                count = sum(value["counts"])
                entry = {
                    "count": count,
                    "sum": round(value["sum"], 9),
                    "mean": round(value["sum"] / count, 9)
                    if count else None,
                    "p50": quantile(value, 0.50),
                    "p90": quantile(value, 0.90),
                    "p99": quantile(value, 0.99),
                }
                if value.get("exemplars"):
                    entry["exemplars"] = dict(value["exemplars"])
                out["histograms"][series] = entry
            elif fam["type"] == "counter":
                out["counters"][series] = value
            else:
                out["gauges"][series] = value
    return out


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _escape_label(v: str) -> str:
    return str(v).replace("\\", r"\\").replace('"', r"\"") \
        .replace("\n", r"\n")


def _escape_help(v: str) -> str:
    return v.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(v: float) -> str:
    if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _with_le(label_str: str, le: str) -> str:
    extra = f'le="{le}"'
    return f"{label_str},{extra}" if label_str else extra


def render_prometheus(snapshot: dict) -> str:
    """The Prometheus text exposition format of a snapshot: one
    ``# HELP``/``# TYPE`` pair per family, then all its samples
    (histograms expand to cumulative ``_bucket`` series plus ``_sum``
    and ``_count``)."""
    lines: list[str] = []
    for name in sorted(snapshot):
        fam = snapshot[name]
        help_text = fam.get("help") or name
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for label_str in sorted(fam["series"]):
            value = fam["series"][label_str]
            if fam["type"] == "histogram":
                cum = 0
                for bound, c in zip(value["buckets"], value["counts"]):
                    cum += c
                    lines.append(
                        f"{name}_bucket"
                        f"{{{_with_le(label_str, _fmt(float(bound)))}}}"
                        f" {cum}")
                cum += value["counts"][-1]
                lines.append(
                    f"{name}_bucket{{{_with_le(label_str, '+Inf')}}}"
                    f" {cum}")
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{name}_sum{suffix} {_fmt(value['sum'])}")
                lines.append(f"{name}_count{suffix} {cum}")
            else:
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{name}{suffix} {_fmt(float(value))}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# exposition validator (the CI smoke pipes scrapes through this)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{([^}]*)\})?"                       # optional labels
    r" ([^ ]+)"                               # value
    r"(?: (-?\d+))?$"                         # optional timestamp
)
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(raw: str) -> Optional[dict]:
    """Label dict of a ``k="v",...`` body, or None when malformed."""
    if not raw:
        return {}
    out = {}
    rest = raw
    while rest:
        m = _LABEL_RE.match(rest)
        if not m:
            return None
        out[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return out


def _base_name(name: str, types: dict) -> str:
    """The family a sample belongs to (histogram samples carry
    ``_bucket``/``_sum``/``_count`` suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def validate_exposition(text: str) -> list[str]:
    """Structural validation of Prometheus text exposition format.

    Returns a list of problems (empty == valid):

    * every non-comment line parses as ``name{labels} value``;
    * ``# TYPE`` declares a known type, at most once per family,
      before the family's first sample; family samples are contiguous;
    * counters end ``_total`` and are non-negative;
    * every histogram labelset has ascending ``le`` buckets with
      non-decreasing cumulative counts, a ``+Inf`` bucket, and
      matching ``_count``/``_sum`` samples (+Inf == count).
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    seen_families: list[str] = []
    closed: set[str] = set()
    # histogram state: (family, labels-minus-le) -> bucket/count info
    hist: dict[tuple, dict] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not _NAME_RE.match(name):
                    problems.append(
                        f"line {lineno}: bad metric name {name!r}")
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        problems.append(
                            f"line {lineno}: unknown type {kind!r}")
                    if name in types:
                        problems.append(
                            f"line {lineno}: duplicate TYPE for {name}")
                    types[name] = kind
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name, raw_labels, raw_value = m.group(1), m.group(2), m.group(3)
        labels = _parse_labels(raw_labels or "")
        if labels is None:
            problems.append(
                f"line {lineno}: malformed labels {raw_labels!r}")
            continue
        try:
            value = float(raw_value)
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        family = _base_name(name, types)
        kind = types.get(family)
        if kind is None:
            problems.append(
                f"line {lineno}: sample {name} before its TYPE")
            kind = "untyped"
            types[family] = kind
        if family in closed:
            problems.append(
                f"line {lineno}: family {family} samples not contiguous")
        if not seen_families or seen_families[-1] != family:
            if seen_families:
                closed.add(seen_families[-1])
            seen_families.append(family)
        if kind == "counter":
            if not family.endswith("_total"):
                problems.append(
                    f"line {lineno}: counter {family} lacks _total")
            if value < 0:
                problems.append(
                    f"line {lineno}: negative counter {family}")
        if kind == "histogram":
            key = (family, tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le")))
            st = hist.setdefault(key, {
                "buckets": [], "count": None, "sum": None})
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: {family} bucket without le")
                else:
                    bound = math.inf if le == "+Inf" else None
                    if bound is None:
                        try:
                            bound = float(le)
                        except ValueError:
                            problems.append(
                                f"line {lineno}: bad le {le!r}")
                            bound = math.nan
                    st["buckets"].append((lineno, bound, value))
            elif name.endswith("_count"):
                st["count"] = (lineno, value)
            elif name.endswith("_sum"):
                st["sum"] = (lineno, value)
    for (family, labels), st in hist.items():
        prev_bound, prev_cum = -math.inf, -1.0
        has_inf = False
        for lineno, bound, cum in st["buckets"]:
            if bound != bound:  # NaN from a bad le
                continue
            if bound <= prev_bound:
                problems.append(
                    f"line {lineno}: {family} le {bound} out of order")
            if cum < prev_cum:
                problems.append(
                    f"line {lineno}: {family} cumulative count drops")
            prev_bound, prev_cum = bound, cum
            if bound == math.inf:
                has_inf = True
        if not has_inf:
            problems.append(f"{family}{dict(labels)}: no +Inf bucket")
        if st["count"] is None:
            problems.append(f"{family}{dict(labels)}: missing _count")
        elif st["buckets"] and has_inf and \
                st["buckets"][-1][1] == math.inf and \
                st["count"][1] != st["buckets"][-1][2]:
            problems.append(
                f"{family}{dict(labels)}: +Inf bucket "
                f"{st['buckets'][-1][2]} != count {st['count'][1]}")
        if st["sum"] is None:
            problems.append(f"{family}{dict(labels)}: missing _sum")
    return problems


# ---------------------------------------------------------------------------
# terminal footer ([metrics] under `analyze --profile`)
# ---------------------------------------------------------------------------

def render_footer(snapshot: Optional[dict] = None,
                  max_lines: int = 14) -> list[str]:
    """The ``[metrics]`` terminal footer: non-zero counters and gauges
    verbatim, histograms as ``count/mean/p99``.  Empty when telemetry
    is disarmed or nothing was recorded."""
    if snapshot is None:
        if not _armed:
            return []
        snapshot = REGISTRY.snapshot()
    digest = summarize(snapshot)
    rows: list[str] = []
    for series, value in digest["counters"].items():
        if value:
            rows.append(f"  {series} {_fmt(float(value))}")
    for series, value in digest["gauges"].items():
        if value:
            rows.append(f"  {series} {_fmt(float(value))}")
    for series, h in digest["histograms"].items():
        if not h["count"]:
            continue
        mean = h["mean"] or 0.0
        p99 = h["p99"] if h["p99"] is not None else 0.0
        rows.append(
            f"  {series} n={h['count']} mean={mean:.4g} p99={p99:.4g}")
    if not rows:
        return []
    lines = ["", "[metrics] telemetry registry "
                 f"({len(rows)} active series)"]
    lines.extend(rows[:max_lines])
    if len(rows) > max_lines:
        lines.append(f"  ... and {len(rows) - max_lines} more")
    return lines
