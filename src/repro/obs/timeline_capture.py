"""Opt-in capture of the simulated GPU's execution timeline.

A :class:`TimelineCapture` is passed where a
:class:`~repro.gpu.trace.TraceRecorder` would be
(``Simulator.launch(trace=...)`` / ``GPUscout.analyze(trace=...)``):
the scheduler calls :meth:`record` once per issued warp-instruction on
**both** timed paths (legacy and trace-driven), so the capture sees the
same event stream either way.  On top of the per-issue slices it
samples *counter tracks* — memory-unit backlogs (cycles of queued work
in the LSU / MIO / TEX timelines) and cumulative cache hit rates —
every ``counter_stride`` issues, by reading the scheduler it was
attached to.

The capture is strictly **passive**: it reads scheduler/counter state
and never mutates it, so a trace-on run is bit-identical (cycles,
``Counters``, device memory, PC samples) to a trace-off run —
``tests/obs/test_capture_equivalence.py`` enforces this over the
timed-equivalence kernel set.

Export with :func:`repro.obs.chrometrace.to_chrome_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.stalls import StallReason

__all__ = ["CaptureEvent", "CounterSample", "TimelineCapture", "WaveNote"]


@dataclass(frozen=True)
class CaptureEvent:
    """One issued warp-instruction: issue cycle plus the stall interval
    (``cycle - stall_cycles .. cycle``) the warp paid before it."""

    cycle: float
    warp: int
    block: int
    pc: int
    opcode: str
    stall_cycles: float
    stall_reason: Optional[StallReason]


@dataclass(frozen=True)
class CounterSample:
    """One sample of the scheduler's memory-unit state."""

    cycle: float
    lsu_backlog: float
    mio_backlog: float
    tex_backlog: float
    l1_hit_rate: float
    l2_hit_rate: float
    inst_issued: int


@dataclass(frozen=True)
class WaveNote:
    """A wave-boundary annotation from the simulator/trace builder:
    ``kind`` is ``trace`` (wave ran on the trace-driven scheduler),
    ``legacy`` (interleaved per-issue path) or ``dissolve`` (a trace
    build rolled back mid-wave and the wave was replayed legacy)."""

    kind: str
    warps: int
    detail: str = ""
    #: scheduler cycle at the wave boundary (0.0 when unattached)
    cycle: float = 0.0


class TimelineCapture:
    """Records the scheduler's issue stream and counter tracks.

    ``max_events`` caps slice memory (recording silently stops at the
    cap; ``truncated`` tells you it happened).  ``counter_stride`` is
    how many issues pass between two counter-track samples.
    """

    def __init__(self, max_events: int = 500_000,
                 counter_stride: int = 32):
        self.max_events = max_events
        self.counter_stride = max(1, counter_stride)
        self.events: list[CaptureEvent] = []
        self.counter_samples: list[CounterSample] = []
        self.wave_notes: list[WaveNote] = []
        self.truncated = False
        self._sched = None
        self._issues = 0

    # -- scheduler protocol ------------------------------------------------
    def attach(self, scheduler) -> None:
        """Called by :class:`~repro.gpu.scheduler.SMScheduler` at
        construction so counter-track samples can read its timelines."""
        self._sched = scheduler

    def record(self, cycle: float, warp: int, block: int, pc: int,
               opcode: str, stall_cycles: float,
               stall_reason: Optional[StallReason]) -> None:
        """Per-issue hook (same signature as ``TraceRecorder.record``)."""
        self._issues += 1
        if self._issues % self.counter_stride == 0:
            self._sample_counters(cycle)
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(
            CaptureEvent(cycle, warp, block, pc, opcode, stall_cycles,
                         stall_reason)
        )

    def note_wave(self, kind: str, warps: int, detail: str = "") -> None:
        """Wave-boundary hook (simulator / timed-trace builder)."""
        cycle = self._sched.now if self._sched is not None else 0.0
        self.wave_notes.append(WaveNote(kind, warps, detail, cycle))
        if self._sched is not None:
            # a fresh sample at every wave boundary keeps the counter
            # tracks honest across waves even with a large stride
            self._sample_counters(cycle)

    # -- degradation-ladder protocol --------------------------------------
    def mark(self) -> tuple[int, int, int]:
        """Snapshot for :meth:`reset_to`: taken by the engine before
        each degradation-ladder rung attempt."""
        return (len(self.events), len(self.counter_samples),
                len(self.wave_notes))

    def reset_to(self, mark: tuple[int, int, int]) -> None:
        """Drop everything recorded after ``mark`` — an abandoned rung's
        partial event stream must not pollute the successful rung's
        trace."""
        e, c, w = mark
        del self.events[e:]
        del self.counter_samples[c:]
        del self.wave_notes[w:]
        self.truncated = len(self.events) >= self.max_events

    # ----------------------------------------------------------------------
    def _sample_counters(self, cycle: float) -> None:
        sched = self._sched
        if sched is None:
            return
        c = sched.counters
        l1_total = (c.global_load_l1_hits + c.global_load_l1_misses
                    + c.local_l1_hits + c.local_l1_misses)
        l1_hits = c.global_load_l1_hits + c.local_l1_hits
        l2_total = sum(c.l2_sectors_by_space.values())
        l2_hits = sum(c.l2_hits_by_space.values())
        self.counter_samples.append(
            CounterSample(
                cycle=cycle,
                lsu_backlog=sched.lsu.backlog(cycle),
                mio_backlog=sched.mio.backlog(cycle),
                tex_backlog=sched.tex.backlog(cycle),
                l1_hit_rate=(l1_hits / l1_total) if l1_total else 0.0,
                l2_hit_rate=(l2_hits / l2_total) if l2_total else 0.0,
                inst_issued=c.inst_issued,
            )
        )

    # -- convenience -------------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self.events)

    def warps(self) -> list[tuple[int, int]]:
        """Sorted distinct ``(block, warp)`` pairs seen in the stream."""
        return sorted({(e.block, e.warp) for e in self.events})
