"""Source-line heatmap: per-PC stall cycles rolled up the line table.

The paper presents stalls per flagged *line* (Figure 2: "For line
number 18, the warp stalls are ...").  The heatmap generalizes that to
every line of the kernel: the simulator's exact per-(PC, reason) stall
cycles are aggregated through the SASS line table into a per-line
share of all stall cycles, which the HTML report renders as a
color-ramped annotated source listing and the terminal report as a
top-N "hot lines" footer.

Attribution rules (documented in DESIGN.md §8):

* a PC's stall cycles go to the line its instruction is attributed to
  (``Instruction.line``); PCs without line info accumulate in
  ``unattributed_cycles``;
* ``SELECTED`` pseudo-stalls (one per issue) are excluded — they count
  issues, not waiting;
* ``share`` is the line's fraction of **all** attributed stall cycles,
  so shares sum to 1 over the listing (modulo the unattributed rest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.stalls import StallReason

__all__ = ["Heatmap", "LineHeat", "build_heatmap"]


@dataclass
class LineHeat:
    """Aggregated stall/issue facts for one source line."""

    line: int
    stall_cycles: float = 0.0
    by_reason: dict[StallReason, float] = field(default_factory=dict)
    issues: int = 0
    pcs: list[int] = field(default_factory=list)
    #: fraction of all attributed stall cycles (filled by build_heatmap)
    share: float = 0.0
    #: stall root-cause blame for this line's dependency stalls: the
    #: producer lines/instructions its sampled PCs wait on, e.g.
    #: ``[{"line": 9, "op": "LDG.E.SYS", "pc": 8, "reg": "R4",
    #: "reason": "stalled_long_scoreboard"}]`` (deduplicated, ordered
    #: by producer line; empty without blame info)
    waits_on: list[dict] = field(default_factory=list)

    def dominant(self) -> Optional[StallReason]:
        if not self.by_reason:
            return None
        return max(self.by_reason, key=lambda k: self.by_reason[k])

    def to_dict(self) -> dict:
        d = {
            "line": self.line,
            "stall_cycles": self.stall_cycles,
            "share": self.share,
            "issues": self.issues,
            "pcs": list(self.pcs),
            "by_reason": {
                r.cupti_name: v for r, v in sorted(
                    self.by_reason.items(), key=lambda kv: -kv[1]
                )
            },
        }
        if self.waits_on:
            d["waits_on"] = [dict(w) for w in self.waits_on]
        return d


@dataclass
class Heatmap:
    """Per-line heat for one kernel run."""

    lines: dict[int, LineHeat] = field(default_factory=dict)
    total_stall_cycles: float = 0.0
    #: stall cycles at PCs with no source-line attribution
    unattributed_cycles: float = 0.0

    def top(self, n: int = 5) -> list[LineHeat]:
        """The ``n`` hottest lines, by stall share, hottest first."""
        return sorted(self.lines.values(),
                      key=lambda lh: -lh.stall_cycles)[:n]

    def share_for(self, line: int) -> float:
        lh = self.lines.get(line)
        return lh.share if lh is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "total_stall_cycles": self.total_stall_cycles,
            "unattributed_cycles": self.unattributed_cycles,
            "lines": {
                str(line): lh.to_dict()
                for line, lh in sorted(self.lines.items())
            },
        }


def build_heatmap(program, counters, blame=None) -> Heatmap:
    """Aggregate ``counters.stall_cycles`` (and per-PC issue counts)
    through ``program``'s line table into a :class:`Heatmap`.

    ``blame`` optionally maps sampled PCs to
    :class:`~repro.sass.slicing.StallBlame` slices; each blamed line
    then carries a ``waits_on`` summary naming the producer line(s) its
    stalls actually wait for.
    """
    hm = Heatmap()
    n = len(program)
    lines = hm.lines
    for (pc, reason), cycles in counters.stall_cycles.items():
        if reason is StallReason.SELECTED or cycles <= 0:
            continue
        line = program[pc].line if pc < n else None
        if line is None:
            hm.unattributed_cycles += cycles
            continue
        lh = lines.get(line)
        if lh is None:
            lh = lines[line] = LineHeat(line=line)
        lh.stall_cycles += cycles
        lh.by_reason[reason] = lh.by_reason.get(reason, 0.0) + cycles
        if pc not in lh.pcs:
            lh.pcs.append(pc)
    for pc, count in counters.inst_by_pc.items():
        line = program[pc].line if pc < n else None
        if line is None:
            continue
        lh = lines.get(line)
        if lh is None:
            lh = lines[line] = LineHeat(line=line)
            if pc not in lh.pcs:
                lh.pcs.append(pc)
        lh.issues += count
    total = sum(lh.stall_cycles for lh in lines.values())
    hm.total_stall_cycles = total + hm.unattributed_cycles
    if total > 0:
        for lh in lines.values():
            lh.share = lh.stall_cycles / total
    for lh in lines.values():
        lh.pcs.sort()
    if blame:
        for pc, b in blame.items():
            head = b.producer
            if head is None:
                continue
            line = program[pc].line if pc < n else None
            if line is None or line not in lines:
                continue
            entry = {
                "line": head.line,
                "op": head.op,
                "pc": head.pc,
                "reg": head.reg,
                "reason": b.reason.cupti_name if b.reason else None,
            }
            lh = lines[line]
            if entry not in lh.waits_on:
                lh.waits_on.append(entry)
        for lh in lines.values():
            lh.waits_on.sort(
                key=lambda w: (w["line"] is None, w["line"] or 0, w["pc"])
            )
    return hm
