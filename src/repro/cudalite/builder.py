"""Fluent kernel builder — the "CUDA source" layer of cudalite.

:class:`KernelBuilder` offers an API close enough to CUDA C that the
case-study kernels read like their originals::

    kb = KernelBuilder("saxpy")
    x = kb.param("x", ptr(f32, readonly=True))
    y = kb.param("y", ptr(f32))
    a = kb.param("a", f32)
    n = kb.param("n", i32)
    i = kb.let("i", kb.block_idx.x * kb.block_dim.x + kb.thread_idx.x)
    kb.return_if(i >= n)
    kb.store(y, i, a * x[i] + y[i])
    kernel = kb.build()

Every statement records the line of the pseudo-CUDA rendering of the
kernel (see :meth:`Kernel.source`), which becomes the SASS line table —
GPUscout's findings point at these lines exactly like they point at
``.cu`` lines on real binaries.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.cudalite import ast as A
from repro.cudalite.types import DType, PointerType, f32, i32
from repro.errors import CompileError

__all__ = ["E", "KernelBuilder", "Kernel", "TextureParam"]

Number = Union[int, float]


def _wrap(value: "E | A.Expr | Number") -> A.Expr:
    if isinstance(value, E):
        return value.node
    if isinstance(value, A.Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not kernel values; use comparisons")
    if isinstance(value, int):
        return A.Const(value, i32)
    if isinstance(value, float):
        return A.Const(value, f32)
    raise TypeError(f"cannot use {value!r} in a kernel expression")


class E:
    """Operator-overloading facade over AST expression nodes."""

    __slots__ = ("node",)
    #: keep NumPy from hijacking arithmetic with E on the right-hand side
    __array_priority__ = 1000

    def __init__(self, node: A.Expr):
        self.node = node

    # arithmetic ------------------------------------------------------
    def __add__(self, other):
        return E(A.BinOp("+", self.node, _wrap(other)))

    def __radd__(self, other):
        return E(A.BinOp("+", _wrap(other), self.node))

    def __sub__(self, other):
        return E(A.BinOp("-", self.node, _wrap(other)))

    def __rsub__(self, other):
        return E(A.BinOp("-", _wrap(other), self.node))

    def __mul__(self, other):
        return E(A.BinOp("*", self.node, _wrap(other)))

    def __rmul__(self, other):
        return E(A.BinOp("*", _wrap(other), self.node))

    def __truediv__(self, other):
        return E(A.BinOp("/", self.node, _wrap(other)))

    def __rtruediv__(self, other):
        return E(A.BinOp("/", _wrap(other), self.node))

    def __mod__(self, other):
        return E(A.BinOp("%", self.node, _wrap(other)))

    def __and__(self, other):
        return E(A.BinOp("&", self.node, _wrap(other)))

    def __or__(self, other):
        return E(A.BinOp("|", self.node, _wrap(other)))

    def __xor__(self, other):
        return E(A.BinOp("^", self.node, _wrap(other)))

    def __lshift__(self, other):
        return E(A.BinOp("<<", self.node, _wrap(other)))

    def __rshift__(self, other):
        return E(A.BinOp(">>", self.node, _wrap(other)))

    def __neg__(self):
        return E(A.UnaryOp("-", self.node))

    # comparisons -----------------------------------------------------
    def __lt__(self, other):
        return E(A.BinOp("<", self.node, _wrap(other)))

    def __le__(self, other):
        return E(A.BinOp("<=", self.node, _wrap(other)))

    def __gt__(self, other):
        return E(A.BinOp(">", self.node, _wrap(other)))

    def __ge__(self, other):
        return E(A.BinOp(">=", self.node, _wrap(other)))

    def eq(self, other) -> "E":
        """Equality comparison (named method; ``==`` keeps identity)."""
        return E(A.BinOp("==", self.node, _wrap(other)))

    def ne(self, other) -> "E":
        return E(A.BinOp("!=", self.node, _wrap(other)))

    def logical_and(self, other) -> "E":
        """``a && b`` for predicate expressions."""
        return E(A.BinOp("&&", self.node, _wrap(other)))

    def logical_or(self, other) -> "E":
        return E(A.BinOp("||", self.node, _wrap(other)))

    # lanes -----------------------------------------------------------
    @property
    def x(self) -> "E":
        return E(A.VecLane(self.node, 0))

    @property
    def y(self) -> "E":
        return E(A.VecLane(self.node, 1))

    @property
    def z(self) -> "E":
        return E(A.VecLane(self.node, 2))

    @property
    def w(self) -> "E":
        return E(A.VecLane(self.node, 3))

    def cast(self, dtype: DType) -> "E":
        """Explicit conversion — surfaces as I2F/F2I/F2F/I2I in SASS."""
        return E(A.Cast(self.node, dtype))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"E({self.node!r})"


class _BuiltinAxes:
    """``threadIdx``-style triple with ``.x/.y/.z`` accessors."""

    def __init__(self, kind: str):
        self._kind = kind

    @property
    def x(self) -> E:
        return E(A.Builtin(self._kind, "x"))

    @property
    def y(self) -> E:
        return E(A.Builtin(self._kind, "y"))

    @property
    def z(self) -> E:
        return E(A.Builtin(self._kind, "z"))


class ParamHandle(E):
    """Handle for a kernel parameter; pointers support indexing."""

    __slots__ = ("name", "type", "_elem_override")

    def __init__(self, name: str, type_: Union[DType, PointerType],
                 elem_override: Optional[DType] = None):
        super().__init__(A.ParamRef(name))
        self.name = name
        self.type = type_
        self._elem_override = elem_override

    def __getitem__(self, index) -> E:
        if not isinstance(self.type, PointerType):
            raise TypeError(f"parameter {self.name!r} is not a pointer")
        return E(A.Load(A.ParamRef(self.name), _wrap(index), self._elem_override))

    def as_vector(self, dtype: DType) -> "ParamHandle":
        """``reinterpret_cast<dtype*>(param)`` — e.g. float4 views."""
        if not isinstance(self.type, PointerType):
            raise TypeError(f"parameter {self.name!r} is not a pointer")
        return ParamHandle(self.name, self.type, elem_override=dtype)

    @property
    def elem(self) -> DType:
        assert isinstance(self.type, PointerType)
        return self._elem_override or self.type.elem


class VarHandle(E):
    """Handle for a local variable (``Let``-introduced)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        super().__init__(A.VarRef(name))
        self.name = name


class ArrayHandle:
    """Handle for a thread-private register array."""

    def __init__(self, builder: "KernelBuilder", name: str, dtype: DType, size: int):
        self._builder = builder
        self.name = name
        self.dtype = dtype
        self.size = size

    def __getitem__(self, index) -> E:
        return E(A.ArrayRef(self.name, _wrap(index)))

    def __setitem__(self, index, value) -> None:
        self._builder._emit(
            A.ArrayAssign(self.name, _wrap(index), _wrap(value)),
            f"{self.name}[{{}}] = ...;",
        )


class SharedHandle:
    """Handle for a ``__shared__`` array."""

    def __init__(self, builder: "KernelBuilder", name: str, dtype: DType, size: int):
        self._builder = builder
        self.name = name
        self.dtype = dtype
        self.size = size

    def __getitem__(self, index) -> E:
        return E(A.SharedRef(self.name, _wrap(index)))

    def __setitem__(self, index, value) -> None:
        self._builder._emit(
            A.SharedStore(self.name, _wrap(index), _wrap(value)),
            f"{self.name}[...] = ...;",
        )


@dataclass(frozen=True)
class TextureParam:
    """A 2D texture reference parameter (``cudaTextureObject_t``)."""

    name: str
    elem: DType


@dataclass
class Kernel:
    """A fully-built kernel: signature + statement list + source text."""

    name: str
    params: list[ParamHandle]
    textures: list[TextureParam]
    body: list[A.Stmt]
    source: str
    launch_bounds_regs: Optional[int] = None

    def param_types(self) -> dict[str, Union[DType, PointerType]]:
        return {p.name: p.type for p in self.params}


class KernelBuilder:
    """Imperative builder producing a :class:`Kernel`.

    Statements are appended in order; ``for_range``/``if_then`` are
    context managers that nest.  A pseudo-CUDA source rendering is
    maintained as statements are added, so each statement knows its
    source line (used for the SASS line table).
    """

    def __init__(self, name: str, max_registers: Optional[int] = None):
        self.name = name
        #: per-kernel register budget (``__launch_bounds__``-style cap)
        self.max_registers = max_registers
        self._params: list[ParamHandle] = []
        self._textures: list[TextureParam] = []
        self._body: list[A.Stmt] = []
        self._stack: list[list[A.Stmt]] = [self._body]
        self._source_lines: list[str] = []
        self._indent = 1
        self._names: set[str] = set()
        self._built = False
        self._tmp_counter = 0

    # -- builtins -----------------------------------------------------
    thread_idx = _BuiltinAxes("tid")
    block_idx = _BuiltinAxes("ctaid")
    block_dim = _BuiltinAxes("ntid")
    grid_dim = _BuiltinAxes("nctaid")

    # -- declaration helpers -------------------------------------------
    def _check_name(self, name: str) -> None:
        if not name.isidentifier():
            raise CompileError(f"invalid identifier {name!r}")
        if name in self._names:
            raise CompileError(f"duplicate name {name!r} in kernel {self.name!r}")
        self._names.add(name)

    def param(self, name: str, type_: Union[DType, PointerType]) -> ParamHandle:
        """Declare a kernel parameter; pointers index like arrays."""
        if self._body or len(self._stack) > 1:
            raise CompileError("parameters must be declared before statements")
        self._check_name(name)
        handle = ParamHandle(name, type_)
        self._params.append(handle)
        return handle

    def texture(self, name: str, elem: DType = f32) -> TextureParam:
        """Declare a 2D texture-object parameter."""
        self._check_name(name)
        tex = TextureParam(name, elem)
        self._textures.append(tex)
        return tex

    # -- statement emission ---------------------------------------------
    def _emit(self, stmt: A.Stmt, rendering: str) -> None:
        if self._built:
            raise CompileError("builder already finalized by build()")
        stmt.line = self._next_line(rendering)
        self._stack[-1].append(stmt)

    def _next_line(self, rendering: str) -> int:
        self._source_lines.append("    " * self._indent + rendering)
        # +2: the signature and the opening brace occupy lines 1..N_header
        return len(self._source_lines) + self._header_lines()

    def _header_lines(self) -> int:
        return 2  # "__global__ void name(...)" and "{"

    # -- statements -----------------------------------------------------
    def let(self, name: str, value, dtype: Optional[DType] = None) -> VarHandle:
        """``dtype name = value;`` — declare and initialise a variable."""
        self._check_name(name)
        node = _wrap(value)
        type_txt = dtype.name if dtype else "auto"
        self._emit(A.Let(name, node, dtype), f"{type_txt} {name} = ...;")
        return VarHandle(name)

    def assign(self, var: VarHandle, value) -> None:
        """``name = value;`` — reassign an existing variable."""
        self._emit(A.AssignVar(var.name, _wrap(value)), f"{var.name} = ...;")

    def local_array(self, name: str, dtype: DType, size: int) -> ArrayHandle:
        """Thread-private array held in registers (must be indexed with
        compile-time constants, as in unrolled CUDA code)."""
        self._check_name(name)
        if size <= 0:
            raise CompileError("array size must be positive")
        self._emit(A.ArrayDecl(name, dtype, size), f"{dtype.name} {name}[{size}];")
        return ArrayHandle(self, name, dtype, size)

    def shared_array(self, name: str, dtype: DType, size: int) -> SharedHandle:
        """``__shared__ dtype name[size];``"""
        self._check_name(name)
        if size <= 0:
            raise CompileError("shared array size must be positive")
        self._emit(
            A.SharedDecl(name, dtype, size),
            f"__shared__ {dtype.name} {name}[{size}];",
        )
        return SharedHandle(self, name, dtype, size)

    def store(self, pointer: ParamHandle, index, value) -> None:
        """``pointer[index] = value;`` (global memory)."""
        if not isinstance(pointer.type, PointerType):
            raise CompileError(f"{pointer.name!r} is not a pointer parameter")
        self._emit(
            A.StoreStmt(
                A.ParamRef(pointer.name),
                _wrap(index),
                _wrap(value),
                pointer._elem_override,
            ),
            f"{pointer.name}[...] = ...;",
        )

    def atomic_add_global(self, pointer: ParamHandle, index, value) -> None:
        """``atomicAdd(&pointer[index], value);``"""
        self._emit(
            A.AtomicAdd(
                _wrap(value), pointer=A.ParamRef(pointer.name), index=_wrap(index)
            ),
            f"atomicAdd(&{pointer.name}[...], ...);",
        )

    def atomic_add_shared(self, shared: SharedHandle, index, value) -> None:
        """``atomicAdd(&smem[index], value);`` on shared memory."""
        self._emit(
            A.AtomicAdd(_wrap(value), shared=shared.name, shared_index=_wrap(index)),
            f"atomicAdd(&{shared.name}[...], ...);",
        )

    def sync_threads(self) -> None:
        """``__syncthreads();``"""
        self._emit(A.SyncThreads(), "__syncthreads();")

    def return_if(self, cond) -> None:
        """``if (cond) return;`` — the standard bounds guard."""
        self._emit(A.ReturnIf(_wrap(cond)), "if (...) return;")

    def tex2d(self, tex: TextureParam, x, y) -> E:
        """``tex2D<float>(tex, x, y)`` fetch expression."""
        return E(A.TexFetch(tex.name, _wrap(x), _wrap(y)))

    def shfl_down(self, value, delta: int) -> E:
        """``__shfl_down_sync(0xffffffff, value, delta)``."""
        return E(A.Shuffle("down", _wrap(value), int(delta)))

    def shfl_up(self, value, delta: int) -> E:
        """``__shfl_up_sync(0xffffffff, value, delta)``."""
        return E(A.Shuffle("up", _wrap(value), int(delta)))

    def shfl_xor(self, value, mask: int) -> E:
        """``__shfl_xor_sync(0xffffffff, value, mask)``."""
        return E(A.Shuffle("xor", _wrap(value), int(mask)))

    def select(self, cond, a, b) -> E:
        """Ternary ``cond ? a : b`` (predicated SEL, no branch)."""
        return E(A.Select(_wrap(cond), _wrap(a), _wrap(b)))

    # -- control flow ----------------------------------------------------
    @contextlib.contextmanager
    def for_range(
        self, var: str, start, stop, step=1, unroll: bool = False
    ) -> Iterator[VarHandle]:
        """``for (int var = start; var < stop; var += step)`` block."""
        self._check_name(var)
        loop = A.For(var, _wrap(start), _wrap(stop), _wrap(step), unroll=unroll)
        self._emit(loop, f"for (int {var} = ...; {var} < ...; {var} += ...) {{")
        self._stack.append(loop.body)
        self._indent += 1
        try:
            yield VarHandle(var)
        finally:
            self._indent -= 1
            self._source_lines.append("    " * self._indent + "}")
            self._stack.pop()
            self._names.discard(var)

    @contextlib.contextmanager
    def if_then(self, cond) -> Iterator[None]:
        """``if (cond) { ... }`` block (predicated execution)."""
        node = A.If(_wrap(cond))
        self._emit(node, "if (...) {")
        self._stack.append(node.then)
        self._indent += 1
        try:
            yield
        finally:
            self._indent -= 1
            self._source_lines.append("    " * self._indent + "}")
            self._stack.pop()
            self._last_if = node

    @contextlib.contextmanager
    def else_then(self) -> Iterator[None]:
        """``else { ... }`` for the immediately preceding :meth:`if_then`.

        Compiles to the complementary predicate — the condition is not
        re-evaluated."""
        node = getattr(self, "_last_if", None)
        if node is None:
            raise CompileError("else_then() without a preceding if_then()")
        if node.els:
            raise CompileError("duplicate else_then() for the same if")
        self._source_lines.append("    " * self._indent + "else {")
        self._stack.append(node.els)
        self._indent += 1
        try:
            yield
        finally:
            self._indent -= 1
            self._source_lines.append("    " * self._indent + "}")
            self._stack.pop()
            self._last_if = None

    # -- finalisation ------------------------------------------------------
    def build(self) -> Kernel:
        """Finalize into an immutable :class:`Kernel`."""
        if self._built:
            raise CompileError("build() called twice")
        self._built = True
        sig_params = [f"{p.type} {p.name}" for p in self._params]
        sig_params += [f"cudaTextureObject_t {t.name}" for t in self._textures]
        header = f"__global__ void {self.name}({', '.join(sig_params)})"
        source = "\n".join([header, "{"] + self._source_lines + ["}"]) + "\n"
        return Kernel(
            name=self.name,
            params=list(self._params),
            textures=list(self._textures),
            body=self._body,
            source=source,
            launch_bounds_regs=self.max_registers,
        )
