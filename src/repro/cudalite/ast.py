"""Kernel AST of the cudalite frontend.

Nodes are plain dataclasses; type checking/inference happens in the
compiler.  The builder wraps expressions in an operator-overloading
facade (:class:`repro.cudalite.builder.E`) so kernels read like CUDA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cudalite.types import DType

__all__ = [
    "Expr",
    "Const",
    "ParamRef",
    "VarRef",
    "Builtin",
    "BinOp",
    "UnaryOp",
    "Cast",
    "Call",
    "Load",
    "VecLane",
    "SharedRef",
    "ArrayRef",
    "TexFetch",
    "Shuffle",
    "Select",
    "Stmt",
    "Let",
    "AssignVar",
    "ArrayDecl",
    "ArrayAssign",
    "StoreStmt",
    "SharedDecl",
    "SharedStore",
    "For",
    "If",
    "AtomicAdd",
    "SyncThreads",
    "ReturnIf",
    "BINARY_OPS",
    "COMPARISONS",
]

#: arithmetic / logical binary operators recognised by the compiler
BINARY_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "min", "max")
#: comparison operators (produce predicates)
COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


class Expr:
    """Base class of all expression nodes."""


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant of a given type."""

    value: Union[int, float]
    dtype: DType


@dataclass(frozen=True)
class ParamRef(Expr):
    """Reference to a kernel parameter (scalar or pointer)."""

    name: str


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a local variable introduced by :class:`Let`."""

    name: str


@dataclass(frozen=True)
class Builtin(Expr):
    """CUDA builtins: threadIdx/blockIdx/blockDim/gridDim, one axis."""

    kind: str  # "tid" | "ctaid" | "ntid" | "nctaid"
    axis: str  # "x" | "y" | "z"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic, bitwise or comparison operation."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary negation / logical not."""

    op: str  # "-" | "!"
    operand: Expr


@dataclass(frozen=True)
class Cast(Expr):
    """Explicit datatype conversion — compiles to I2F/F2I/F2F/I2I."""

    operand: Expr
    dtype: DType


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic call: ``mad``, ``sqrtf``, ``rcpf``, ``fma`` ..."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Load(Expr):
    """Global-memory load ``pointer[index]``.

    ``elem`` overrides the pointee type for reinterpret-cast accesses
    (``reinterpret_cast<float4*>(p)[i]`` keeps the pointer but loads a
    ``float4``).
    """

    pointer: ParamRef
    index: Expr
    elem: Optional[DType] = None


@dataclass(frozen=True)
class VecLane(Expr):
    """Lane extraction from a vector value: ``v.x`` / ``v.y`` ..."""

    vec: Expr
    lane: int


@dataclass(frozen=True)
class SharedRef(Expr):
    """Shared-memory load ``smem[index]``."""

    name: str
    index: Expr


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Read from a register array (unrolled thread-private array).

    The index must fold to a compile-time constant (possibly after loop
    unrolling) — otherwise the array would live in local memory, which
    cudalite reports as a compile error to keep spill behaviour
    attributable to the register allocator alone.
    """

    name: str
    index: Expr


@dataclass(frozen=True)
class TexFetch(Expr):
    """2D texture fetch ``tex2D(tex, x, y)`` — compiles to TEX."""

    tex: str  # texture parameter name
    x: Expr
    y: Expr


@dataclass(frozen=True)
class Shuffle(Expr):
    """Warp shuffle ``__shfl_{down,up,xor}_sync`` — compiles to SHFL.

    Lanes exchange register values without memory traffic; the idiom
    behind warp-level reductions."""

    mode: str  # "down" | "up" | "xor"
    value: Expr
    delta: int


@dataclass(frozen=True)
class Select(Expr):
    """Ternary ``cond ? a : b`` — compiles to SEL."""

    cond: Expr
    a: Expr
    b: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of all statement nodes; carries a source line."""

    line: Optional[int] = None


@dataclass
class Let(Stmt):
    """Declare-and-initialise a local scalar/vector variable."""

    name: str
    value: Expr
    dtype: Optional[DType] = None
    line: Optional[int] = None


@dataclass
class AssignVar(Stmt):
    """Re-assign an existing local variable."""

    name: str
    value: Expr
    line: Optional[int] = None


@dataclass
class ArrayDecl(Stmt):
    """Declare a thread-private register array of static size."""

    name: str
    dtype: DType
    size: int
    line: Optional[int] = None


@dataclass
class ArrayAssign(Stmt):
    """Write one element of a register array (constant-foldable index)."""

    name: str
    index: Expr
    value: Expr
    line: Optional[int] = None


@dataclass
class StoreStmt(Stmt):
    """Global-memory store ``pointer[index] = value``."""

    pointer: ParamRef
    index: Expr
    value: Expr
    elem: Optional[DType] = None
    line: Optional[int] = None


@dataclass
class SharedDecl(Stmt):
    """Declare a ``__shared__`` array (elements, not bytes)."""

    name: str
    dtype: DType
    size: int
    line: Optional[int] = None


@dataclass
class SharedStore(Stmt):
    """Shared-memory store ``smem[index] = value``."""

    name: str
    index: Expr
    value: Expr
    line: Optional[int] = None


@dataclass
class For(Stmt):
    """Counted loop ``for (int var = start; var < stop; var += step)``.

    ``unroll=True`` requires compile-time-constant bounds and replicates
    the body (how ``#pragma unroll`` behaves for register arrays).
    """

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)
    unroll: bool = False
    line: Optional[int] = None


@dataclass
class If(Stmt):
    """Conditional; compiled to predicated execution (both arms are
    emitted under complementary guards, the common nvcc strategy for
    short bodies)."""

    cond: Expr
    then: list[Stmt] = field(default_factory=list)
    els: list[Stmt] = field(default_factory=list)
    line: Optional[int] = None


@dataclass
class AtomicAdd(Stmt):
    """``atomicAdd`` on global (``pointer``) or shared (``shared``)
    memory.  Exactly one of the two targets is set."""

    value: Expr
    pointer: Optional[ParamRef] = None
    index: Optional[Expr] = None
    shared: Optional[str] = None
    shared_index: Optional[Expr] = None
    line: Optional[int] = None


@dataclass
class SyncThreads(Stmt):
    """``__syncthreads()`` — compiles to BAR.SYNC."""

    line: Optional[int] = None


@dataclass
class ReturnIf(Stmt):
    """Early exit ``if (cond) return;`` — compiles to a predicated EXIT
    (lane masking), the standard guard idiom in CUDA kernels."""

    cond: Expr
    line: Optional[int] = None
