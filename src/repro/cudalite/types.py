"""Type system of the cudalite frontend.

Scalar types carry their NumPy dtype (used by the functional executor)
and SASS width; vector types (``float4`` etc.) are what turn memory
accesses into the 64-/128-bit vectorized transactions that GPUscout's
§4.1 analysis is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "PointerType",
    "i32",
    "u32",
    "u64",
    "f32",
    "f64",
    "float2",
    "float4",
    "int4",
    "double2",
    "ptr",
    "common_type",
]


@dataclass(frozen=True)
class DType:
    """A scalar or short-vector value type.

    ``lanes > 1`` marks CUDA vector types; ``scalar`` is then the
    element type.  ``regs`` is the number of 32-bit SASS registers a
    value occupies (what drives register-pair/quad allocation).
    """

    name: str
    bits: int  # total width in bits
    is_float: bool
    lanes: int = 1
    signed: bool = True

    @property
    def bytes(self) -> int:
        return self.bits // 8

    @property
    def regs(self) -> int:
        return max(1, self.bits // 32)

    @property
    def is_vector(self) -> bool:
        return self.lanes > 1

    @property
    def scalar(self) -> "DType":
        if not self.is_vector:
            return self
        return _SCALARS[(self.bits // self.lanes, self.is_float, self.signed)]

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy dtype of one lane (executor representation)."""
        s = self.scalar
        if s.is_float:
            return np.dtype(np.float32 if s.bits == 32 else np.float64)
        if s.bits == 64:
            return np.dtype(np.int64 if s.signed else np.uint64)
        return np.dtype(np.int32 if s.signed else np.uint32)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


i32 = DType("int", 32, is_float=False)
u32 = DType("unsigned int", 32, is_float=False, signed=False)
u64 = DType("unsigned long long", 64, is_float=False, signed=False)
f32 = DType("float", 32, is_float=True)
f64 = DType("double", 64, is_float=True)
float2 = DType("float2", 64, is_float=True, lanes=2)
float4 = DType("float4", 128, is_float=True, lanes=4)
int4 = DType("int4", 128, is_float=False, lanes=4)
double2 = DType("double2", 128, is_float=True, lanes=2)

_SCALARS = {
    (32, False, True): i32,
    (32, False, False): u32,
    (64, False, False): u64,
    (32, True, True): f32,
    (64, True, True): f64,
}


@dataclass(frozen=True)
class PointerType:
    """A pointer to global memory holding elements of ``elem``.

    ``readonly`` corresponds to ``const``; ``restrict`` to
    ``__restrict__``.  Loads through a pointer that is both are eligible
    for the read-only data cache (``LDG.E.CONSTANT``), mirroring nvcc.
    """

    elem: DType
    readonly: bool = False
    restrict: bool = False

    @property
    def uses_readonly_cache(self) -> bool:
        return self.readonly and self.restrict

    def as_elem(self, elem: DType) -> "PointerType":
        """Pointer reinterpret-cast preserving qualifiers."""
        return PointerType(elem, self.readonly, self.restrict)

    def __str__(self) -> str:  # pragma: no cover - trivial
        quals = []
        if self.readonly:
            quals.append("const")
        quals.append(f"{self.elem.name}*")
        if self.restrict:
            quals.append("__restrict__")
        return " ".join(quals)


def ptr(elem: DType, readonly: bool = False, restrict: bool = False) -> PointerType:
    """Convenience constructor for :class:`PointerType`."""
    return PointerType(elem, readonly=readonly, restrict=restrict)


def common_type(a: DType, b: DType) -> DType:
    """C-style usual arithmetic conversions for two scalar types."""
    if a.is_vector or b.is_vector:
        if a == b:
            return a
        raise TypeError(f"no implicit conversion between {a} and {b}")
    if a == b:
        return a
    if a.is_float or b.is_float:
        fa = a if a.is_float else None
        fb = b if b.is_float else None
        widest = max((t.bits for t in (fa, fb) if t is not None), default=32)
        return f64 if widest == 64 else f32
    if a.bits == 64 or b.bits == 64:
        return u64
    return i32 if (a.signed and b.signed) else u32
