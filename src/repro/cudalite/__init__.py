"""cudalite: a miniature CUDA-flavoured kernel frontend.

This package stands in for ``nvcc`` + CUDA C in the reproduction: kernels
are written against a typed expression/statement AST (usually through
:class:`~repro.cudalite.builder.KernelBuilder`), then compiled by
:mod:`repro.cudalite.compiler` to Volta-style SASS with

* real register allocation (linear scan) against a configurable budget,
  spilling to local memory with ``STL``/``LDL`` exactly where pressure
  exceeds the budget;
* vectorized ``LDG.E.{64,128}``/``STG.E.{64,128}`` for vector types
  (``float4`` & friends);
* ``LDG.E.CONSTANT`` read-only loads for ``const __restrict__``
  parameters;
* texture fetches (``TEX``), shared-memory traffic (``LDS``/``STS``),
  atomics (``RED``/``ATOM``/``ATOMS``), datatype conversions
  (``I2F``/``F2F``/...) and natural for-loops with back edges;
* a source-line table mapping every instruction to a line of the
  pseudo-CUDA rendering of the kernel (what ``-g --generate-line-info``
  provides on real binaries).

GPUscout's static analyses therefore see the same instruction patterns
they would see on nvcc output.
"""

from repro.cudalite.types import (
    DType,
    PointerType,
    f32,
    f64,
    i32,
    u32,
    u64,
    float2,
    float4,
    int4,
    double2,
    ptr,
)
from repro.cudalite.ast import Expr, Stmt
from repro.cudalite.builder import KernelBuilder, Kernel
from repro.cudalite.compiler import compile_kernel

__all__ = [
    "DType",
    "PointerType",
    "f32",
    "f64",
    "i32",
    "u32",
    "u64",
    "float2",
    "float4",
    "int4",
    "double2",
    "ptr",
    "Expr",
    "Stmt",
    "KernelBuilder",
    "Kernel",
    "compile_kernel",
]
