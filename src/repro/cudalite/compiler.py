"""AST → SASS code generation.

:func:`compile_kernel` lowers a :class:`~repro.cudalite.builder.Kernel`
to a virtual-register instruction stream (``PTX``-like: unlimited
registers) and then runs linear-scan register allocation
(:mod:`repro.cudalite.regalloc`) against the kernel's register budget,
producing a :class:`~repro.sass.isa.Program` plus the launch metadata
the simulator needs (parameter constant-bank layout, shared-memory
layout, texture slots).

Code-generation strategy notes (what makes the SASS look like nvcc's):

* additive constants in indices are folded into the memory operand's
  byte offset, and address *variable parts* are value-numbered — so an
  unrolled ``a[base+0] ... a[base+3]`` becomes ``LDG [R2]``,
  ``LDG [R2+0x4]`` ... off one base register, the exact shape §4.1/§4.6
  of the paper pattern-match;
* pointers declared ``const __restrict__`` load via ``LDG.E.CONSTANT``
  (read-only cache);
* vector types load/store as a single ``LDG.E.{64,128}`` writing a
  register quad, with arithmetic lowered lane-wise;
* ``if`` bodies are predicated rather than branched (nvcc's choice for
  short bodies), loops use a pre-check plus bottom-test back edge;
* every instruction carries the pseudo-CUDA source line of its
  statement, standing in for ``-g --generate-line-info``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.cudalite import ast as A
from repro.cudalite.builder import Kernel, TextureParam
from repro.cudalite.regalloc import (
    AllocationResult,
    VInstr,
    VOperand,
    VPred,
    VProgram,
    VReg,
    allocate,
)
from repro.cudalite.types import (
    DType,
    PointerType,
    common_type,
    f32,
    i32,
    u32,
    u64,
)
from repro.errors import CompileError
from repro.sass.isa import Label, Opcode, Program

__all__ = ["compile_kernel", "CompiledKernel", "ParamSlot", "SharedSlot"]

PARAM_BASE = 0x160  # first kernel-parameter offset in c[0x0] on sm_70


@dataclass(frozen=True)
class ParamSlot:
    """Constant-bank layout entry for one kernel parameter."""

    name: str
    offset: int
    type: Union[DType, PointerType]

    @property
    def is_pointer(self) -> bool:
        return isinstance(self.type, PointerType)


@dataclass(frozen=True)
class SharedSlot:
    """Static shared-memory layout entry for one ``__shared__`` array."""

    name: str
    offset: int
    dtype: DType
    size: int


@dataclass
class CompiledKernel:
    """A compiled kernel: SASS program + launch metadata."""

    kernel: Kernel
    program: Program
    params: list[ParamSlot]
    shared: list[SharedSlot]
    textures: list[TextureParam]
    allocation: AllocationResult

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def sass_text(self) -> str:
        from repro.sass.writer import format_program

        return format_program(self.program)

    @property
    def ptx_text(self) -> str:
        """The kernel rendered at the PTX stage (paper §2.1's first
        transformation; re-derived from the source kernel)."""
        from repro.ptx.writer import kernel_to_ptx

        return kernel_to_ptx(self.kernel)

    def param_slot(self, name: str) -> ParamSlot:
        for slot in self.params:
            if slot.name == name:
                return slot
        raise KeyError(name)

    def tex_slot(self, name: str) -> int:
        for i, tex in enumerate(self.textures):
            if tex.name == name:
                return i
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Val:
    """A lowered expression value.

    Exactly one representation is populated:

    * ``const``  — compile-time Python constant,
    * ``cref``   — a constant-bank slot (scalar parameter),
    * ``vreg``   — virtual register (``lane`` selects the 32-bit
      component for vector elements).
    """

    dtype: DType
    vreg: Optional[VReg] = None
    lane: int = 0
    const: Optional[Union[int, float]] = None
    cref: Optional[tuple[int, int]] = None

    @property
    def is_const(self) -> bool:
        return self.const is not None

    @property
    def is_cref(self) -> bool:
        return self.cref is not None


_ADD_OP = {False: "IADD3", True: "FADD"}
_MUL_OP = {False: "IMAD", True: "FMUL"}
_CMP_MOD = {"<": "LT", "<=": "LE", ">": "GT", ">=": "GE", "==": "EQ", "!=": "NE"}


class _Lowerer:
    """Single-use lowering context for one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.items: list = []  # VInstr | Label
        self.next_vreg = 0
        self.next_vpred = 0
        self.next_label = 0
        self.line: Optional[int] = None
        self.guard: Optional[tuple[VPred, bool]] = None
        # name environments
        self.params: dict[str, ParamSlot] = {}
        self.vars: dict[str, tuple[VReg, DType]] = {}
        self.arrays: dict[str, tuple[list[VReg], DType]] = {}
        self.shared: dict[str, SharedSlot] = {}
        self.tex_index: dict[str, int] = {}
        # value numbering: scope stack of {expr-node: Val}, plus dep maps
        self.memo_scopes: list[dict[A.Expr, Val]] = [{}]
        self.memo_deps: list[dict[A.Expr, frozenset[str]]] = [{}]
        self._layout_params()

    # -- bookkeeping ----------------------------------------------------
    def _layout_params(self) -> None:
        offset = PARAM_BASE
        for p in self.kernel.params:
            size = 8 if isinstance(p.type, PointerType) else max(4, p.type.bytes)
            offset = (offset + size - 1) // size * size
            self.params[p.name] = ParamSlot(p.name, offset, p.type)
            offset += size
        for i, tex in enumerate(self.kernel.textures):
            self.tex_index[tex.name] = i

    def new_vreg(self, regs: int = 1) -> VReg:
        self.next_vreg += 1
        return VReg(self.next_vreg, regs)

    def new_vpred(self) -> VPred:
        self.next_vpred += 1
        return VPred(self.next_vpred)

    def new_label(self, stem: str) -> str:
        self.next_label += 1
        return f"L_{stem}_{self.next_label}"

    def emit(self, opcode: str, operands: list[VOperand],
             pred: Optional[tuple[VPred, bool]] = None) -> VInstr:
        guard = pred if pred is not None else self.guard
        ins = VInstr(
            Opcode.parse(opcode),
            operands,
            pred=guard[0] if guard else None,
            pred_negated=guard[1] if guard else False,
            line=self.line,
        )
        self.items.append(ins)
        return ins

    def emit_label(self, name: str) -> None:
        self.items.append(Label(name))

    # -- memoization ------------------------------------------------------
    def push_scope(self) -> None:
        self.memo_scopes.append({})
        self.memo_deps.append({})

    def pop_scope(self) -> None:
        self.memo_scopes.pop()
        self.memo_deps.pop()

    def memo_get(self, key: A.Expr) -> Optional[Val]:
        for scope in reversed(self.memo_scopes):
            if key in scope:
                return scope[key]
        return None

    def memo_put(self, key: A.Expr, val: Val) -> None:
        self.memo_scopes[-1][key] = val
        self.memo_deps[-1][key] = _deps(key)

    def invalidate(self, name: str) -> None:
        """Drop memoized values that depend on ``name``."""
        for scope, deps in zip(self.memo_scopes, self.memo_deps):
            dead = [k for k, d in deps.items() if name in d]
            for k in dead:
                del scope[k]
                del deps[k]

    # ------------------------------------------------------------------
    # Expression lowering
    # ------------------------------------------------------------------

    def lower(self, expr: A.Expr) -> Val:
        folded = _fold(expr)
        if isinstance(folded, A.Const):
            return Val(folded.dtype, const=folded.value)
        expr = folded
        if _is_pure(expr):
            hit = self.memo_get(expr)
            if hit is not None:
                return hit
        val = self._lower_uncached(expr)
        if _is_pure(expr) and val.vreg is not None:
            self.memo_put(expr, val)
        return val

    def _lower_uncached(self, expr: A.Expr) -> Val:
        if isinstance(expr, A.ParamRef):
            return self._lower_param(expr.name)
        if isinstance(expr, A.VarRef):
            if expr.name not in self.vars:
                raise CompileError(f"undefined variable {expr.name!r}")
            vreg, dtype = self.vars[expr.name]
            return Val(dtype, vreg=vreg)
        if isinstance(expr, A.Builtin):
            return self._lower_builtin(expr)
        if isinstance(expr, A.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, A.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, A.Cast):
            return self._lower_cast(self.lower(expr.operand), expr.dtype)
        if isinstance(expr, A.Call):
            return self._lower_call(expr)
        if isinstance(expr, A.Load):
            return self._lower_load(expr)
        if isinstance(expr, A.VecLane):
            return self._lower_veclane(expr)
        if isinstance(expr, A.SharedRef):
            return self._lower_shared_load(expr)
        if isinstance(expr, A.ArrayRef):
            vreg, dtype, _ = self._array_element(expr.name, expr.index)
            return Val(dtype, vreg=vreg)
        if isinstance(expr, A.TexFetch):
            return self._lower_tex(expr)
        if isinstance(expr, A.Shuffle):
            return self._lower_shuffle(expr)
        if isinstance(expr, A.Select):
            return self._lower_select(expr)
        raise CompileError(f"cannot lower expression {expr!r}")

    # -- leaves ---------------------------------------------------------
    def _lower_param(self, name: str) -> Val:
        if name not in self.params:
            raise CompileError(f"unknown parameter {name!r}")
        slot = self.params[name]
        if slot.is_pointer:
            # materialize the base address once (memoized by caller)
            dst = self.new_vreg()
            self.emit("MOV", [VOperand.r(dst), VOperand.c(0, slot.offset)])
            return Val(u64, vreg=dst)
        dtype = slot.type
        assert isinstance(dtype, DType)
        return Val(dtype, cref=(0, slot.offset))

    _SR_NAME = {"tid": "SR_TID", "ctaid": "SR_CTAID", "ntid": "SR_NTID",
                "nctaid": "SR_NCTAID"}

    def _lower_builtin(self, expr: A.Builtin) -> Val:
        dst = self.new_vreg()
        sr = f"{self._SR_NAME[expr.kind]}.{expr.axis.upper()}"
        self.emit("S2R", [VOperand.r(dst), VOperand.sr(sr)])
        return Val(u32, vreg=dst)

    # -- operand helpers ---------------------------------------------------
    def as_operand(self, val: Val) -> VOperand:
        """Use ``val`` as a data operand (register/immediate/cbank)."""
        if val.vreg is not None:
            return VOperand.r(val.vreg, val.lane)
        if val.is_cref:
            return VOperand.c(*val.cref)
        assert val.const is not None
        if val.dtype.is_float:
            return VOperand.f(float(val.const))
        return VOperand.i(int(val.const))

    def as_vreg(self, val: Val) -> tuple[VReg, int]:
        """Force ``val`` into a register, returning (vreg, lane)."""
        if val.vreg is not None:
            return val.vreg, val.lane
        dst = self.new_vreg(val.dtype.regs)
        if val.is_cref:
            self.emit("MOV", [VOperand.r(dst), VOperand.c(*val.cref)])
        elif val.dtype.is_float and val.dtype.scalar.bits == 64:
            # f64 immediates materialize as a MOV32I pair (raw bits),
            # the way nvcc emits double constants
            bits = _f64_bits(float(val.const))
            self.emit("MOV32I", [VOperand.r(dst, 0), VOperand.i(bits & 0xFFFFFFFF)])
            self.emit("MOV32I", [VOperand.r(dst, 1), VOperand.i(bits >> 32)])
        elif val.dtype.is_float:
            self.emit("MOV32I", [VOperand.r(dst), VOperand.f(float(val.const))])
        else:
            self.emit("MOV32I", [VOperand.r(dst), VOperand.i(int(val.const))])
        return dst, 0

    # -- arithmetic ---------------------------------------------------------
    def _arith_dtype(self, a: Val, b: Val) -> DType:
        return common_type(a.dtype, b.dtype)

    def coerce(self, val: Val, dtype: DType) -> Val:
        """Insert a conversion when ``val`` is not already ``dtype``."""
        if val.dtype == dtype:
            return val
        if val.is_const:
            # compile-time conversion, no instruction
            value = float(val.const) if dtype.is_float else int(val.const)
            return Val(dtype, const=value)
        if val.dtype.is_vector or dtype.is_vector:
            raise CompileError(f"no conversion {val.dtype} -> {dtype}")
        return self._lower_cast(val, dtype)

    def _lower_cast(self, val: Val, dtype: DType) -> Val:
        src = val.dtype
        if src == dtype:
            return val
        if val.is_const:
            value = float(val.const) if dtype.is_float else int(val.const)
            return Val(dtype, const=value)
        if not src.is_float and not dtype.is_float and src.bits == dtype.bits:
            # same-width signedness reinterpretation is free in SASS
            return Val(dtype, vreg=val.vreg, lane=val.lane, cref=val.cref)
        dst = self.new_vreg(dtype.regs)
        sop = self.as_operand(val)
        if not src.is_float and dtype.is_float:
            mods = ".F64" if dtype.bits == 64 else ""
            mods += ".U32" if not src.signed and src.bits == 32 else ""
            self.emit(f"I2F{mods}", [VOperand.r(dst), sop])
        elif src.is_float and not dtype.is_float:
            mods = ".F64" if src.bits == 64 else ""
            self.emit(f"F2I{mods}", [VOperand.r(dst), sop])
        elif src.is_float and dtype.is_float:
            self.emit(
                f"F2F.F{dtype.bits}.F{src.bits}", [VOperand.r(dst), sop]
            )
        else:
            self.emit("I2I", [VOperand.r(dst), sop])
        return Val(dtype, vreg=dst)

    def _lower_binop(self, expr: A.BinOp) -> Val:
        if expr.op in A.COMPARISONS or expr.op in ("&&", "||"):
            raise CompileError(
                f"comparison {expr.op!r} used as a value; use it in a "
                "condition position (if/return_if/loop bound)"
            )
        a = self.lower(expr.lhs)
        b = self.lower(expr.rhs)
        if a.dtype.is_vector or b.dtype.is_vector:
            # scalar operands broadcast across vector lanes
            dtype = a.dtype if a.dtype.is_vector else b.dtype
            return self._vector_binop(expr.op, a, b, dtype)
        dtype = self._arith_dtype(a, b)
        a = self.coerce(a, dtype)
        b = self.coerce(b, dtype)
        dst = self.new_vreg(dtype.regs)
        self._emit_scalar_binop(expr.op, dst, 0, a, b, dtype)
        return Val(dtype, vreg=dst)

    def _emit_scalar_binop(self, op: str, dst: VReg, dlane: int,
                           a: Val, b: Val, dtype: DType) -> None:
        d = VOperand.r(dst, dlane)
        ao, bo = self.as_operand(a), self.as_operand(b)
        fp = dtype.is_float
        prefix = "D" if fp and dtype.scalar.bits == 64 else ""
        if op == "+":
            if fp:
                self.emit(f"{prefix}ADD" if prefix else "FADD", [d, ao, bo])
            else:
                self.emit("IADD3", [d, ao, bo, VOperand.i(0)])
        elif op == "-":
            nb = _negate_operand(bo)
            if fp:
                self.emit(f"{prefix}ADD" if prefix else "FADD", [d, ao, nb])
            else:
                self.emit("IADD3", [d, ao, nb, VOperand.i(0)])
        elif op == "*":
            if fp:
                self.emit(f"{prefix}MUL" if prefix else "FMUL", [d, ao, bo])
            else:
                self.emit("IMAD", [d, ao, bo, VOperand.i(0)])
        elif op == "/":
            if fp and not prefix and b.is_const and b.const != 0:
                # nvcc folds division by a constant into a multiply
                self.emit("FMUL", [d, ao, VOperand.f(1.0 / float(b.const))])
            elif fp and not prefix:
                tmp = self.new_vreg()
                self.emit("MUFU.RCP", [VOperand.r(tmp), bo])
                self.emit("FMUL", [d, ao, VOperand.r(tmp)])
            elif not fp and b.is_const and _is_pow2(b.const):
                self.emit("SHF.R.S32", [d, ao, VOperand.i(int(b.const).bit_length() - 1)])
            else:
                raise CompileError(
                    "division supported only for f32 and int-by-power-of-2"
                )
        elif op == "%":
            if not fp and b.is_const and _is_pow2(b.const):
                self.emit("LOP3.LUT", [d, ao, VOperand.i(int(b.const) - 1),
                                       VOperand.i(0), VOperand.i(0xC0)])
            else:
                raise CompileError("modulo supported only for int-by-power-of-2")
        elif op in ("&", "|", "^"):
            lut = {"&": 0xC0, "|": 0xFC, "^": 0x3C}[op]
            self.emit("LOP3.LUT", [d, ao, bo, VOperand.i(0), VOperand.i(lut)])
        elif op == "<<":
            self.emit("SHF.L.U32", [d, ao, bo])
        elif op == ">>":
            self.emit("SHF.R.S32" if dtype.signed else "SHF.R.U32", [d, ao, bo])
        elif op in ("min", "max"):
            mn = "FMNMX" if fp else "IMNMX"
            # last operand: PT selects min, !PT selects max (SASS idiom)
            sel = VOperand.p(None, negated=(op == "max"))
            self.emit(mn, [d, ao, bo, sel])
        else:
            raise CompileError(f"unsupported operator {op!r}")

    def _vector_binop(self, op: str, a: Val, b: Val, dtype: DType) -> Val:
        dst = self.new_vreg(dtype.regs)
        self._vector_binop_into(op, dst, a, b, dtype)
        return Val(dtype, vreg=dst)

    def _vector_binop_into(self, op: str, dst: VReg, a: Val, b: Val,
                           dtype: DType) -> None:
        scalar = dtype.scalar
        step = scalar.regs
        for k in range(dtype.lanes):
            ak = self._vec_lane_val(a, k, scalar)
            bk = self._vec_lane_val(b, k, scalar)
            self._emit_scalar_binop(op, dst, k * step, ak, bk, scalar)

    def _vec_lane_val(self, val: Val, k: int, scalar: DType) -> Val:
        if val.dtype.is_vector:
            if val.is_const:
                raise CompileError("vector constants are not supported")
            return Val(scalar, vreg=val.vreg, lane=val.lane + k * scalar.regs)
        return val  # scalar broadcast

    def _lower_unary(self, expr: A.UnaryOp) -> Val:
        val = self.lower(expr.operand)
        if expr.op == "-":
            if val.is_const:
                return Val(val.dtype, const=-val.const)
            dtype = val.dtype
            dst = self.new_vreg(dtype.regs)
            so = _negate_operand(self.as_operand(val))
            if dtype.is_float:
                op = "DADD" if dtype.scalar.bits == 64 else "FADD"
                self.emit(op, [VOperand.r(dst), so, VOperand.f(0.0)])
            else:
                self.emit("IADD3", [VOperand.r(dst), so, VOperand.i(0), VOperand.i(0)])
            return Val(dtype, vreg=dst)
        raise CompileError(f"unsupported unary operator {expr.op!r}")

    def _lower_call(self, expr: A.Call) -> Val:
        if expr.name == "mad":
            return self._lower_mad(expr)
        if expr.name in ("sqrt", "rsqrt", "rcp"):
            val = self.coerce(self.lower(expr.args[0]), f32)
            dst = self.new_vreg()
            mod = {"sqrt": "SQRT", "rsqrt": "RSQ", "rcp": "RCP"}[expr.name]
            self.emit(f"MUFU.{mod}", [VOperand.r(dst), self.as_operand(val)])
            return Val(f32, vreg=dst)
        if expr.name in ("min", "max"):
            return self._lower_binop(A.BinOp(expr.name, expr.args[0], expr.args[1]))
        raise CompileError(f"unknown intrinsic {expr.name!r}")

    def _lower_mad(self, expr: A.Call) -> Val:
        a = self.lower(expr.args[0])
        b = self.lower(expr.args[1])
        c = self.lower(expr.args[2])
        if a.dtype.is_vector or b.dtype.is_vector or c.dtype.is_vector:
            dtype = next(v.dtype for v in (a, b, c) if v.dtype.is_vector)
        else:
            dtype = common_type(common_type(a.dtype, b.dtype), c.dtype)
        dst = self.new_vreg(dtype.regs)
        self._mad_into(dst, a, b, c, dtype)
        return Val(dtype, vreg=dst)

    def _mad_into(self, dst: VReg, a: Val, b: Val, c: Val, dtype: DType) -> None:
        if dtype.is_vector:
            scalar = dtype.scalar
            step = scalar.regs
            for k in range(dtype.lanes):
                self._mad_scalar(
                    dst, k * step,
                    self._vec_lane_val(a, k, scalar),
                    self._vec_lane_val(b, k, scalar),
                    self._vec_lane_val(c, k, scalar),
                    scalar,
                )
        else:
            a = self.coerce(a, dtype)
            b = self.coerce(b, dtype)
            c = self.coerce(c, dtype)
            self._mad_scalar(dst, 0, a, b, c, dtype)

    def _mad_scalar(self, dst: VReg, dlane: int, a: Val, b: Val, c: Val,
                    dtype: DType) -> None:
        a = self.coerce(a, dtype)
        b = self.coerce(b, dtype)
        c = self.coerce(c, dtype)
        d = VOperand.r(dst, dlane)
        ops = [d, self.as_operand(a), self.as_operand(b), self.as_operand(c)]
        if dtype.is_float:
            self.emit("DFMA" if dtype.bits == 64 else "FFMA", ops)
        else:
            self.emit("IMAD", ops)

    # -- memory ----------------------------------------------------------
    def _pointer_base(self, name: str) -> Val:
        return self.lower(A.ParamRef(name))  # memoized

    def _lower_address(self, pointer: str, index: A.Expr,
                       elem_bytes: int) -> tuple[Optional[VReg], int]:
        """Compute (base vreg, byte offset) for ``pointer[index]``.

        Additive constants fold into the offset; the variable part is
        value-numbered so repeated/adjacent accesses share one base.
        """
        var_part, const_add = _split_const(_fold(index))
        byte_off = const_add * elem_bytes
        base_val = self._pointer_base(pointer)
        if var_part is None:
            vreg, _ = self.as_vreg(base_val)
            return vreg, byte_off
        key = A.Call("__addr", (A.ParamRef(pointer), var_part,
                                A.Const(elem_bytes, i32)))
        hit = self.memo_get(key)
        if hit is not None:
            return hit.vreg, byte_off
        idx = self.lower(var_part)
        idx = self.coerce(idx, i32) if idx.dtype.is_float else idx
        base_vreg, _ = self.as_vreg(base_val)
        addr = self.new_vreg()
        self.emit("IMAD.WIDE", [VOperand.r(addr), self.as_operand(idx),
                                VOperand.i(elem_bytes), VOperand.r(base_vreg)])
        self.memo_put(key, Val(u64, vreg=addr))
        return addr, byte_off

    def _load_opcode(self, elem: DType, ptype: PointerType) -> str:
        op = "LDG.E"
        if elem.bits > 32:
            op += f".{elem.bits}"
        if ptype.uses_readonly_cache:
            op += ".CONSTANT"
        return op + ".SYS"

    def _lower_load(self, expr: A.Load) -> Val:
        name = expr.pointer.name
        slot = self.params.get(name)
        if slot is None or not slot.is_pointer:
            raise CompileError(f"{name!r} is not a pointer parameter")
        ptype = slot.type
        assert isinstance(ptype, PointerType)
        elem = expr.elem or ptype.elem
        base, off = self._lower_address(name, expr.index, elem.bytes)
        dst = self.new_vreg(elem.regs)
        self.emit(self._load_opcode(elem, ptype),
                  [VOperand.r(dst), VOperand.m(base, off)])
        return Val(elem, vreg=dst)

    def store_global(self, stmt: A.StoreStmt) -> None:
        name = stmt.pointer.name
        slot = self.params.get(name)
        if slot is None or not slot.is_pointer:
            raise CompileError(f"{name!r} is not a pointer parameter")
        ptype = slot.type
        assert isinstance(ptype, PointerType)
        if ptype.readonly:
            raise CompileError(f"cannot store through const pointer {name!r}")
        elem = stmt.elem or ptype.elem
        val = self.lower(stmt.value)
        if elem.is_vector and not val.dtype.is_vector:
            raise CompileError("cannot store scalar through vector pointer")
        if not elem.is_vector:
            val = self.coerce(val, elem)
        vreg, lane = self.as_vreg(val)
        base, off = self._lower_address(name, stmt.index, elem.bytes)
        op = "STG.E"
        if elem.bits > 32:
            op += f".{elem.bits}"
        self.emit(op + ".SYS", [VOperand.m(base, off), VOperand.r(vreg, lane)])

    # shared memory ------------------------------------------------------
    def _shared_addr(self, name: str, index: A.Expr) -> tuple[Optional[VReg], int]:
        slot = self.shared[name]
        var_part, const_add = _split_const(_fold(index))
        byte_off = slot.offset + const_add * slot.dtype.bytes
        if var_part is None:
            return None, byte_off
        key = A.Call("__saddr", (A.ParamRef(name), var_part,
                                 A.Const(slot.dtype.bytes, i32)))
        hit = self.memo_get(key)
        if hit is not None:
            return hit.vreg, byte_off
        idx = self.lower(var_part)
        addr = self.new_vreg()
        self.emit("IMAD", [VOperand.r(addr), self.as_operand(idx),
                           VOperand.i(slot.dtype.bytes), VOperand.i(0)])
        self.memo_put(key, Val(u32, vreg=addr))
        return addr, byte_off

    def _lower_shared_load(self, expr: A.SharedRef) -> Val:
        if expr.name not in self.shared:
            raise CompileError(f"unknown shared array {expr.name!r}")
        slot = self.shared[expr.name]
        base, off = self._shared_addr(expr.name, expr.index)
        dst = self.new_vreg(slot.dtype.regs)
        op = "LDS" + (f".{slot.dtype.bits}" if slot.dtype.bits > 32 else "")
        self.emit(op, [VOperand.r(dst), VOperand.m(base, off)])
        return Val(slot.dtype, vreg=dst)

    def store_shared(self, stmt: A.SharedStore) -> None:
        if stmt.name not in self.shared:
            raise CompileError(f"unknown shared array {stmt.name!r}")
        slot = self.shared[stmt.name]
        val = self.lower(stmt.value)
        if not slot.dtype.is_vector:
            val = self.coerce(val, slot.dtype)
        vreg, lane = self.as_vreg(val)
        base, off = self._shared_addr(stmt.name, stmt.index)
        op = "STS" + (f".{slot.dtype.bits}" if slot.dtype.bits > 32 else "")
        self.emit(op, [VOperand.m(base, off), VOperand.r(vreg, lane)])
        self.invalidate(stmt.name)

    # textures -------------------------------------------------------------
    def _lower_tex(self, expr: A.TexFetch) -> Val:
        if expr.tex not in self.tex_index:
            raise CompileError(f"unknown texture {expr.tex!r}")
        x = self.lower(expr.x)
        y = self.lower(expr.y)
        xr, xl = self.as_vreg(x)
        yr, yl = self.as_vreg(y)
        dst = self.new_vreg()
        self.emit("TEX.SCR.LL", [VOperand.r(dst), VOperand.r(xr, xl),
                                 VOperand.r(yr, yl),
                                 VOperand.i(self.tex_index[expr.tex])])
        return Val(f32, vreg=dst)

    _SHFL_MODE = {"down": "DOWN", "up": "UP", "xor": "BFLY"}

    def _lower_shuffle(self, expr: A.Shuffle) -> Val:
        if expr.mode not in self._SHFL_MODE:
            raise CompileError(f"unknown shuffle mode {expr.mode!r}")
        val = self.lower(expr.value)
        if val.dtype.regs != 1:
            raise CompileError("warp shuffles move 32-bit values only")
        vreg, lane = self.as_vreg(val)
        dst = self.new_vreg()
        self.emit(f"SHFL.{self._SHFL_MODE[expr.mode]}",
                  [VOperand.r(dst), VOperand.r(vreg, lane),
                   VOperand.i(expr.delta), VOperand.i(0x1F)])
        return Val(val.dtype, vreg=dst)

    def _lower_select(self, expr: A.Select) -> Val:
        p, neg = self.lower_cond(expr.cond)
        a = self.lower(expr.a)
        b = self.lower(expr.b)
        dtype = self._arith_dtype(a, b)
        if dtype.regs != 1:
            raise CompileError("select supports 32-bit scalars only")
        a = self.coerce(a, dtype)
        b = self.coerce(b, dtype)
        dst = self.new_vreg()
        self.emit("SEL", [VOperand.r(dst), self.as_operand(a),
                          self.as_operand(b), VOperand.p(p, neg)])
        return Val(dtype, vreg=dst)

    # vector lanes -----------------------------------------------------------
    def _lower_veclane(self, expr: A.VecLane) -> Val:
        vec = self.lower(expr.vec)
        if not vec.dtype.is_vector:
            raise CompileError(".x/.y/.z/.w on a non-vector value")
        if expr.lane >= vec.dtype.lanes:
            raise CompileError(f"lane {expr.lane} out of range for {vec.dtype}")
        scalar = vec.dtype.scalar
        return Val(scalar, vreg=vec.vreg, lane=vec.lane + expr.lane * scalar.regs)

    # register arrays ----------------------------------------------------------
    def _array_element(self, name: str, index: A.Expr) -> tuple[VReg, DType, int]:
        if name not in self.arrays:
            raise CompileError(f"unknown register array {name!r}")
        vregs, dtype = self.arrays[name]
        idx = _fold(index)
        if not isinstance(idx, A.Const):
            raise CompileError(
                f"register array {name!r} indexed with a non-constant "
                "expression; unroll the surrounding loop"
            )
        k = int(idx.value)
        if not 0 <= k < len(vregs):
            raise CompileError(f"index {k} out of bounds for {name!r}[{len(vregs)}]")
        return vregs[k], dtype, k

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------

    def lower_cond(self, expr: A.Expr) -> tuple[VPred, bool]:
        """Lower a boolean expression to (predicate, negated)."""
        expr = _fold(expr)
        if isinstance(expr, A.UnaryOp) and expr.op == "!":
            p, neg = self.lower_cond(expr.operand)
            return p, not neg
        if isinstance(expr, A.BinOp) and expr.op in ("&&", "||"):
            pa, na = self.lower_cond(expr.lhs)
            pb, nb = self.lower_cond(expr.rhs)
            dst = self.new_vpred()
            op = "PLOP3.AND" if expr.op == "&&" else "PLOP3.OR"
            self.emit(op, [VOperand.p(dst), VOperand.p(None),
                           VOperand.p(pa, na), VOperand.p(pb, nb),
                           VOperand.p(None)])
            return dst, False
        if isinstance(expr, A.BinOp) and expr.op in A.COMPARISONS:
            a = self.lower(expr.lhs)
            b = self.lower(expr.rhs)
            dtype = self._arith_dtype(a, b)
            a = self.coerce(a, dtype)
            b = self.coerce(b, dtype)
            dst = self.new_vpred()
            mod = _CMP_MOD[expr.op]
            if dtype.is_float:
                base = "DSETP" if dtype.bits == 64 else "FSETP"
            else:
                base = "ISETP"
                mod += ".U32" if not dtype.signed and dtype.bits == 32 else ""
            self.emit(f"{base}.{mod}.AND",
                      [VOperand.p(dst), VOperand.p(None),
                       self.as_operand(a), self.as_operand(b),
                       VOperand.p(None)])
            return dst, False
        raise CompileError(f"not a boolean expression: {expr!r}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def lower_stmt(self, stmt: A.Stmt) -> None:
        self.line = stmt.line
        if isinstance(stmt, A.Let):
            self._stmt_let(stmt)
        elif isinstance(stmt, A.AssignVar):
            self._stmt_assign(stmt)
        elif isinstance(stmt, A.ArrayDecl):
            vregs = [self.new_vreg(stmt.dtype.regs) for _ in range(stmt.size)]
            self.arrays[stmt.name] = (vregs, stmt.dtype)
        elif isinstance(stmt, A.ArrayAssign):
            self._stmt_array_assign(stmt)
        elif isinstance(stmt, A.StoreStmt):
            self.store_global(stmt)
        elif isinstance(stmt, A.SharedDecl):
            pass  # handled in the pre-scan (layout)
        elif isinstance(stmt, A.SharedStore):
            self.store_shared(stmt)
        elif isinstance(stmt, A.For):
            self._stmt_for(stmt)
        elif isinstance(stmt, A.If):
            self._stmt_if(stmt)
        elif isinstance(stmt, A.AtomicAdd):
            self._stmt_atomic(stmt)
        elif isinstance(stmt, A.SyncThreads):
            self.emit("BAR.SYNC", [VOperand.i(0)])
            # shared contents may have been produced by other threads
            for name in list(self.shared):
                self.invalidate(name)
        elif isinstance(stmt, A.ReturnIf):
            p, neg = self.lower_cond(stmt.cond)
            self.emit("EXIT", [], pred=(p, neg))
        else:
            raise CompileError(f"cannot lower statement {stmt!r}")

    def _stmt_let(self, stmt: A.Let) -> None:
        if stmt.name in self.vars:
            raise CompileError(f"redeclaration of {stmt.name!r}")
        dtype = stmt.dtype
        if dtype is None:
            dtype = self._infer_dtype(stmt.value)
        dst = self.new_vreg(dtype.regs)
        self.vars[stmt.name] = (dst, dtype)
        self.invalidate(stmt.name)
        self._lower_into(dst, stmt.value, dtype)

    def _stmt_assign(self, stmt: A.AssignVar) -> None:
        if stmt.name not in self.vars:
            raise CompileError(f"assignment to undeclared variable {stmt.name!r}")
        dst, dtype = self.vars[stmt.name]
        self.invalidate(stmt.name)
        self._lower_into(dst, stmt.value, dtype)

    def _stmt_array_assign(self, stmt: A.ArrayAssign) -> None:
        dst, dtype, _ = self._array_element(stmt.name, stmt.index)
        self.invalidate(stmt.name)
        self._lower_into(dst, stmt.value, dtype)

    def _infer_dtype(self, expr: A.Expr) -> DType:
        """Infer a result type without emitting code (side-effect free
        for the common cases; falls back to a dry lowering probe)."""
        expr = _fold(expr)
        if isinstance(expr, A.Const):
            return expr.dtype
        if isinstance(expr, A.Load):
            if expr.elem is not None:
                return expr.elem
            slot = self.params.get(expr.pointer.name)
            if slot is not None and slot.is_pointer:
                return slot.type.elem
        if isinstance(expr, A.SharedRef) and expr.name in self.shared:
            return self.shared[expr.name].dtype
        if isinstance(expr, A.ArrayRef) and expr.name in self.arrays:
            return self.arrays[expr.name][1]
        if isinstance(expr, A.VarRef) and expr.name in self.vars:
            return self.vars[expr.name][1]
        if isinstance(expr, A.Cast):
            return expr.dtype
        if isinstance(expr, A.TexFetch):
            return f32
        if isinstance(expr, A.Shuffle):
            return self._infer_dtype(expr.value)
        if isinstance(expr, A.Select):
            return common_type(self._infer_dtype(expr.a),
                               self._infer_dtype(expr.b))
        if isinstance(expr, A.Builtin):
            return u32
        if isinstance(expr, A.VecLane):
            return self._infer_dtype(expr.vec).scalar
        if isinstance(expr, A.BinOp):
            lt = self._infer_dtype(expr.lhs)
            rt = self._infer_dtype(expr.rhs)
            if lt.is_vector or rt.is_vector:
                return lt if lt.is_vector else rt
            return common_type(lt, rt)
        if isinstance(expr, A.UnaryOp):
            return self._infer_dtype(expr.operand)
        if isinstance(expr, A.Call):
            if expr.name in ("sqrt", "rsqrt", "rcp"):
                return f32
            types = [self._infer_dtype(a) for a in expr.args]
            vec = next((t for t in types if t.is_vector), None)
            if vec is not None:
                return vec
            out = types[0]
            for t in types[1:]:
                out = common_type(out, t)
            return out
        if isinstance(expr, A.ParamRef):
            slot = self.params.get(expr.name)
            if slot is not None and not slot.is_pointer:
                return slot.type
            return u64
        raise CompileError(f"cannot infer the type of {expr!r}")

    def _lower_into(self, dst: VReg, expr: A.Expr, dtype: DType) -> None:
        """Lower ``expr`` writing the result directly into ``dst``.

        Emitting the defining instruction with the variable's register
        as destination (instead of a temp + MOV) matters to the
        analyses: GPUscout correlates arithmetic *on the load's
        destination register* (§4.3), so the register graph must look
        like nvcc output, not like a copy-heavy O0 lowering.
        """
        folded = _fold(expr)
        if _is_pure(folded):
            hit = self.memo_get(folded)
            if hit is not None:
                val = hit if dtype.is_vector else self.coerce(hit, dtype)
                self._move_into(dst, val, dtype)
                return
        if isinstance(folded, A.Load):
            slot = self.params.get(folded.pointer.name)
            if slot is not None and slot.is_pointer:
                elem = folded.elem or slot.type.elem
                if elem == dtype:
                    base, off = self._lower_address(
                        folded.pointer.name, folded.index, elem.bytes
                    )
                    self.emit(self._load_opcode(elem, slot.type),
                              [VOperand.r(dst), VOperand.m(base, off)])
                    return
        if isinstance(folded, A.SharedRef) and folded.name in self.shared:
            sslot = self.shared[folded.name]
            if sslot.dtype == dtype:
                base, off = self._shared_addr(folded.name, folded.index)
                op = "LDS" + (f".{dtype.bits}" if dtype.bits > 32 else "")
                self.emit(op, [VOperand.r(dst), VOperand.m(base, off)])
                return
        if isinstance(folded, A.TexFetch) and dtype == f32 \
                and folded.tex in self.tex_index:
            x = self.lower(folded.x)
            y = self.lower(folded.y)
            xr, xl = self.as_vreg(x)
            yr, yl = self.as_vreg(y)
            self.emit("TEX.SCR.LL", [VOperand.r(dst), VOperand.r(xr, xl),
                                     VOperand.r(yr, yl),
                                     VOperand.i(self.tex_index[folded.tex])])
            return
        if isinstance(folded, A.Call) and folded.name == "mad":
            a = self.lower(folded.args[0])
            b = self.lower(folded.args[1])
            c = self.lower(folded.args[2])
            self._mad_into(dst, a, b, c, dtype)
            return
        if isinstance(folded, A.BinOp) and folded.op in _FOLD_OPS:
            a = self.lower(folded.lhs)
            b = self.lower(folded.rhs)
            if dtype.is_vector:
                self._vector_binop_into(folded.op, dst, a, b, dtype)
                return
            if not a.dtype.is_vector and not b.dtype.is_vector:
                a = self.coerce(a, dtype)
                b = self.coerce(b, dtype)
                self._emit_scalar_binop(folded.op, dst, 0, a, b, dtype)
                return
        val = self.lower(folded)
        if not dtype.is_vector:
            val = self.coerce(val, dtype)
        self._move_into(dst, val, dtype)

    def _move_into(self, dst: VReg, val: Val, dtype: DType) -> None:
        """Copy ``val`` into ``dst`` (lane-wise for vectors)."""
        if dtype.is_vector:
            scalar = dtype.scalar
            if val.is_const:
                # vector splat of a constant (e.g. float4 zero-init)
                for k in range(dtype.lanes):
                    lane_val = Val(scalar, const=val.const)
                    vreg, lane = self.as_vreg(lane_val)
                    for r in range(scalar.regs):
                        self.emit("MOV", [VOperand.r(dst, k * scalar.regs + r),
                                          VOperand.r(vreg, lane + r)])
                return
            if not val.dtype.is_vector:
                raise CompileError(f"cannot assign scalar to {dtype}")
            for k in range(dtype.lanes * scalar.regs):
                self.emit("MOV", [VOperand.r(dst, k), VOperand.r(val.vreg, val.lane + k)])
            return
        if val.vreg is dst and val.lane == 0:
            return
        if dtype.regs == 2:
            vreg, lane = self.as_vreg(val)
            if vreg is dst and lane == 0:
                return
            self.emit("MOV", [VOperand.r(dst, 0), VOperand.r(vreg, lane)])
            self.emit("MOV", [VOperand.r(dst, 1), VOperand.r(vreg, lane + 1)])
            return
        self.emit("MOV", [VOperand.r(dst), self.as_operand(val)])

    def _stmt_for(self, stmt: A.For) -> None:
        if stmt.unroll:
            self._unroll_for(stmt)
            return
        start = self.lower(stmt.start)
        start = self.coerce(start, i32)
        ivar = self.new_vreg()
        self._move_into(ivar, start, i32)
        self.vars[stmt.var] = (ivar, i32)
        self.invalidate(stmt.var)
        stop_val = self.lower(stmt.stop)
        stop_val = self.coerce(stop_val, i32) if stop_val.dtype.is_float else stop_val
        head = self.new_label(stmt.var)
        exit_lbl = self.new_label(f"{stmt.var}_exit")
        # pre-check: skip the loop entirely when start >= stop
        pre = self.new_vpred()
        self.emit("ISETP.GE.AND",
                  [VOperand.p(pre), VOperand.p(None), VOperand.r(ivar),
                   self.as_operand(stop_val), VOperand.p(None)])
        self.emit("BRA", [VOperand.lbl(exit_lbl)], pred=(pre, False))
        self.emit_label(head)
        self.push_scope()
        for s in stmt.body:
            self.lower_stmt(s)
        self.line = stmt.line
        step = self.lower(stmt.step)
        step = self.coerce(step, i32)
        self.emit("IADD3", [VOperand.r(ivar), VOperand.r(ivar),
                            self.as_operand(step), VOperand.i(0)])
        self.invalidate(stmt.var)
        self.pop_scope()
        cond = self.new_vpred()
        self.emit("ISETP.LT.AND",
                  [VOperand.p(cond), VOperand.p(None), VOperand.r(ivar),
                   self.as_operand(stop_val), VOperand.p(None)])
        self.emit("BRA", [VOperand.lbl(head)], pred=(cond, False))
        self.emit_label(exit_lbl)
        del self.vars[stmt.var]
        self.invalidate(stmt.var)

    def _unroll_for(self, stmt: A.For) -> None:
        start = _fold(stmt.start)
        stop = _fold(stmt.stop)
        step = _fold(stmt.step)
        if not all(isinstance(x, A.Const) for x in (start, stop, step)):
            raise CompileError("unrolled loop bounds must be compile-time constants")
        lo, hi, st = int(start.value), int(stop.value), int(step.value)
        if st <= 0:
            raise CompileError("unrolled loop step must be positive")
        if (hi - lo) // st > 4096:
            raise CompileError("unroll factor too large (>4096)")
        for k in range(lo, hi, st):
            for s in stmt.body:
                self.lower_stmt(_substitute_stmt(s, stmt.var, k))

    def _stmt_if(self, stmt: A.If) -> None:
        if self.guard is not None:
            raise CompileError("nested if is not supported (predication only)")
        for inner in stmt.then + stmt.els:
            if isinstance(inner, (A.For, A.If, A.SyncThreads, A.SharedDecl)):
                raise CompileError(
                    "if-bodies support only straight-line statements "
                    "(loads/stores/assignments); restructure the kernel"
                )
        p, neg = self.lower_cond(stmt.cond)
        self.push_scope()
        self.guard = (p, neg)
        for s in stmt.then:
            self.lower_stmt(s)
        self.pop_scope()
        if stmt.els:
            self.push_scope()
            self.guard = (p, not neg)
            for s in stmt.els:
                self.lower_stmt(s)
            self.pop_scope()
        self.guard = None
        # values written under guard are not safely reusable
        for name in {n for s in stmt.then + stmt.els
                     for n in _written_names(s)}:
            self.invalidate(name)

    def _stmt_atomic(self, stmt: A.AtomicAdd) -> None:
        val = self.lower(stmt.value)
        if stmt.shared is not None:
            slot = self.shared.get(stmt.shared)
            if slot is None:
                raise CompileError(f"unknown shared array {stmt.shared!r}")
            val = self.coerce(val, slot.dtype)
            vreg, lane = self.as_vreg(val)
            base, off = self._shared_addr(stmt.shared, stmt.shared_index)
            self.emit(f"ATOMS.ADD.{_atomic_type(slot.dtype)}",
                      [VOperand.m(base, off), VOperand.r(vreg, lane)])
            self.invalidate(stmt.shared)
            return
        name = stmt.pointer.name
        slot_p = self.params.get(name)
        if slot_p is None or not slot_p.is_pointer:
            raise CompileError(f"{name!r} is not a pointer parameter")
        ptype = slot_p.type
        assert isinstance(ptype, PointerType)
        val = self.coerce(val, ptype.elem)
        vreg, lane = self.as_vreg(val)
        base, off = self._lower_address(name, stmt.index, ptype.elem.bytes)
        # atomicAdd with unused result compiles to RED (reduction)
        self.emit(f"RED.E.ADD.{_atomic_type(ptype.elem)}",
                  [VOperand.m(base, off), VOperand.r(vreg, lane)])


# ---------------------------------------------------------------------------
# Helpers: folding, substitution, purity, deps
# ---------------------------------------------------------------------------


def _is_pow2(v) -> bool:
    v = int(v)
    return v > 0 and (v & (v - 1)) == 0


def _f64_bits(value: float) -> int:
    import struct

    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _atomic_type(dtype: DType) -> str:
    """SASS type suffix for an atomic operation."""
    if dtype.is_float:
        return "F64" if dtype.bits == 64 else "F32"
    return "U64" if dtype.bits == 64 else "U32"


def _negate_operand(op: VOperand) -> VOperand:
    from dataclasses import replace as _replace

    if op.kind == "imm":
        return VOperand.i(-op.imm)
    if op.kind == "fimm":
        return VOperand.f(-op.fimm)
    if op.kind in ("reg", "const"):
        return _replace(op, negated=not op.negated)
    raise CompileError(f"cannot negate operand {op!r}")


_FOLD_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "%": lambda a, b: a % b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "min": min,
    "max": max,
}


def _fold(expr: A.Expr) -> A.Expr:
    """Constant folding (recursive); returns a simplified node."""
    if isinstance(expr, A.BinOp):
        lhs = _fold(expr.lhs)
        rhs = _fold(expr.rhs)
        if (
            isinstance(lhs, A.Const)
            and isinstance(rhs, A.Const)
            and expr.op in _FOLD_OPS
        ):
            dtype = common_type(lhs.dtype, rhs.dtype)
            if dtype.is_float and dtype.bits == 32:
                # fold in float32: the emitted instruction would round
                # after *this* operation, so folding must too — a single
                # float64 rounding at the end can be off by one ulp
                # (double rounding) from the stepwise hardware result
                value = float(_FOLD_OPS[expr.op](np.float32(lhs.value),
                                                 np.float32(rhs.value)))
            else:
                value = _FOLD_OPS[expr.op](lhs.value, rhs.value)
            return A.Const(value, dtype)
        # x*1, x*0, x+0 simplifications keep unrolled index math tidy
        if expr.op == "*":
            for a, b in ((lhs, rhs), (rhs, lhs)):
                if isinstance(b, A.Const) and b.value == 1:
                    return a
                if isinstance(b, A.Const) and b.value == 0 and not b.dtype.is_float:
                    return b
        if expr.op == "+":
            for a, b in ((lhs, rhs), (rhs, lhs)):
                if isinstance(b, A.Const) and b.value == 0:
                    return a
        if expr.op == "-" and isinstance(rhs, A.Const) and rhs.value == 0:
            return lhs
        if lhs is expr.lhs and rhs is expr.rhs:
            return expr
        return A.BinOp(expr.op, lhs, rhs)
    if isinstance(expr, A.UnaryOp):
        inner = _fold(expr.operand)
        if isinstance(inner, A.Const) and expr.op == "-":
            return A.Const(-inner.value, inner.dtype)
        return A.UnaryOp(expr.op, inner) if inner is not expr.operand else expr
    if isinstance(expr, A.Cast):
        inner = _fold(expr.operand)
        if isinstance(inner, A.Const):
            if expr.dtype.is_float:
                value = float(inner.value)
                if expr.dtype.bits == 32:
                    value = float(np.float32(value))  # F2F/I2F rounds
            else:
                value = int(inner.value)
            return A.Const(value, expr.dtype)
        return A.Cast(inner, expr.dtype) if inner is not expr.operand else expr
    return expr


def _split_const(expr: A.Expr) -> tuple[Optional[A.Expr], int]:
    """Split ``expr`` into (variable part, additive integer constant)."""
    if isinstance(expr, A.Const) and not expr.dtype.is_float:
        return None, int(expr.value)
    if isinstance(expr, A.BinOp) and expr.op in ("+", "-"):
        sign = 1 if expr.op == "+" else -1
        if isinstance(expr.rhs, A.Const) and not expr.rhs.dtype.is_float:
            var, c = _split_const(expr.lhs)
            return var, c + sign * int(expr.rhs.value)
        if expr.op == "+" and isinstance(expr.lhs, A.Const) \
                and not expr.lhs.dtype.is_float:
            var, c = _split_const(expr.rhs)
            return var, c + int(expr.lhs.value)
    return expr, 0


def _is_pure(expr: A.Expr) -> bool:
    """True when re-evaluating the expression is side-effect free and
    deterministic within a region — i.e. it contains no memory reads."""
    if isinstance(expr, (A.Const, A.ParamRef, A.VarRef, A.Builtin)):
        return True
    if isinstance(expr, A.BinOp):
        return _is_pure(expr.lhs) and _is_pure(expr.rhs)
    if isinstance(expr, A.UnaryOp):
        return _is_pure(expr.operand)
    if isinstance(expr, A.Cast):
        return _is_pure(expr.operand)
    if isinstance(expr, A.Call):
        return all(_is_pure(a) for a in expr.args)
    if isinstance(expr, A.Shuffle):
        return _is_pure(expr.value)
    if isinstance(expr, A.Select):
        return all(_is_pure(e) for e in (expr.cond, expr.a, expr.b))
    return False  # Load, SharedRef, ArrayRef, TexFetch, VecLane(vec=load)


def _deps(expr: A.Expr) -> frozenset[str]:
    """Names (variables/arrays/params) an expression depends on."""
    out: set[str] = set()

    def walk(e: A.Expr) -> None:
        if isinstance(e, A.VarRef):
            out.add(e.name)
        elif isinstance(e, A.ParamRef):
            out.add(e.name)
        elif isinstance(e, A.BinOp):
            walk(e.lhs)
            walk(e.rhs)
        elif isinstance(e, A.UnaryOp):
            walk(e.operand)
        elif isinstance(e, A.Cast):
            walk(e.operand)
        elif isinstance(e, A.Call):
            for a in e.args:
                walk(a)
        elif isinstance(e, (A.Load, A.SharedRef, A.ArrayRef)):
            if isinstance(e, A.Load):
                out.add(e.pointer.name)
                walk(e.index)
            else:
                out.add(e.name)
                walk(e.index)
        elif isinstance(e, A.VecLane):
            walk(e.vec)
        elif isinstance(e, A.TexFetch):
            out.add(e.tex)
            walk(e.x)
            walk(e.y)
        elif isinstance(e, A.Shuffle):
            walk(e.value)
        elif isinstance(e, A.Select):
            walk(e.cond)
            walk(e.a)
            walk(e.b)

    walk(expr)
    return frozenset(out)


def _written_names(stmt: A.Stmt) -> set[str]:
    if isinstance(stmt, (A.Let, A.AssignVar)):
        return {stmt.name}
    if isinstance(stmt, A.ArrayAssign):
        return {stmt.name}
    if isinstance(stmt, A.SharedStore):
        return {stmt.name}
    if isinstance(stmt, A.StoreStmt):
        return {stmt.pointer.name}
    if isinstance(stmt, A.AtomicAdd):
        if stmt.shared is not None:
            return {stmt.shared}
        return {stmt.pointer.name}
    return set()


def _substitute_expr(expr: A.Expr, var: str, value: int) -> A.Expr:
    """Replace ``VarRef(var)`` with an integer constant (loop unrolling)."""
    if isinstance(expr, A.VarRef) and expr.name == var:
        return A.Const(value, i32)
    if isinstance(expr, A.BinOp):
        return A.BinOp(expr.op, _substitute_expr(expr.lhs, var, value),
                       _substitute_expr(expr.rhs, var, value))
    if isinstance(expr, A.UnaryOp):
        return A.UnaryOp(expr.op, _substitute_expr(expr.operand, var, value))
    if isinstance(expr, A.Cast):
        return A.Cast(_substitute_expr(expr.operand, var, value), expr.dtype)
    if isinstance(expr, A.Call):
        return A.Call(expr.name,
                      tuple(_substitute_expr(a, var, value) for a in expr.args))
    if isinstance(expr, A.Load):
        return A.Load(expr.pointer, _substitute_expr(expr.index, var, value),
                      expr.elem)
    if isinstance(expr, A.VecLane):
        return A.VecLane(_substitute_expr(expr.vec, var, value), expr.lane)
    if isinstance(expr, A.SharedRef):
        return A.SharedRef(expr.name, _substitute_expr(expr.index, var, value))
    if isinstance(expr, A.ArrayRef):
        return A.ArrayRef(expr.name, _substitute_expr(expr.index, var, value))
    if isinstance(expr, A.TexFetch):
        return A.TexFetch(expr.tex, _substitute_expr(expr.x, var, value),
                          _substitute_expr(expr.y, var, value))
    if isinstance(expr, A.Shuffle):
        return A.Shuffle(expr.mode, _substitute_expr(expr.value, var, value),
                         expr.delta)
    if isinstance(expr, A.Select):
        return A.Select(_substitute_expr(expr.cond, var, value),
                        _substitute_expr(expr.a, var, value),
                        _substitute_expr(expr.b, var, value))
    return expr


def _substitute_stmt(stmt: A.Stmt, var: str, value: int) -> A.Stmt:
    sub = lambda e: _substitute_expr(e, var, value)  # noqa: E731
    if isinstance(stmt, A.Let):
        return A.Let(stmt.name, sub(stmt.value), stmt.dtype, line=stmt.line)
    if isinstance(stmt, A.AssignVar):
        return A.AssignVar(stmt.name, sub(stmt.value), line=stmt.line)
    if isinstance(stmt, A.ArrayAssign):
        return A.ArrayAssign(stmt.name, sub(stmt.index), sub(stmt.value),
                             line=stmt.line)
    if isinstance(stmt, A.StoreStmt):
        return A.StoreStmt(stmt.pointer, sub(stmt.index), sub(stmt.value),
                           stmt.elem, line=stmt.line)
    if isinstance(stmt, A.SharedStore):
        return A.SharedStore(stmt.name, sub(stmt.index), sub(stmt.value),
                             line=stmt.line)
    if isinstance(stmt, A.For):
        return A.For(stmt.var, sub(stmt.start), sub(stmt.stop), sub(stmt.step),
                     [_substitute_stmt(s, var, value) for s in stmt.body],
                     unroll=stmt.unroll, line=stmt.line)
    if isinstance(stmt, A.If):
        return A.If(sub(stmt.cond),
                    [_substitute_stmt(s, var, value) for s in stmt.then],
                    [_substitute_stmt(s, var, value) for s in stmt.els],
                    line=stmt.line)
    if isinstance(stmt, A.AtomicAdd):
        return A.AtomicAdd(
            sub(stmt.value),
            pointer=stmt.pointer,
            index=sub(stmt.index) if stmt.index is not None else None,
            shared=stmt.shared,
            shared_index=sub(stmt.shared_index)
            if stmt.shared_index is not None else None,
            line=stmt.line,
        )
    if isinstance(stmt, A.ReturnIf):
        return A.ReturnIf(sub(stmt.cond), line=stmt.line)
    if isinstance(stmt, (A.SyncThreads, A.ArrayDecl, A.SharedDecl)):
        return stmt
    raise CompileError(f"cannot substitute into {stmt!r}")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _collect_shared(body: list[A.Stmt]) -> list[A.SharedDecl]:
    decls: list[A.SharedDecl] = []

    def walk(stmts: list[A.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, A.SharedDecl):
                decls.append(s)
            elif isinstance(s, A.For):
                walk(s.body)
            elif isinstance(s, A.If):
                walk(s.then)
                walk(s.els)

    walk(body)
    return decls


def lower_kernel(kernel: Kernel) -> tuple[VProgram, "_Lowerer"]:
    """Lower ``kernel`` to the virtual-register stream (the PTX stage).

    Returns the :class:`VProgram` plus the lowering context (parameter
    layout, shared layout, texture slots).  :func:`compile_kernel`
    continues from here through register allocation;
    :func:`repro.ptx.writer.kernel_to_ptx` renders this stage directly.
    """
    low = _Lowerer(kernel)
    # static shared-memory layout (16-byte aligned per array)
    offset = 0
    for decl in _collect_shared(kernel.body):
        offset = (offset + 15) // 16 * 16
        low.shared[decl.name] = SharedSlot(decl.name, offset, decl.dtype, decl.size)
        offset += decl.dtype.bytes * decl.size
    shared_bytes = (offset + 15) // 16 * 16 if offset else 0

    for stmt in kernel.body:
        low.lower_stmt(stmt)
    low.line = None
    low.emit("EXIT", [])

    vprog = VProgram(
        kernel.name, low.items, shared_bytes=shared_bytes, source=kernel.source
    )
    return vprog, low


def compile_kernel(kernel: Kernel, max_registers: Optional[int] = None) -> CompiledKernel:
    """Compile ``kernel`` to SASS.

    ``max_registers`` caps the general-register budget (like
    ``__launch_bounds__``/``-maxrregcount``); values below the kernel's
    natural pressure force spills to local memory.
    """
    vprog, low = lower_kernel(kernel)
    budget = max_registers or kernel.launch_bounds_regs or 253
    result = allocate(vprog, budget=budget)
    return CompiledKernel(
        kernel=kernel,
        program=result.program,
        params=[low.params[p.name] for p in kernel.params],
        shared=sorted(low.shared.values(), key=lambda s: s.offset),
        textures=list(kernel.textures),
        allocation=result,
    )
