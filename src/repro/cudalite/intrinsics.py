"""Intrinsic functions usable in kernel expressions.

Each helper builds a :class:`~repro.cudalite.ast.Call` node; the
compiler lowers them to the corresponding SASS (``FFMA``/``DFMA``/
``IMAD`` for mad/fma, ``MUFU.SQRT``/``MUFU.RCP`` for the transcendental
approximations — the same units real kernels hit).
"""

from __future__ import annotations

from repro.cudalite import ast as A
from repro.cudalite.builder import E, _wrap

__all__ = ["mad", "fma", "sqrtf", "rsqrtf", "rcpf", "fminf", "fmaxf"]


def mad(a, b, c) -> E:
    """``a * b + c`` fused — FFMA/DFMA/IMAD depending on type."""
    return E(A.Call("mad", (_wrap(a), _wrap(b), _wrap(c))))


def fma(a, b, c) -> E:
    """Alias of :func:`mad` (CUDA spells both)."""
    return E(A.Call("mad", (_wrap(a), _wrap(b), _wrap(c))))


def sqrtf(x) -> E:
    """Square root via the multi-function unit (``MUFU.SQRT``)."""
    return E(A.Call("sqrt", (_wrap(x),)))


def rsqrtf(x) -> E:
    """Reciprocal square root (``MUFU.RSQ``)."""
    return E(A.Call("rsqrt", (_wrap(x),)))


def rcpf(x) -> E:
    """Reciprocal (``MUFU.RCP``)."""
    return E(A.Call("rcp", (_wrap(x),)))


def fminf(a, b) -> E:
    """``fminf`` — FMNMX."""
    return E(A.Call("min", (_wrap(a), _wrap(b))))


def fmaxf(a, b) -> E:
    """``fmaxf`` — FMNMX."""
    return E(A.Call("max", (_wrap(a), _wrap(b))))
