"""Virtual-register program representation and linear-scan allocation.

The cudalite compiler first lowers the kernel AST to a *virtual*
instruction stream (:class:`VInstr`) over an unlimited register file —
the same role PTX plays for nvcc.  :func:`allocate` then maps virtual
registers to architectural ones under a configurable budget using
linear-scan allocation.  When the budget is exceeded it spills the
victim to local memory, inserting ``STL`` after each definition and
``LDL`` before each use — producing exactly the instruction patterns
GPUscout's §4.2 register-spilling analysis detects, attributed to the
source lines of the spilled computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import RegisterAllocationError
from repro.sass.isa import (
    Instruction,
    Label,
    Opcode,
    OpClass,
    Operand,
    Program,
    Register,
    PT,
)

__all__ = ["VReg", "VPred", "VOperand", "VInstr", "VProgram", "allocate", "AllocationResult"]


@dataclass(frozen=True, eq=True)
class VReg:
    """A virtual general register; ``regs`` consecutive 32-bit
    architectural registers, aligned to ``regs`` (pairs/quads)."""

    id: int
    regs: int = 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"v{self.id}" + (f":{self.regs}" if self.regs > 1 else "")


@dataclass(frozen=True, eq=True)
class VPred:
    """A virtual predicate register."""

    id: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"vp{self.id}"


@dataclass(frozen=True)
class VOperand:
    """Operand of a virtual instruction (mirrors
    :class:`repro.sass.isa.Operand` with virtual registers).

    ``lane`` selects a 32-bit component of a wide virtual register
    (vector values); ``negated`` is the SASS source-negation modifier.
    """

    kind: str  # reg | pred | imm | fimm | mem | const | special | label
    vreg: Optional[VReg] = None
    lane: int = 0
    vpred: Optional[VPred] = None
    imm: Optional[int] = None
    fimm: Optional[float] = None
    mem_base: Optional[VReg] = None
    mem_offset: int = 0
    const_bank: int = 0
    const_offset: int = 0
    special: Optional[str] = None
    label: Optional[str] = None
    negated: bool = False

    @staticmethod
    def r(vreg: VReg, lane: int = 0, negated: bool = False) -> "VOperand":
        return VOperand("reg", vreg=vreg, lane=lane, negated=negated)

    @staticmethod
    def p(vpred: Optional[VPred], negated: bool = False) -> "VOperand":
        return VOperand("pred", vpred=vpred, negated=negated)

    @staticmethod
    def i(value: int) -> "VOperand":
        return VOperand("imm", imm=int(value))

    @staticmethod
    def f(value: float) -> "VOperand":
        return VOperand("fimm", fimm=float(value))

    @staticmethod
    def m(base: Optional[VReg], offset: int = 0) -> "VOperand":
        return VOperand("mem", mem_base=base, mem_offset=offset)

    @staticmethod
    def c(bank: int, offset: int) -> "VOperand":
        return VOperand("const", const_bank=bank, const_offset=offset)

    @staticmethod
    def sr(name: str) -> "VOperand":
        return VOperand("special", special=name)

    @staticmethod
    def lbl(name: str) -> "VOperand":
        return VOperand("label", label=name)


@dataclass
class VInstr:
    """A virtual-register SASS instruction."""

    opcode: Opcode
    operands: list[VOperand] = field(default_factory=list)
    pred: Optional[VPred] = None
    pred_negated: bool = False
    line: Optional[int] = None

    # --- def/use at virtual-register granularity ----------------------
    def dest_vregs(self) -> list[VReg]:
        op = self.opcode
        if op.op_class in (
            OpClass.GLOBAL_STORE,
            OpClass.LOCAL_STORE,
            OpClass.SHARED_STORE,
            OpClass.BRANCH,
            OpClass.BARRIER,
        ) or op.base == "RED":
            return []
        if not self.operands:
            return []
        first = self.operands[0]
        if first.kind == "reg" and first.vreg is not None:
            return [first.vreg]
        return []

    def dest_vpreds(self) -> list[VPred]:
        if self.opcode.base in ("ISETP", "FSETP", "DSETP", "PLOP3"):
            out = []
            for cand in self.operands[:2]:
                if cand.kind == "pred" and cand.vpred is not None:
                    out.append(cand.vpred)
            return out
        return []

    def source_vregs(self) -> list[VReg]:
        out: list[VReg] = []
        skip = len(self.dest_vregs())
        for idx, operand in enumerate(self.operands):
            if idx < skip and operand.kind == "reg":
                continue
            if operand.kind == "reg" and operand.vreg is not None:
                out.append(operand.vreg)
            elif operand.kind == "mem" and operand.mem_base is not None:
                out.append(operand.mem_base)
        if self.pred is not None:
            # A predicated definition may leave the old value in place,
            # so the destination counts as live-through (conservative).
            out.extend(self.dest_vregs())
        return out

    def source_vpreds(self) -> list[VPred]:
        out: list[VPred] = []
        if self.pred is not None:
            out.append(self.pred)
        skip = len(self.dest_vpreds())
        seen = 0
        for operand in self.operands:
            if operand.kind == "pred" and operand.vpred is not None:
                if seen < skip:
                    seen += 1
                    continue
                out.append(operand.vpred)
        return out

    def branch_target(self) -> Optional[str]:
        if self.opcode.base != "BRA":
            return None
        for operand in self.operands:
            if operand.kind == "label":
                return operand.label
        return None


@dataclass
class VProgram:
    """A virtual-register function body: instructions + labels."""

    name: str
    items: list  # list[VInstr | Label]
    shared_bytes: int = 0
    source: Optional[str] = None

    def instructions(self) -> list[VInstr]:
        return [it for it in self.items if isinstance(it, VInstr)]


# ---------------------------------------------------------------------------
# Liveness over the virtual program
# ---------------------------------------------------------------------------


def _vprogram_blocks(items: Sequence) -> list[tuple[int, int, list[int]]]:
    """Split ``items`` into blocks of item indices: (start, end, succs).

    Labels start new blocks; branches end them.  Successor lists refer
    to block ids.
    """
    n = len(items)
    leaders = {0}
    label_pos: dict[str, int] = {}
    for i, item in enumerate(items):
        if isinstance(item, Label):
            label_pos[item.name] = i
            leaders.add(i)
    for i, item in enumerate(items):
        if isinstance(item, VInstr):
            if item.branch_target() is not None or item.opcode.base in ("EXIT", "RET"):
                if i + 1 < n:
                    leaders.add(i + 1)
    starts = sorted(leaders)
    block_of_pos = {}
    blocks: list[tuple[int, int, list[int]]] = []
    for bid, start in enumerate(starts):
        end = starts[bid + 1] if bid + 1 < len(starts) else n
        for i in range(start, end):
            block_of_pos[i] = bid
        blocks.append((start, end, []))
    for bid, (start, end, succs) in enumerate(blocks):
        last = None
        for i in range(end - 1, start - 1, -1):
            if isinstance(items[i], VInstr):
                last = items[i]
                break
        if last is None:
            if end < n:
                succs.append(block_of_pos[end])
            continue
        target = last.branch_target()
        if target is not None:
            succs.append(block_of_pos[label_pos[target]])
            if last.pred is not None and end < n:
                succs.append(block_of_pos[end])
        elif last.opcode.base in ("EXIT", "RET"):
            pass
        elif end < n:
            succs.append(block_of_pos[end])
    return blocks


def _live_intervals(items: Sequence) -> dict[VReg, tuple[int, int]]:
    """Live interval per virtual register, as (start, end) item indices.

    Computed from proper dataflow liveness so that loop-carried values
    get intervals spanning their whole loop.
    """
    blocks = _vprogram_blocks(items)
    nb = len(blocks)
    use_b: list[set[VReg]] = [set() for _ in range(nb)]
    def_b: list[set[VReg]] = [set() for _ in range(nb)]
    for bid, (start, end, _) in enumerate(blocks):
        defined: set[VReg] = set()
        for i in range(start, end):
            item = items[i]
            if not isinstance(item, VInstr):
                continue
            for v in item.source_vregs():
                if v not in defined:
                    use_b[bid].add(v)
            defined.update(item.dest_vregs())
        def_b[bid] = defined
    live_in: list[set[VReg]] = [set() for _ in range(nb)]
    live_out: list[set[VReg]] = [set() for _ in range(nb)]
    changed = True
    while changed:
        changed = False
        for bid in range(nb - 1, -1, -1):
            _, _, succs = blocks[bid]
            out: set[VReg] = set()
            for s in succs:
                out |= live_in[s]
            inn = use_b[bid] | (out - def_b[bid])
            if out != live_out[bid] or inn != live_in[bid]:
                live_out[bid] = out
                live_in[bid] = inn
                changed = True
    intervals: dict[VReg, list[int]] = {}

    def touch(v: VReg, pos: int) -> None:
        if v in intervals:
            iv = intervals[v]
            iv[0] = min(iv[0], pos)
            iv[1] = max(iv[1], pos)
        else:
            intervals[v] = [pos, pos]

    for bid, (start, end, _) in enumerate(blocks):
        live = set(live_out[bid])
        for v in live:
            touch(v, end - 1)
        for i in range(end - 1, start - 1, -1):
            item = items[i]
            if not isinstance(item, VInstr):
                continue
            for v in item.dest_vregs():
                touch(v, i)
            for v in item.source_vregs():
                touch(v, i)
        for v in live_in[bid]:
            touch(v, start)
    return {v: (iv[0], iv[1]) for v, iv in intervals.items()}


def _pred_intervals(items: Sequence) -> dict[VPred, tuple[int, int]]:
    """Simple (first touch, last touch) intervals for predicates.

    Predicates in cudalite output are short-lived except loop-exit
    conditions; to be safe across back edges, any predicate touched
    inside a loop gets its interval widened to the loop extent.
    """
    intervals: dict[VPred, list[int]] = {}
    for i, item in enumerate(items):
        if not isinstance(item, VInstr):
            continue
        touched = item.dest_vpreds() + item.source_vpreds()
        for p in touched:
            if p in intervals:
                intervals[p][1] = i
            else:
                intervals[p] = [i, i]
    # widen across backward branches
    label_pos = {
        item.name: i for i, item in enumerate(items) if isinstance(item, Label)
    }
    for i, item in enumerate(items):
        if isinstance(item, VInstr):
            target = item.branch_target()
            if target is not None and label_pos.get(target, i) < i:
                lo, hi = label_pos[target], i
                for p, iv in intervals.items():
                    if iv[0] <= hi and iv[1] >= lo:
                        iv[0] = min(iv[0], lo)
                        iv[1] = max(iv[1], hi)
    return {p: (iv[0], iv[1]) for p, iv in intervals.items()}


# ---------------------------------------------------------------------------
# Linear scan
# ---------------------------------------------------------------------------


@dataclass
class AllocationResult:
    """Outcome of register allocation."""

    program: Program
    registers_used: int
    spilled_vregs: int
    local_frame_bytes: int


class _FreeList:
    """Bitmap of architectural registers with aligned-run allocation."""

    def __init__(self, budget: int):
        self.budget = budget
        self.free = [True] * budget

    def take(self, size: int) -> Optional[int]:
        align = size if size in (2, 4) else 1
        base = 0
        while base + size <= self.budget:
            if all(self.free[base : base + size]):
                for k in range(base, base + size):
                    self.free[k] = False
                return base
            base += align
        return None

    def release(self, base: int, size: int) -> None:
        for k in range(base, base + size):
            self.free[k] = True


def allocate(
    vprog: VProgram,
    budget: int = 253,
    max_spill_rounds: int = 64,
) -> AllocationResult:
    """Allocate architectural registers for ``vprog``.

    ``budget`` caps general registers (R0..R(budget-1)); RZ stays the
    zero register.  On pressure overflow the victim with the furthest
    interval end is spilled to a 4-byte-per-register local slot and the
    scan restarts, up to ``max_spill_rounds`` times.
    """
    if not 1 <= budget <= 253:
        raise RegisterAllocationError(f"budget {budget} out of range 1..253")
    items = list(vprog.items)
    spilled: dict[VReg, int] = {}  # vreg -> local slot byte offset
    local_bytes = 0
    next_tmp_id = 1 + max(
        (v.id for it in items if isinstance(it, VInstr) for v in
         (it.dest_vregs() + it.source_vregs())),
        default=0,
    )

    for _ in range(max_spill_rounds):
        intervals = _live_intervals(items)
        order = sorted(intervals.items(), key=lambda kv: (kv[1][0], kv[1][1]))
        free = _FreeList(budget)
        active: list[tuple[int, VReg, int]] = []  # (end, vreg, base)
        assignment: dict[VReg, int] = {}
        victim: Optional[VReg] = None
        for vreg, (start, end) in order:
            active = [a for a in active if not (a[0] < start and _expire(a, free))]
            base = free.take(vreg.regs)
            if base is None:
                # choose the active interval (or this one) ending last
                candidates = [a for a in active if a[1].regs >= 1]
                far = max(candidates, key=lambda a: a[0], default=None)
                if far is not None and far[0] > end and far[1] not in spilled:
                    victim = far[1]
                elif vreg not in spilled:
                    victim = vreg
                elif far is not None and far[1] not in spilled:
                    victim = far[1]
                else:
                    raise RegisterAllocationError(
                        f"cannot allocate {vreg} within budget {budget}"
                    )
                break
            assignment[vreg] = base
            active.append((end, vreg, base))
        else:
            # allocation succeeded
            pred_assignment = _allocate_preds(items)
            program = _materialize(
                vprog, items, assignment, pred_assignment, local_bytes
            )
            high_water = max(
                (base + v.regs for v, base in assignment.items()), default=0
            )
            return AllocationResult(
                program=program,
                registers_used=high_water,
                spilled_vregs=len(spilled),
                local_frame_bytes=local_bytes,
            )
        assert victim is not None
        slot = local_bytes
        local_bytes += 4 * victim.regs
        spilled[victim] = slot
        items, next_tmp_id = _rewrite_spill(items, victim, slot, next_tmp_id)
    raise RegisterAllocationError(
        f"register allocation did not converge after {max_spill_rounds} spill rounds"
    )


def _expire(entry: tuple[int, VReg, int], free: _FreeList) -> bool:
    _, vreg, base = entry
    free.release(base, vreg.regs)
    return True


def _allocate_preds(items: Sequence) -> dict[VPred, int]:
    """Linear-scan over the 6 usable predicate registers P0..P5."""
    intervals = _pred_intervals(items)
    order = sorted(intervals.items(), key=lambda kv: kv[1][0])
    free = list(range(6))
    active: list[tuple[int, VPred, int]] = []
    assignment: dict[VPred, int] = {}
    for vpred, (start, end) in order:
        keep = []
        for a in active:
            if a[0] < start:
                free.append(a[2])
            else:
                keep.append(a)
        active = keep
        if not free:
            raise RegisterAllocationError(
                "predicate pressure exceeds 6 registers (unsupported kernel shape)"
            )
        free.sort()
        phys = free.pop(0)
        assignment[vpred] = phys
        active.append((end, vpred, phys))
    return assignment


_STL_OP = {1: "STL", 2: "STL.64", 4: "STL.128"}
_LDL_OP = {1: "LDL", 2: "LDL.64", 4: "LDL.128"}


def _rewrite_spill(
    items: list, victim: VReg, slot: int, next_tmp_id: int
) -> tuple[list, int]:
    """Insert STL after defs and LDL before uses of ``victim``.

    Each use gets a fresh short-lived temporary so the reload does not
    recreate the long interval that caused the spill.
    """
    out: list = []
    for item in items:
        if not isinstance(item, VInstr):
            out.append(item)
            continue
        uses_victim = victim in item.source_vregs()
        defines_victim = victim in item.dest_vregs()
        ins = item
        if uses_victim:
            tmp = VReg(next_tmp_id, victim.regs)
            next_tmp_id += 1
            out.append(
                VInstr(
                    Opcode.parse(_LDL_OP[victim.regs]),
                    [VOperand.r(tmp), VOperand.m(None, slot)],
                    pred=item.pred,
                    pred_negated=item.pred_negated,
                    line=item.line,
                )
            )
            new_ops = []
            skip = len(item.dest_vregs())
            for idx, op in enumerate(item.operands):
                replace_it = op.kind == "reg" and op.vreg == victim and idx >= skip
                if op.kind == "mem" and op.mem_base == victim:
                    new_ops.append(replace(op, mem_base=tmp))
                elif replace_it:
                    new_ops.append(replace(op, vreg=tmp))
                else:
                    new_ops.append(op)
            ins = replace(item, operands=new_ops)
        if defines_victim:
            dtmp = VReg(next_tmp_id, victim.regs)
            next_tmp_id += 1
            new_ops = list(ins.operands)
            assert new_ops[0].kind == "reg"
            new_ops[0] = replace(new_ops[0], vreg=dtmp)
            ins = replace(ins, operands=new_ops)
            out.append(ins)
            out.append(
                VInstr(
                    Opcode.parse(_STL_OP[victim.regs]),
                    [VOperand.m(None, slot), VOperand.r(dtmp)],
                    pred=item.pred,
                    pred_negated=item.pred_negated,
                    line=item.line,
                )
            )
        else:
            out.append(ins)
    return out, next_tmp_id


# ---------------------------------------------------------------------------
# Materialisation to architectural SASS
# ---------------------------------------------------------------------------


def _materialize(
    vprog: VProgram,
    items: Sequence,
    assignment: dict[VReg, int],
    pred_assignment: dict[VPred, int],
    local_bytes: int,
) -> Program:
    def reg_of(vreg: VReg, lane: int) -> Register:
        base = assignment[vreg]
        if lane >= vreg.regs:
            raise RegisterAllocationError(f"lane {lane} out of range for {vreg}")
        return Register(base + lane)

    def pred_of(vpred: Optional[VPred]) -> Register:
        if vpred is None:
            return PT
        return Register(pred_assignment[vpred], predicate=True)

    def conv_operand(op: VOperand) -> Operand:
        if op.kind == "reg":
            assert op.vreg is not None
            return Operand.r(reg_of(op.vreg, op.lane), negated=op.negated)
        if op.kind == "pred":
            if op.vpred is None:
                return Operand.r(PT, negated=op.negated)
            return Operand.r(pred_of(op.vpred), negated=op.negated)
        if op.kind == "imm":
            assert op.imm is not None
            return Operand.i(op.imm)
        if op.kind == "fimm":
            assert op.fimm is not None
            return Operand.f(op.fimm)
        if op.kind == "mem":
            base = reg_of(op.mem_base, 0) if op.mem_base is not None else None
            return Operand.m(base, op.mem_offset)
        if op.kind == "const":
            base = Operand.c(op.const_bank, op.const_offset)
            if op.negated:
                from dataclasses import replace as _replace

                base = _replace(base, negated=True)
            return base
        if op.kind == "special":
            assert op.special is not None
            return Operand.sr(op.special)
        if op.kind == "label":
            assert op.label is not None
            return Operand.lbl(op.label)
        raise AssertionError(op.kind)

    out_items: list = []
    for item in items:
        if isinstance(item, Label):
            out_items.append(item)
            continue
        assert isinstance(item, VInstr)
        ins = Instruction(
            item.opcode,
            [conv_operand(op) for op in item.operands],
            line=item.line,
            file=f"{vprog.name}.cu",
            pred=pred_of(item.pred) if item.pred is not None else None,
            pred_negated=item.pred_negated,
        )
        out_items.append(ins)
    high_water = max((base + v.regs for v, base in assignment.items()), default=0)
    return Program(
        vprog.name,
        out_items,
        registers_per_thread=high_water,
        local_bytes_per_thread=local_bytes,
        shared_bytes=vprog.shared_bytes,
        source=vprog.source,
    )
