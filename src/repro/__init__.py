"""GPUscout reproduction.

A full Python reimplementation of *GPUscout: Locating Data
Movement-related Bottlenecks on GPUs* (Sen, Vanecek, Schulz — SC-W
2023), including every substrate the tool depends on:

* :mod:`repro.sass` — SASS ISA model, nvdisasm-dialect parser/writer,
  CFG/loop/liveness analyses, Volta occupancy calculator;
* :mod:`repro.cudalite` — a miniature CUDA frontend compiled to SASS
  with register allocation and spilling (the nvcc substitute);
* :mod:`repro.gpu` — a Volta-class SM + memory-hierarchy simulator
  producing warp stalls and hardware counters (the V100 substitute);
* :mod:`repro.sampling` — CUPTI PC Sampling API substitute;
* :mod:`repro.metrics` — Nsight Compute CLI substitute;
* :mod:`repro.core` — GPUscout itself: the eight SASS bottleneck
  analyses, three-pillar correlation, report rendering and the
  ``--dry-run`` mode;
* :mod:`repro.kernels` — the paper's case-study workloads (mixbench,
  Jacobi heat transfer, SGEMM) in all compared variants.

Quickstart::

    from repro import GPUscout, LaunchConfig
    from repro.kernels.sgemm import build_sgemm, sgemm_args, TILE

    kernel = build_sgemm("naive")
    args = sgemm_args(128, 128, 128)
    report = GPUscout().analyze(
        kernel,
        LaunchConfig(grid=(8, 8), block=(TILE, TILE)),
        args,
        max_blocks=4,
    )
    print(report.render())
"""

from repro.core import GPUscout, ScoutReport, Finding, Severity
from repro.cudalite import KernelBuilder, compile_kernel
from repro.gpu import GPUSpec, LaunchConfig, Simulator

__version__ = "1.0.0"

__all__ = [
    "GPUscout",
    "ScoutReport",
    "Finding",
    "Severity",
    "KernelBuilder",
    "compile_kernel",
    "GPUSpec",
    "LaunchConfig",
    "Simulator",
    "__version__",
]
