"""Nsight Compute CLI substitute.

GPUscout shells out to ``ncu`` with a curated metric list (paper §2.3:
"the number of collected metrics is kept to minimum" because collection
is expensive).  This package provides:

* a registry of ncu-style metric names derived from simulator counters
  (:mod:`repro.metrics.names`, :mod:`repro.metrics.derive`),
* :class:`~repro.metrics.collector.NsightComputeCLI`, a facade that
  "collects" requested metrics from a simulated launch and models the
  replay-pass overhead that dominates the paper's Figure 6.
"""

from repro.metrics.names import METRIC_REGISTRY, MetricSpec, describe_metric
from repro.metrics.collector import MetricReport, NsightComputeCLI
from repro.metrics.derive import derive_metric

__all__ = [
    "METRIC_REGISTRY",
    "MetricSpec",
    "describe_metric",
    "MetricReport",
    "NsightComputeCLI",
    "derive_metric",
]
