"""Metric derivation functions: counters -> ncu-style values.

Each deriver takes a :class:`~repro.gpu.simulator.LaunchResult` and
returns a float.  Device-level counters are used (the simulated SM's
share scaled by ``num_sms``), matching what ncu reports.  The composite
formulas follow the paper:

* §2.3  ``#SMs * (% cache miss) * (local memory instructions)`` — L2
  queries due to local memory;
* §4.2  ``({L1,L2} miss %) * (bytes requested from cache)``;
* §4.3  ``shared load transactions / shared load accesses`` — the
  number-of-ways bank-conflict estimate ncu does not expose directly.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MetricError
from repro.gpu.simulator import LaunchResult

__all__ = ["derive_metric", "DERIVERS"]

SECTOR = 32  # bytes


def _pct(numer: float, denom: float) -> float:
    return 100.0 * numer / denom if denom else 0.0


def _c(result: LaunchResult):
    return result.device_counters


DERIVERS: dict[str, Callable[[LaunchResult], float]] = {}


def _register(name: str):
    def deco(fn: Callable[[LaunchResult], float]):
        DERIVERS[name] = fn
        return fn

    return deco


# -- execution -------------------------------------------------------------


@_register("sm__cycles_elapsed.avg")
def _cycles(r: LaunchResult) -> float:
    return r.cycles


@_register("gpu__time_duration.sum")
def _duration_us(r: LaunchResult) -> float:
    return r.duration_s * 1e6


@_register("smsp__inst_executed.sum")
def _inst(r: LaunchResult) -> float:
    return float(_c(r).inst_issued)


@_register("launch__registers_per_thread")
def _regs(r: LaunchResult) -> float:
    return float(r.compiled.program.registers_per_thread)


@_register("launch__shared_mem_per_block_static")
def _smem(r: LaunchResult) -> float:
    return float(r.compiled.program.shared_bytes)


@_register("launch__local_mem_per_thread")
def _localmem(r: LaunchResult) -> float:
    return float(r.compiled.program.local_bytes_per_thread)


@_register("sm__warps_active.avg.pct_of_peak_sustained_active")
def _occupancy(r: LaunchResult) -> float:
    return 100.0 * r.achieved_occupancy


@_register("sm__maximum_warps_avg_per_active_cycle_pct")
def _occupancy_theo(r: LaunchResult) -> float:
    return 100.0 * r.theoretical_occupancy


@_register("derived__issue_slot_utilization.pct")
def _issue_util(r: LaunchResult) -> float:
    """Issued instructions over available issue slots (4/SM/cycle)."""
    c = _c(r)
    slots = r.cycles * 4 * r.spec.num_sms
    return _pct(c.inst_issued, slots)


@_register("derived__avg_active_warps")
def _avg_warps(r: LaunchResult) -> float:
    """Average resident unfinished warps over the kernel duration."""
    if r.cycles <= 0:
        return 0.0
    return _c(r).warp_cycles_active / (r.cycles * r.spec.num_sms)


# -- global memory ----------------------------------------------------------


@_register("smsp__inst_executed_op_global_ld.sum")
def _gld_inst(r: LaunchResult) -> float:
    return float(_c(r).global_load_instructions)


@_register("smsp__inst_executed_op_global_st.sum")
def _gst_inst(r: LaunchResult) -> float:
    return float(_c(r).global_store_instructions)


@_register("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum")
def _gld_sectors(r: LaunchResult) -> float:
    return float(_c(r).global_load_sectors)


@_register("l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum")
def _gst_sectors(r: LaunchResult) -> float:
    return float(_c(r).global_store_sectors)


@_register("l1tex__t_bytes_pipe_lsu_mem_global_op_ld.sum")
def _gld_bytes(r: LaunchResult) -> float:
    return float(_c(r).global_load_sectors * SECTOR)


@_register("l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct")
def _gld_l1_hit(r: LaunchResult) -> float:
    c = _c(r)
    return _pct(c.global_load_l1_hits,
                c.global_load_l1_hits + c.global_load_l1_misses)


@_register("derived__l1_global_load_miss_pct")
def _gld_l1_miss(r: LaunchResult) -> float:
    return 100.0 - _gld_l1_hit(r)


@_register("derived__sectors_per_global_load")
def _sectors_per_load(r: LaunchResult) -> float:
    c = _c(r)
    if not c.global_load_instructions:
        return 0.0
    return c.global_load_sectors / c.global_load_instructions


# -- local memory (spills) ----------------------------------------------------


@_register("smsp__inst_executed_op_local_ld.sum")
def _lld_inst(r: LaunchResult) -> float:
    return float(_c(r).local_load_instructions)


@_register("smsp__inst_executed_op_local_st.sum")
def _lst_inst(r: LaunchResult) -> float:
    return float(_c(r).local_store_instructions)


@_register("l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum")
def _lld_sectors(r: LaunchResult) -> float:
    return float(_c(r).local_load_sectors)


@_register("l1tex__t_sectors_pipe_lsu_mem_local_op_st.sum")
def _lst_sectors(r: LaunchResult) -> float:
    return float(_c(r).local_store_sectors)


@_register("derived__l1_local_miss_pct")
def _local_l1_miss(r: LaunchResult) -> float:
    c = _c(r)
    return _pct(c.local_l1_misses, c.local_l1_hits + c.local_l1_misses)


@_register("derived__l2_queries_due_to_local_memory")
def _l2_local_queries(r: LaunchResult) -> float:
    """Paper §2.3: #SMs * (% cache miss) * (local memory instructions)."""
    c = _c(r)
    local_inst = c.local_load_instructions + c.local_store_instructions
    if not local_inst:
        return 0.0
    miss = _local_l1_miss(r) / 100.0
    # device counters already include the #SMs factor
    return miss * local_inst


@_register("derived__local_bytes_to_l2")
def _local_bytes_l2(r: LaunchResult) -> float:
    """Paper §4.2: (L1 miss %) * (bytes requested from L1)."""
    c = _c(r)
    total_sectors = c.local_load_sectors + c.local_store_sectors
    return (_local_l1_miss(r) / 100.0) * total_sectors * SECTOR


@_register("derived__local_traffic_share_of_l2.pct")
def _local_l2_share(r: LaunchResult) -> float:
    c = _c(r)
    return _pct(c.l2_sectors_by_space.get("local", 0), c.l2_sectors_total)


# -- L2 / DRAM ----------------------------------------------------------------


@_register("lts__t_sectors.sum")
def _l2_sectors(r: LaunchResult) -> float:
    return float(_c(r).l2_sectors_total)


@_register("lts__t_sector_hit_rate.pct")
def _l2_hit(r: LaunchResult) -> float:
    c = _c(r)
    hits = sum(c.l2_hits_by_space.values())
    return _pct(hits, c.l2_sectors_total)


@_register("lts__t_sectors_srcunit_tex_op_read.sum")
def _l2_from_tex(r: LaunchResult) -> float:
    return float(_c(r).l2_sectors_by_space.get("texture", 0))


@_register("dram__sectors.sum")
def _dram_sectors(r: LaunchResult) -> float:
    return float(_c(r).dram_sectors)


@_register("dram__bytes.sum")
def _dram_bytes(r: LaunchResult) -> float:
    return float(_c(r).dram_sectors * SECTOR)


# -- shared memory -------------------------------------------------------------


@_register("smsp__inst_executed_op_shared_ld.sum")
def _sld_inst(r: LaunchResult) -> float:
    return float(_c(r).shared_load_instructions)


@_register("smsp__inst_executed_op_shared_st.sum")
def _sst_inst(r: LaunchResult) -> float:
    return float(_c(r).shared_store_instructions)


@_register("l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum")
def _sld_tx(r: LaunchResult) -> float:
    return float(_c(r).shared_load_transactions)


@_register("l1tex__data_pipe_lsu_wavefronts_mem_shared_op_st.sum")
def _sst_tx(r: LaunchResult) -> float:
    return float(_c(r).shared_store_transactions)


@_register("derived__smem_ld_bank_conflict_ways")
def _bank_ways(r: LaunchResult) -> float:
    """Paper §4.3: shared load transactions / shared load accesses.

    1.0 means conflict-free; 32.0 means fully serialized."""
    c = _c(r)
    if not c.shared_load_instructions:
        return 0.0
    return c.shared_load_transactions / c.shared_load_instructions


@_register("derived__smem_efficiency.pct")
def _smem_eff(r: LaunchResult) -> float:
    ways = _bank_ways(r)
    return 100.0 / ways if ways else 0.0


# -- texture --------------------------------------------------------------------


@_register("l1tex__texin_requests.sum")
def _tex_requests(r: LaunchResult) -> float:
    return float(_c(r).texture_instructions)


@_register("l1tex__t_sectors_pipe_tex.sum")
def _tex_sectors(r: LaunchResult) -> float:
    return float(_c(r).texture_sectors)


@_register("l1tex__t_bytes_pipe_tex.sum")
def _tex_bytes(r: LaunchResult) -> float:
    return float(_c(r).texture_sectors * SECTOR)


@_register("derived__tex_cache_miss_pct")
def _tex_miss(r: LaunchResult) -> float:
    c = _c(r)
    return _pct(c.texture_misses, c.texture_hits + c.texture_misses)


# -- atomics --------------------------------------------------------------------


@_register("smsp__inst_executed_op_global_atom.sum")
def _gatom(r: LaunchResult) -> float:
    return float(_c(r).global_atomic_instructions)


@_register("smsp__inst_executed_op_shared_atom.sum")
def _satom(r: LaunchResult) -> float:
    return float(_c(r).shared_atomic_instructions)


@_register("derived__atomic_l2_resolution_pct")
def _atom_l2(r: LaunchResult) -> float:
    c = _c(r)
    return _pct(c.atomic_l2_hits, c.atomic_l2_hits + c.atomic_l2_misses)


# -- conversions -----------------------------------------------------------------


@_register("smsp__sass_inst_executed_op_conversion.sum")
def _conversions(r: LaunchResult) -> float:
    return float(_c(r).conversion_instructions)


def derive_metric(name: str, result: LaunchResult) -> float:
    """Compute metric ``name`` for ``result``.

    Raises :class:`~repro.errors.MetricError` for unknown names."""
    fn = DERIVERS.get(name)
    if fn is None:
        raise MetricError(f"unknown metric {name!r}")
    return fn(result)
