"""Metric-name registry with human descriptions and groupings.

Mirrors the curated metric sets GPUscout requests from ``ncu`` for each
bottleneck analysis — kept intentionally small because collection
overhead is proportional to the number of metrics (paper §3, §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.derive import DERIVERS

__all__ = ["MetricSpec", "METRIC_REGISTRY", "describe_metric", "METRIC_SETS"]


@dataclass(frozen=True)
class MetricSpec:
    """A collectable metric: ncu-style name, unit, description."""

    name: str
    unit: str
    description: str


_SPECS = [
    MetricSpec("sm__cycles_elapsed.avg", "cycle", "Kernel duration in SM cycles."),
    MetricSpec("gpu__time_duration.sum", "us", "Kernel wall-clock duration."),
    MetricSpec("smsp__inst_executed.sum", "inst", "Warp instructions executed."),
    MetricSpec("launch__registers_per_thread", "register",
               "Registers allocated per thread."),
    MetricSpec("launch__shared_mem_per_block_static", "byte",
               "Static shared memory per block."),
    MetricSpec("launch__local_mem_per_thread", "byte",
               "Local memory (spill frame) per thread."),
    MetricSpec("sm__warps_active.avg.pct_of_peak_sustained_active", "%",
               "Achieved occupancy."),
    MetricSpec("sm__maximum_warps_avg_per_active_cycle_pct", "%",
               "Theoretical occupancy."),
    MetricSpec("derived__issue_slot_utilization.pct", "%",
               "Issued instructions per available issue slot."),
    MetricSpec("derived__avg_active_warps", "warp",
               "Average resident warps per SM over the kernel."),
    MetricSpec("smsp__inst_executed_op_global_ld.sum", "inst",
               "Global load instructions."),
    MetricSpec("smsp__inst_executed_op_global_st.sum", "inst",
               "Global store instructions."),
    MetricSpec("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum", "sector",
               "L1 sectors requested by global loads."),
    MetricSpec("l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum", "sector",
               "L1 sectors requested by global stores."),
    MetricSpec("l1tex__t_bytes_pipe_lsu_mem_global_op_ld.sum", "byte",
               "Bytes requested by global loads."),
    MetricSpec("l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct", "%",
               "L1 hit rate of global loads."),
    MetricSpec("derived__l1_global_load_miss_pct", "%",
               "L1 miss rate of global loads."),
    MetricSpec("derived__sectors_per_global_load", "sector/inst",
               "Average sectors per global load (4 = fully coalesced 32-bit)."),
    MetricSpec("smsp__inst_executed_op_local_ld.sum", "inst",
               "Local (spill) load instructions."),
    MetricSpec("smsp__inst_executed_op_local_st.sum", "inst",
               "Local (spill) store instructions."),
    MetricSpec("l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum", "sector",
               "L1 sectors requested by local loads."),
    MetricSpec("l1tex__t_sectors_pipe_lsu_mem_local_op_st.sum", "sector",
               "L1 sectors requested by local stores."),
    MetricSpec("derived__l1_local_miss_pct", "%",
               "L1 miss rate of local-memory traffic."),
    MetricSpec("derived__l2_queries_due_to_local_memory", "request",
               "Estimated L2 queries caused by local memory "
               "(#SMs x miss% x local instructions, paper §2.3)."),
    MetricSpec("derived__local_bytes_to_l2", "byte",
               "Local-memory bytes forwarded to L2 (miss% x bytes)."),
    MetricSpec("derived__local_traffic_share_of_l2.pct", "%",
               "Share of all L2 sectors caused by local memory."),
    MetricSpec("lts__t_sectors.sum", "sector", "Total L2 sector accesses."),
    MetricSpec("lts__t_sector_hit_rate.pct", "%", "L2 sector hit rate."),
    MetricSpec("lts__t_sectors_srcunit_tex_op_read.sum", "sector",
               "L2 sectors requested by the texture unit."),
    MetricSpec("dram__sectors.sum", "sector", "DRAM sector accesses."),
    MetricSpec("dram__bytes.sum", "byte", "DRAM bytes transferred."),
    MetricSpec("smsp__inst_executed_op_shared_ld.sum", "inst",
               "Shared-memory load instructions (accesses)."),
    MetricSpec("smsp__inst_executed_op_shared_st.sum", "inst",
               "Shared-memory store instructions."),
    MetricSpec("l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
               "transaction", "Shared load transactions (wavefronts)."),
    MetricSpec("l1tex__data_pipe_lsu_wavefronts_mem_shared_op_st.sum",
               "transaction", "Shared store transactions (wavefronts)."),
    MetricSpec("derived__smem_ld_bank_conflict_ways", "way",
               "Bank-conflict ways = transactions / accesses (paper §4.3); "
               "1 = conflict-free, 32 = fully serialized."),
    MetricSpec("derived__smem_efficiency.pct", "%",
               "Shared-memory efficiency (inverse of conflict ways)."),
    MetricSpec("l1tex__texin_requests.sum", "request", "Texture fetch requests."),
    MetricSpec("l1tex__t_sectors_pipe_tex.sum", "sector",
               "Sectors requested through the TEX pipe."),
    MetricSpec("l1tex__t_bytes_pipe_tex.sum", "byte",
               "Bytes requested from the texture cache."),
    MetricSpec("derived__tex_cache_miss_pct", "%",
               "Texture cache miss rate (misses forwarded to L2)."),
    MetricSpec("smsp__inst_executed_op_global_atom.sum", "inst",
               "Global atomic instructions."),
    MetricSpec("smsp__inst_executed_op_shared_atom.sum", "inst",
               "Shared atomic instructions."),
    MetricSpec("derived__atomic_l2_resolution_pct", "%",
               "Share of atomics resolved in L2 (rest go to DRAM)."),
    MetricSpec("smsp__sass_inst_executed_op_conversion.sum", "inst",
               "Datatype conversion instructions (I2F/F2F/F2I/I2I)."),
]

METRIC_REGISTRY: dict[str, MetricSpec] = {s.name: s for s in _SPECS}

# every registered spec must be derivable and vice versa
assert set(METRIC_REGISTRY) == set(DERIVERS), (
    sorted(set(METRIC_REGISTRY) ^ set(DERIVERS))
)


def describe_metric(name: str) -> str:
    """Human description of a metric name (empty if unknown)."""
    spec = METRIC_REGISTRY.get(name)
    return spec.description if spec else ""


#: curated per-analysis metric sets (GPUscout keeps these minimal)
METRIC_SETS: dict[str, list[str]] = {
    "base": [
        "sm__cycles_elapsed.avg",
        "gpu__time_duration.sum",
        "smsp__inst_executed.sum",
        "launch__registers_per_thread",
        "sm__warps_active.avg.pct_of_peak_sustained_active",
        "l1tex__t_bytes_pipe_lsu_mem_global_op_ld.sum",
        "l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct",
        "lts__t_sector_hit_rate.pct",
        "dram__bytes.sum",
    ],
    "use_vectorized_loads": [
        "launch__registers_per_thread",
        "sm__warps_active.avg.pct_of_peak_sustained_active",
        "derived__sectors_per_global_load",
        "smsp__inst_executed_op_global_ld.sum",
    ],
    "register_spilling": [
        "launch__local_mem_per_thread",
        "smsp__inst_executed_op_local_ld.sum",
        "smsp__inst_executed_op_local_st.sum",
        "derived__l1_local_miss_pct",
        "derived__l2_queries_due_to_local_memory",
        "derived__local_bytes_to_l2",
        "derived__local_traffic_share_of_l2.pct",
    ],
    "use_shared_memory": [
        "smsp__inst_executed_op_shared_ld.sum",
        "l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
        "derived__smem_ld_bank_conflict_ways",
        "derived__smem_efficiency.pct",
    ],
    "use_shared_atomics": [
        "smsp__inst_executed_op_global_atom.sum",
        "smsp__inst_executed_op_shared_atom.sum",
        "derived__atomic_l2_resolution_pct",
    ],
    "use_restrict": [
        "launch__registers_per_thread",
        "sm__warps_active.avg.pct_of_peak_sustained_active",
    ],
    "use_texture_memory": [
        "l1tex__texin_requests.sum",
        "l1tex__t_bytes_pipe_tex.sum",
        "derived__tex_cache_miss_pct",
        "lts__t_sectors_srcunit_tex_op_read.sum",
    ],
    "datatype_conversions": [
        "smsp__sass_inst_executed_op_conversion.sum",
    ],
}
