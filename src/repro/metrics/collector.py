"""Nsight Compute CLI facade and the metric-collection overhead model.

Real ``ncu`` collects counters by *replaying* the kernel — once per
group of compatible counters — plus substantial per-kernel setup (cache
flushing, serialization).  That replay cost is why metric collection
dominates GPUscout's overhead and grows fastest with problem size
(Figure 6).  The facade derives values from a single simulated launch
(our simulator is deterministic, so replays are redundant) but *models*
the time the replays would cost, which the overhead benches report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MetricError
from repro.testing.faultinject import fail_point
from repro.gpu.simulator import LaunchResult
from repro.metrics.derive import derive_metric
from repro.metrics.names import METRIC_REGISTRY

__all__ = ["MetricReport", "NsightComputeCLI"]


@dataclass
class MetricReport:
    """Values of the requested metrics for one kernel."""

    kernel: str
    values: dict[str, float] = field(default_factory=dict)
    #: modelled wall-clock cost of collecting these metrics with ncu
    collection_seconds: float = 0.0
    replay_passes: int = 0

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)


class NsightComputeCLI:
    """``ncu``-like metric collector over the simulator.

    ``counters_per_pass`` controls how many hardware counters fit in
    one replay pass; ``replay_overhead_factor`` is the serialized-replay
    slowdown versus a bare kernel run; ``per_pass_setup_s`` is the fixed
    cost of each pass (context setup, cache flush).
    """

    def __init__(
        self,
        counters_per_pass: int = 4,
        replay_overhead_factor: float = 5.0,
        per_pass_setup_s: float = 0.06,
    ):
        self.counters_per_pass = counters_per_pass
        self.replay_overhead_factor = replay_overhead_factor
        self.per_pass_setup_s = per_pass_setup_s

    def collect(
        self,
        result: LaunchResult,
        metrics: Sequence[str],
    ) -> MetricReport:
        """Derive ``metrics`` from ``result`` and model the cost."""
        fail_point("metrics.collect")
        unknown = [m for m in metrics if m not in METRIC_REGISTRY]
        if unknown:
            raise MetricError(f"unknown metrics requested: {unknown}")
        values = {m: derive_metric(m, result) for m in metrics}
        passes = max(1, math.ceil(len(set(metrics)) / self.counters_per_pass))
        seconds = passes * (
            result.duration_s * self.replay_overhead_factor
            + self.per_pass_setup_s
        )
        return MetricReport(
            kernel=result.compiled.name,
            values=values,
            collection_seconds=seconds,
            replay_passes=passes,
        )
