"""GPUscout orchestration: the four-stage workflow of paper §3.1.

1. **Configuration** — a compiled kernel (or raw SASS text) plus the
   launch setup.
2. **Static code instrumentation** — the registered SASS analyses run
   over the disassembly.
3. **Dynamic data collection** — skipped under ``--dry-run``; otherwise
   the kernel executes on the simulated GPU, CUPTI-style PC samples are
   drawn, and the curated ncu metric sets are collected.
4. **Data evaluation** — stalls and metrics are correlated to each
   finding's instructions and the terminal report is rendered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.base import Analysis, AnalysisContext, default_analyses
from repro.core.findings import Finding
from repro.core.overhead import OverheadBreakdown
from repro.cudalite.compiler import CompiledKernel
from repro.errors import AnalysisError
from repro.gpu.config import GPUSpec
from repro.gpu.simulator import LaunchConfig, LaunchResult, Simulator
from repro.gpu.stalls import StallReason
from repro.metrics.collector import MetricReport, NsightComputeCLI
from repro.metrics.names import METRIC_SETS
from repro.sampling.pcsampler import PCSampler, PCSamplingResult
from repro.sampling.stall_report import LineStallProfile, build_line_profiles
from repro.ptx.analysis import PTXAtomicsSummary
from repro.sass.isa import Program
from repro.sass.parser import parse_sass

__all__ = ["GPUscout", "ScoutReport"]


@dataclass
class ScoutReport:
    """Everything one GPUscout run produced."""

    kernel: str
    findings: list[Finding]
    dry_run: bool
    program: Program
    sampling: Optional[PCSamplingResult] = None
    line_profiles: dict[int, LineStallProfile] = field(default_factory=dict)
    metrics: Optional[MetricReport] = None
    launch: Optional[LaunchResult] = None
    overhead: Optional[OverheadBreakdown] = None
    #: PTX-level §4.4 atomics summary (None when only raw SASS given)
    ptx_atomics: Optional["PTXAtomicsSummary"] = None
    #: static affine proof counts per space (see
    #: :func:`repro.sass.affine.summarize_proofs`); rendered as the
    #: report footer
    affine_summary: dict = field(default_factory=dict)

    def findings_for(self, analysis: str) -> list[Finding]:
        return [f for f in self.findings if f.analysis == analysis]

    def has_finding(self, analysis: str) -> bool:
        return any(f.analysis == analysis for f in self.findings)

    def render(self, color: bool = False) -> str:
        from repro.core.report import render_report

        return render_report(self, color=color)

    def render_html(self, comparison=None) -> str:
        """The Figure-7 interactive frontend as a standalone HTML page."""
        from repro.core.html_report import render_html

        return render_html(self, comparison=comparison)


class GPUscout:
    """The analyzer.  See the module docstring for the workflow.

    Parameters mirror the tool's configuration stage: which analyses to
    run, the GPU to execute on, the PC sampling period, and how many
    blocks to simulate per launch (``max_blocks``) before extrapolating.
    """

    def __init__(
        self,
        analyses: Optional[Sequence[Analysis]] = None,
        spec: Optional[GPUSpec] = None,
        sampler: Optional[PCSampler] = None,
        ncu: Optional[NsightComputeCLI] = None,
        fast: Optional[bool] = None,
    ):
        self.analyses = list(analyses) if analyses is not None else default_analyses()
        self.spec = spec or GPUSpec.v100()
        self.sampler = sampler or PCSampler()
        self.ncu = ncu or NsightComputeCLI()
        #: fast-path toggle (None = REPRO_FAST/default): batched
        #: functional execution *and* the trace-driven timed scheduler
        self.fast = fast

    # ------------------------------------------------------------------
    def analyze(
        self,
        kernel: Union[CompiledKernel, Program, str],
        config: Optional[LaunchConfig] = None,
        args: Optional[dict] = None,
        textures: Optional[dict] = None,
        dry_run: bool = False,
        max_blocks: Optional[int] = None,
        launch: Optional[LaunchResult] = None,
    ) -> ScoutReport:
        """Run the full GPUscout workflow on ``kernel``.

        ``kernel`` may be a cudalite :class:`CompiledKernel`, an
        already-parsed :class:`Program`, or raw nvdisasm text.  With
        ``dry_run`` only the static SASS analysis runs — no GPU (i.e.
        simulator) involvement at all, usable on architectures ncu does
        not support (paper §3.1).  A pre-existing ``launch`` result can
        be supplied to correlate against (avoids re-simulation).
        """
        program, compiled = self._resolve(kernel)
        t0 = time.perf_counter()
        ctx = AnalysisContext(program, compiled, config)
        findings: list[Finding] = []
        for analysis in self.analyses:
            findings.extend(analysis.run(ctx))
        findings.sort(key=lambda f: (-int(f.severity), f.analysis))
        # PTX-level cross-check of the atomics analysis (paper §3 fn. 2:
        # "analogously to SASS, a PTX analysis is performed in §4.4")
        ptx_atomics = None
        if compiled is not None:
            from repro.ptx import parse_ptx, scan_atomics

            ptx_atomics = scan_atomics(parse_ptx(compiled.ptx_text))
            for finding in findings:
                if finding.analysis == "use_shared_atomics":
                    finding.details["ptx_global_atomics"] = \
                        ptx_atomics.global_atomics
                    finding.details["ptx_shared_atomics"] = \
                        ptx_atomics.shared_atomics
        # launch-independent affine proof footer: which accesses are
        # statically proven coalesced/conflict-free vs. flagged
        from repro.sass.affine import (
            pointer_param_offsets,
            static_access_report,
            summarize_proofs,
        )

        affine_summary = summarize_proofs(
            static_access_report(
                program, ctx.cfg, ctx.affine, config,
                pointer_params=pointer_param_offsets(compiled),
            )
        )
        sass_seconds = time.perf_counter() - t0

        if dry_run:
            return ScoutReport(
                kernel=program.name,
                findings=findings,
                dry_run=True,
                program=program,
                ptx_atomics=ptx_atomics,
                affine_summary=affine_summary,
                overhead=OverheadBreakdown(
                    kernel_seconds=0.0,
                    sass_analysis_seconds=sass_seconds,
                    pc_sampling_seconds=0.0,
                    metrics_seconds=0.0,
                ),
            )

        if compiled is None:
            raise AnalysisError(
                "dynamic analysis needs a CompiledKernel (launchable); "
                "raw SASS supports --dry-run only"
            )
        if launch is None:
            if config is None or args is None:
                raise AnalysisError(
                    "dynamic analysis needs a LaunchConfig and kernel args"
                )
            sim = Simulator(self.spec, fast=self.fast)
            launch = sim.launch(
                compiled, config, args, textures=textures,
                max_blocks=max_blocks, functional_all=False,
            )
        sampling = self.sampler.sample(launch)
        line_profiles = build_line_profiles(sampling)

        metric_names = self._metric_names(findings)
        metrics = self.ncu.collect(launch, metric_names)

        for finding in findings:
            finding.stall_profile = self._stalls_for(finding, sampling)
            finding.metrics = {
                name: metrics.values[name]
                for name in finding.metric_focus
                if name in metrics.values
            }
        self._attach_predictions(findings, ctx, compiled, config, launch)

        overhead = OverheadBreakdown(
            kernel_seconds=launch.duration_s,
            sass_analysis_seconds=sass_seconds,
            pc_sampling_seconds=self.sampler.overhead_seconds(launch),
            metrics_seconds=metrics.collection_seconds,
        )
        return ScoutReport(
            kernel=program.name,
            findings=findings,
            dry_run=False,
            program=program,
            ptx_atomics=ptx_atomics,
            sampling=sampling,
            line_profiles=line_profiles,
            metrics=metrics,
            launch=launch,
            overhead=overhead,
            affine_summary=affine_summary,
        )

    # ------------------------------------------------------------------
    def _attach_predictions(
        self,
        findings: Sequence[Finding],
        ctx: AnalysisContext,
        compiled: CompiledKernel,
        config: Optional[LaunchConfig],
        launch: LaunchResult,
    ) -> None:
        """Fill each finding's ``predicted``/``measured`` dicts.

        ``measured`` comes from the simulator's per-PC counters;
        ``predicted`` from the launch-aware affine predictor (which may
        sharpen a launch-free prediction an analysis attached earlier).
        Only the finding's own memory-access PCs are considered, so the
        two dicts compare the same accesses."""
        from repro.sass.affine import (
            _GLOBAL_CLASSES,
            _SHARED_CLASSES,
            AffineAnalysis,
            AffineEnv,
            MemoryPredictor,
        )

        config = config or launch.config
        spec = launch.spec
        env = AffineEnv.from_launch(compiled, config, launch.param_values)
        affine = AffineAnalysis(ctx.program, ctx.cfg, env)
        # enumerate exactly the blocks the simulator timed (SM 0's
        # share, possibly capped by max_blocks) so the prediction and
        # the measurement cover the same work
        blocks = range(0, config.num_blocks, spec.num_sms)
        if len(blocks) == 0:
            blocks = range(0, 1)
        if launch.simulated_blocks:
            blocks = blocks[: launch.simulated_blocks]
        predictor = MemoryPredictor(
            ctx.program, ctx.cfg, affine, config, spec, blocks=list(blocks)
        )
        counters = launch.counters
        for finding in findings:
            for classes, key, by_pc in (
                (_GLOBAL_CLASSES, "sectors_per_request",
                 counters.mem_sectors_by_pc),
                (_SHARED_CLASSES, "transactions_per_request",
                 counters.shared_tx_by_pc),
            ):
                pcs = [
                    pc for pc in finding.pcs
                    if pc < len(ctx.program)
                    and ctx.program[pc].opcode.op_class in classes
                ]
                if not pcs:
                    continue
                issues = sum(counters.inst_by_pc.get(pc, 0) for pc in pcs)
                if issues:
                    finding.measured[key] = (
                        sum(by_pc.get(pc, 0) for pc in pcs) / issues
                    )
                total = weight = 0.0
                unproven: list[int] = []
                for pc in pcs:
                    pred = predictor.predict(pc)
                    if pred.proven:
                        # weight by measured issues so a proven aggregate
                        # compares apples-to-apples with ``measured``
                        w = counters.inst_by_pc.get(pc, 0) or 1
                        total += pred.per_request * w
                        weight += w
                    else:
                        unproven.append(pc)
                if weight:
                    finding.predicted[key] = total / weight
                if unproven:
                    finding.predicted.setdefault(
                        "unproven_pcs", []
                    ).extend(unproven)

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(kernel) -> tuple[Program, Optional[CompiledKernel]]:
        if isinstance(kernel, CompiledKernel):
            return kernel.program, kernel
        if isinstance(kernel, Program):
            return kernel, None
        if isinstance(kernel, str):
            return parse_sass(kernel), None
        raise AnalysisError(f"cannot analyze object of type {type(kernel)!r}")

    def _metric_names(self, findings: Sequence[Finding]) -> list[str]:
        names = list(METRIC_SETS["base"])
        for finding in findings:
            for name in finding.metric_focus:
                if name not in names:
                    names.append(name)
        return names

    @staticmethod
    def _stalls_for(finding: Finding,
                    sampling: PCSamplingResult) -> dict[StallReason, int]:
        """Samples correlated to a finding.

        CUPTI attributes samples to source lines (paper §2.2), and the
        report presents stalls per flagged *line* (Figure 2: "For line
        number 18, the warp stalls are ...").  A sample therefore
        matches when it falls on a flagged PC or on any instruction of
        a flagged source line — e.g. the consumer that actually stalls
        on a flagged load's data."""
        out: dict[StallReason, int] = {}
        pcs = set(finding.pcs)
        lines = set(finding.lines)
        for s in sampling.samples:
            if s.pc in pcs or (s.line is not None and s.line in lines):
                out[s.reason] = out.get(s.reason, 0) + s.samples
        return out
