"""GPUscout orchestration: the four-stage workflow of paper §3.1.

1. **Configuration** — a compiled kernel (or raw SASS text) plus the
   launch setup.
2. **Static code instrumentation** — the registered SASS analyses run
   over the disassembly.
3. **Dynamic data collection** — skipped under ``--dry-run``; otherwise
   the kernel executes on the simulated GPU, CUPTI-style PC samples are
   drawn, and the curated ncu metric sets are collected.
4. **Data evaluation** — stalls and metrics are correlated to each
   finding's instructions and the terminal report is rendered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.base import Analysis, AnalysisContext, default_analyses
from repro.core.findings import Finding
from repro.core.overhead import OverheadBreakdown
from repro.cudalite.compiler import CompiledKernel
from repro.errors import AnalysisError
from repro.gpu.config import GPUSpec
from repro.gpu.simulator import LaunchConfig, LaunchResult, Simulator
from repro.gpu.stalls import StallReason
from repro.metrics.collector import MetricReport, NsightComputeCLI
from repro.metrics.names import METRIC_SETS
from repro.sampling.pcsampler import PCSampler, PCSamplingResult
from repro.sampling.stall_report import LineStallProfile, build_line_profiles
from repro.ptx.analysis import PTXAtomicsSummary
from repro.sass.isa import Program
from repro.sass.parser import parse_sass

__all__ = ["GPUscout", "ScoutReport"]


@dataclass
class ScoutReport:
    """Everything one GPUscout run produced."""

    kernel: str
    findings: list[Finding]
    dry_run: bool
    program: Program
    sampling: Optional[PCSamplingResult] = None
    line_profiles: dict[int, LineStallProfile] = field(default_factory=dict)
    metrics: Optional[MetricReport] = None
    launch: Optional[LaunchResult] = None
    overhead: Optional[OverheadBreakdown] = None
    #: PTX-level §4.4 atomics summary (None when only raw SASS given)
    ptx_atomics: Optional["PTXAtomicsSummary"] = None

    def findings_for(self, analysis: str) -> list[Finding]:
        return [f for f in self.findings if f.analysis == analysis]

    def has_finding(self, analysis: str) -> bool:
        return any(f.analysis == analysis for f in self.findings)

    def render(self, color: bool = False) -> str:
        from repro.core.report import render_report

        return render_report(self, color=color)

    def render_html(self, comparison=None) -> str:
        """The Figure-7 interactive frontend as a standalone HTML page."""
        from repro.core.html_report import render_html

        return render_html(self, comparison=comparison)


class GPUscout:
    """The analyzer.  See the module docstring for the workflow.

    Parameters mirror the tool's configuration stage: which analyses to
    run, the GPU to execute on, the PC sampling period, and how many
    blocks to simulate per launch (``max_blocks``) before extrapolating.
    """

    def __init__(
        self,
        analyses: Optional[Sequence[Analysis]] = None,
        spec: Optional[GPUSpec] = None,
        sampler: Optional[PCSampler] = None,
        ncu: Optional[NsightComputeCLI] = None,
        fast: Optional[bool] = None,
    ):
        self.analyses = list(analyses) if analyses is not None else default_analyses()
        self.spec = spec or GPUSpec.v100()
        self.sampler = sampler or PCSampler()
        self.ncu = ncu or NsightComputeCLI()
        #: fast-path toggle (None = REPRO_FAST/default): batched
        #: functional execution *and* the trace-driven timed scheduler
        self.fast = fast

    # ------------------------------------------------------------------
    def analyze(
        self,
        kernel: Union[CompiledKernel, Program, str],
        config: Optional[LaunchConfig] = None,
        args: Optional[dict] = None,
        textures: Optional[dict] = None,
        dry_run: bool = False,
        max_blocks: Optional[int] = None,
        launch: Optional[LaunchResult] = None,
    ) -> ScoutReport:
        """Run the full GPUscout workflow on ``kernel``.

        ``kernel`` may be a cudalite :class:`CompiledKernel`, an
        already-parsed :class:`Program`, or raw nvdisasm text.  With
        ``dry_run`` only the static SASS analysis runs — no GPU (i.e.
        simulator) involvement at all, usable on architectures ncu does
        not support (paper §3.1).  A pre-existing ``launch`` result can
        be supplied to correlate against (avoids re-simulation).
        """
        program, compiled = self._resolve(kernel)
        t0 = time.perf_counter()
        ctx = AnalysisContext(program, compiled)
        findings: list[Finding] = []
        for analysis in self.analyses:
            findings.extend(analysis.run(ctx))
        findings.sort(key=lambda f: (-int(f.severity), f.analysis))
        # PTX-level cross-check of the atomics analysis (paper §3 fn. 2:
        # "analogously to SASS, a PTX analysis is performed in §4.4")
        ptx_atomics = None
        if compiled is not None:
            from repro.ptx import parse_ptx, scan_atomics

            ptx_atomics = scan_atomics(parse_ptx(compiled.ptx_text))
            for finding in findings:
                if finding.analysis == "use_shared_atomics":
                    finding.details["ptx_global_atomics"] = \
                        ptx_atomics.global_atomics
                    finding.details["ptx_shared_atomics"] = \
                        ptx_atomics.shared_atomics
        sass_seconds = time.perf_counter() - t0

        if dry_run:
            return ScoutReport(
                kernel=program.name,
                findings=findings,
                dry_run=True,
                program=program,
                ptx_atomics=ptx_atomics,
                overhead=OverheadBreakdown(
                    kernel_seconds=0.0,
                    sass_analysis_seconds=sass_seconds,
                    pc_sampling_seconds=0.0,
                    metrics_seconds=0.0,
                ),
            )

        if compiled is None:
            raise AnalysisError(
                "dynamic analysis needs a CompiledKernel (launchable); "
                "raw SASS supports --dry-run only"
            )
        if launch is None:
            if config is None or args is None:
                raise AnalysisError(
                    "dynamic analysis needs a LaunchConfig and kernel args"
                )
            sim = Simulator(self.spec, fast=self.fast)
            launch = sim.launch(
                compiled, config, args, textures=textures,
                max_blocks=max_blocks, functional_all=False,
            )
        sampling = self.sampler.sample(launch)
        line_profiles = build_line_profiles(sampling)

        metric_names = self._metric_names(findings)
        metrics = self.ncu.collect(launch, metric_names)

        for finding in findings:
            finding.stall_profile = self._stalls_for(finding, sampling)
            finding.metrics = {
                name: metrics.values[name]
                for name in finding.metric_focus
                if name in metrics.values
            }

        overhead = OverheadBreakdown(
            kernel_seconds=launch.duration_s,
            sass_analysis_seconds=sass_seconds,
            pc_sampling_seconds=self.sampler.overhead_seconds(launch),
            metrics_seconds=metrics.collection_seconds,
        )
        return ScoutReport(
            kernel=program.name,
            findings=findings,
            dry_run=False,
            program=program,
            ptx_atomics=ptx_atomics,
            sampling=sampling,
            line_profiles=line_profiles,
            metrics=metrics,
            launch=launch,
            overhead=overhead,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(kernel) -> tuple[Program, Optional[CompiledKernel]]:
        if isinstance(kernel, CompiledKernel):
            return kernel.program, kernel
        if isinstance(kernel, Program):
            return kernel, None
        if isinstance(kernel, str):
            return parse_sass(kernel), None
        raise AnalysisError(f"cannot analyze object of type {type(kernel)!r}")

    def _metric_names(self, findings: Sequence[Finding]) -> list[str]:
        names = list(METRIC_SETS["base"])
        for finding in findings:
            for name in finding.metric_focus:
                if name not in names:
                    names.append(name)
        return names

    @staticmethod
    def _stalls_for(finding: Finding,
                    sampling: PCSamplingResult) -> dict[StallReason, int]:
        """Samples correlated to a finding.

        CUPTI attributes samples to source lines (paper §2.2), and the
        report presents stalls per flagged *line* (Figure 2: "For line
        number 18, the warp stalls are ...").  A sample therefore
        matches when it falls on a flagged PC or on any instruction of
        a flagged source line — e.g. the consumer that actually stalls
        on a flagged load's data."""
        out: dict[StallReason, int] = {}
        pcs = set(finding.pcs)
        lines = set(finding.lines)
        for s in sampling.samples:
            if s.pc in pcs or (s.line is not None and s.line in lines):
                out[s.reason] = out.get(s.reason, 0) + s.samples
        return out
