"""GPUscout orchestration: the four-stage workflow of paper §3.1.

1. **Configuration** — a compiled kernel (or raw SASS text) plus the
   launch setup.
2. **Static code instrumentation** — the registered SASS analyses run
   over the disassembly.
3. **Dynamic data collection** — skipped under ``--dry-run``; otherwise
   the kernel executes on the simulated GPU, CUPTI-style PC samples are
   drawn, and the curated ncu metric sets are collected.
4. **Data evaluation** — stalls and metrics are correlated to each
   finding's instructions and the terminal report is rendered.

Every stage runs inside a **fault boundary**: unexpected exceptions are
converted into :class:`~repro.errors.Diagnostic` records on the
:class:`ScoutReport` instead of aborting the run, so a crash in one
analysis (or in sampling, metric collection, …) still yields every
other stage's results.  The dynamic stage additionally degrades down a
ladder — trace-driven timed → legacy timed → functional-only →
static-only — when the simulator fails or a
:class:`~repro.gpu.budget.SimBudget` limit trips; each demotion is
recorded as a diagnostic and the report's ``mode`` names the rung that
finally succeeded.  Truly unexpected (non-:class:`~repro.errors.ReproError`)
crashes also write a reproducer bundle to a temp dir (see
:mod:`repro.core.reproducer`) named in the diagnostic.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


from repro.core.base import Analysis, AnalysisContext, default_analyses
from repro.core.findings import Finding
from repro.core.overhead import OverheadBreakdown
from repro.core.reproducer import write_reproducer_bundle
from repro.obs.heatmap import Heatmap, build_heatmap
from repro.obs.metrics import RATE_BUCKETS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.metrics import armed as _metrics_armed
from repro.obs.spans import NULL_PROFILER, Profiler
from repro.cudalite.compiler import CompiledKernel
from repro.errors import (
    AnalysisError,
    Diagnostic,
    ReproError,
    diagnostic_from_exception,
)
from repro.gpu.config import GPUSpec
from repro.gpu.simulator import (
    LaunchConfig,
    LaunchResult,
    SimBudget,
    Simulator,
    resolve_fast_mode,
)
from repro.gpu.stalls import StallReason
from repro.metrics.collector import MetricReport, NsightComputeCLI
from repro.metrics.names import METRIC_SETS
from repro.sampling.pcsampler import PCSampler, PCSamplingResult
from repro.sampling.stall_report import LineStallProfile, build_line_profiles
from repro.ptx.analysis import PTXAtomicsSummary
from repro.sass.isa import Program
from repro.sass.parser import parse_sass
from repro.testing.faultinject import fail_point

__all__ = ["GPUscout", "ScoutReport", "StaticArtifacts"]


def _record_run_telemetry(prof: "Profiler", mode: str,
                          launch=None) -> None:
    """Feed one completed analysis into the metrics registry: stage
    wall-clock histograms, the run's report mode, and scheduler
    throughput (warp-instructions per host second, timed and
    functional paths).  No-op while telemetry is disarmed."""
    if not _metrics_armed():
        return
    _METRICS.counter(
        "gpuscout_engine_runs_total",
        "Analyses completed, by report mode", mode=mode).inc()
    for stage, seconds in prof.stage_totals().items():
        _METRICS.histogram(
            "gpuscout_engine_stage_seconds",
            "Wall seconds per engine stage", stage=stage,
        ).observe(seconds)
    if launch is None:
        return
    timed = launch.timed_inst_per_sec
    if timed:
        _METRICS.histogram(
            "gpuscout_sim_inst_per_sec",
            "Scheduler throughput in warp-instructions per host second",
            buckets=RATE_BUCKETS, path="timed").observe(timed)
        _METRICS.counter(
            "gpuscout_sim_instructions_total",
            "Warp-instructions executed by the simulator",
            kind="timed").inc(launch.timed_instructions)
    functional = launch.functional_inst_per_sec
    if functional:
        _METRICS.histogram(
            "gpuscout_sim_inst_per_sec",
            "Scheduler throughput in warp-instructions per host second",
            buckets=RATE_BUCKETS, path="functional").observe(functional)
        _METRICS.counter(
            "gpuscout_sim_instructions_total",
            "Warp-instructions executed by the simulator",
            kind="functional").inc(launch.counters.inst_functional)


@dataclass
class StaticArtifacts:
    """Stage-1/2 products of one program: everything :meth:`GPUscout.analyze`
    computes before the first launch-dependent instruction.

    These are pure functions of (SASS text, launch geometry, analysis
    set), so a serving layer can compute them once per program and
    reuse them across every launch of a batch (the L1 tier of the
    result cache).  ``findings`` are kept pristine — the engine
    deep-copies them per run before the dynamic stages mutate them
    (stall profiles, metrics, predicted/measured attach)."""

    program: Program
    compiled: Optional[CompiledKernel]
    ctx: AnalysisContext
    findings: list[Finding]
    ptx_atomics: Optional["PTXAtomicsSummary"]
    affine_summary: dict
    #: parse/static-stage diagnostics, replayed onto every reusing run
    diagnostics: list[Diagnostic]
    #: wall-clock the static stages cost when first computed
    sass_seconds: float = 0.0
    #: raw SASS text, when the artifacts came from text input
    sass_text: Optional[str] = None

    def matches(self, kernel, config) -> bool:
        """Whether these artifacts are reusable for ``kernel`` under
        ``config``: same program (object identity for compiled/parsed
        inputs, text equality for raw SASS) and same launch geometry
        (analyses may fold ``ctx.config`` into their static results)."""
        if isinstance(kernel, CompiledKernel):
            same = self.compiled is kernel
        elif isinstance(kernel, Program):
            same = self.program is kernel
        elif isinstance(kernel, str):
            same = self.sass_text == kernel
        else:
            same = False
        return same and self.ctx.config == config


@dataclass
class ScoutReport:
    """Everything one GPUscout run produced."""

    kernel: str
    findings: list[Finding]
    dry_run: bool
    program: Program
    sampling: Optional[PCSamplingResult] = None
    line_profiles: dict[int, LineStallProfile] = field(default_factory=dict)
    metrics: Optional[MetricReport] = None
    launch: Optional[LaunchResult] = None
    overhead: Optional[OverheadBreakdown] = None
    #: PTX-level §4.4 atomics summary (None when only raw SASS given)
    ptx_atomics: Optional["PTXAtomicsSummary"] = None
    #: static affine proof counts per space (see
    #: :func:`repro.sass.affine.summarize_proofs`); rendered as the
    #: report footer
    affine_summary: dict = field(default_factory=dict)
    #: which degradation-ladder rung produced the dynamic data:
    #: ``full`` (timed), ``functional`` (no timing), ``static``
    #: (simulation abandoned), or ``dry-run`` (never attempted)
    mode: str = "full"
    #: fault-boundary records accumulated across all stages
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-stage self-profiling spans (see :mod:`repro.obs.spans`);
    #: always present on engine-produced reports
    profile: Optional[Profiler] = None
    #: per-source-line stall heatmap (dynamic runs only)
    heatmap: Optional[Heatmap] = None
    #: stall root-cause slices keyed by sampled PC (dynamic runs only):
    #: backward def-use blame chains from each dependency-stalled PC to
    #: the producer it waits on (:class:`repro.sass.slicing.StallBlame`)
    blame: dict[int, "StallBlame"] = field(default_factory=dict)
    #: where the CLI wrote the Chrome trace, when ``--trace`` was given
    trace_path: Optional[str] = None

    @property
    def degraded(self) -> bool:
        """Whether the run fell short of what was asked of it."""
        return self.mode in ("functional", "static") or any(
            d.severity == "error" for d in self.diagnostics
        )

    def findings_for(self, analysis: str) -> list[Finding]:
        return [f for f in self.findings if f.analysis == analysis]

    def has_finding(self, analysis: str) -> bool:
        return any(f.analysis == analysis for f in self.findings)

    def render(self, color: bool = False, profile: bool = False) -> str:
        from repro.core.report import render_report

        return render_report(self, color=color, profile=profile)

    def render_html(self, comparison=None) -> str:
        """The Figure-7 interactive frontend as a standalone HTML page."""
        from repro.core.html_report import render_html

        return render_html(self, comparison=comparison)


class GPUscout:
    """The analyzer.  See the module docstring for the workflow.

    Parameters mirror the tool's configuration stage: which analyses to
    run, the GPU to execute on, the PC sampling period, and how many
    blocks to simulate per launch (``max_blocks``) before extrapolating.
    """

    def __init__(
        self,
        analyses: Optional[Sequence[Analysis]] = None,
        spec: Optional[GPUSpec] = None,
        sampler: Optional[PCSampler] = None,
        ncu: Optional[NsightComputeCLI] = None,
        fast: Optional[bool] = None,
        budget: Optional[SimBudget] = None,
        latency_table: Optional[bool] = None,
    ):
        self.analyses = list(analyses) if analyses is not None else default_analyses()
        self.spec = spec or GPUSpec.v100()
        self.sampler = sampler or PCSampler()
        self.ncu = ncu or NsightComputeCLI()
        #: fast-path toggle (None = REPRO_FAST/default): batched
        #: functional execution *and* the trace-driven timed scheduler
        self.fast = fast
        #: per-opcode latency-table issue model
        #: (None = REPRO_LATENCY_TABLE/default-off)
        self.latency_table = latency_table
        #: default resource budget applied to every :meth:`analyze`
        #: (a per-call ``budget`` argument overrides it)
        self.budget = budget

    # ------------------------------------------------------------------
    def analyze(
        self,
        kernel: Union[CompiledKernel, Program, str],
        config: Optional[LaunchConfig] = None,
        args: Optional[dict] = None,
        textures: Optional[dict] = None,
        dry_run: bool = False,
        max_blocks: Optional[int] = None,
        launch: Optional[LaunchResult] = None,
        budget: Optional[SimBudget] = None,
        trace=None,
        static: Optional[StaticArtifacts] = None,
    ) -> ScoutReport:
        """Run the full GPUscout workflow on ``kernel``.

        ``kernel`` may be a cudalite :class:`CompiledKernel`, an
        already-parsed :class:`Program`, or raw nvdisasm text.  With
        ``dry_run`` only the static SASS analysis runs — no GPU (i.e.
        simulator) involvement at all, usable on architectures ncu does
        not support (paper §3.1).  A pre-existing ``launch`` result can
        be supplied to correlate against (avoids re-simulation).

        ``trace`` is an optional
        :class:`~repro.obs.timeline_capture.TimelineCapture`: the
        simulated-GPU timeline (per-warp issue/stall slices, counter
        tracks) is recorded on it without perturbing the simulation.

        ``static`` optionally supplies pre-computed
        :class:`StaticArtifacts` (from :meth:`analyze_static`): when
        they match the kernel and launch geometry, stages 1–2 are
        skipped and their products reused — the serving layer's L1
        cache path.  Mismatched artifacts are ignored and everything
        is recomputed.

        Stage failures do not abort the run: they are recorded as
        :class:`~repro.errors.Diagnostic` entries on the returned
        report, which carries whatever the remaining stages produced
        (see the module docstring).  Only *usage* errors — an
        unanalyzable ``kernel`` object, or a dynamic run without a
        launchable kernel / launch setup — still raise
        :class:`~repro.errors.AnalysisError`.

        Every stage runs inside a :class:`~repro.obs.spans.Profiler`
        span; the per-stage wall-clock breakdown is returned as
        ``report.profile`` and every recovered :class:`Diagnostic`
        carries the enclosing stage's elapsed time in
        ``detail["elapsed_s"]``.
        """
        budget = budget if budget is not None else self.budget
        diags: list[Diagnostic] = []
        crashed = {"bundled": False}
        prof = Profiler()
        note = self._make_note(prof, diags, crashed, config, args)

        # -- stages 1+2: parse + static instrumentation ------------------
        if static is not None and static.matches(kernel, config):
            # L1 reuse: the static passes are pure functions of the
            # program + geometry; replay their products instead of
            # recomputing.  Findings and diagnostics are deep-copied —
            # the dynamic stages mutate them per run.
            with prof.span("static:cached"):
                art = static
                findings = [copy.deepcopy(f) for f in art.findings]
                diags.extend(copy.deepcopy(d) for d in art.diagnostics)
            sass_seconds = art.sass_seconds
        else:
            art = self._run_static(kernel, config, prof, diags, note)
            findings = art.findings
            sass_seconds = art.sass_seconds
        program, compiled, ctx = art.program, art.compiled, art.ctx
        ptx_atomics = art.ptx_atomics
        affine_summary = art.affine_summary

        if dry_run:
            _record_run_telemetry(prof, "dry-run")
            return ScoutReport(
                kernel=program.name,
                findings=findings,
                dry_run=True,
                program=program,
                ptx_atomics=ptx_atomics,
                affine_summary=affine_summary,
                mode="dry-run",
                diagnostics=diags,
                profile=prof,
                overhead=OverheadBreakdown(
                    kernel_seconds=0.0,
                    sass_analysis_seconds=sass_seconds,
                    pc_sampling_seconds=0.0,
                    metrics_seconds=0.0,
                ),
            )

        if compiled is None:
            raise AnalysisError(
                "dynamic analysis needs a CompiledKernel (launchable); "
                "raw SASS supports --dry-run only"
            )

        # -- stage 3: dynamic collection (degradation ladder) ------------
        mode = "full"
        if launch is None:
            if config is None or args is None:
                raise AnalysisError(
                    "dynamic analysis needs a LaunchConfig and kernel args"
                )
            with prof.span("launch"):
                launch, mode = self._launch_with_degradation(
                    compiled, config, args, textures, max_blocks, budget,
                    note, program, trace=trace, prof=prof,
                )

        sampling = None
        line_profiles: dict[int, LineStallProfile] = {}
        metrics = None
        if launch is not None and mode == "full":
            with prof.span("sampling"):
                try:
                    sampling = self.sampler.sample(launch)
                    line_profiles = build_line_profiles(sampling)
                except Exception as exc:
                    sampling, line_profiles = None, {}
                    note("sampling", "sampler.sample", exc, program=program)
            with prof.span("metrics"):
                try:
                    metrics = self.ncu.collect(
                        launch, self._metric_names(findings)
                    )
                except Exception as exc:
                    metrics = None
                    note("metrics", "metrics.collect", exc, program=program)

        # -- stage 4: evaluation ------------------------------------------
        heatmap = None
        blame: dict = {}
        with prof.span("evaluate"):
            for finding in findings:
                if sampling is not None:
                    finding.stall_profile = self._stalls_for(finding,
                                                            sampling)
                if metrics is not None:
                    finding.metrics = {
                        name: metrics.values[name]
                        for name in finding.metric_focus
                        if name in metrics.values
                    }
            if launch is not None:
                with prof.span("evaluate:predictions"):
                    try:
                        fail_point("engine.predictions")
                        self._attach_predictions(
                            findings, ctx, compiled, config, launch
                        )
                    except Exception as exc:
                        note("evaluate", "engine.predictions", exc,
                             program=program)
                with prof.span("evaluate:blame"):
                    # stall root-cause slicing (reuses ctx's cached
                    # CFG/reaching-defs/affine passes)
                    if sampling is not None:
                        try:
                            from repro.sass.slicing import BlameSlicer

                            slicer = BlameSlicer.from_context(ctx)
                            blame = slicer.slice_sampling(sampling)
                        except Exception as exc:
                            blame = {}
                            note("evaluate", "engine.blame", exc,
                                 program=program)
                    for finding in findings:
                        pcs = set(finding.pcs)
                        finding.blame = [
                            b for pc, b in sorted(blame.items())
                            if pc in pcs or
                            (b.producer is not None and
                             b.producer.pc in pcs)
                        ]
                with prof.span("evaluate:heatmap"):
                    try:
                        heatmap = build_heatmap(program, launch.counters,
                                                blame=blame)
                    except Exception as exc:
                        heatmap = None
                        note("evaluate", "engine.heatmap", exc,
                             program=program)

        overhead = OverheadBreakdown(
            kernel_seconds=launch.duration_s if launch is not None else 0.0,
            sass_analysis_seconds=sass_seconds,
            pc_sampling_seconds=(
                self.sampler.overhead_seconds(launch)
                if launch is not None and sampling is not None else 0.0
            ),
            metrics_seconds=(
                metrics.collection_seconds if metrics is not None else 0.0
            ),
        )
        _record_run_telemetry(prof, mode, launch)
        return ScoutReport(
            kernel=program.name,
            findings=findings,
            dry_run=False,
            program=program,
            ptx_atomics=ptx_atomics,
            sampling=sampling,
            line_profiles=line_profiles,
            metrics=metrics,
            launch=launch,
            overhead=overhead,
            affine_summary=affine_summary,
            mode=mode,
            diagnostics=diags,
            profile=prof,
            heatmap=heatmap,
            blame=blame,
        )

    # ------------------------------------------------------------------
    def _make_note(self, prof, diags, crashed, config, args):
        """The fault-boundary recorder shared by every stage: convert a
        caught exception into a :class:`Diagnostic` on ``diags``,
        stamped with the enclosing profiler span, bundling a reproducer
        for the first truly unexpected crash."""

        def note(stage: str, site: str, exc: BaseException,
                 severity: str = "warning", *,
                 program=None) -> Diagnostic:
            d = diagnostic_from_exception(stage, site, exc,
                                          severity=severity)
            span = prof.current()
            if span is not None:
                # stage timing on the diagnostic: how long the stage
                # had been running when the fault was recovered
                d.detail["span"] = span.name
                d.detail["elapsed_s"] = round(span.elapsed_s, 6)
            if not isinstance(exc, ReproError) and not crashed["bundled"]:
                # an exception no stage anticipated: keep the evidence
                crashed["bundled"] = True
                bundle = write_reproducer_bundle(
                    exc, program=program, config=config, args=args,
                )
                if bundle:
                    d.detail["reproducer"] = bundle
                    d.message += f" [reproducer bundle: {bundle}]"
            diags.append(d)
            return d

        return note

    # ------------------------------------------------------------------
    def _run_static(self, kernel, config, prof, diags,
                    note) -> StaticArtifacts:
        """Stages 1–2: parse and static instrumentation (the pure
        launch-independent half of the pipeline)."""
        # -- stage 1: configuration / parse -----------------------------
        with prof.span("parse") as parse_span:
            try:
                program, compiled = self._resolve(kernel, diags)
            except AnalysisError:
                raise  # unanalyzable input object: a usage error
            except Exception as exc:
                # even a wholesale parse failure yields a (static, empty)
                # report so batch pipelines keep their per-kernel records
                note("parse", "parser.program", exc, severity="error")
                program, compiled = Program("kernel", []), None
            # per-line recovery diagnostics come straight from the
            # parser, not through note(): stamp stage timing on them too
            for d in diags:
                if "span" not in d.detail:
                    d.detail["span"] = parse_span.name
                    d.detail["elapsed_s"] = round(parse_span.elapsed_s, 6)

        # -- stage 2: static instrumentation -----------------------------
        with prof.span("static") as static_span:
            ctx = AnalysisContext(program, compiled, config)
            findings: list[Finding] = []
            for analysis in self.analyses:
                with prof.span(f"static:{analysis.name}"):
                    try:
                        fail_point("engine.analysis")
                        findings.extend(analysis.run(ctx))
                    except Exception as exc:
                        d = note("static", "engine.analysis", exc,
                                 severity="error", program=program)
                        d.detail["analysis"] = analysis.name
            findings.sort(key=lambda f: (-int(f.severity), f.analysis))
            # PTX-level cross-check of the atomics analysis (paper §3
            # fn. 2: "analogously to SASS, a PTX analysis is performed
            # in §4.4")
            ptx_atomics = None
            if compiled is not None:
                with prof.span("static:ptx"):
                    try:
                        from repro.ptx import parse_ptx, scan_atomics

                        ptx_atomics = scan_atomics(
                            parse_ptx(compiled.ptx_text))
                        for finding in findings:
                            if finding.analysis == "use_shared_atomics":
                                finding.details["ptx_global_atomics"] = \
                                    ptx_atomics.global_atomics
                                finding.details["ptx_shared_atomics"] = \
                                    ptx_atomics.shared_atomics
                    except Exception as exc:
                        note("static", "engine.ptx", exc, program=program)
            # launch-independent affine proof footer: which accesses are
            # statically proven coalesced/conflict-free vs. flagged
            affine_summary: dict = {}
            with prof.span("static:affine"):
                try:
                    from repro.sass.affine import (
                        pointer_param_offsets,
                        static_access_report,
                        summarize_proofs,
                    )

                    affine_summary = summarize_proofs(
                        static_access_report(
                            program, ctx.cfg, ctx.affine, config,
                            pointer_params=pointer_param_offsets(compiled),
                        )
                    )
                except Exception as exc:
                    note("static", "engine.affine", exc, program=program)
        return StaticArtifacts(
            program=program,
            compiled=compiled,
            ctx=ctx,
            findings=findings,
            ptx_atomics=ptx_atomics,
            affine_summary=affine_summary,
            diagnostics=list(diags),
            sass_seconds=static_span.elapsed_s,
            sass_text=kernel if isinstance(kernel, str) else None,
        )

    # ------------------------------------------------------------------
    def analyze_static(self, kernel,
                       config: Optional[LaunchConfig] = None,
                       ) -> StaticArtifacts:
        """Run only the pure-static stages (parse + instrumentation)
        and return their products for reuse via ``analyze(static=...)``.

        Artifacts are shareable across launches of the same program
        with the same geometry; the serving layer caches them per
        (SASS hash, grid, block, analysis set)."""
        diags: list[Diagnostic] = []
        crashed = {"bundled": False}
        prof = Profiler()
        note = self._make_note(prof, diags, crashed, config, None)
        art = self._run_static(kernel, config, prof, diags, note)
        # prime the context's lazy caches now, while we are still
        # single-threaded: reusing requests may share the ctx
        try:
            art.ctx.cfg
            art.ctx.affine
        except Exception:
            pass
        return art

    # ------------------------------------------------------------------
    def _launch_with_degradation(
        self,
        compiled: CompiledKernel,
        config: LaunchConfig,
        args: dict,
        textures: Optional[dict],
        max_blocks: Optional[int],
        budget: Optional[SimBudget],
        note,
        program: Program,
        trace=None,
        prof: Optional[Profiler] = None,
    ) -> tuple[Optional[LaunchResult], str]:
        """Run the dynamic stage down the degradation ladder.

        Rungs, most to least capable: the configured timed path
        (trace-driven when fast mode is on), the legacy timed path
        (only distinct when fast mode was on), functional-only
        execution (``timed=False`` — fills counters' functional side
        but no cycles/stalls), and finally static-only (no launch at
        all).  Every demotion is recorded via ``note``; a latched
        :class:`~repro.gpu.budget.SimBudget` makes the remaining rungs
        fail fast, so budget exhaustion cascades straight to
        static-only.

        Each rung attempt runs in its own span; a failed attempt's span
        is renamed ``launch:retry`` so abandoned-rung wall time is
        attributed to retry cost rather than the rung that eventually
        succeeded.  A failed rung's partial timeline-capture events are
        rolled back (``mark``/``reset_to``) so the exported trace only
        shows the run that produced the report.
        """
        prof = prof if prof is not None else NULL_PROFILER
        fast = resolve_fast_mode(self.fast)
        rungs: list[tuple[str, bool, bool]] = [
            ("timed-trace" if fast else "timed-legacy", fast, True),
        ]
        if fast:
            rungs.append(("timed-legacy", False, True))
        rungs.append(("functional-only", fast, False))
        for i, (rung, rung_fast, timed) in enumerate(rungs):
            fallback = rungs[i + 1][0] if i + 1 < len(rungs) else "static-only"
            sim = Simulator(self.spec, fast=rung_fast,
                            latency_table=self.latency_table)
            capture_mark = trace.mark() if trace is not None and \
                hasattr(trace, "mark") else None
            with prof.span(f"launch:{rung}") as span:
                try:
                    launch = sim.launch(
                        compiled, config, args, textures=textures,
                        max_blocks=max_blocks,
                        functional_all=not timed,
                        timed=timed, budget=budget,
                        trace=trace,
                    )
                    return launch, ("full" if timed else "functional")
                except Exception as exc:
                    if span is not None:
                        # satellite: abandoned rung wall time shows up
                        # as retry cost, not as the winning rung's
                        span.name = "launch:retry"
                        span.counters["rung"] = rung
                    if capture_mark is not None:
                        trace.reset_to(capture_mark)
                    _METRICS.counter(
                        "gpuscout_engine_rung_demotions_total",
                        "Degradation-ladder rungs abandoned mid-run",
                        rung=rung).inc()
                    d = note("launch", "simulator.launch", exc,
                             program=program)
                    d.detail["rung"] = rung
                    d.detail["fallback"] = fallback
                    d.message = (
                        f"{rung} simulation failed ({d.message}); "
                        f"falling back to {fallback}"
                    )
        return None, "static"

    # ------------------------------------------------------------------
    def _attach_predictions(
        self,
        findings: Sequence[Finding],
        ctx: AnalysisContext,
        compiled: CompiledKernel,
        config: Optional[LaunchConfig],
        launch: LaunchResult,
    ) -> None:
        """Fill each finding's ``predicted``/``measured`` dicts.

        ``measured`` comes from the simulator's per-PC counters;
        ``predicted`` from the launch-aware affine predictor (which may
        sharpen a launch-free prediction an analysis attached earlier).
        Only the finding's own memory-access PCs are considered, so the
        two dicts compare the same accesses."""
        from repro.sass.affine import (
            _GLOBAL_CLASSES,
            _SHARED_CLASSES,
            AffineAnalysis,
            AffineEnv,
            MemoryPredictor,
        )

        config = config or launch.config
        spec = launch.spec
        env = AffineEnv.from_launch(compiled, config, launch.param_values)
        affine = AffineAnalysis(ctx.program, ctx.cfg, env)
        # enumerate exactly the blocks the simulator timed (SM 0's
        # share, possibly capped by max_blocks) so the prediction and
        # the measurement cover the same work
        blocks = range(0, config.num_blocks, spec.num_sms)
        if len(blocks) == 0:
            blocks = range(0, 1)
        if launch.simulated_blocks:
            blocks = blocks[: launch.simulated_blocks]
        predictor = MemoryPredictor(
            ctx.program, ctx.cfg, affine, config, spec, blocks=list(blocks)
        )
        counters = launch.counters
        for finding in findings:
            for classes, key, by_pc in (
                (_GLOBAL_CLASSES, "sectors_per_request",
                 counters.mem_sectors_by_pc),
                (_SHARED_CLASSES, "transactions_per_request",
                 counters.shared_tx_by_pc),
            ):
                pcs = [
                    pc for pc in finding.pcs
                    if pc < len(ctx.program)
                    and ctx.program[pc].opcode.op_class in classes
                ]
                if not pcs:
                    continue
                issues = sum(counters.inst_by_pc.get(pc, 0) for pc in pcs)
                if issues:
                    finding.measured[key] = (
                        sum(by_pc.get(pc, 0) for pc in pcs) / issues
                    )
                total = weight = 0.0
                unproven: list[int] = []
                for pc in pcs:
                    pred = predictor.predict(pc)
                    if pred.proven:
                        # weight by measured issues so a proven aggregate
                        # compares apples-to-apples with ``measured``
                        w = counters.inst_by_pc.get(pc, 0) or 1
                        total += pred.per_request * w
                        weight += w
                    else:
                        unproven.append(pc)
                if weight:
                    finding.predicted[key] = total / weight
                if unproven:
                    finding.predicted.setdefault(
                        "unproven_pcs", []
                    ).extend(unproven)

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(
        kernel, diagnostics: Optional[list] = None,
    ) -> tuple[Program, Optional[CompiledKernel]]:
        if isinstance(kernel, CompiledKernel):
            return kernel.program, kernel
        if isinstance(kernel, Program):
            return kernel, None
        if isinstance(kernel, str):
            # raw disassembly may come from nvdisasm versions with
            # operand forms the grammar does not know: recover per line
            return parse_sass(kernel, recover=True,
                              diagnostics=diagnostics), None
        raise AnalysisError(f"cannot analyze object of type {type(kernel)!r}")

    def _metric_names(self, findings: Sequence[Finding]) -> list[str]:
        names = list(METRIC_SETS["base"])
        for finding in findings:
            for name in finding.metric_focus:
                if name not in names:
                    names.append(name)
        return names

    @staticmethod
    def _stalls_for(finding: Finding,
                    sampling: PCSamplingResult) -> dict[StallReason, int]:
        """Samples correlated to a finding.

        CUPTI attributes samples to source lines (paper §2.2), and the
        report presents stalls per flagged *line* (Figure 2: "For line
        number 18, the warp stalls are ...").  A sample therefore
        matches when it falls on a flagged PC or on any instruction of
        a flagged source line — e.g. the consumer that actually stalls
        on a flagged load's data."""
        out: dict[StallReason, int] = {}
        pcs = set(finding.pcs)
        lines = set(finding.lines)
        for s in sampling.samples:
            if s.pc in pcs or (s.line is not None and s.line in lines):
                out[s.reason] = out.get(s.reason, 0) + s.samples
        return out
