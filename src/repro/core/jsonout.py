"""Machine-readable (JSON) serialization of a GPUscout report.

The paper's future-work section plans richer presentations of the
collected data; a stable JSON schema is the integration-friendly one
(CI gates, dashboards, the Figure-7 frontend's data source).  The
schema is versioned; tests pin it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.engine import ScoutReport
from repro.gpu.stalls import StallReason

__all__ = ["report_to_dict", "report_to_json", "SCHEMA_VERSION"]

#: v3 added ``mode`` (degradation-ladder rung) and ``diagnostics``
#: (fault-boundary records) — both always present.
#: v4 added ``profile`` (per-stage pipeline wall time, always present
#: when the engine produced the report), ``heatmap`` (per-source-line
#: stall attribution, present when a launch produced counters) and
#: ``trace_path`` (the exported Chrome trace, present when tracing was
#: requested).
#: v5 added ``blame`` (stall root-cause slices keyed by sampled PC,
#: present when sampling ran), a per-finding ``blame`` list, and the
#: heatmap lines' ``waits_on`` producer summaries.
SCHEMA_VERSION = 5


def _finding_dict(f) -> dict[str, Any]:
    return {
        "analysis": f.analysis,
        "title": f.title,
        "severity": f.severity.name,
        "message": f.message,
        "recommendation": f.recommendation,
        "pcs": list(f.pcs),
        "source_lines": f.lines,
        "registers": list(f.registers),
        "in_loop": f.in_loop,
        "details": _jsonable(f.details),
        "stall_focus": [r.cupti_name for r in f.stall_focus],
        "metric_focus": list(f.metric_focus),
        "stall_profile": {
            r.cupti_name: int(v) for r, v in f.stall_profile.items()
        },
        "metrics": {k: float(v) for k, v in f.metrics.items()},
        "predicted": _jsonable(f.predicted),
        "measured": _jsonable(f.measured),
        "blame": [b.to_dict() for b in f.blame],
    }


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, StallReason):
        return value.cupti_name
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


def report_to_dict(report: ScoutReport) -> dict[str, Any]:
    """Serialize ``report`` to plain JSON-compatible structures."""
    out: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kernel": report.kernel,
        "dry_run": report.dry_run,
        "mode": report.mode,
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "findings": [_finding_dict(f) for f in report.findings],
    }
    if report.affine_summary:
        out["affine_summary"] = _jsonable(report.affine_summary)
    if report.ptx_atomics is not None:
        out["ptx_atomics"] = {
            "global": report.ptx_atomics.global_atomics,
            "shared": report.ptx_atomics.shared_atomics,
            "global_in_loop": report.ptx_atomics.global_in_loop,
            "shared_in_loop": report.ptx_atomics.shared_in_loop,
        }
    if report.metrics is not None:
        out["metrics"] = {k: float(v) for k, v in report.metrics.values.items()}
    if report.sampling is not None:
        totals = report.sampling.by_reason()
        out["stalls"] = {
            "period_cycles": report.sampling.period_cycles,
            "total_samples": report.sampling.total_samples,
            "by_reason": {r.cupti_name: int(v) for r, v in totals.items()},
        }
    if report.launch is not None:
        out["launch"] = {
            "cycles": float(report.launch.cycles),
            "duration_s": float(report.launch.duration_s),
            "achieved_occupancy": float(report.launch.achieved_occupancy),
            "theoretical_occupancy": float(
                report.launch.theoretical_occupancy),
            "simulated_blocks": report.launch.simulated_blocks,
        }
    if report.overhead is not None:
        out["overhead"] = {
            k: (None if v == float("inf") else float(v))
            for k, v in report.overhead.as_dict().items()
        }
    if report.profile is not None:
        out["profile"] = report.profile.to_dict()
    if report.heatmap is not None:
        out["heatmap"] = report.heatmap.to_dict()
    if report.trace_path is not None:
        out["trace_path"] = report.trace_path
    if report.blame:
        out["blame"] = {
            str(pc): b.to_dict() for pc, b in sorted(report.blame.items())
        }
    return out


def report_to_json(report: ScoutReport, indent: int = 2) -> str:
    """JSON text of :func:`report_to_dict`."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
