"""§4.3 — Use Shared Memory.

Implements the Figure-4 decision flow: for each global-load destination
register, count (a) how many times data is loaded from the same global
address group, and (b) how many arithmetic instructions involve the
register; a register in a for-loop amplifies both.  Frequently-reused,
arithmetic-heavy loads are candidates for staging in shared memory.

When the kernel already uses shared memory, the affine engine predicts
each LDS/STS access's bank-conflict ways statically (32 banks × 4
bytes): a proven address of ``8·tid.x + ...`` hits 16 banks twice, a
2-way conflict, without running anything.  Conflicted accesses get
their own finding with the prediction attached.

Metrics attached: bank-conflict ways (transactions/accesses, the ratio
ncu does not expose directly) and shared efficiency; stalls to watch
after adopting shared memory: ``mio_throttle`` and ``short_scoreboard``.
"""

from __future__ import annotations

from collections import Counter

from repro.core.base import Analysis, AnalysisContext, register_analysis
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason

__all__ = ["SharedMemoryAnalysis"]


@register_analysis
class SharedMemoryAnalysis(Analysis):
    """Recommend shared memory for repeatedly-used global loads."""

    name = "use_shared_memory"
    description = "Repeated global loads with heavy arithmetic reuse"

    #: minimum arithmetic uses of a loaded register to flag it
    min_arith_uses = 2

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings = self._bank_conflict_findings(ctx)
        findings.extend(self._staging_findings(ctx))
        return findings

    def _bank_conflict_findings(self, ctx: AnalysisContext) -> list[Finding]:
        """Statically predicted bank conflicts on existing LDS/STS."""
        from repro.sass.affine import (
            pointer_param_offsets,
            static_access_report,
        )

        conflicted = [
            p
            for p in static_access_report(
                ctx.program, ctx.cfg, ctx.affine, ctx.config,
                pointer_params=pointer_param_offsets(ctx.compiled),
            )
            if p.space == "shared" and p.status == "flagged"
        ]
        if not conflicted:
            return []
        worst = max(p.per_request / p.ideal for p in conflicted)
        pcs = sorted(p.pc for p in conflicted)
        return [
            Finding(
                analysis=self.name,
                title="Shared memory bank conflicts predicted",
                severity=Severity.WARNING,
                message=(
                    f"{len(conflicted)} shared-memory access(es) have "
                    "statically proven addresses whose lanes collide in "
                    f"the 32 four-byte banks (worst case {worst:g}-way: "
                    f"{worst:g} serialized transactions where 1 would "
                    "do). The conflict follows from the address pattern "
                    "alone — it will occur on every execution."
                ),
                recommendation=(
                    "Pad the shared array (e.g. [TILE][TILE+1]) or "
                    "permute the indexing so consecutive lanes fall into "
                    "distinct banks. Verify the fix with "
                    "derived__smem_ld_bank_conflict_ways returning to 1."
                ),
                pcs=pcs,
                locations=[ctx.loc(i) for i in pcs],
                in_loop=any(ctx.in_loop(i) for i in pcs),
                details={
                    "conflicted_accesses": len(conflicted),
                    "per_access_ways": {
                        p.pc: p.per_request / p.ideal for p in conflicted
                    },
                },
                predicted={
                    "bank_conflict_ways": worst,
                    "transactions_per_request": max(
                        float(p.per_request) for p in conflicted
                    ),
                },
                stall_focus=[
                    StallReason.MIO_THROTTLE,
                    StallReason.SHORT_SCOREBOARD,
                ],
                metric_focus=[
                    "derived__smem_ld_bank_conflict_ways",
                    "derived__smem_efficiency.pct",
                ],
            )
        ]

    def _staging_findings(self, ctx: AnalysisContext) -> list[Finding]:
        program = ctx.program
        # -- collect per-register candidates (Figure 4 decision flow) ----
        candidates: list[dict] = []
        for group in ctx.global_load_groups:
            # repeated loads of the *same* address (same base + offset)
            per_offset = Counter(off for _, off in group.accesses)
            for i, off in group.accesses:
                ins = program[i]
                if not ins.opcode.is_global_load:
                    continue
                dest = ins.operands[0].reg if ins.operands else None
                if dest is None or dest.is_zero:
                    continue
                # count uses of *this load's value*, not unrelated
                # later reuses of the same architectural register
                arith = ctx.value_arithmetic_uses(dest, i)
                if not arith:
                    continue
                arith_in_loop = [k for k in arith if ctx.in_loop(k)]
                load_in_loop = ctx.in_loop(i)
                repeats = per_offset[off]
                # Figure 4: repeated loads of the same address, frequent
                # arithmetic on the loaded register, or either inside a
                # for-loop all mark shared-memory candidates
                hot = (
                    len(arith) >= self.min_arith_uses
                    or bool(arith_in_loop)
                    or repeats >= 2
                )
                if not hot:
                    continue
                candidates.append(
                    dict(
                        load_pc=i,
                        reg=dest.name,
                        arith=arith,
                        arith_in_loop=arith_in_loop,
                        load_in_loop=load_in_loop,
                        repeats=repeats,
                        base=group.base.name,
                        line=program[i].line,
                    )
                )
        if not candidates:
            return []
        # -- merge candidates that originate at the same source line -----
        findings: list[Finding] = []
        by_line: dict = {}
        for cand in candidates:
            by_line.setdefault(cand["line"], []).append(cand)
        for line, cands in sorted(by_line.items(),
                                  key=lambda kv: (kv[0] is None, kv[0])):
            regs = sorted({c["reg"] for c in cands})
            arith_total = sum(len(c["arith"]) for c in cands)
            arith_loop_total = sum(len(c["arith_in_loop"]) for c in cands)
            in_loop = any(c["arith_in_loop"] or c["load_in_loop"] for c in cands)
            max_repeats = max(c["repeats"] for c in cands)
            pcs = sorted({c["load_pc"] for c in cands}
                         | {k for c in cands for k in c["arith"]})
            pressure = max(ctx.pressure_at(c["load_pc"]) for c in cands)
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Consider using shared memory",
                    severity=Severity.WARNING if in_loop else Severity.INFO,
                    message=(
                        f"Register(s) {', '.join(regs)} are loaded from "
                        f"global memory and involved in {arith_total} "
                        "arithmetic instruction(s)"
                        + (f", {arith_loop_total} of them inside a for-loop"
                           if arith_loop_total else "")
                        + (f"; the same address is loaded {max_repeats} "
                           "times" if max_repeats > 1 else "")
                        + ". Repeated accesses profit from shared memory's "
                        "lower latency."
                    ),
                    recommendation=(
                        "Stage the reused data in __shared__ memory (load "
                        "once per block, synchronize, compute from shared). "
                        "Pay attention to shared-memory bank conflicts and "
                        "to a higher number of long_scoreboard and MIO "
                        "throttle stalls after the change."
                    ),
                    pcs=pcs,
                    locations=[ctx.loc(k) for k in pcs],
                    registers=regs,
                    in_loop=in_loop,
                    details={
                        "arithmetic_uses": arith_total,
                        "arithmetic_uses_in_loop": arith_loop_total,
                        "same_address_load_repeats": max_repeats,
                        "base_registers": sorted({c["base"] for c in cands}),
                        "live_register_pressure": pressure,
                    },
                    stall_focus=[
                        StallReason.LONG_SCOREBOARD,
                        StallReason.MIO_THROTTLE,
                        StallReason.SHORT_SCOREBOARD,
                    ],
                    metric_focus=[
                        "derived__smem_ld_bank_conflict_ways",
                        "derived__smem_efficiency.pct",
                        "smsp__inst_executed_op_shared_ld.sum",
                    ],
                )
            )
        return findings
