"""Tool-overhead accounting (paper §5.4 / Figure 6).

GPUscout's overhead decomposes into the three pillars:

* **SASS analysis** — host-only, independent of kernel execution time
  (measured directly: it is real Python work in this reproduction);
* **PC stall sampling** — grows with kernel duration (serialized replay
  plus per-sample host processing);
* **metric collection** — dominates: Nsight Compute replays the kernel
  once per counter group with heavy per-pass setup.

``total_factor`` is the paper's headline "overhead vs bare kernel
execution" ratio (28x for SGEMM at 8192 x 8192 on the authors' setup).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverheadBreakdown"]


@dataclass(frozen=True)
class OverheadBreakdown:
    """Wall-clock cost of one GPUscout run, split by pillar (seconds)."""

    kernel_seconds: float
    sass_analysis_seconds: float
    pc_sampling_seconds: float
    metrics_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.sass_analysis_seconds
            + self.pc_sampling_seconds
            + self.metrics_seconds
        )

    @property
    def total_factor(self) -> float:
        """Overhead relative to the bare kernel execution time."""
        if self.kernel_seconds <= 0:
            return float("inf")
        return self.total_seconds / self.kernel_seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "kernel_s": self.kernel_seconds,
            "sass_analysis_s": self.sass_analysis_seconds,
            "pc_sampling_s": self.pc_sampling_seconds,
            "metrics_s": self.metrics_seconds,
            "total_s": self.total_seconds,
            "total_factor": self.total_factor,
        }
