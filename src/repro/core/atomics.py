"""§4.4 — Use Shared Atomics.

Global atomics (``ATOM``/``RED``) serialize kernel-wide and typically
resolve in the L2 cache; shared atomics (``ATOMS``) serialize only
within a thread block.  GPUscout displays the counts of both with
source lines and warns about global atomics inside for-loops, where
repeated serialization amplifies the penalty.

Stalls: ``lg_throttle`` now; after switching to shared atomics, watch
``mio_throttle`` (MIO pipeline utilization rises).
"""

from __future__ import annotations

from repro.core.base import Analysis, AnalysisContext, register_analysis
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason
from repro.sass.isa import OpClass

__all__ = ["SharedAtomicsAnalysis"]


@register_analysis
class SharedAtomicsAnalysis(Analysis):
    """Flag global atomics; suggest block-level (shared) atomics."""

    name = "use_shared_atomics"
    description = "Global atomics that could serialize at block level instead"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program = ctx.program
        global_atoms = [
            i for i, ins in enumerate(program)
            if ins.opcode.op_class is OpClass.ATOMIC_GLOBAL
        ]
        shared_atoms = [
            i for i, ins in enumerate(program)
            if ins.opcode.op_class is OpClass.ATOMIC_SHARED
        ]
        findings: list[Finding] = []
        if global_atoms:
            in_loop_pcs = [i for i in global_atoms if ctx.in_loop(i)]
            in_loop = bool(in_loop_pcs)
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Consider using shared atomics",
                    severity=Severity.CRITICAL if in_loop else Severity.WARNING,
                    message=(
                        f"{len(global_atoms)} global atomic instruction(s) "
                        f"(ATOM/RED) vs {len(shared_atoms)} shared atomic(s) "
                        "(ATOMS) detected. Global atomics are a kernel-wide "
                        "serialization, typically resolved in the L2 cache."
                        + (
                            f" {len(in_loop_pcs)} of them execute inside a "
                            "for-loop, where repeated serialization amplifies "
                            "the performance degradation."
                            if in_loop
                            else ""
                        )
                    ),
                    recommendation=(
                        "Accumulate into a __shared__ buffer with shared "
                        "atomics (block-level serialization) and merge to "
                        "global memory once per block. Shared atomics raise "
                        "MIO pipeline utilization — watch for MIO throttle "
                        "stalls after updating the atomics."
                    ),
                    pcs=sorted(global_atoms),
                    locations=[ctx.loc(i) for i in sorted(global_atoms)],
                    in_loop=in_loop,
                    details={
                        "global_atomics": len(global_atoms),
                        "shared_atomics": len(shared_atoms),
                        "global_atomics_in_loop": len(in_loop_pcs),
                    },
                    stall_focus=[StallReason.LG_THROTTLE,
                                 StallReason.MIO_THROTTLE],
                    metric_focus=[
                        "smsp__inst_executed_op_global_atom.sum",
                        "smsp__inst_executed_op_shared_atom.sum",
                        "derived__atomic_l2_resolution_pct",
                    ],
                )
            )
        elif shared_atoms:
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Shared atomics in use",
                    severity=Severity.INFO,
                    message=(
                        f"{len(shared_atoms)} shared atomic instruction(s) "
                        "(ATOMS) detected and no global atomics — "
                        "serialization is already block-level."
                    ),
                    recommendation=(
                        "Watch MIO throttle stalls: shared atomics utilize "
                        "the MIO pipelines."
                    ),
                    pcs=sorted(shared_atoms),
                    locations=[ctx.loc(i) for i in sorted(shared_atoms)],
                    in_loop=any(ctx.in_loop(i) for i in shared_atoms),
                    details={"shared_atomics": len(shared_atoms)},
                    stall_focus=[StallReason.MIO_THROTTLE],
                    metric_focus=["smsp__inst_executed_op_shared_atom.sum"],
                )
            )
        return findings
