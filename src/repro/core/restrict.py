"""§4.5 — Use Read-only Cache (``const __restrict__``).

For every global load not already routed through the read-only data
cache (no ``.CONSTANT`` modifier), GPUscout checks whether the loaded
register is read-only for the rest of the kernel and whether the
pointer's address group is never stored through (a no-aliasing
approximation).  Such loads are candidates for the ``__restrict__`` +
``const`` qualifiers, letting the compiler use the read-only cache and
reorder more aggressively.

The register-pressure information is attached, because restricted
pointers can increase pressure (§4.5).
"""

from __future__ import annotations

from repro.core.base import Analysis, AnalysisContext, register_analysis
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason
from repro.sass.isa import OpClass

__all__ = ["RestrictAnalysis"]


@register_analysis
class RestrictAnalysis(Analysis):
    """Suggest __restrict__/const for read-only global loads."""

    name = "use_restrict"
    description = "Read-only, non-aliased global loads missing __restrict__"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program = ctx.program
        # address groups that are ever stored through (potential aliases)
        stored_groups = {
            g.key
            for g in ctx.global_access_groups
            if any(
                program[i].opcode.op_class is OpClass.GLOBAL_STORE
                for i, _ in g.accesses
            )
        }
        candidates: list[tuple[int, str]] = []
        for group in ctx.global_load_groups:
            if group.key in stored_groups:
                continue
            for i, _off in group.accesses:
                ins = program[i]
                if not ins.opcode.is_global_load:
                    continue
                if ins.opcode.is_readonly_load:
                    continue  # already through the read-only cache
                dest = ins.operands[0].reg if ins.operands else None
                if dest is None or dest.is_zero:
                    continue
                if ctx.is_readonly_register(dest):
                    candidates.append((i, dest.name))
        if not candidates:
            return []
        pcs = sorted({i for i, _ in candidates})
        regs = sorted({r for _, r in candidates})
        pressure = max(ctx.pressure_at(i) for i in pcs)
        return [
            Finding(
                analysis=self.name,
                title="Consider the __restrict__ keyword",
                severity=Severity.INFO,
                message=(
                    f"{len(pcs)} global load(s) produce registers "
                    f"({', '.join(regs)}) that are read-only throughout the "
                    "kernel, from pointers that are never written through — "
                    "they qualify for const __restrict__, routing the loads "
                    "through the read-only data cache (LDG.E.CONSTANT)."
                ),
                recommendation=(
                    "Mark the corresponding pointer parameters const "
                    "__restrict__ (or use __ldg). The compiler can then "
                    "optimize the order of memory accesses more "
                    "aggressively. The gain can be small and register "
                    "pressure may rise — compare occupancy after the change."
                ),
                pcs=pcs,
                locations=[ctx.loc(i) for i in pcs],
                registers=regs,
                in_loop=any(ctx.in_loop(i) for i in pcs),
                details={"live_register_pressure": pressure},
                stall_focus=[StallReason.LONG_SCOREBOARD],
                metric_focus=[
                    "launch__registers_per_thread",
                    "sm__warps_active.avg.pct_of_peak_sustained_active",
                ],
            )
        ]
