"""§4.6 — Use Texture Memory.

Texture memory is global memory behind a dedicated cache optimized for
*spatially-local* reads.  Following the paper's Listing-1 example, the
analysis looks for read-only global loads from *nearby* addresses in
the same address group (small distinct offsets off one base register,
e.g. ``[R2]`` and ``[R2+-0x8]``) — the signature of stencil-like access
patterns that profit from the texture cache.

Stalls to watch after adoption: ``tex_throttle`` (TEX pipe fills up)
and ``long_scoreboard`` (texture data dependencies).
"""

from __future__ import annotations

from repro.core.base import Analysis, AnalysisContext, register_analysis
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason

__all__ = ["TextureMemoryAnalysis"]


@register_analysis
class TextureMemoryAnalysis(Analysis):
    """Recommend texture memory for spatially-local read-only loads."""

    name = "use_texture_memory"
    description = "Spatially-local read-only loads suited to the texture cache"

    #: offsets within this many bytes count as spatially local
    locality_window = 64

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program = ctx.program
        findings: list[Finding] = []
        for group in ctx.global_load_groups:
            loads = [
                (i, off)
                for i, off in group.accesses
                if program[i].opcode.is_global_load
            ]
            if len(loads) < 2:
                continue
            offsets = sorted({off for _, off in loads})
            if len(offsets) < 2:
                continue
            span = max(offsets) - min(offsets)
            if span == 0 or span > self.locality_window:
                continue
            # all destination registers must be read-only
            dests = []
            read_only = True
            for i, _ in loads:
                dest = program[i].operands[0].reg if program[i].operands else None
                if dest is None or dest.is_zero:
                    continue
                dests.append(dest.name)
                if not ctx.is_readonly_register(dest):
                    read_only = False
            if not read_only or not dests:
                continue
            pcs = sorted({i for i, _ in loads})
            in_loop = any(ctx.in_loop(i) for i in pcs)
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Consider using texture memory",
                    severity=Severity.WARNING if in_loop else Severity.INFO,
                    message=(
                        f"Read-only loads into {', '.join(sorted(set(dests)))} "
                        f"fetch adjacent global addresses off "
                        f"{group.base.name} (offsets "
                        f"{', '.join(hex(o) for o in offsets)}, span "
                        f"{span} B). This spatial locality in a read access "
                        "pattern makes them candidates for texture memory."
                    ),
                    recommendation=(
                        "Bind the data to a 2D texture (tex2D) or use "
                        "shared-memory tiling, which is exposed in a more "
                        "user-friendly way. After switching, watch for "
                        "tex_throttle stalls (TEX pipeline utilization) and "
                        "long_scoreboard stalls on texture fetches."
                    ),
                    pcs=pcs,
                    locations=[ctx.loc(i) for i in pcs],
                    registers=sorted(set(dests)),
                    in_loop=in_loop,
                    details={
                        "base_register": group.base.name,
                        "offsets": offsets,
                        "span_bytes": span,
                    },
                    stall_focus=[StallReason.TEX_THROTTLE,
                                 StallReason.LONG_SCOREBOARD],
                    metric_focus=[
                        "l1tex__t_bytes_pipe_tex.sum",
                        "derived__tex_cache_miss_pct",
                        "lts__t_sectors_srcunit_tex_op_read.sum",
                    ],
                )
            )
        return findings
