"""Predict-vs-measure cross-validation of the static affine analyses.

The affine engine (:mod:`repro.sass.affine`) claims its proven
predictions are *exact*: a global access predicted at 32
sectors-per-request must measure 32.0 in the simulator, a shared access
predicted 2-way bank-conflicted must measure 2.0
transactions-per-request.  This harness checks that claim for every
memory access of every built-in kernel, turning analysis regressions
into test failures (``gpuscout validate`` / the CI smoke step).

Per access the harness reports one of three verdicts:

* **match** — proven prediction equals the measured per-request counter
  (within ``tolerance``, default exact up to float rounding);
* **MISMATCH** — proven prediction disagrees with the measurement: a
  bug in the engine or the simulator, and a non-zero exit code;
* **unproven** — the engine declined to predict (⊤ address,
  data-dependent guard, ...).  Never counted as failure, but reported,
  so silent prediction-coverage regressions stay visible too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ResourceLimitError
from repro.gpu.budget import SimBudget
from repro.gpu.config import GPUSpec

__all__ = [
    "AccessCheck",
    "BlameCheck",
    "KernelValidation",
    "ALL_KERNELS",
    "SMOKE_KERNELS",
    "validate_kernel",
    "validate_suite",
    "render_validations",
]

#: every built-in kernel spec (kept in sync with the CLI catalog)
ALL_KERNELS = [
    "mixbench:sp:naive", "mixbench:sp:vec",
    "mixbench:dp:naive", "mixbench:dp:vec",
    "mixbench:int:naive", "mixbench:int:vec",
    "heat:naive", "heat:restrict", "heat:texture",
    "sgemm:naive", "sgemm:shared", "sgemm:shared_vec",
    "histogram:global", "histogram:shared",
    "reduction:atomic", "reduction:shared", "reduction:warp",
]

#: fast subset for CI smoke runs: covers global sectors (mixbench),
#: shared banks + predicated guards (histogram), and loops (reduction)
SMOKE_KERNELS = ["mixbench:sp:naive", "histogram:shared", "reduction:shared"]

#: proven predictions must match measurements bit-for-bit; the epsilon
#: only absorbs float division noise in the per-request ratio
TOLERANCE = 1e-9


@dataclass(frozen=True)
class AccessCheck:
    """Predict-vs-measure verdict for one memory access."""

    pc: int
    opcode: str
    space: str  # "global" | "shared"
    line: Optional[int]
    proven: bool
    #: predicted sectors- (global) or transactions- (shared) per request
    predicted: Optional[float]
    #: measured per-request counter (None when the access never issued)
    measured: Optional[float]
    #: measured warp-level issues of this access
    requests: int
    #: statically enumerated requests (only when the predictor proved
    #: the access issues exactly once per surviving warp)
    predicted_requests: Optional[int]
    reason: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.predicted is None or self.measured is None:
            return None
        return self.predicted - self.measured

    @property
    def matches(self) -> Optional[bool]:
        """True/False for proven+measured accesses, None otherwise."""
        d = self.delta
        if d is None:
            return None
        return abs(d) <= TOLERANCE


@dataclass(frozen=True)
class BlameCheck:
    """Slice-vs-counters verdict for one sampled dependency stall.

    The slicer claims the stall at ``stall_pc`` waits on the producer
    at ``producer_pc``; the check confirms the producer's per-PC
    counters show the activity that stall reason implies (memory
    sectors for L1TEX blame, shared transactions for MIO blame, issues
    for fixed-latency blame).
    """

    stall_pc: int
    stall_op: str
    reason: str  # cupti stall name
    #: None when the slicer produced no chain at all
    producer_pc: Optional[int]
    producer_op: str = ""
    #: which counter was consulted and its value
    activity: str = ""
    #: "confirmed" | "MISMATCH" | "unblamed"
    verdict: str = "unblamed"

    @property
    def ok(self) -> bool:
        return self.verdict == "confirmed"

    def to_dict(self) -> dict:
        return {
            "stall_pc": self.stall_pc,
            "stall_op": self.stall_op,
            "reason": self.reason,
            "producer_pc": self.producer_pc,
            "producer_op": self.producer_op,
            "activity": self.activity,
            "verdict": self.verdict,
        }


@dataclass
class KernelValidation:
    """All access checks of one kernel launch."""

    kernel: str
    checks: list[AccessCheck] = field(default_factory=list)
    #: slice-vs-counters stall blame checks (``validate --blame`` only)
    blame_checks: list[BlameCheck] = field(default_factory=list)
    #: non-empty when the kernel never validated (deadline/budget hit);
    #: such entries stay ``ok`` — partial suites exit cleanly
    error: str = ""

    @property
    def proven(self) -> list[AccessCheck]:
        return [c for c in self.checks if c.proven]

    @property
    def unproven(self) -> list[AccessCheck]:
        return [c for c in self.checks if not c.proven]

    @property
    def mismatches(self) -> list[AccessCheck]:
        return [c for c in self.checks if c.matches is False]

    @property
    def blame_mismatches(self) -> list[BlameCheck]:
        return [b for b in self.blame_checks if b.verdict == "MISMATCH"]

    @property
    def blame_coverage(self) -> Optional[float]:
        """Fraction of sampled dependency stalls that got a confirmed
        blame chain (None without ``--blame``)."""
        if not self.blame_checks:
            return None
        ok = sum(1 for b in self.blame_checks if b.ok)
        return ok / len(self.blame_checks)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.blame_mismatches

    def to_dict(self) -> dict:
        d = {
            "kernel": self.kernel,
            "ok": self.ok,
            "error": self.error,
            "proven": len(self.proven),
            "unproven": len(self.unproven),
            "mismatches": len(self.mismatches),
            "checks": [
                {
                    "pc": c.pc,
                    "opcode": c.opcode,
                    "space": c.space,
                    "line": c.line,
                    "proven": c.proven,
                    "predicted": c.predicted,
                    "measured": c.measured,
                    "requests": c.requests,
                    "predicted_requests": c.predicted_requests,
                    "delta": c.delta,
                    "reason": c.reason,
                }
                for c in self.checks
            ],
        }
        if self.blame_checks:
            d["blame"] = {
                "coverage": self.blame_coverage,
                "mismatches": len(self.blame_mismatches),
                "checks": [b.to_dict() for b in self.blame_checks],
            }
        return d


def measured_per_request(counters, program) -> dict[int, tuple[str, float, int]]:
    """Per-PC measured (space, per-request count, requests) for every
    global/shared access that issued at least once."""
    from repro.sass.affine import _GLOBAL_CLASSES, _SHARED_CLASSES

    out: dict[int, tuple[str, float, int]] = {}
    for pc, issues in counters.inst_by_pc.items():
        if not issues or pc >= len(program):
            continue
        oc = program[pc].opcode.op_class
        if oc in _GLOBAL_CLASSES:
            out[pc] = ("global",
                       counters.mem_sectors_by_pc.get(pc, 0) / issues,
                       issues)
        elif oc in _SHARED_CLASSES:
            out[pc] = ("shared",
                       counters.shared_tx_by_pc.get(pc, 0) / issues,
                       issues)
    return out


def validate_kernel(
    spec_name: str,
    size: int = 128,
    gpu: Optional[GPUSpec] = None,
    compute_iterations: int = 8,
    budget: Optional[SimBudget] = None,
    blame: bool = False,
) -> KernelValidation:
    """Run ``spec_name`` in the simulator and cross-check every memory
    access's static prediction against the measured counters.

    With ``blame`` the harness additionally samples the launch's stall
    cycles, slices every dependency-stalled PC backward
    (:class:`~repro.sass.slicing.BlameSlicer`) and confirms each blamed
    producer's per-PC counters show the activity the stall reason
    implies — the slicer's claims checked against the machine.

    A :class:`~repro.gpu.budget.SimBudget` bounds the launch; when it
    trips, the kernel is reported with ``error`` set instead of
    raising, so suite runs under ``--deadline`` finish cleanly."""
    # imported lazily: repro.cli imports repro.core
    from repro.cli import resolve_kernel
    from repro.gpu.simulator import Simulator
    from repro.sass.affine import AffineAnalysis, AffineEnv, MemoryPredictor
    from repro.sass.cfg import build_cfg

    gpu = gpu or GPUSpec.small(1)
    ck, config, args, textures = resolve_kernel(
        spec_name, size, compute_iterations
    )
    sim = Simulator(gpu)
    # max_blocks=None keeps extrapolation at 1.0: the counters are the
    # *exact* SM-0 share, the same block set the predictor enumerates
    try:
        launch = sim.launch(ck, config, args, textures=textures,
                            max_blocks=None, functional_all=False,
                            budget=budget)
    except ResourceLimitError as exc:
        return KernelValidation(kernel=spec_name, error=str(exc))
    program = ck.program
    cfg = build_cfg(program)
    env = AffineEnv.from_launch(ck, config, launch.param_values)
    affine = AffineAnalysis(program, cfg, env)
    predictor = MemoryPredictor(program, cfg, affine, config, gpu)
    measured = measured_per_request(launch.counters, program)

    out = KernelValidation(kernel=spec_name)
    for i, ins in enumerate(program):
        pred = predictor.predict(i)
        if not pred.space:
            continue  # not a global/shared access
        m = measured.get(i)
        out.checks.append(
            AccessCheck(
                pc=i,
                opcode=ins.opcode.name,
                space=pred.space,
                line=ins.line,
                proven=pred.proven,
                predicted=pred.per_request if pred.proven else None,
                measured=m[1] if m else None,
                requests=m[2] if m else 0,
                predicted_requests=(
                    pred.requests if pred.proven and pred.exact_requests
                    else None
                ),
                reason=pred.unproven_reason,
            )
        )
    # requests cross-check: when the predictor enumerated the issues
    # exactly, a count disagreement is as much a bug as a ratio one
    checked = []
    for c in out.checks:
        if (c.predicted_requests is not None and c.requests
                and c.predicted_requests != c.requests):
            checked.append(
                AccessCheck(
                    pc=c.pc, opcode=c.opcode, space=c.space, line=c.line,
                    proven=True, predicted=float(c.predicted_requests),
                    measured=float(c.requests), requests=c.requests,
                    predicted_requests=c.predicted_requests,
                    reason="request-count mismatch",
                )
            )
        else:
            checked.append(c)
    out.checks = checked
    if blame:
        out.blame_checks = _check_blame(program, launch)
    return out


def _check_blame(program, launch) -> list[BlameCheck]:
    """Slice every sampled dependency stall and confirm each blamed
    producer against the launch's per-PC counters."""
    from repro.gpu.stalls import StallReason
    from repro.sampling.pcsampler import PCSampler
    from repro.sass.isa import OpClass
    from repro.sass.slicing import BlameSlicer

    sampling = PCSampler().sample(launch)
    slicer = BlameSlicer(program)
    blames = slicer.slice_sampling(sampling)
    counters = launch.counters
    dep_reasons = (StallReason.LONG_SCOREBOARD,
                   StallReason.SHORT_SCOREBOARD, StallReason.WAIT)
    out: list[BlameCheck] = []
    for pc in sorted({s.pc for s in sampling.samples}):
        reason = sampling.dominant_reason_at(pc)
        if reason not in dep_reasons:
            continue
        stall_op = program[pc].opcode.name
        b = blames.get(pc)
        head = b.producer if b is not None else None
        if head is None or not b.consistent:
            out.append(BlameCheck(
                stall_pc=pc, stall_op=stall_op,
                reason=reason.cupti_name, producer_pc=None,
                verdict="unblamed",
            ))
            continue
        # which counter must show activity for this producer class
        oc = program[head.pc].opcode.op_class
        if oc in (OpClass.GLOBAL_LOAD, OpClass.LOCAL_LOAD,
                  OpClass.TEXTURE, OpClass.ATOMIC_GLOBAL):
            value = counters.mem_sectors_by_pc.get(head.pc, 0)
            activity = f"mem_sectors_by_pc={value}"
        elif oc in (OpClass.SHARED_LOAD, OpClass.ATOMIC_SHARED):
            value = counters.shared_tx_by_pc.get(head.pc, 0)
            activity = f"shared_tx_by_pc={value}"
        else:
            # fixed-latency / special pipes: the producer must at
            # least have issued
            value = counters.inst_by_pc.get(head.pc, 0)
            activity = f"inst_by_pc={value}"
        out.append(BlameCheck(
            stall_pc=pc, stall_op=stall_op, reason=reason.cupti_name,
            producer_pc=head.pc, producer_op=head.op,
            activity=activity,
            verdict="confirmed" if value > 0 else "MISMATCH",
        ))
    return out


def validate_suite(
    kernels: Optional[Sequence[str]] = None,
    size: int = 128,
    gpu: Optional[GPUSpec] = None,
    deadline: Optional[float] = None,
    blame: bool = False,
) -> list[KernelValidation]:
    """Validate several kernels (default: the full built-in suite).

    ``deadline`` bounds the *whole* suite in wall-clock seconds: one
    shared, latching :class:`~repro.gpu.budget.SimBudget` spans every
    launch, so once time runs out the remaining kernels fail fast and
    are reported with ``error`` set — partial results, clean exit."""
    budget = (SimBudget(max_wall_seconds=deadline)
              if deadline is not None else None)
    return [
        validate_kernel(name, size=size, gpu=gpu, budget=budget,
                        blame=blame)
        for name in (kernels if kernels is not None else ALL_KERNELS)
    ]


def render_validations(results: Sequence[KernelValidation],
                       verbose: bool = False) -> str:
    """Human-readable summary table of a validation run."""
    lines = []
    total_proven = total_unproven = total_mismatch = 0
    for r in results:
        np_, nu, nm = len(r.proven), len(r.unproven), len(r.mismatches)
        total_proven += np_
        total_unproven += nu
        total_mismatch += nm
        status = "ok" if r.ok else "FAIL"
        if r.error:
            lines.append(f"{r.kernel:<22s} SKIP  {r.error}")
            continue
        lines.append(
            f"{r.kernel:<22s} {status:<5s} proven={np_:<3d} "
            f"unproven={nu:<3d} mismatches={nm}"
        )
        shown = r.mismatches if not verbose else r.checks
        for c in shown:
            mark = ("MISMATCH" if c.matches is False
                    else "match" if c.matches else "unproven")
            pred = f"{c.predicted:g}" if c.predicted is not None else "-"
            meas = f"{c.measured:g}" if c.measured is not None else "-"
            extra = f"  ({c.reason})" if c.reason and mark != "match" else ""
            lines.append(
                f"    [{c.pc:3d}] {c.opcode:<16s} {c.space:<6s} "
                f"pred={pred:<8s} meas={meas:<8s} {mark}{extra}"
            )
        if r.blame_checks:
            cov = r.blame_coverage or 0.0
            nbm = len(r.blame_mismatches)
            lines.append(
                f"    blame: {len(r.blame_checks)} dependency stall(s), "
                f"coverage={100.0 * cov:.0f}%, mismatches={nbm}"
            )
            for b in r.blame_checks:
                if b.verdict == "confirmed" and not verbose:
                    continue
                prod = (f"-> [{b.producer_pc}] {b.producer_op}"
                        if b.producer_pc is not None else "-> (no chain)")
                lines.append(
                    f"      [{b.stall_pc:3d}] {b.stall_op:<16s} "
                    f"{b.reason:<26s} {prod:<28s} {b.activity} "
                    f"{b.verdict}"
                )
    total_blame = sum(len(r.blame_checks) for r in results)
    blame_note = ""
    if total_blame:
        blame_ok = sum(
            1 for r in results for b in r.blame_checks if b.ok
        )
        blame_bad = sum(len(r.blame_mismatches) for r in results)
        blame_note = (f" blame={blame_ok}/{total_blame} "
                      f"blame-mismatches={blame_bad}")
    total_ok = not total_mismatch and all(r.ok for r in results)
    lines.append(
        f"{'TOTAL':<22s} {'ok' if total_ok else 'FAIL':<5s} "
        f"proven={total_proven:<3d} unproven={total_unproven:<3d} "
        f"mismatches={total_mismatch}{blame_note}"
    )
    return "\n".join(lines)
