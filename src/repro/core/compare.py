"""Old-versus-new comparison of two GPUscout runs.

Paper §7 (Figure 7) plans a "Metrics Comparison" section that "will
point at metrics to observe after modifying the code, and hence, a
new-versus-old comparison of the obtained metric values will be
available here, showing how selected metrics rise/fall due to the
change".  :func:`compare_reports` implements exactly that: it pairs the
metrics and stall distributions of a baseline run and a modified run,
flags the metrics each finding said to watch, and renders the
rise/fall table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.engine import ScoutReport
from repro.gpu.stalls import StallReason
from repro.metrics.names import METRIC_REGISTRY

__all__ = ["MetricDelta", "ComparisonReport", "compare_reports"]


@dataclass(frozen=True)
class MetricDelta:
    """One metric's before/after pair."""

    name: str
    before: float
    after: float
    #: True when a finding of the baseline run asked to watch this metric
    watched: bool

    @property
    def change_pct(self) -> Optional[float]:
        if self.before == 0:
            return None if self.after == 0 else float("inf")
        return 100.0 * (self.after - self.before) / abs(self.before)

    @property
    def direction(self) -> str:
        if self.after > self.before:
            return "rise"
        if self.after < self.before:
            return "fall"
        return "same"


@dataclass
class ComparisonReport:
    """Structured new-vs-old comparison."""

    baseline_kernel: str
    modified_kernel: str
    metric_deltas: list[MetricDelta] = field(default_factory=list)
    stall_deltas: list[tuple[StallReason, float, float]] = field(
        default_factory=list
    )
    speedup: Optional[float] = None

    def watched(self) -> list[MetricDelta]:
        return [d for d in self.metric_deltas if d.watched]

    def render(self) -> str:
        lines = [
            "-" * 72,
            f"GPUscout metrics comparison: '{self.baseline_kernel}' (old) "
            f"vs '{self.modified_kernel}' (new)",
            "-" * 72,
        ]
        if self.speedup is not None:
            lines.append(f"Kernel speedup (old/new cycles): {self.speedup:.2f}x")
            lines.append("")
        watched = self.watched()
        if watched:
            lines.append("Metrics the old run's findings asked to watch:")
            lines.extend(self._rows(watched))
            lines.append("")
        others = [d for d in self.metric_deltas if not d.watched]
        if others:
            lines.append("Other collected metrics:")
            lines.extend(self._rows(others))
            lines.append("")
        if self.stall_deltas:
            lines.append("Warp-stall distribution (share of stall samples):")
            for reason, before, after in self.stall_deltas:
                arrow = "->"
                lines.append(
                    f"  {reason.cupti_name:<30s} {100*before:6.1f} % {arrow} "
                    f"{100*after:6.1f} %"
                )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _rows(deltas: list[MetricDelta]) -> list[str]:
        out = []
        for d in deltas:
            spec = METRIC_REGISTRY.get(d.name)
            unit = spec.unit if spec else ""
            change = d.change_pct
            change_txt = (
                "new" if change == float("inf")
                else "=" if change is None or d.direction == "same"
                else f"{change:+.1f} %"
            )
            out.append(
                f"  {d.name:<52s} {d.before:>14.2f} -> {d.after:>14.2f} "
                f"{unit:<12s} {change_txt}"
            )
        return out


def compare_reports(old: ScoutReport, new: ScoutReport) -> ComparisonReport:
    """Build the new-vs-old comparison of two (dynamic) runs.

    Both reports must come from full runs (metrics + sampling present);
    dry runs carry nothing to compare.
    """
    if old.metrics is None or new.metrics is None:
        raise ValueError("comparison needs two full (non-dry-run) reports")
    watched_names = {
        name for f in old.findings for name in f.metric_focus
    }

    def value_of(report: ScoutReport, name: str) -> Optional[float]:
        if name in report.metrics.values:
            return report.metrics.values[name]
        if report.launch is not None:
            # ncu would need another pass; we can derive it directly
            from repro.metrics.derive import derive_metric

            return derive_metric(name, report.launch)
        return None

    names = list(dict.fromkeys(list(old.metrics.values)
                               + list(new.metrics.values)))
    deltas = []
    for n in names:
        before = value_of(old, n)
        after = value_of(new, n)
        if before is None or after is None:
            continue
        deltas.append(
            MetricDelta(name=n, before=before, after=after,
                        watched=n in watched_names)
        )
    # watched metrics first, then by magnitude of relative change
    deltas.sort(key=lambda d: (
        not d.watched,
        -(abs(d.change_pct) if d.change_pct not in (None, float("inf"))
          else 1e9),
    ))

    stall_deltas: list[tuple[StallReason, float, float]] = []
    if old.sampling is not None and new.sampling is not None:
        reasons = sorted(
            set(old.sampling.by_reason()) | set(new.sampling.by_reason()),
            key=lambda r: r.value,
        )
        for reason in reasons:
            if reason is StallReason.SELECTED:
                continue
            before = old.sampling.stall_share(reason)
            after = new.sampling.stall_share(reason)
            if before or after:
                stall_deltas.append((reason, before, after))
        stall_deltas.sort(key=lambda t: -(t[1] + t[2]))

    speedup = None
    if old.launch is not None and new.launch is not None \
            and new.launch.cycles > 0:
        speedup = old.launch.cycles / new.launch.cycles
    return ComparisonReport(
        baseline_kernel=old.kernel,
        modified_kernel=new.kernel,
        metric_deltas=deltas,
        stall_deltas=stall_deltas,
        speedup=speedup,
    )
