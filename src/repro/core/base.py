"""Analysis base class, shared static context, and the registry.

The paper stresses GPUscout's modularity: "all analyses are standalone,
hence new bottleneck analyses can easily be added" (§3).  New analyses
subclass :class:`Analysis` and register with :func:`register_analysis`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import cached_property
from typing import Type

from repro.sass.cfg import ControlFlowGraph, build_cfg
from repro.sass.isa import Program, Register
from repro.sass.liveness import (
    DefUse,
    LivenessInfo,
    compute_liveness,
    def_use_chains,
)
from repro.core.findings import Finding, SourceLoc

__all__ = [
    "AnalysisContext",
    "Analysis",
    "register_analysis",
    "default_analyses",
    "AddressGroup",
]


@dataclass(frozen=True)
class AddressGroup:
    """Global-memory accesses sharing one base-register *value*.

    Loads ``[R2]`` and ``[R2+0x4]`` belong to the same group only if
    R2 holds the same value at both — i.e. the same reaching definition
    of R2.  ``key`` is (register index, definition index); when several
    definitions reach (a base set in both arms of a branch) the second
    element is the tuple of definition indices instead."""

    key: tuple
    base: Register
    #: (instruction index, byte offset within the group) pairs
    accesses: tuple[tuple[int, int], ...]

    def offsets(self) -> list[int]:
        return sorted({off for _, off in self.accesses})


class AnalysisContext:
    """Static facts shared by all analyses for one program.

    Everything is derived lazily from the SASS alone — this is what the
    ``--dry-run`` mode can compute without touching the GPU.
    """

    def __init__(self, program: Program, compiled=None, config=None):
        self.program = program
        #: optional CompiledKernel (present when analyzing cudalite output)
        self.compiled = compiled
        #: optional LaunchConfig (lets predictors fold launch dims)
        self.config = config

    @cached_property
    def cfg(self) -> ControlFlowGraph:
        return build_cfg(self.program)

    @cached_property
    def affine(self):
        """The symbolic affine dataflow result (lazy; see
        :mod:`repro.sass.affine`)."""
        from repro.sass.affine import AffineAnalysis

        return AffineAnalysis(self.program, self.cfg)

    @cached_property
    def reaching(self):
        """CFG-aware reaching definitions."""
        from repro.sass.affine import ReachingDefinitions

        return ReachingDefinitions(self.program, self.cfg)

    @cached_property
    def liveness(self) -> LivenessInfo:
        return compute_liveness(self.program, self.cfg)

    @cached_property
    def def_use(self) -> dict[Register, DefUse]:
        return def_use_chains(self.program)

    def in_loop(self, index: int) -> bool:
        return self.cfg.in_loop(index)

    def loc(self, index: int) -> SourceLoc:
        ins = self.program[index]
        return SourceLoc(ins.file, ins.line)

    def pressure_at(self, index: int) -> int:
        return self.liveness.pressure_at(index)

    # ------------------------------------------------------------------
    def reaching_def(self, reg: Register, index: int) -> int:
        """Index of the unique definition of ``reg`` reaching
        instruction ``index`` (a definition *at* ``index`` counts).

        Computed over the CFG, not stream order: a definition inside a
        non-dominating branch does not clobber the value seen on the
        other path.  Returns ``-1`` when the register is live-in or
        never written, and ``-2`` when several definitions can reach
        (e.g. one per branch arm)."""
        defs = self.reaching.defs_at(reg, index)
        if len(defs) == 1:
            return defs[0]
        return -2

    @cached_property
    def global_load_groups(self) -> list[AddressGroup]:
        """Global loads grouped by base-register value (see
        :class:`AddressGroup`) — the core pattern input of the
        vectorize (§4.1) and texture (§4.6) analyses."""
        return self._address_groups(loads_only=True)

    @cached_property
    def global_access_groups(self) -> list[AddressGroup]:
        """Global loads *and* stores grouped by base value."""
        return self._address_groups(loads_only=False)

    def _address_groups(self, loads_only: bool) -> list[AddressGroup]:
        groups: dict[tuple, list[tuple[int, int]]] = {}
        bases: dict[tuple, Register] = {}
        for i, ins in enumerate(self.program):
            op = ins.opcode
            is_load = op.is_global_load
            is_store = op.op_class.value == "global_store"
            if not (is_load or (is_store and not loads_only)):
                continue
            mem = ins.mem_operand()
            if mem is None or mem.base is None:
                continue
            defs = self.reaching.defs_at(mem.base, i)
            # an ambiguous base (different defs on different paths) is
            # keyed by the whole def set — never merged with either arm
            key = (mem.base.index, defs[0] if len(defs) == 1 else defs)
            groups.setdefault(key, []).append((i, mem.offset))
            bases[key] = mem.base
        return [
            AddressGroup(key=key, base=bases[key], accesses=tuple(accs))
            for key, accs in groups.items()
        ]

    def is_readonly_register(self, reg: Register) -> bool:
        """GPUscout's read-only criterion for §4.5/§4.6.

        A register holds read-only data when the loaded value is never
        *updated*: every definition is either a global load, or an
        unrelated reuse of the architectural register (the old value is
        already dead there — register allocators recycle names).  An
        in-place update such as mixbench's ``FFMA R9, R9, R9, c`` reads
        the live loaded value and disqualifies it.  This reproduces the
        paper's case-study behaviour: SGEMM's A/B elements and Jacobi's
        stencil neighbours qualify; mixbench's ``tmps`` do not."""
        du = self.def_use.get(reg)
        if du is None or not du.defs:
            return False
        if not any(self.program[d].opcode.is_global_load for d in du.defs):
            return False
        live_in = self.liveness.live_in
        for d in du.defs:
            if self.program[d].opcode.is_global_load:
                continue
            if reg in live_in[d]:
                return False  # overwrites a live (loaded) value
        return True

    def arithmetic_uses(self, reg: Register) -> list[int]:
        """Indices of arithmetic instructions reading ``reg``."""
        du = self.def_use.get(reg)
        if du is None:
            return []
        return [
            i for i in du.uses if self.program[i].opcode.is_arithmetic
        ]

    def value_uses(self, reg: Register, def_idx: int) -> list[int]:
        """Uses of the *value* defined at ``def_idx``: reads of ``reg``
        after ``def_idx`` up to (and including reads at) its next
        redefinition.  Register allocators recycle names, so counting
        all architectural uses would merge unrelated values."""
        du = self.def_use.get(reg)
        if du is None:
            return []
        next_defs = [d for d in du.defs if d > def_idx]
        horizon = min(next_defs) if next_defs else len(self.program)
        return [i for i in du.uses if def_idx < i <= horizon]

    def value_arithmetic_uses(self, reg: Register, def_idx: int) -> list[int]:
        """Arithmetic subset of :meth:`value_uses`."""
        return [
            i for i in self.value_uses(reg, def_idx)
            if self.program[i].opcode.is_arithmetic
        ]


class Analysis(abc.ABC):
    """A standalone bottleneck detector (one per paper sub-section)."""

    #: stable identifier, also the METRIC_SETS key
    name: str = ""
    #: one-line description shown in reports
    description: str = ""

    @abc.abstractmethod
    def run(self, ctx: AnalysisContext) -> list[Finding]:
        """Inspect the program and return findings (possibly empty)."""


_REGISTRY: dict[str, Type[Analysis]] = {}
_EXTENSIONS: dict[str, Type[Analysis]] = {}


def register_analysis(cls: Type[Analysis]) -> Type[Analysis]:
    """Class decorator adding an analysis to the default set."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    if cls.name in _REGISTRY or cls.name in _EXTENSIONS:
        raise ValueError(f"duplicate analysis name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def register_extension(cls: Type[Analysis]) -> Type[Analysis]:
    """Register an *extension* analysis (paper §7: "more SASS analyses
    can be added very easily").  Extensions are not part of the default
    set — the defaults reproduce the paper's §4 detector suite exactly —
    but :func:`extension_analyses` opts them in."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    if cls.name in _REGISTRY or cls.name in _EXTENSIONS:
        raise ValueError(f"duplicate analysis name {cls.name!r}")
    _EXTENSIONS[cls.name] = cls
    return cls


def default_analyses() -> list[Analysis]:
    """Fresh instances of every registered analysis, in registration
    order (the §4 order of the paper)."""
    return [cls() for cls in _REGISTRY.values()]


def extension_analyses() -> list[Analysis]:
    """Fresh instances of the registered extension analyses."""
    return [cls() for cls in _EXTENSIONS.values()]


def all_analyses() -> list[Analysis]:
    """Defaults plus extensions (what ``gpuscout --extended`` runs)."""
    return default_analyses() + extension_analyses()
