"""§4.2 — Register Spilling.

``STL``/``LDL`` instructions move registers to/from thread-local memory
— the compiler's escape hatch when a kernel needs more registers than
its budget.  For each spill store, GPUscout reports the spilled
register, the source line, and the *last operation that wrote the
register* (Figure 2 blames an IADD this way).

Stalls to watch: ``lg_throttle`` (spills flood the L1 LG queue) and
``long_scoreboard``.  Metrics: local-memory traffic through L1/L2, and
the share of all L2 sectors caused by local memory — the
bandwidth-limited-code assessment of §4.2.
"""

from __future__ import annotations

from repro.core.base import Analysis, AnalysisContext, register_analysis
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason
from repro.sass.isa import OpClass
from repro.sass.liveness import last_writer_index_before

__all__ = ["RegisterSpillingAnalysis"]


@register_analysis
class RegisterSpillingAnalysis(Analysis):
    """Detect register spills to local memory and blame their writers."""

    name = "register_spilling"
    description = "Registers spilled to local memory (STL/LDL traffic)"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program = ctx.program
        stores = [
            i for i, ins in enumerate(program)
            if ins.opcode.op_class is OpClass.LOCAL_STORE
        ]
        loads = [
            i for i, ins in enumerate(program)
            if ins.opcode.op_class is OpClass.LOCAL_LOAD
        ]
        if not stores and not loads:
            return []
        findings: list[Finding] = []
        for i in stores:
            ins = program[i]
            # STL [slot], Rsrc — the stored register is the spill victim
            src = next(
                (op.reg for op in ins.operands if op.kind == "reg" and op.reg),
                None,
            )
            if src is None:
                continue
            writer_idx = last_writer_index_before(program, src, i)
            writer_desc = None
            writer_loc = None
            if writer_idx is not None:
                writer_desc = program[writer_idx].opcode.name
                writer_loc = ctx.loc(writer_idx)
            in_loop = ctx.in_loop(i)
            msg = (
                f"Register {src.name} is spilled to local memory "
                f"(STL at offset {ins.offset:#06x})."
            )
            if writer_desc is not None:
                msg += (
                    f" The value being spilled was produced by a "
                    f"{writer_desc} operation"
                    + (f" at {writer_loc}" if writer_loc else "")
                    + "."
                )
            if in_loop:
                msg += " The spill executes inside a for-loop, amplifying the traffic."
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Register spilling into local memory",
                    severity=Severity.CRITICAL if in_loop else Severity.WARNING,
                    message=msg,
                    recommendation=(
                        "Reduce simultaneous live values (split the kernel, "
                        "shorten live ranges, or lower unrolling), or raise "
                        "the register budget (__launch_bounds__ / "
                        "-maxrregcount) if occupancy allows. Fewer spills "
                        "reduce L1 local traffic and lg_throttle stalls."
                    ),
                    pcs=[i],
                    locations=[ctx.loc(i)],
                    registers=[src.name],
                    in_loop=in_loop,
                    details={
                        "spilled_register": src.name,
                        "causing_operation": writer_desc,
                        "causing_location": str(writer_loc) if writer_loc else None,
                        "local_frame_bytes": program.local_bytes_per_thread,
                        "live_register_pressure": ctx.pressure_at(i),
                        "spill_loads_total": len(loads),
                        "spill_stores_total": len(stores),
                    },
                    stall_focus=[StallReason.LG_THROTTLE,
                                 StallReason.LONG_SCOREBOARD],
                    metric_focus=[
                        "launch__local_mem_per_thread",
                        "derived__l1_local_miss_pct",
                        "derived__l2_queries_due_to_local_memory",
                        "derived__local_bytes_to_l2",
                        "derived__local_traffic_share_of_l2.pct",
                    ],
                )
            )
        return findings
