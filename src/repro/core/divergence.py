"""Extension analysis: predication / divergence efficiency.

Not part of the paper's §4 suite (registered per §7's extension
mechanism).  nvcc compiles short conditionals to *predicated*
instructions: both arms occupy issue slots for every warp, and lanes
failing the guard do no useful work.  Heavily-predicated regions —
especially predicated *memory* operations, which still cost L1TEX
wavefronts for the active lanes — are worth restructuring (hoist the
condition, reshape blocks so warps are condition-uniform).

The analysis reports the predicated fraction of the instruction stream,
complementary-guard pairs (``@P`` ... ``@!P`` on the same predicate —
a branch-free if/else where a warp pays for both arms), and predicated
memory operations.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.base import Analysis, AnalysisContext, register_extension
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason

__all__ = ["PredicationEfficiencyAnalysis"]


@register_extension
class PredicationEfficiencyAnalysis(Analysis):
    """Quantify predication cost and flag dual-arm predicated regions."""

    name = "predication_efficiency"
    description = "Predicated-execution share and if/else arm costs (extension)"

    #: predicated fraction above which the finding is a WARNING
    warn_fraction = 0.3

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program = ctx.program
        total = len(program)
        if total == 0:
            return []
        predicated: list[int] = []
        by_pred: dict[int, dict[bool, list[int]]] = defaultdict(
            lambda: {True: [], False: []}
        )
        pred_mem: list[int] = []
        for i, ins in enumerate(program):
            if ins.pred is None or (ins.pred.is_zero and not ins.pred_negated):
                continue
            if ins.opcode.base in ("BRA", "EXIT", "RET"):
                continue  # guards on control flow are the cheap idiom
            predicated.append(i)
            by_pred[ins.pred.index][ins.pred_negated].append(i)
            if ins.opcode.is_memory:
                pred_mem.append(i)
        if not predicated:
            return []
        fraction = len(predicated) / total
        dual_arm = {
            p: arms for p, arms in by_pred.items()
            if arms[True] and arms[False]
        }
        severity = Severity.WARNING if fraction >= self.warn_fraction \
            else Severity.INFO
        msg = (
            f"{len(predicated)} of {total} instructions "
            f"({100*fraction:.0f} %) execute under a predicate guard; "
            f"{len(pred_mem)} of them are memory operations."
        )
        if dual_arm:
            pairs = ", ".join(f"P{p}" for p in sorted(dual_arm))
            msg += (
                f" Predicates {pairs} guard both polarities (@P and @!P): "
                "every warp issues both arms of the conditional."
            )
        pcs = predicated
        return [
            Finding(
                analysis=self.name,
                title="Heavy predicated execution",
                severity=severity,
                message=msg,
                recommendation=(
                    "If warps are usually condition-uniform, the cost is "
                    "only issue slots; if lanes diverge, restructure so "
                    "threads in a warp take the same path (tile shapes, "
                    "sorted work queues) or hoist the condition out of hot "
                    "loops. Predicated loads/stores still spend L1TEX "
                    "wavefronts for their active lanes."
                ),
                pcs=pcs,
                locations=[ctx.loc(i) for i in pcs[:8]],
                in_loop=any(ctx.in_loop(i) for i in pcs),
                details={
                    "predicated_instructions": len(predicated),
                    "predicated_fraction": round(fraction, 3),
                    "predicated_memory_ops": len(pred_mem),
                    "dual_arm_predicates": sorted(dual_arm),
                },
                stall_focus=[StallReason.NOT_SELECTED],
                metric_focus=["smsp__inst_executed.sum"],
            )
        ]
