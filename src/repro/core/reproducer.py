"""Reproducer bundles for unexpected crashes.

When a fault boundary catches an exception that is *not* a
:class:`~repro.errors.ReproError` — i.e. a bug, not a modelled failure —
the engine snapshots everything needed to replay the crash offline into
a temp directory and names that directory in the diagnostic, so a bug
report carries its own reproduction:

* ``kernel.sass`` — the exact disassembly under analysis;
* ``launch.json`` — grid/block shape, kernel name, argument metadata;
* ``environment.json`` — Python/NumPy/package versions and the RNG seed;
* ``traceback.txt`` — the captured stack.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import traceback
from pathlib import Path
from typing import Optional

__all__ = ["write_reproducer_bundle"]

#: the deterministic seed the simulator's (seedless) model would use if
#: it drew random numbers; recorded so bundles stay replayable if
#: stochastic components are ever added
RNG_SEED = 0


def write_reproducer_bundle(
    exc: BaseException,
    program=None,
    config=None,
    args: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> Optional[str]:
    """Write a crash-reproduction bundle; returns its path.

    Never raises: a failure while writing the bundle returns ``None``
    (the crash being reported must still surface as a diagnostic).
    """
    try:
        bundle = Path(tempfile.mkdtemp(prefix="gpuscout-crash-"))
        if program is not None:
            from repro.sass.writer import format_program

            (bundle / "kernel.sass").write_text(format_program(program))
        launch: dict = {"kernel": getattr(program, "name", None)}
        if config is not None:
            launch["grid"] = list(config.grid)
            launch["block"] = list(config.block)
        if args is not None:
            launch["args"] = {
                name: _arg_meta(value) for name, value in args.items()
            }
        if extra:
            launch.update(extra)
        (bundle / "launch.json").write_text(json.dumps(launch, indent=2))
        env = {
            "python": sys.version,
            "platform": platform.platform(),
            "rng_seed": RNG_SEED,
            "packages": _package_versions(),
        }
        (bundle / "environment.json").write_text(json.dumps(env, indent=2))
        (bundle / "traceback.txt").write_text(
            "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
        )
        return str(bundle)
    except Exception:
        return None


def _arg_meta(value) -> dict:
    """JSON-safe description of one kernel argument (never raw data —
    bundles must stay small)."""
    if hasattr(value, "dtype") and hasattr(value, "shape"):
        return {
            "kind": "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    return {"kind": type(value).__name__, "value": repr(value)}


def _package_versions() -> dict:
    versions = {}
    for name in ("numpy", "hypothesis", "pytest"):
        try:
            versions[name] = __import__(name).__version__
        except Exception:
            versions[name] = None
    try:
        from importlib.metadata import version

        versions["repro"] = version("repro")
    except Exception:
        versions["repro"] = None
    return versions
