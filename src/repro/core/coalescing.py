"""Extension analysis: uncoalesced global accesses.

Not part of the paper's §4 suite; registered as an extension in the
spirit of §7 ("due to the modular nature of GPUscout, more SASS
analyses can be added very easily").

A warp's 32 lanes should touch consecutive addresses so a 32-bit access
needs only 4 sectors.  The telltale *static* pattern of a lane-strided
(uncoalesced) access is an address index that is a thread-id-derived
value multiplied by a constant before the final address scale:

    S2R      R0, SR_TID.X ;
    IMAD     R1, R0, 0x8, ... ;       <- index = tid * 8
    IMAD.WIDE R2, R1, 0x4, Rbase ;    <- byte stride per lane = 32

Each lane then starts its own 32-byte sector — a 32-bit load costs 32
sectors instead of 4 (mixbench's per-thread-contiguous layout does
exactly this).  The analysis walks the reaching-definition chain of
every global access's address register, accumulating immediate
multipliers, and flags accesses whose per-lane byte stride exceeds the
access width.  The dynamic cross-check is the
``derived__sectors_per_global_load`` metric attached to the finding.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Analysis, AnalysisContext, register_extension
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason
from repro.sass.isa import Program, Register

__all__ = ["UncoalescedAccessAnalysis"]

_TRACE_DEPTH = 8


def _lane_stride(ctx: AnalysisContext, reg: Register, at: int,
                 depth: int = _TRACE_DEPTH) -> Optional[int]:
    """Best-effort per-lane stride (in index units) of ``reg``'s value
    at instruction ``at``: 1 for a raw thread id, multiplied along
    IMAD/SHF chains, ``None`` when the value is not tid-derived."""
    if depth <= 0:
        return None
    d = ctx.reaching_def(reg, at)
    if d < 0:
        return None
    ins = ctx.program[d]
    base = ins.opcode.base
    if base == "S2R":
        special = ins.operands[1].special or ""
        return 1 if special.startswith("SR_TID") else None
    if base == "IMAD" and len(ins.operands) >= 4:
        _, a, b, c = ins.operands[:4]
        # index * imm (+ accumulator): stride multiplies
        if a.kind == "reg" and b.kind == "imm":
            inner = _lane_stride(ctx, a.reg, d, depth - 1)
            if inner is not None:
                return inner * abs(b.imm or 1)
        if b.kind == "reg" and a.kind == "imm":
            inner = _lane_stride(ctx, b.reg, d, depth - 1)
            if inner is not None:
                return inner * abs(a.imm or 1)
        # blockIdx*blockDim style products are block-uniform: the lane
        # stride comes from whichever operand is tid-derived
        if a.kind == "reg" and b.kind == "reg":
            for cand in (a.reg, b.reg):
                inner = _lane_stride(ctx, cand, d, depth - 1)
                if inner is not None:
                    return None  # tid * non-constant: unknown stride
        if c.kind == "reg":
            return _lane_stride(ctx, c.reg, d, depth - 1)
        return None
    if base == "IADD3":
        # additive terms: lane stride is the tid-derived term's stride
        strides = []
        for op in ins.operands[1:]:
            if op.kind == "reg" and op.reg is not None and not op.reg.is_zero:
                s = _lane_stride(ctx, op.reg, d, depth - 1)
                if s is not None:
                    strides.append(s)
        if len(strides) == 1:
            return strides[0]
        return strides[0] if strides else None
    if base == "SHF" and ins.opcode.has_modifier("L"):
        a, b = ins.operands[1], ins.operands[2]
        if a.kind == "reg" and b.kind == "imm":
            inner = _lane_stride(ctx, a.reg, d, depth - 1)
            if inner is not None:
                return inner << (b.imm or 0)
        return None
    if base == "MOV":
        src = ins.operands[1]
        if src.kind == "reg" and src.reg is not None:
            return _lane_stride(ctx, src.reg, d, depth - 1)
        return None
    return None


@register_extension
class UncoalescedAccessAnalysis(Analysis):
    """Flag global accesses whose lanes stride apart in memory."""

    name = "uncoalesced_access"
    description = "Global accesses with per-lane strides (extension)"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program: Program = ctx.program
        findings: list[Finding] = []
        seen_groups: set[tuple[int, int]] = set()
        for group in ctx.global_access_groups:
            first, _ = group.accesses[0]
            ins = program[first]
            # the address register was produced by IMAD.WIDE idx*elem+base
            addr_def = ctx.reaching_def(group.base, first)
            if addr_def < 0:
                continue
            addr_ins = program[addr_def]
            if addr_ins.opcode.base != "IMAD" or \
                    not addr_ins.opcode.has_modifier("WIDE"):
                continue
            idx_op, scale_op = addr_ins.operands[1], addr_ins.operands[2]
            if idx_op.kind != "reg" or scale_op.kind != "imm":
                continue
            elem_bytes = scale_op.imm or 4
            stride_units = _lane_stride(ctx, idx_op.reg, addr_def)
            if stride_units is None:
                continue
            byte_stride = stride_units * elem_bytes
            width_bytes = max(
                program[i].opcode.width_bits // 8 for i, _ in group.accesses
            )
            if byte_stride <= width_bytes:
                continue  # dense: consecutive lanes touch adjacent data
            if group.key in seen_groups:
                continue
            seen_groups.add(group.key)
            pcs = sorted(i for i, _ in group.accesses)
            # with lanes byte_stride apart, ~byte_stride/32 of a sector
            # is wasted per lane: 32 lanes touch min(32, byte_stride)
            # sectors (fully dense 32-bit access touches 4)
            sectors_per_access = min(32, max(4, byte_stride))
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Uncoalesced global memory access",
                    severity=Severity.WARNING
                    if byte_stride >= 32 else Severity.INFO,
                    message=(
                        f"Lanes of the accesses off {group.base.name} are "
                        f"{byte_stride} bytes apart (thread-id index scaled "
                        f"by {stride_units}, {elem_bytes}-byte elements) "
                        f"while each access moves only {width_bytes} bytes. "
                        "Every lane starts its own 32-byte sector, "
                        "multiplying the L1TEX wavefronts per instruction."
                    ),
                    recommendation=(
                        "Re-layout the data (structure-of-arrays / "
                        "block-strided indexing) so consecutive lanes read "
                        "consecutive addresses, or widen the access with a "
                        "vector type so the lane stride equals the access "
                        "width. Verify with derived__sectors_per_global_load "
                        "(4.0 is fully coalesced for 32-bit accesses)."
                    ),
                    pcs=pcs,
                    locations=[ctx.loc(i) for i in pcs],
                    registers=[group.base.name],
                    in_loop=any(ctx.in_loop(i) for i in pcs),
                    details={
                        "lane_byte_stride": byte_stride,
                        "access_bytes": width_bytes,
                        "estimated_sectors_per_access": sectors_per_access,
                    },
                    stall_focus=[StallReason.LG_THROTTLE,
                                 StallReason.LONG_SCOREBOARD],
                    metric_focus=["derived__sectors_per_global_load",
                                  "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum"],
                )
            )
        return findings
