"""Extension analysis: uncoalesced global accesses.

Not part of the paper's §4 suite; registered as an extension in the
spirit of §7 ("due to the modular nature of GPUscout, more SASS
analyses can be added very easily").

A warp's 32 lanes should touch consecutive addresses so a 32-bit access
needs only 4 sectors.  The affine engine (:mod:`repro.sass.affine`)
resolves every access's per-lane byte address to a symbolic form

    c0 + c_tid·tid.x + ... ;

the per-lane byte stride is simply the ``tid.x`` (plus ``laneid``)
coefficient.  mixbench's per-thread-contiguous layout, for example,
produces ``32·tid.x + ...`` for its 32-bit loads: every lane starts its
own 32-byte sector, so the access costs 32 sectors instead of 4.  The
analysis flags accesses whose proven lane stride exceeds the access
width; addresses the engine cannot prove affine are skipped, never
guessed.  The dynamic cross-check is the
``derived__sectors_per_global_load`` metric attached to the finding.
"""

from __future__ import annotations

from repro.core.base import Analysis, AnalysisContext, register_extension
from repro.core.findings import Finding, Severity
from repro.gpu.stalls import StallReason
from repro.sass.affine import TOP
from repro.sass.isa import Program

__all__ = ["UncoalescedAccessAnalysis"]


@register_extension
class UncoalescedAccessAnalysis(Analysis):
    """Flag global accesses whose lanes stride apart in memory."""

    name = "uncoalesced_access"
    description = "Global accesses with per-lane strides (extension)"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        program: Program = ctx.program
        affine = ctx.affine
        findings: list[Finding] = []
        for group in ctx.global_access_groups:
            first, _ = group.accesses[0]
            addr = affine.address_value(first)
            if addr is TOP:
                continue  # not provable: stay silent, never guess
            # consecutive lanes advance tid.x (and laneid) by one
            byte_stride = abs(addr.coeff("tid.x") + addr.coeff("laneid"))
            width_bytes = max(
                program[i].opcode.width_bits // 8 for i, _ in group.accesses
            )
            if byte_stride <= width_bytes:
                continue  # dense: consecutive lanes touch adjacent data
            pcs = sorted(i for i, _ in group.accesses)
            # with lanes byte_stride apart, ~byte_stride/32 of a sector
            # is wasted per lane: 32 lanes touch min(32, byte_stride)
            # sectors (fully dense 32-bit access touches 4)
            sectors_per_access = min(32, max(4, byte_stride))
            findings.append(
                Finding(
                    analysis=self.name,
                    title="Uncoalesced global memory access",
                    severity=Severity.WARNING
                    if byte_stride >= 32 else Severity.INFO,
                    message=(
                        f"Lanes of the accesses off {group.base.name} are "
                        f"{byte_stride} bytes apart (address resolves to "
                        f"{addr}) while each access moves only "
                        f"{width_bytes} bytes. Every lane starts its own "
                        "32-byte sector, multiplying the L1TEX wavefronts "
                        "per instruction."
                    ),
                    recommendation=(
                        "Re-layout the data (structure-of-arrays / "
                        "block-strided indexing) so consecutive lanes read "
                        "consecutive addresses, or widen the access with a "
                        "vector type so the lane stride equals the access "
                        "width. Verify with derived__sectors_per_global_load "
                        "(4.0 is fully coalesced for 32-bit accesses)."
                    ),
                    pcs=pcs,
                    locations=[ctx.loc(i) for i in pcs],
                    registers=[group.base.name],
                    in_loop=any(ctx.in_loop(i) for i in pcs),
                    details={
                        "lane_byte_stride": byte_stride,
                        "access_bytes": width_bytes,
                        "estimated_sectors_per_access": sectors_per_access,
                        "affine_address": str(addr),
                    },
                    predicted={
                        "sectors_per_request": float(sectors_per_access),
                    },
                    stall_focus=[StallReason.LG_THROTTLE,
                                 StallReason.LONG_SCOREBOARD],
                    metric_focus=["derived__sectors_per_global_load",
                                  "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum"],
                )
            )
        return findings
