"""GPUscout core: the three-pillar bottleneck analysis engine.

This is the paper's contribution proper.  :class:`~repro.core.engine.GPUscout`
runs the eight static SASS analyses (§4.1–§4.7 plus the vectorized-read
detection), correlates CUPTI-style warp-stall samples to the flagged
instructions, collects the curated ncu metric sets, and renders the
terminal report of Figures 2/5.  ``--dry-run`` skips everything that
needs the (simulated) GPU.
"""

from repro.core.findings import Finding, Severity, SourceLoc
from repro.core.base import (
    Analysis,
    AnalysisContext,
    all_analyses,
    default_analyses,
    extension_analyses,
)
from repro.core.engine import GPUscout, ScoutReport
from repro.core.overhead import OverheadBreakdown
from repro.core.compare import ComparisonReport, MetricDelta, compare_reports
from repro.core.html_report import render_html
from repro.core.jsonout import report_to_dict, report_to_json

# importing the analysis modules registers them (paper §4 defaults,
# then the §7-style extensions)
from repro.core import (  # noqa: F401
    vectorize,
    spilling,
    shared_mem,
    atomics,
    restrict,
    texture,
    conversions,
    coalescing,
    divergence,
)

__all__ = [
    "Finding",
    "Severity",
    "SourceLoc",
    "Analysis",
    "AnalysisContext",
    "all_analyses",
    "default_analyses",
    "extension_analyses",
    "GPUscout",
    "ScoutReport",
    "OverheadBreakdown",
    "ComparisonReport",
    "MetricDelta",
    "compare_reports",
    "render_html",
    "report_to_dict",
    "report_to_json",
]
