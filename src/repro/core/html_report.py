"""Interactive HTML rendering of a GPUscout report (paper Figure 7).

The paper's future-work sketch shows a frontend with a 'Source Code'
view and a 'SASS Instructions' view "correlated with each other through
the code line/SASS instruction mapping", plus a 'Metrics Comparison'
section for old-vs-new values.  :func:`render_html` produces exactly
that layout as a single self-contained HTML file (inline CSS + vanilla
JS, no external assets):

* left panel: the pseudo-CUDA source with findings badges per line;
* right panel: the SASS listing; hovering a source line highlights the
  SASS instructions it generated and vice versa;
* findings cards with stalls/metrics, and a stall-distribution bar;
* when a baseline comparison is supplied, the Figure-7 'Metrics
  Comparison' table with rise/fall arrows.
"""

from __future__ import annotations

import html
from typing import Optional

from repro.core.compare import ComparisonReport
from repro.core.engine import ScoutReport
from repro.core.findings import Severity
from repro.gpu.stalls import StallReason
from repro.sass.writer import format_instruction

__all__ = ["render_html"]

_CSS = """
body { font-family: 'Segoe UI', system-ui, sans-serif; margin: 0;
       background: #11151c; color: #d8dee9; }
header { padding: 14px 24px; background: #0b0e13;
         border-bottom: 1px solid #2a3040; }
h1 { font-size: 18px; margin: 0; }
h2 { font-size: 14px; text-transform: uppercase; letter-spacing: .08em;
     color: #88c0d0; margin: 18px 0 8px; }
.columns { display: flex; gap: 16px; padding: 16px 24px; }
.panel { flex: 1; background: #161b24; border: 1px solid #2a3040;
         border-radius: 6px; padding: 10px 0; overflow: auto;
         max-height: 480px; }
.codeline { font-family: 'JetBrains Mono', Consolas, monospace;
            font-size: 12px; white-space: pre; padding: 1px 12px;
            display: flex; }
.codeline .no { color: #4c566a; width: 40px; flex: none;
                text-align: right; margin-right: 12px; user-select: none; }
.codeline.hl { background: #2e3a52; }
.codeline .badge { margin-left: 8px; font-size: 10px; border-radius: 3px;
                   padding: 0 5px; flex: none; }
.badge.warn { background: #b4812333; color: #ebcb8b; }
.badge.crit { background: #bf616a33; color: #bf616a; }
.badge.info { background: #5e81ac33; color: #81a1c1; }
.section { padding: 0 24px 16px; }
.finding { background: #161b24; border: 1px solid #2a3040;
           border-left: 4px solid #ebcb8b; border-radius: 6px;
           padding: 12px 16px; margin-bottom: 10px; }
.finding.crit { border-left-color: #bf616a; }
.finding.info { border-left-color: #81a1c1; }
.finding h3 { margin: 0 0 6px; font-size: 14px; }
.finding p { margin: 4px 0; font-size: 13px; color: #c2c9d6; }
.kv { font-size: 12px; color: #8f98a8; }
table { border-collapse: collapse; font-size: 13px; width: 100%; }
td, th { padding: 4px 10px; border-bottom: 1px solid #232a38;
         text-align: left; }
th { color: #88c0d0; font-weight: 600; }
.rise { color: #bf616a; } .fall { color: #a3be8c; } .same { color: #8f98a8; }
.bar { display: flex; height: 22px; border-radius: 4px; overflow: hidden;
       margin: 6px 0 2px; }
.bar div { height: 100%; }
.legend { font-size: 11px; color: #8f98a8; }
"""

_JS = """
function wire(panelA, panelB) {
  document.querySelectorAll(panelA + ' .codeline').forEach(el => {
    el.addEventListener('mouseenter', () => {
      const line = el.dataset.line;
      if (!line) return;
      document.querySelectorAll(
        panelB + ' .codeline[data-line="' + line + '"], ' +
        panelA + ' .codeline[data-line="' + line + '"]'
      ).forEach(x => x.classList.add('hl'));
    });
    el.addEventListener('mouseleave', () => {
      document.querySelectorAll('.codeline.hl')
        .forEach(x => x.classList.remove('hl'));
    });
  });
}
window.addEventListener('DOMContentLoaded', () => {
  wire('#source', '#sass'); wire('#sass', '#source');
});
"""

_STALL_COLORS = {
    StallReason.LONG_SCOREBOARD: "#bf616a",
    StallReason.SHORT_SCOREBOARD: "#d08770",
    StallReason.LG_THROTTLE: "#ebcb8b",
    StallReason.MIO_THROTTLE: "#a3be8c",
    StallReason.TEX_THROTTLE: "#b48ead",
    StallReason.WAIT: "#81a1c1",
    StallReason.NOT_SELECTED: "#4c566a",
    StallReason.BARRIER: "#88c0d0",
    StallReason.MATH_PIPE_THROTTLE: "#5e81ac",
}

_SEV_CLASS = {Severity.INFO: "info", Severity.WARNING: "warn",
              Severity.CRITICAL: "crit"}


def _heat_style(share: float) -> str:
    """Inline background for a heat-ramped source line.

    The ramp runs transparent → amber → red with alpha following the
    line's share of all attributed stall cycles, so the hottest line is
    unmistakable and cool lines stay readable."""
    if share <= 0.0:
        return ""
    alpha = min(0.85, 0.15 + 0.7 * share)
    # amber below 30 % share, red above
    rgb = "191,97,106" if share >= 0.3 else "235,203,139"
    return f" style='background:rgba({rgb},{alpha:.2f})'"


def _source_panel(report: ScoutReport) -> str:
    source = report.program.source
    if not source:
        return "<div class='codeline'>source not available (raw SASS)</div>"
    badge_by_line: dict[int, Severity] = {}
    for f in report.findings:
        for line in f.lines:
            prev = badge_by_line.get(line, Severity.INFO)
            badge_by_line[line] = max(prev, f.severity)
    heatmap = getattr(report, "heatmap", None)
    heat_by_line = heatmap.lines if heatmap is not None else {}
    rows = []
    for i, text in enumerate(source.splitlines(), start=1):
        badge = ""
        if i in badge_by_line:
            cls = _SEV_CLASS[badge_by_line[i]]
            badge = f"<span class='badge {cls}'>{cls}</span>"
        heat, title = "", ""
        lh = heat_by_line.get(i)
        if lh is not None:
            heat = _heat_style(lh.share)
            dom = lh.dominant()
            dom_name = dom.cupti_name if dom is not None else "-"
            title = (f" title='{lh.stall_cycles:.0f} stall cycles "
                     f"({100 * lh.share:.1f}%), dominant: {dom_name}'")
        rows.append(
            f"<div class='codeline' data-line='{i}'{heat}{title}>"
            f"<span class='no'>{i}</span>"
            f"<span>{html.escape(text) or ' '}</span>{badge}</div>"
        )
    return "\n".join(rows)


def _sass_panel(report: ScoutReport) -> str:
    rows = []
    flagged = {pc for f in report.findings for pc in f.pcs}
    for idx, ins in enumerate(report.program):
        line_attr = f" data-line='{ins.line}'" if ins.line is not None else ""
        mark = " style='color:#ebcb8b'" if idx in flagged else ""
        rows.append(
            f"<div class='codeline'{line_attr}>"
            f"<span class='no'>{ins.offset:04x}</span>"
            f"<span{mark}>{html.escape(format_instruction(ins, with_offset=False))}"
            f"</span></div>"
        )
    return "\n".join(rows)


def _findings_section(report: ScoutReport) -> str:
    if not report.findings:
        return "<p>No data-movement bottleneck patterns detected.</p>"
    cards = []
    for f in report.findings:
        cls = _SEV_CLASS[f.severity]
        stall_rows = ""
        if f.stall_profile:
            total = sum(v for k, v in f.stall_profile.items()
                        if k is not StallReason.SELECTED)
            if total:
                parts = [
                    f"{k.cupti_name} {100*v/total:.0f}%"
                    for k, v in sorted(f.stall_profile.items(),
                                       key=lambda kv: -kv[1])
                    if k is not StallReason.SELECTED and v > 0
                ][:4]
                stall_rows = ("<p class='kv'>stalls at flagged "
                              f"instructions: {', '.join(parts)}</p>")
        metric_rows = "".join(
            f"<p class='kv'>{html.escape(name)} = {value:,.2f}</p>"
            for name, value in f.metrics.items()
        )
        from repro.core.report import _fmt_predicted_measured

        pm = _fmt_predicted_measured(f)
        pm_row = f"<p class='kv'>{html.escape(pm)}</p>" if pm else ""
        blame_rows = "".join(
            f"<p class='kv'>blame: {html.escape(b.stall_op)} "
            f"(line {b.stall_line}) {html.escape(b.describe())}</p>"
            for b in f.blame[:4]
        )
        locs = ", ".join(sorted({str(l) for l in f.locations}))
        cards.append(
            f"<div class='finding {cls}'><h3>{html.escape(f.title)}</h3>"
            f"<p>{html.escape(f.message)}</p>"
            f"<p class='kv'>source: {html.escape(locs)}"
            + (f" | registers: {', '.join(f.registers)}" if f.registers else "")
            + "</p>"
            f"<p>{html.escape(f.recommendation)}</p>"
            f"{pm_row}{stall_rows}{blame_rows}{metric_rows}</div>"
        )
    return "\n".join(cards)


def _stall_bar(report: ScoutReport) -> str:
    if report.sampling is None:
        return ""
    totals = {
        k: v for k, v in report.sampling.by_reason().items()
        if k is not StallReason.SELECTED and v > 0
    }
    total = sum(totals.values())
    if not total:
        return ""
    segs, legend = [], []
    for reason, count in sorted(totals.items(), key=lambda kv: -kv[1]):
        pct = 100 * count / total
        color = _STALL_COLORS.get(reason, "#616e88")
        segs.append(
            f"<div style='width:{pct:.2f}%;background:{color}' "
            f"title='{reason.cupti_name}: {pct:.1f}%'></div>"
        )
        legend.append(f"<span style='color:{color}'>■</span> "
                      f"{reason.cupti_name} {pct:.1f}%")
    return (
        "<h2>Warp-stall distribution</h2>"
        f"<div class='bar'>{''.join(segs)}</div>"
        f"<div class='legend'>{' &nbsp; '.join(legend)}</div>"
    )


def _affine_footer(report: ScoutReport) -> str:
    if not report.affine_summary:
        return ""
    g = report.affine_summary.get("global", {})
    s = report.affine_summary.get("shared", {})
    return (
        "<h2>Static address proofs</h2><p class='kv'>"
        f"global accesses: {g.get('proven_coalesced', 0)} proven coalesced, "
        f"{g.get('flagged', 0)} flagged, {g.get('unproven', 0)} unproven"
        " &nbsp;|&nbsp; "
        f"shared accesses: {s.get('proven_conflict_free', 0)} proven "
        f"conflict-free, {s.get('flagged', 0)} flagged, "
        f"{s.get('unproven', 0)} unproven</p>"
    )


def _health_section(report: ScoutReport) -> str:
    diags = getattr(report, "diagnostics", None) or []
    mode = getattr(report, "mode", "full")
    degraded = mode in ("functional", "static")
    if not diags and not degraded:
        return ""
    rows = "".join(
        f"<tr><td>{html.escape(d.stage)}</td>"
        f"<td>{html.escape(d.site)}</td>"
        f"<td>{html.escape(d.severity)}</td>"
        f"<td>{html.escape(d.error)}</td>"
        f"<td>{html.escape(d.message)}</td></tr>"
        for d in diags
    )
    note = " (degraded)" if degraded else ""
    return (
        f"<h2>Run health</h2><p class='kv'>mode: {html.escape(mode)}{note}"
        f" — {len(diags)} diagnostic(s)</p>"
        "<table><tr><th>stage</th><th>site</th><th>severity</th>"
        f"<th>error</th><th>message</th></tr>{rows}</table>"
        if diags else
        f"<h2>Run health</h2><p class='kv'>mode: {html.escape(mode)}{note}"
        "</p>"
    )


def _heatmap_section(report: ScoutReport) -> str:
    heatmap = getattr(report, "heatmap", None)
    if heatmap is None or not heatmap.lines:
        return ""
    rows = []
    for lh in heatmap.top(10):
        dom = lh.dominant()
        dom_name = dom.cupti_name if dom is not None else "-"
        breakdown = ", ".join(
            f"{r.cupti_name} {100 * v / lh.stall_cycles:.0f}%"
            for r, v in sorted(lh.by_reason.items(), key=lambda kv: -kv[1])
        )[:120]
        waits = ", ".join(
            f"{w['op']} (line {w['line']})" if w["line"] is not None
            else f"{w['op']} (pc {w['pc']})"
            for w in lh.waits_on[:3]
        ) or "-"
        rows.append(
            f"<tr><td>{lh.line}</td>"
            f"<td>{lh.stall_cycles:,.0f}</td>"
            f"<td>{100 * lh.share:.1f}%</td>"
            f"<td>{lh.issues}</td>"
            f"<td>{html.escape(dom_name)}</td>"
            f"<td class='kv'>{html.escape(waits)}</td>"
            f"<td class='kv'>{html.escape(breakdown)}</td></tr>"
        )
    unattr = ""
    if heatmap.unattributed_cycles:
        unattr = (f"<p class='kv'>{heatmap.unattributed_cycles:,.0f} stall "
                  "cycles at instructions with no source-line info</p>")
    return (
        "<h2>Source-line heatmap (simulated stall cycles)</h2>"
        "<table><tr><th>line</th><th>stall cycles</th><th>share</th>"
        "<th>issues</th><th>dominant stall</th><th>waits on</th>"
        "<th>breakdown</th></tr>"
        f"{''.join(rows)}</table>{unattr}"
    )


def _profile_section(report: ScoutReport) -> str:
    prof = getattr(report, "profile", None)
    if prof is None or not prof.spans:
        return ""
    total = prof.total_seconds()
    rows = "".join(
        f"<tr><td>{html.escape(stage)}</td>"
        f"<td>{seconds * 1e3:,.2f}</td>"
        f"<td>{100 * seconds / total if total else 0:.1f}%</td></tr>"
        for stage, seconds in prof.stage_totals().items()
    )
    return (
        "<h2>Pipeline self-profile</h2>"
        f"<p class='kv'>total wall time {total * 1e3:,.2f} ms</p>"
        "<table><tr><th>stage</th><th>ms</th><th>share</th></tr>"
        f"{rows}</table>"
    )


def _metrics_table(report: ScoutReport) -> str:
    if report.metrics is None:
        return ""
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td><td>{value:,.2f}</td></tr>"
        for name, value in report.metrics.values.items()
    )
    return (
        "<h2>Kernel-wide metrics (Nsight Compute)</h2>"
        f"<table><tr><th>metric</th><th>value</th></tr>{rows}</table>"
    )


def _comparison_table(comparison: ComparisonReport) -> str:
    arrow = {"rise": ("&#9650;", "rise"), "fall": ("&#9660;", "fall"),
             "same": ("&#8212;", "same")}
    rows = []
    for d in comparison.metric_deltas:
        sym, cls = arrow[d.direction]
        change = d.change_pct
        change_txt = "" if change in (None, float("inf")) \
            else f"{change:+.1f}%"
        star = " &#9733;" if d.watched else ""
        rows.append(
            f"<tr><td>{html.escape(d.name)}{star}</td>"
            f"<td>{d.before:,.2f}</td><td>{d.after:,.2f}</td>"
            f"<td class='{cls}'>{sym} {change_txt}</td></tr>"
        )
    speed = ""
    if comparison.speedup is not None:
        speed = (f"<p>kernel speedup old/new: "
                 f"<b>{comparison.speedup:.2f}x</b></p>")
    return (
        "<h2>Metrics comparison (old vs new)</h2>" + speed +
        "<table><tr><th>metric (&#9733; = watched)</th><th>old</th>"
        f"<th>new</th><th>change</th></tr>{''.join(rows)}</table>"
    )


def render_html(report: ScoutReport,
                comparison: Optional[ComparisonReport] = None) -> str:
    """Render ``report`` as a self-contained interactive HTML page."""
    mode = " — dry run (SASS analysis only)" if report.dry_run else ""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>GPUscout — {html.escape(report.kernel)}</title>",
        f"<style>{_CSS}</style><script>{_JS}</script></head><body>",
        f"<header><h1>GPUscout analysis of kernel "
        f"'{html.escape(report.kernel)}'{mode}</h1></header>",
        "<div class='columns'>",
        "<div class='panel' id='source'><h2 style='padding:0 12px'>"
        "Source code</h2>",
        _source_panel(report),
        "</div>",
        "<div class='panel' id='sass'><h2 style='padding:0 12px'>"
        "SASS instructions</h2>",
        _sass_panel(report),
        "</div></div>",
        "<div class='section'><h2>Findings</h2>",
        _findings_section(report),
        "</div>",
        "<div class='section'>",
        _affine_footer(report),
        "</div>",
        "<div class='section'>",
        _stall_bar(report),
        "</div>",
        "<div class='section'>",
        _heatmap_section(report),
        "</div>",
        "<div class='section'>",
        _metrics_table(report),
        "</div>",
        "<div class='section'>",
        _profile_section(report),
        "</div>",
        "<div class='section'>",
        _health_section(report),
        "</div>",
    ]
    if comparison is not None:
        parts.append(f"<div class='section'>{_comparison_table(comparison)}"
                     "</div>")
    parts.append("</body></html>")
    return "\n".join(parts)
