"""Terminal report rendering, styled after the paper's Figures 2 and 5.

The output has the three sections of §3.2: the SASS analysis findings
(with registers and source line numbers), the correlated warp-stall
information, and the kernel-wide metric analysis.
"""

from __future__ import annotations

from typing import Optional

from repro.core.findings import Finding, Severity
from repro.gpu.stalls import STALL_EXPLANATIONS, StallReason
from repro.metrics.names import METRIC_REGISTRY

__all__ = ["render_report", "render_finding", "render_health",
           "render_profile"]

_RULE = "-" * 72
_SEV_TAG = {
    Severity.INFO: "INFO    ",
    Severity.WARNING: "WARNING ",
    Severity.CRITICAL: "CRITICAL",
}
_SEV_COLOR = {
    Severity.INFO: "\x1b[36m",
    Severity.WARNING: "\x1b[33m",
    Severity.CRITICAL: "\x1b[31m",
}
_RESET = "\x1b[0m"


def _fmt_value(name: str, value: float) -> str:
    spec = METRIC_REGISTRY.get(name)
    unit = f" {spec.unit}" if spec else ""
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return f"{int(round(value))}{unit}"
    return f"{value:.2f}{unit}"


_PM_LABEL = {
    "sectors_per_request": "sectors/request",
    "transactions_per_request": "shared transactions/request",
    "bank_conflict_ways": "bank-conflict ways",
}


def _fmt_predicted_measured(finding: Finding) -> Optional[str]:
    """``Predicted: 32 sectors/request (measured 32.0)`` style line.

    The static prediction and the simulator's per-PC measurement of the
    same accesses, side by side — the cross-validation the affine
    engine makes possible."""
    parts = []
    for key, label in _PM_LABEL.items():
        pred = finding.predicted.get(key)
        meas = finding.measured.get(key)
        if pred is None and meas is None:
            continue
        if pred is not None and meas is not None:
            mark = "=" if abs(pred - meas) < 1e-9 else "!="
            parts.append(f"{pred:g} {label} (measured {meas:g}, "
                         f"predicted {mark} measured)")
        elif pred is not None:
            parts.append(f"{pred:g} {label} (static)")
        else:
            parts.append(f"{label}: measured {meas:g}")
    unproven = finding.predicted.get("unproven_pcs")
    if unproven:
        parts.append(f"{len(unproven)} access(es) unproven")
    if not parts:
        return None
    return "Predicted: " + "; ".join(parts)


def render_finding(finding: Finding, color: bool = False) -> str:
    """One finding block: SASS facts, then stalls, then metrics."""
    tag = _SEV_TAG[finding.severity]
    if color:
        tag = f"{_SEV_COLOR[finding.severity]}{tag}{_RESET}"
    lines = [f"{tag}::  {finding.title}"]
    lines.append(f"    {finding.message}")
    if finding.registers:
        lines.append(f"    Registers: {', '.join(finding.registers)}")
    locs = sorted({str(loc) for loc in finding.locations})
    if locs:
        lines.append(f"    Source: {'; '.join(locs)}")
    if finding.in_loop:
        lines.append("    Note: the pattern executes inside a for-loop.")
    pressure = finding.details.get("live_register_pressure")
    if pressure is not None:
        lines.append(f"    Live register pressure at the instruction(s): "
                     f"{pressure}")
    pm = _fmt_predicted_measured(finding)
    if pm:
        lines.append(f"    {pm}")
    lines.append(f"    Advice: {finding.recommendation}")
    if finding.stall_profile:
        total = sum(
            v for k, v in finding.stall_profile.items()
            if k is not StallReason.SELECTED
        )
        if total:
            lines.append("    Warp stalls at the flagged instruction(s):")
            ranked = sorted(
                (
                    (k, v) for k, v in finding.stall_profile.items()
                    if k is not StallReason.SELECTED and v > 0
                ),
                key=lambda kv: -kv[1],
            )
            for reason, count in ranked[:4]:
                pct = 100.0 * count / total
                lines.append(
                    f"      {reason.cupti_name:<28s} {pct:5.1f} % "
                    f"({count} samples)"
                )
            dom = finding.dominant_stall()
            if dom is not None and dom in STALL_EXPLANATIONS:
                lines.append(f"      -> {STALL_EXPLANATIONS[dom]}")
    if finding.blame:
        lines.append("    Stall root cause (backward slice):")
        for b in finding.blame[:4]:
            where = f"pc {b.stall_pc}"
            if b.stall_line is not None:
                where = f"line {b.stall_line}"
            lines.append(f"      {b.stall_op} at {where} {b.describe()}")
    if finding.metrics:
        lines.append("    Metrics to pay attention to:")
        for name, value in finding.metrics.items():
            lines.append(f"      {name:<52s} {_fmt_value(name, value)}")
    return "\n".join(lines)


def render_report(report, color: bool = False,
                  profile: bool = False) -> str:
    """Full terminal report (Figure 2 / Figure 5 style).

    With ``profile`` a ``[prof]`` footer is appended: the top pipeline
    stages by wall time and the hottest source lines by stall cycles
    (from the report's :class:`~repro.obs.heatmap.Heatmap`)."""
    lines: list[str] = []
    lines.append(_RULE)
    mode = " (dry run: SASS analysis only)" if report.dry_run else ""
    lines.append(f"GPUscout analysis of kernel '{report.kernel}'{mode}")
    lines.append(_RULE)
    if not report.findings:
        lines.append("No data-movement bottleneck patterns detected.")
    for finding in report.findings:
        lines.append(render_finding(finding, color=color))
        lines.append("")
    if not report.dry_run and report.metrics is not None:
        lines.append(_RULE)
        lines.append("Kernel-wide metric analysis (Nsight Compute)")
        lines.append(_RULE)
        for name, value in report.metrics.values.items():
            lines.append(f"  {name:<56s} {_fmt_value(name, value)}")
        if report.sampling is not None:
            lines.append("")
            lines.append("Warp-stall sample distribution (CUPTI PC sampling):")
            totals = report.sampling.by_reason()
            stall_total = sum(
                v for k, v in totals.items() if k is not StallReason.SELECTED
            )
            for reason, count in sorted(totals.items(), key=lambda kv: -kv[1]):
                if reason is StallReason.SELECTED or count == 0:
                    continue
                pct = 100.0 * count / stall_total if stall_total else 0.0
                lines.append(f"  {reason.cupti_name:<30s} {pct:5.1f} % "
                             f"({count} samples)")
    if report.affine_summary:
        g = report.affine_summary.get("global", {})
        s = report.affine_summary.get("shared", {})
        lines.append(
            f"[affine] global accesses: {g.get('proven_coalesced', 0)} "
            f"proven coalesced, {g.get('flagged', 0)} flagged, "
            f"{g.get('unproven', 0)} unproven | shared accesses: "
            f"{s.get('proven_conflict_free', 0)} proven conflict-free, "
            f"{s.get('flagged', 0)} flagged, {s.get('unproven', 0)} unproven"
        )
    if report.overhead is not None and not report.dry_run:
        o = report.overhead
        lines.append("")
        lines.append(
            f"[overhead] kernel {o.kernel_seconds*1e3:.2f} ms | "
            f"SASS analysis {o.sass_analysis_seconds*1e3:.2f} ms | "
            f"PC sampling {o.pc_sampling_seconds*1e3:.2f} ms | "
            f"metrics {o.metrics_seconds*1e3:.2f} ms | "
            f"total {o.total_factor:.1f}x kernel time"
        )
    if report.launch is not None and not report.dry_run:
        launch = report.launch
        exec_line = f"[exec] inst issued (timed) {launch.counters.inst_issued}"
        if launch.timed_instructions:
            timed_path = ("trace (batched)" if launch.timed_fast_path
                          else "legacy")
            exec_line += (
                f" ({launch.timed_inst_per_sec:,.0f}/s, {timed_path} path)"
            )
        if launch.counters.inst_functional:
            path = "fast (batched)" if launch.fast_path else "legacy"
            exec_line += (
                f" | functional inst {launch.counters.inst_functional}"
                f" ({launch.functional_inst_per_sec:,.0f}/s, {path} path)"
            )
        lines.append(exec_line)
    lines.extend(render_health(report))
    if profile:
        lines.extend(render_profile(report))
        from repro.obs.metrics import render_footer

        # [metrics] footer: whatever the armed telemetry registry
        # accumulated this process (empty when disarmed)
        lines.extend(render_footer())
    return "\n".join(lines) + "\n"


def render_profile(report) -> list[str]:
    """The ``[prof]`` footer: top-5 pipeline stages and top-5 hot lines.

    Empty when the report carries no profiler (e.g. hand-built report
    objects in tests)."""
    prof = getattr(report, "profile", None)
    if prof is None or not prof.spans:
        return []
    total = prof.total_seconds()
    lines = ["", f"[prof] pipeline wall time {total*1e3:.2f} ms"]
    for span in prof.top_spans(5):
        pct = 100.0 * span.elapsed_s / total if total else 0.0
        lines.append(
            f"  {span.name:<24s} {span.elapsed_s*1e3:8.2f} ms {pct:5.1f} %"
        )
    heatmap = getattr(report, "heatmap", None)
    if heatmap is not None and heatmap.lines:
        lines.append("[prof] hottest source lines (simulated stall cycles)")
        for lh in heatmap.top(5):
            dom = lh.dominant()
            dom_name = dom.cupti_name if dom is not None else "-"
            waits = ""
            if lh.waits_on:
                w = lh.waits_on[0]
                target = (f"line {w['line']}" if w["line"] is not None
                          else f"pc {w['pc']}")
                waits = f"  waits on: {w['op']} ({target})"
            lines.append(
                f"  line {lh.line:<5d} {lh.stall_cycles:10.0f} cycles "
                f"{100.0 * lh.share:5.1f} %  dominant: {dom_name}{waits}"
            )
    return lines


_HEALTH_MAX_LINES = 8


def render_health(report) -> list[str]:
    """The ``[health]`` footer: degradation mode plus diagnostics.

    Empty (no lines at all) for a clean run, so reports only mention
    health when there is something to say."""
    diags = getattr(report, "diagnostics", None) or []
    mode = getattr(report, "mode", "full")
    degraded = mode in ("functional", "static")
    if not diags and not degraded:
        return []
    errors = sum(1 for d in diags if d.severity == "error")
    head = f"[health] mode: {mode}"
    if degraded:
        head += " (degraded)"
    head += f" | {len(diags)} diagnostic(s)"
    if errors:
        head += f", {errors} error(s)"
    lines = ["", head]
    for d in diags[:_HEALTH_MAX_LINES]:
        lines.append(f"  {d}")
    if len(diags) > _HEALTH_MAX_LINES:
        lines.append(f"  ... and {len(diags) - _HEALTH_MAX_LINES} more")
    return lines
